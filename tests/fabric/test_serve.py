"""The result service and its client: warm 200s, cold 202s, honest
404s, lossless RunResult JSON."""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.apps.hpccg import KernelBenchConfig
from repro.fabric import Fabric
from repro.fabric.client import (FabricClient, FabricServiceError,
                                 FabricTimeout)
from repro.fabric.serve import make_server
from repro.scenarios import Scenario

TINY = Scenario(app="hpccg_kernels",
                config=KernelBenchConfig(nx=8, ny=8, nz=8, reps=1),
                n_logical=2, mode="native")
NAME = "example:hpccg:intra"


@pytest.fixture
def served(tmp_path):
    fab = Fabric(tmp_path, backend="sqlite", poll=0.01)
    server = make_server(fab)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = FabricClient(server.url, poll=0.01, timeout=10.0)
    yield fab, server, client
    server.shutdown()
    server.server_close()
    fab.close()


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


def test_healthz(served):
    fab, server, client = served
    assert client.healthz()
    status, body = _get(f"{server.url}/healthz")
    assert (status, body["status"]) == (200, "ok")


def test_unknown_route_404s(served):
    _, server, _ = served
    status, body = _get(f"{server.url}/nope")
    assert status == 404
    assert "/result/<cache_key>" in body["routes"]


def test_unknown_key_404_with_hint(served):
    _, _, client = served
    with pytest.raises(FabricServiceError) as err:
        client.result("0" * 64)
    assert err.value.status == 404
    assert "scenario" in err.value.payload["hint"]


def test_unknown_scenario_404_with_suggestions(served):
    _, _, client = served
    with pytest.raises(FabricServiceError) as err:
        client.run("example:hpccg:intr")
    assert err.value.status == 404
    assert NAME in err.value.payload["suggestions"]


def test_cold_scenario_202_enqueues(served):
    fab, server, client = served
    assert client.run(NAME, wait=False) is None          # 202 pending
    assert fab.queue.stats().ready == 1                  # enqueued
    status, body = _get(f"{server.url}/scenario/{NAME}")
    assert status == 202
    assert body["status"] == "pending"
    assert len(body["cache_key"]) == 64


def test_warm_request_serves_lossless_run_result(served, tmp_path):
    fab, _, client = served
    client.run(NAME, wait=False)                         # enqueue
    fab.drain()                                          # compute inline
    result = client.run(NAME, wait=False)
    assert result is not None
    assert result.cache_hit is True
    # lossless: equals a local run of the same scenario, aside from
    # cache provenance
    local = repro.run(NAME, cache=True, cache_dir=tmp_path / "ref")
    assert result.wall_time == local.wall_time
    assert result.value == local.value
    assert result.scenario == local.scenario
    assert result.cache_key == local.cache_key


def test_result_by_key_roundtrip(served):
    fab, _, client = served
    key = fab.record_scenario(TINY)
    assert client.result(key) is None                    # known, cold
    fab.drain()                                          # 202 enqueued it
    result = client.result(key)
    assert result is not None and result.cache_key == key


def test_wait_polls_until_worker_finishes(served):
    fab, _, client = served
    done = threading.Event()

    def worker():
        from repro.fabric.worker import run_worker
        run_worker(fab, idle_exit=2.0)
        done.set()

    threading.Thread(target=worker, daemon=True).start()
    result = client.run(NAME, wait=True, wait_timeout=30.0)
    assert result is not None and result.ok
    done.wait(10.0)


def test_wait_timeout_raises(served):
    _, _, client = served                                # no workers
    with pytest.raises(FabricTimeout):
        client.run(NAME, wait=True, wait_timeout=0.05)


def test_client_sweep_orders_like_input(served):
    from repro.fabric.worker import run_worker
    fab, _, client = served
    names = ["example:hpccg:intra", "example:hpccg:native"]
    threading.Thread(target=run_worker,
                     kwargs=dict(fabric=fab, idle_exit=2.0),
                     daemon=True).start()
    results = client.sweep(names, wait_timeout=30.0)
    assert [r.scenario.mode for r in results] == ["intra", "native"]


def test_stats_counts_hits_and_misses(served):
    fab, _, client = served
    client.run(NAME, wait=False)       # miss
    fab.drain()
    client.run(NAME, wait=False)       # hit
    stats = client.stats()
    assert stats["hits"] >= 1 and stats["misses"] >= 1
    assert stats["queue"]["done"] == 1
    assert stats["store"]["entries"] == 1
