"""The fabric worker loop: lease → simulate → store → ack."""

import pickle

import pytest

import repro
from repro.apps.hpccg import KernelBenchConfig
from repro.fabric import Fabric
from repro.fabric.worker import (default_worker_id, drain, main,
                                 process_one, run_worker)
from repro.scenarios import Scenario

TINY = Scenario(app="hpccg_kernels",
                config=KernelBenchConfig(nx=8, ny=8, nz=8, reps=1),
                n_logical=2, mode="native")


@pytest.fixture(params=("file", "sqlite"))
def fab(request, tmp_path):
    f = Fabric(tmp_path, backend=request.param, poll=0.01)
    yield f
    f.close()


def test_process_one_computes_stores_and_acks(fab):
    key = fab.enqueue_scenario(TINY)
    assert process_one(fab, "w1") == key
    assert fab.queue.get(key).state == "done"
    mode_run = fab.load_result(key)
    assert mode_run is not None
    assert mode_run.mode == "native"


def test_process_one_empty_queue_returns_none(fab):
    assert process_one(fab, "w1") is None


def test_worker_failure_charges_queue_attempt(fab):
    # an unrunnable scenario: unknown app name raises inside the worker
    bad = Scenario(app="no_such_app",
                   config=KernelBenchConfig(nx=8, ny=8, nz=8, reps=1),
                   n_logical=2, mode="native")
    key = fab.enqueue_scenario(bad)
    assert process_one(fab, "w1") == key     # handled, not raised
    item = fab.queue.get(key)
    assert item.attempts == 1
    assert item.error.startswith("error:")
    assert fab.load_result(key) is None      # failures are never stored


def test_drain_processes_everything_ready(fab):
    keys = {fab.enqueue_scenario(TINY.replace(n_logical=n))
            for n in (2, 4, 8)}
    assert fab.drain() == 3
    for key in keys:
        assert fab.load_result(key) is not None
    assert drain(fab) == 0                   # queue is dry


def test_run_worker_idle_exit_and_max_points(fab):
    fab.enqueue_scenario(TINY)
    fab.enqueue_scenario(TINY.replace(n_logical=4))
    assert run_worker(fab, max_points=1) == 1
    assert run_worker(fab, idle_exit=0.05) == 1   # finishes, then exits


def test_worker_bytes_match_serial_cache_bytes(fab, tmp_path):
    from repro.fabric.store import set_cache_backend
    serial_dir = tmp_path / "serial"
    before = set_cache_backend("file")   # the .pkl oracle layout
    try:
        result = repro.run(TINY, cache=True, cache_dir=serial_dir)
    finally:
        set_cache_backend(before)
    key = fab.enqueue_scenario(TINY)
    assert key == result.cache_key           # same scenario-hash keys
    fab.drain()
    serial_bytes = (serial_dir / key[:2] / f"{key}.pkl").read_bytes()
    assert fab.store.get(key) == serial_bytes
    assert pickle.loads(serial_bytes) == fab.load_result(key)


def test_worker_cli_runs_points(tmp_path, capsys):
    with Fabric(tmp_path, backend="sqlite") as fab:
        fab.enqueue_scenario(TINY)
    rc = main(["--root", str(tmp_path), "--backend", "sqlite",
               "--max-points", "1", "--quiet"])
    assert rc == 0
    with Fabric(tmp_path, backend="sqlite") as fab:
        assert fab.load_result(fab.key_for(TINY)) is not None


def test_worker_cli_validates_flags(tmp_path):
    with pytest.raises(SystemExit):
        main(["--root", str(tmp_path), "--max-points", "0"])
    with pytest.raises(SystemExit):
        main(["--root", str(tmp_path), "--poll", "-1"])


def test_default_worker_id_is_host_pid():
    import os
    assert default_worker_id().endswith(f":{os.getpid()}")
