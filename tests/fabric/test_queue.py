"""WorkQueue: durable lease/ack/retry semantics.

The queue carries the sweep driver's retry policy (attempt accounting,
exponential backoff capped at 30 s, worker-lost attribution) into a
durable, multi-process form; ``now=`` injection keeps every timing
assertion deterministic.
"""

import pytest

from repro.fabric.queue import QUEUE_FILENAME, WorkQueue

KEY = "ab" + "2" * 61
SCEN = '{"app": "x"}'


@pytest.fixture
def q(tmp_path):
    queue = WorkQueue(tmp_path, max_attempts=3, backoff=0.5)
    yield queue
    queue.close()


def test_enqueue_then_lease_roundtrip(q):
    assert q.enqueue(KEY, SCEN) is True
    lease = q.lease("w1", 60.0)
    assert lease.key == KEY
    assert lease.scenario_json == SCEN
    assert q.lease("w2", 60.0) is None    # nothing else ready


def test_enqueue_is_idempotent_while_pending(q):
    assert q.enqueue(KEY, SCEN) is True
    assert q.enqueue(KEY, SCEN) is False  # already queued
    assert q.stats().ready == 1


def test_ack_requires_the_leaseholder(q):
    q.enqueue(KEY, SCEN)
    q.lease("w1", 60.0)
    assert q.ack(KEY, "imposter") is False
    assert q.ack(KEY, "w1") is True
    assert q.stats().done == 1


def test_expired_lease_counts_worker_lost_and_backs_off(q):
    q.enqueue(KEY, SCEN, now=0.0)
    q.lease("w1", lease_s=5.0, now=0.0)
    # within the lease nothing expires
    q.expire_stale(now=4.0)
    assert q.stats().leased == 1
    # past it: one worker-lost attempt, re-readied with backoff
    q.expire_stale(now=6.0)
    item = q.get(KEY)
    assert item.state == "ready"
    assert item.attempts == 1
    assert item.worker_lost == 1
    assert "worker-lost" in item.error
    # the backoff delay gates the next lease
    assert q.lease("w2", now=6.0) is None
    assert q.lease("w2", now=6.0 + q._backoff_delay(1)).key == KEY


def test_exhausted_attempts_park_as_failed(q):
    q.enqueue(KEY, SCEN, now=0.0)
    now = 0.0
    for attempt in range(1, 4):
        now += 100.0
        assert q.lease("w", lease_s=60.0, now=now) is not None
        q.fail(KEY, "w", f"error: boom {attempt}", now=now)
    item = q.get(KEY)
    assert item.state == "failed"
    assert item.attempts == 3
    assert "boom 3" in item.error
    assert q.lease("w", now=now + 1000.0) is None


def test_reenqueue_after_failed_gets_fresh_attempt_budget(q):
    q.enqueue(KEY, SCEN, now=0.0)
    for i in range(3):
        q.lease("w", now=100.0 * (i + 1))
        q.fail(KEY, "w", "error: boom", now=100.0 * (i + 1))
    assert q.get(KEY).state == "failed"
    assert q.enqueue(KEY, SCEN, now=1000.0) is True
    item = q.get(KEY)
    assert item.state == "ready"
    assert item.attempts == 0


def test_reenqueue_after_done_reruns_the_point(q):
    q.enqueue(KEY, SCEN)
    q.lease("w", 60.0)
    q.ack(KEY, "w")
    assert q.enqueue(KEY, SCEN) is True
    assert q.stats().ready == 1


def test_lease_order_is_fifo(q):
    keys = [f"{i:02d}" + "f" * 61 for i in range(3)]
    for i, k in enumerate(keys):
        q.enqueue(k, SCEN, now=float(i))
    got = [q.lease(f"w{i}", 60.0).key for i in range(3)]
    assert got == keys


def test_scenario_binding_survives_queue_clear(q):
    q.enqueue(KEY, SCEN)
    q.lease("w", 60.0)
    q.ack(KEY, "w")
    assert q.clear() == 1
    assert q.get(KEY) is None
    assert q.scenario_for(KEY) == SCEN    # bindings are not queue state


def test_record_scenario_without_enqueue(q):
    q.record_scenario(KEY, SCEN)
    assert q.scenario_for(KEY) == SCEN
    assert q.stats().depth == 0


def test_stats_snapshot(q, tmp_path):
    q.enqueue(KEY, SCEN)
    st = q.stats()
    assert (st.ready, st.leased, st.done, st.failed) == (1, 0, 0, 0)
    assert st.depth == 1
    assert st.as_dict()["ready"] == 1
    assert (tmp_path / QUEUE_FILENAME).is_file()


def test_backoff_is_exponential_and_capped(q):
    assert q._backoff_delay(1) == pytest.approx(0.5)
    assert q._backoff_delay(3) == pytest.approx(2.0)
    assert q._backoff_delay(50) == 30.0   # the sweep driver's cap


def test_durability_across_handles(tmp_path):
    with WorkQueue(tmp_path) as q1:
        q1.enqueue(KEY, SCEN)
    with WorkQueue(tmp_path) as q2:
        lease = q2.lease("w", 60.0)
        assert lease is not None and lease.key == KEY
