"""The ``cache`` admin CLI (``python -m repro.experiments cache`` /
``python -m repro.fabric.admin``), exercised in-process."""

import json
import pickle

import pytest

import repro
from repro.experiments.__main__ import main as experiments_main
from repro.fabric.admin import main as admin_main
from repro.fabric.store import (SQLITE_FILENAME, FileStore, SqliteStore,
                                set_cache_backend)


@pytest.fixture(autouse=True)
def _file_default():
    """These tests assert the file layout and the CLI's file-backend
    defaults; pin them even when the suite runs under
    ``REPRO_CACHE_BACKEND=sqlite`` (the CI fabric leg)."""
    before = set_cache_backend("file")
    yield
    set_cache_backend(before)


@pytest.fixture
def warm_dir(tmp_path):
    """A file-backend cache root with two real sweep results in it."""
    root = tmp_path / "cache"
    repro.sweep(["example:hpccg:intra", "example:hpccg:native"],
                cache=True, cache_dir=root)
    return root


def _run_json(capsys, argv):
    rc = admin_main(argv + ["--json"])
    return rc, json.loads(capsys.readouterr().out)


def test_stats_reports_entries(warm_dir, capsys):
    rc, payload = _run_json(capsys, ["stats", "--cache-dir",
                                     str(warm_dir)])
    assert rc == 0
    assert payload["entries"] == 2
    assert payload["backend"] == "file"
    assert payload["corrupt"] == 0
    assert payload["total_bytes"] > 0


def test_stats_human_output(warm_dir, capsys):
    assert admin_main(["stats", "--cache-dir", str(warm_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries:     2" in out
    assert "backend:     file" in out


def test_verify_clean_exits_zero(warm_dir, capsys):
    rc, payload = _run_json(capsys, ["verify", "--cache-dir",
                                     str(warm_dir)])
    assert rc == 0
    assert payload == {"entries": 2, "problems": []}


def test_verify_corruption_exits_one(warm_dir, capsys):
    victim = next(warm_dir.rglob("*.pkl"))
    victim.write_bytes(b"\x80garbage")
    rc, payload = _run_json(capsys, ["verify", "--cache-dir",
                                     str(warm_dir)])
    assert rc == 1
    assert len(payload["problems"]) == 1
    assert payload["problems"][0]["key"] == victim.stem


def test_prune_drops_quarantine_only(warm_dir, capsys):
    store = FileStore(warm_dir)
    keys = list(store.iter_keys())
    store.quarantine(keys[0], "unit test")
    rc, payload = _run_json(capsys, ["prune", "--cache-dir",
                                     str(warm_dir)])
    assert rc == 0
    assert payload["pruned"] >= 1
    assert list(FileStore(warm_dir).iter_keys()) == keys[1:]


def test_migrate_to_sqlite_is_byte_identical(warm_dir, capsys):
    rc, payload = _run_json(capsys, ["migrate", "--to", "sqlite",
                                     "--cache-dir", str(warm_dir)])
    assert rc == 0
    assert (payload["from"], payload["to"]) == ("file", "sqlite")
    assert payload["copied"] == 2
    src, dst = FileStore(warm_dir), SqliteStore(warm_dir)
    for key in src.iter_keys():
        assert dst.get(key) == src.get(key)
    dst.close()


def test_migrate_skips_already_identical(warm_dir, capsys):
    admin_main(["migrate", "--to", "sqlite", "--cache-dir",
                str(warm_dir)])
    capsys.readouterr()
    rc, payload = _run_json(capsys, ["migrate", "--to", "sqlite",
                                     "--cache-dir", str(warm_dir)])
    assert rc == 0
    assert payload == {"from": "file", "to": "sqlite", "copied": 0,
                       "skipped": 2}


def test_migrate_back_to_file_roundtrips(warm_dir, tmp_path, capsys):
    admin_main(["migrate", "--to", "sqlite", "--cache-dir",
                str(warm_dir)])
    # wipe the file shards, then restore them from the SQLite copy
    src = FileStore(warm_dir)
    keys = {k: src.get(k) for k in src.iter_keys()}
    assert src.clear() == 2
    admin_main(["migrate", "--to", "file", "--cache-dir",
                str(warm_dir)])
    restored = FileStore(warm_dir)
    assert {k: restored.get(k) for k in restored.iter_keys()} == keys
    # restored pickles still load
    for data in keys.values():
        assert pickle.loads(data) is not None


def test_sqlite_backend_verbs_work(tmp_path, capsys):
    store = SqliteStore(tmp_path)
    store.put("cc" + "3" * 61, pickle.dumps({"v": 1}))
    store.close()
    rc, payload = _run_json(capsys, ["stats", "--cache-dir",
                                     str(tmp_path), "--backend",
                                     "sqlite"])
    assert rc == 0
    assert payload["entries"] == 1
    assert (tmp_path / SQLITE_FILENAME).is_file()
    rc, payload = _run_json(capsys, ["verify", "--cache-dir",
                                     str(tmp_path), "--backend",
                                     "sqlite"])
    assert rc == 0


def test_experiments_front_door_forwards(warm_dir, capsys):
    rc = experiments_main(["cache", "stats", "--cache-dir",
                           str(warm_dir), "--json"])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 2


def test_rejects_unknown_backend(warm_dir):
    with pytest.raises(SystemExit):
        admin_main(["stats", "--cache-dir", str(warm_dir),
                    "--backend", "redis"])
    with pytest.raises(SystemExit):
        admin_main(["migrate", "--cache-dir", str(warm_dir)])  # no --to
