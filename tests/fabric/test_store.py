"""ResultStore protocol: both backends, one contract.

Every assertion here runs against the ``file`` oracle layout *and* the
``sqlite`` backend — same keys, same bytes, same quarantine semantics;
only where the bytes live differs.
"""

import pickle
import sqlite3
import warnings

import pytest

from repro.fabric.store import (CACHE_BACKENDS, FileStore, SqliteStore,
                                SQLITE_FILENAME, get_cache_backend,
                                open_store, resolve_cache_backend,
                                set_cache_backend)

KEY_A = "aa" + "0" * 61
KEY_B = "bb" + "1" * 61


@pytest.fixture(params=CACHE_BACKENDS)
def store(request, tmp_path):
    s = open_store(tmp_path, request.param)
    yield s
    s.close()


# ------------------------------------------------------------- protocol
def test_get_miss_is_none(store):
    assert store.get(KEY_A) is None
    assert not store.has(KEY_A)


def test_put_get_roundtrip_bytes_exact(store):
    payload = pickle.dumps({"x": 1}, protocol=pickle.HIGHEST_PROTOCOL)
    store.put(KEY_A, payload)
    assert store.get(KEY_A) == payload
    assert store.has(KEY_A)


def test_put_replaces(store):
    store.put(KEY_A, b"one")
    store.put(KEY_A, b"two")
    assert store.get(KEY_A) == b"two"


def test_delete(store):
    store.put(KEY_A, b"x")
    assert store.delete(KEY_A) is True
    assert store.get(KEY_A) is None
    assert store.delete(KEY_A) is False


def test_iter_keys_sorted(store):
    store.put(KEY_B, b"b")
    store.put(KEY_A, b"a")
    assert list(store.iter_keys()) == sorted([KEY_A, KEY_B])


def test_stats_counts_entries_and_bytes(store):
    assert store.stats().entries == 0
    store.put(KEY_A, b"12345")
    st = store.stats()
    assert st.entries == 1
    assert st.total_bytes == 5
    assert st.backend == store.backend
    assert st.as_dict()["entries"] == 1


def test_clear_removes_results_and_reports_count(store):
    store.put(KEY_A, b"a")
    store.put(KEY_B, b"b")
    assert store.clear() == 2
    assert list(store.iter_keys()) == []


def test_quarantine_hides_entry_and_counts_in_stats(store):
    store.put(KEY_A, b"not a pickle")
    where = store.quarantine(KEY_A, "unit test")
    assert where  # human-readable destination
    assert store.get(KEY_A) is None     # ignored by loads
    assert store.stats().corrupt == 1   # kept for post-mortems
    assert store.quarantine(KEY_A, "again") is None  # nothing left


def test_prune_drops_quarantine_keeps_entries(store):
    store.put(KEY_A, b"healthy")
    store.put(KEY_B, b"junk")
    store.quarantine(KEY_B, "unit test")
    assert store.prune() >= 1
    assert store.stats().corrupt == 0
    assert store.get(KEY_A) == b"healthy"


def test_verify_clean_store_reports_nothing(store):
    store.put(KEY_A, pickle.dumps(42))
    assert store.verify() == []


# ------------------------------------------------------ backend details
def test_file_layout_is_the_pinned_shard_tree(tmp_path):
    s = FileStore(tmp_path)
    s.put(KEY_A, b"x")
    assert (tmp_path / KEY_A[:2] / f"{KEY_A}.pkl").read_bytes() == b"x"
    # no tmp droppings after a clean put
    assert not list(tmp_path.rglob("*.tmp*"))


def test_file_quarantine_renames_to_dot_corrupt(tmp_path):
    s = FileStore(tmp_path)
    s.put(KEY_A, b"junk")
    s.quarantine(KEY_A, "why")
    assert (tmp_path / KEY_A[:2] / f"{KEY_A}.corrupt").is_file()


def test_file_clear_leaves_no_residue(tmp_path):
    s = FileStore(tmp_path)
    s.put(KEY_A, b"junk")
    s.quarantine(KEY_A, "why")
    s.put(KEY_B, b"keep")
    assert s.clear() == 1
    assert list(tmp_path.rglob("*")) == []


def test_sqlite_single_db_file(tmp_path):
    s = SqliteStore(tmp_path)
    s.put(KEY_A, b"x")
    assert (tmp_path / SQLITE_FILENAME).is_file()
    # shares the root with the file layout without touching its shards
    assert not (tmp_path / KEY_A[:2]).exists()
    s.close()


def test_sqlite_read_ops_do_not_create_the_db(tmp_path):
    s = SqliteStore(tmp_path)
    assert s.get(KEY_A) is None
    assert s.stats().entries == 0
    assert not (tmp_path / SQLITE_FILENAME).exists()
    s.close()


def test_sqlite_quarantine_moves_row_to_corrupt_table(tmp_path):
    s = SqliteStore(tmp_path)
    s.put(KEY_A, b"junk")
    s.quarantine(KEY_A, "truncated write")
    rows = s.corrupt_rows()
    assert rows == [(KEY_A, "truncated write")]
    conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
    n, = conn.execute("SELECT COUNT(*) FROM results").fetchone()
    assert n == 0
    conn.close()
    s.close()


def test_sqlite_verify_rehashes_stored_bytes(tmp_path):
    s = SqliteStore(tmp_path)
    s.put(KEY_A, b"payload")
    # flip the stored bytes behind the digest's back
    conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
    conn.execute("UPDATE results SET payload = ? WHERE key = ?",
                 (b"bitrot", KEY_A))
    conn.commit()
    conn.close()
    problems = s.verify()
    assert len(problems) == 1
    assert problems[0][0] == KEY_A
    assert "mismatch" in problems[0][1]
    s.close()


# ----------------------------------------------------------- selection
def test_backend_seam_set_returns_previous():
    before = get_cache_backend()
    try:
        assert set_cache_backend("sqlite") == before
        assert get_cache_backend() == "sqlite"
    finally:
        set_cache_backend(before)


def test_backend_seam_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown cache backend"):
        set_cache_backend("redis")
    with pytest.raises(ValueError, match="unknown cache backend"):
        resolve_cache_backend("redis")


def test_env_garbage_warns_and_falls_back(monkeypatch):
    from repro.fabric.store import _env_backend
    monkeypatch.setenv("REPRO_CACHE_BACKEND", "postgres")
    with pytest.warns(RuntimeWarning):
        assert _env_backend() == "file"


def test_env_selects_sqlite(monkeypatch):
    from repro.fabric.store import _env_backend
    monkeypatch.setenv("REPRO_CACHE_BACKEND", "sqlite")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _env_backend() == "sqlite"


def test_open_store_resolves_default(tmp_path):
    before = get_cache_backend()
    try:
        set_cache_backend("sqlite")
        assert isinstance(open_store(tmp_path), SqliteStore)
        set_cache_backend("file")
        assert isinstance(open_store(tmp_path), FileStore)
    finally:
        set_cache_backend(before)
