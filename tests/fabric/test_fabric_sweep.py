"""``repro.sweep(..., fabric=...)``: differential parity with the
serial driver, resumability, and failure surfacing."""

import threading

import pytest

import repro
from repro.fabric import Fabric
from repro.fabric.worker import run_worker
from repro.scenarios import Scenario
from repro.apps.hpccg import KernelBenchConfig

NAMES = ["example:hpccg:intra", "example:hpccg:native",
         "example:hpccg:sdr", "example:hpccg:intra"]  # dup on purpose


def _background_worker(fab, idle_exit=8.0):
    t = threading.Thread(target=run_worker,
                         kwargs=dict(fabric=fab, idle_exit=idle_exit),
                         daemon=True)
    t.start()
    return t


@pytest.mark.parametrize("backend", ["file", "sqlite"])
def test_fabric_sweep_json_identical_to_serial(backend, tmp_path):
    serial = repro.sweep(NAMES, cache=True, cache_dir=tmp_path / "s")
    with Fabric(tmp_path / "f", backend=backend, poll=0.01) as fab, \
            Fabric(tmp_path / "f", backend=backend, poll=0.01) as wfab:
        _background_worker(wfab)
        fabric_rs = repro.sweep(NAMES, fabric=fab, timeout=60)
    assert fabric_rs.to_json() == serial.to_json()


def test_fabric_sweep_stored_bytes_identical_to_serial(tmp_path):
    from repro.fabric.store import set_cache_backend
    before = set_cache_backend("file")   # the .pkl oracle layout
    try:
        serial = repro.sweep(NAMES, cache=True, cache_dir=tmp_path / "s")
    finally:
        set_cache_backend(before)
    with Fabric(tmp_path / "f", backend="sqlite", poll=0.01) as fab:
        for name in NAMES:
            fab.enqueue_scenario(repro.scenario(name))
        fab.drain()
        for r in serial:
            key = r.cache_key
            serial_bytes = (tmp_path / "s" / key[:2]
                            / f"{key}.pkl").read_bytes()
            assert fab.store.get(key) == serial_bytes


def test_warm_rerun_is_all_hits_and_identical(tmp_path):
    with Fabric(tmp_path, backend="sqlite", poll=0.01) as fab, \
            Fabric(tmp_path, backend="sqlite", poll=0.01) as wfab:
        _background_worker(wfab)
        first = repro.sweep(NAMES, fabric=fab, timeout=60)
        second = repro.sweep(NAMES, fabric=fab, timeout=10)
    assert all(r.cache_hit for r in second)
    # payloads identical; only cache_hit provenance differs on the
    # cold uniques
    for a, b in zip(first, second):
        assert a.wall_time == b.wall_time and a.value == b.value


def test_interrupted_sweep_resumes_from_worker_results(tmp_path):
    """The resumability story: enqueue, let workers finish while no
    sweep is watching, then a fresh sweep serves warm immediately."""
    with Fabric(tmp_path, backend="sqlite", poll=0.01) as fab:
        for name in NAMES:
            fab.enqueue_scenario(repro.scenario(name))
        # "sweep interrupted" — workers keep draining the durable queue
        fab.drain()
    with Fabric(tmp_path, backend="sqlite", poll=0.01) as fab2:
        rs = repro.sweep(NAMES, fabric=fab2, timeout=5)
    assert all(r.cache_hit for r in rs)
    assert [r.mode for r in rs] == ["intra", "native", "sdr", "intra"]


def test_failed_point_surfaces_as_point_failure(tmp_path):
    bad = Scenario(app="no_such_app",
                   config=KernelBenchConfig(nx=8, ny=8, nz=8, reps=1),
                   n_logical=2, mode="native")
    with Fabric(tmp_path, backend="sqlite", poll=0.01,
                max_attempts=1) as fab:
        _background_worker(fab, idle_exit=10.0)
        rs = repro.sweep([bad], fabric=fab, timeout=30,
                         on_error="return")
        assert rs[0].ok is False
        assert rs[0].error.startswith("error:")
        # a later sweep re-enqueues with a fresh budget; the worker
        # fails it again and on_error="raise" escalates
        with pytest.raises(RuntimeError, match="failed after"):
            repro.sweep([bad], fabric=fab, timeout=30)


def test_timeout_without_workers(tmp_path):
    with Fabric(tmp_path, backend="sqlite", poll=0.01) as fab:
        with pytest.raises(TimeoutError, match="still pending"):
            repro.sweep(["example:hpccg:intra"], fabric=fab,
                        timeout=0.05)
        rs = repro.sweep(["example:hpccg:intra"], fabric=fab,
                         timeout=0.05, on_error="return")
        assert rs[0].ok is False
        assert rs[0].error.startswith("timeout:")


def test_fabric_validates_arguments(tmp_path):
    with pytest.raises(ValueError, match="poll"):
        Fabric(tmp_path, poll=0.0)
    with pytest.raises(ValueError, match="lease"):
        Fabric(tmp_path, lease=-1.0)
    with Fabric(tmp_path) as fab:
        with pytest.raises(ValueError, match="on_error"):
            repro.sweep(["example:hpccg:intra"], fabric=fab,
                        on_error="explode")
