"""The sweep cache on the SQLite backend: satellite regression for
corrupt-row quarantine and uniform ``clear_result_cache``."""

import sqlite3
import warnings

import pytest

import repro
from repro.fabric.store import (SQLITE_FILENAME, SqliteStore,
                                get_cache_backend, set_cache_backend)
from repro.perf.sweep import clear_result_cache

NAME = "example:hpccg:intra"


@pytest.fixture
def sqlite_backend():
    before = set_cache_backend("sqlite")
    yield
    set_cache_backend(before)


def test_sweep_caches_through_sqlite(sqlite_backend, tmp_path):
    first = repro.run(NAME, cache=True, cache_dir=tmp_path)
    second = repro.run(NAME, cache=True, cache_dir=tmp_path)
    assert first.cache_hit is False and second.cache_hit is True
    assert second.wall_time == first.wall_time
    assert (tmp_path / SQLITE_FILENAME).is_file()
    assert not (tmp_path / first.cache_key[:2]).exists()  # no shards


def test_sqlite_results_json_identical_to_file_backend(sqlite_backend,
                                                       tmp_path):
    sq = repro.run(NAME, cache=True, cache_dir=tmp_path / "sq")
    set_cache_backend("file")
    fi = repro.run(NAME, cache=True, cache_dir=tmp_path / "fi")
    assert sq.to_json() == fi.to_json()
    # and the stored payloads are byte-identical across backends
    key = sq.cache_key
    file_bytes = (tmp_path / "fi" / key[:2] / f"{key}.pkl").read_bytes()
    store = SqliteStore(tmp_path / "sq")
    assert store.get(key) == file_bytes
    store.close()


def test_corrupt_sqlite_row_quarantines_and_recomputes(sqlite_backend,
                                                       tmp_path):
    first = repro.run(NAME, cache=True, cache_dir=tmp_path)
    key = first.cache_key
    # rot the stored pickle behind the cache's back
    conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
    conn.execute("UPDATE results SET payload = ? WHERE key = ?",
                 (b"\x80rotten", key))
    conn.commit()
    conn.close()
    with pytest.warns(RuntimeWarning, match="corrupt"):
        second = repro.run(NAME, cache=True, cache_dir=tmp_path)
    assert second.cache_hit is False          # recomputed, not served
    assert second.wall_time == first.wall_time
    # the rotten row moved to the corrupt table for post-mortems...
    store = SqliteStore(tmp_path)
    assert [k for k, _ in store.corrupt_rows()] == [key]
    # ...and the recompute re-populated a healthy row
    assert store.get(key) is not None
    store.close()


def test_clear_result_cache_is_uniform(sqlite_backend, tmp_path):
    repro.run(NAME, cache=True, cache_dir=tmp_path)
    assert clear_result_cache(tmp_path) == 1
    with warnings.catch_warnings():
        warnings.simplefilter("error")        # a miss, not a warning
        rerun = repro.run(NAME, cache=True, cache_dir=tmp_path)
    assert rerun.cache_hit is False


def test_backend_restored(tmp_path):
    # the fixture must not leak the sqlite selection into other tests:
    # the process default is back to whatever the environment picked
    from repro.fabric.store import _env_backend
    assert get_cache_backend() == _env_backend()
