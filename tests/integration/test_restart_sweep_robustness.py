"""The PR's headline robustness scenario, end to end: a ``restart:*``
failure-storm sweep survives a pool-worker death *and* a corrupted
cache entry, and the surviving results are bit-identical to a clean
serial run.

The sabotage function is module-level (pool workers unpickle it by
reference) and flows through the real scenario execution path
(:func:`repro.scenarios.run._run_scenario`) with the real scenario
cache namespace, so what is being exercised is exactly what
``repro.sweep`` runs in production."""

import os
import signal

import pytest

from repro.perf import run_sweep
from repro.scenarios import get_scenario, scenario_cache_key
from repro.scenarios.catalog import restart_grid_names
from repro.scenarios.run import SCENARIO_SWEEP_TAG, _run_scenario

STORM_NAMES = [n for n in restart_grid_names()
               if n.startswith("restart:cascade:")]


def _sabotaged_run(scenario):
    """Kill this pool worker once (first un-marked call), then behave
    exactly like the production scenario runner."""
    d = os.environ.get("REPRO_TEST_SABOTAGE_DIR")
    if d:
        marker = os.path.join(d, "killed")
        if not os.path.exists(marker):
            open(marker, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
    return _run_scenario(scenario)


@pytest.fixture
def storm_scenarios():
    assert len(STORM_NAMES) == 3    # eager / checkpointed / none
    return [get_scenario(n) for n in STORM_NAMES]


def test_registered_grid_covers_storms_and_policies():
    names = restart_grid_names()
    assert len(names) == 6
    assert {n.split(":")[1] for n in names} == {"cascade", "maintenance"}
    assert {n.split(":")[2] for n in names} == {"eager", "checkpointed",
                                                "none"}


def test_storm_sweep_survives_worker_death_and_corrupt_cache(
        tmp_path, monkeypatch):
    scenarios = [get_scenario(n) for n in STORM_NAMES]
    # the ground truth: a clean, serial, uncached sweep
    baseline = run_sweep(scenarios, _run_scenario,
                         tag=SCENARIO_SWEEP_TAG)

    # pre-corrupt one scenario's cache slot (a truncated writer)
    cache = tmp_path / "cache"
    run_sweep([scenarios[0]], _run_scenario, cache=True, cache_dir=cache,
              tag=SCENARIO_SWEEP_TAG)
    key = scenario_cache_key(scenarios[0])
    slot = cache / key[:2] / f"{key}.pkl"
    slot.write_bytes(slot.read_bytes()[:slot.stat().st_size // 2])

    # the hostile sweep: parallel + cached, one worker SIGKILLed
    monkeypatch.setenv("REPRO_TEST_SABOTAGE_DIR", str(tmp_path))
    with pytest.warns(RuntimeWarning, match="corrupt"):
        survived = run_sweep(scenarios, _sabotaged_run, workers=2,
                             cache=True, cache_dir=cache,
                             tag=SCENARIO_SWEEP_TAG, retries=2,
                             backoff=0.0)
    assert (tmp_path / "killed").exists()   # the kill actually fired

    # every point completed, bit-identical to the clean serial run
    assert survived == baseline
    # the quarantined entry was rewritten: a fresh sweep is all hits
    rerun = run_sweep(scenarios, _run_scenario, cache=True,
                      cache_dir=cache, tag=SCENARIO_SWEEP_TAG)
    assert rerun == baseline


def test_restart_policies_actually_heal_the_storm(storm_scenarios):
    """Sanity on the grid's semantics, not just its plumbing: the
    no-restart leg completes on the survivor, the restart legs record
    completed restarts and the same application answer."""
    runs = {s.restart.trigger if s.restart else "none":
            _run_scenario(s) for s in storm_scenarios}
    values = {run.value for run in runs.values()}
    assert len(values) == 1              # one correct answer everywhere
    assert runs["none"].intra.get("restarts_completed") is None
    assert runs["on-crash"].intra["restarts_completed"] >= 1.0
    assert runs["on-degree-loss"].intra["restarts_completed"] >= 1.0
