"""Property-based tests on the full stack (hypothesis).

These are the invariants DESIGN.md commits to:
* event-queue ordering (same-time events process in schedule order),
* per-channel FIFO delivery under random message patterns,
* replica bitwise consistency at section exit for *any* task structure,
* recovery correctness for *any* crash time,
* partition helpers cover exactly the input range.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.intra import Tag, launch_intra_job
from repro.kernels import split_range
from repro.mpi import MpiWorld, launch_job
from repro.netmodel import Cluster, MachineSpec, NetworkSpec
from repro.replication import FailureInjector
from repro.simulate import Simulator

MACHINE = MachineSpec(name="t", cores_per_node=4, flop_rate=1e9,
                      mem_bandwidth=4e9)
NETSPEC = NetworkSpec(bandwidth=1e9, latency=1e-6, half_duplex=False)


@given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1,
                       max_size=50))
def test_event_processing_order_is_time_then_schedule_order(delays):
    sim = Simulator()
    seen = []
    for i, d in enumerate(delays):
        ev = sim.timeout(d, value=i)
        ev.add_callback(lambda e: seen.append((sim.now, e.value)))
    sim.run()
    # sorted by (time, insertion order)
    expect = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert [i for _t, i in seen] == expect


@given(n=st.integers(0, 500), parts=st.integers(1, 40))
def test_split_range_partitions_exactly(n, parts):
    slices = split_range(n, parts)
    assert len(slices) == parts
    covered = []
    for sl in slices:
        covered.extend(range(sl.start, sl.stop))
    assert covered == list(range(n))
    sizes = [sl.stop - sl.start for sl in slices]
    assert max(sizes) - min(sizes) <= 1


@settings(max_examples=20, deadline=None)
@given(messages=st.lists(
    st.tuples(st.integers(0, 3),          # tag
              st.integers(1, 2000)),      # payload size (bytes)
    min_size=1, max_size=20))
def test_fifo_per_tag_under_random_message_sizes(messages):
    """MPI non-overtaking: per (source, tag) channel, messages arrive in
    send order regardless of their sizes (which perturb transfer
    times)."""
    def program(ctx, comm):
        if comm.rank == 0:
            for seq, (tag, size) in enumerate(messages):
                yield from comm.send((seq, bytes(size)), dest=1, tag=tag)
            return None
        out = {}
        for tag in {t for t, _ in messages}:
            count = sum(1 for t, _ in messages if t == tag)
            got = []
            for _ in range(count):
                seq, _payload = yield from comm.recv(source=0, tag=tag)
                got.append(seq)
            out[tag] = got
        return out

    world = MpiWorld(Cluster(2, MACHINE), NETSPEC)
    job = launch_job(world, program, 2)
    world.run()
    per_tag = job.results()[1]
    for tag, seqs in per_tag.items():
        expect = [i for i, (t, _s) in enumerate(messages) if t == tag]
        assert seqs == expect


@settings(max_examples=15, deadline=None)
@given(task_sizes=st.lists(st.integers(1, 64), min_size=1, max_size=12),
       degree=st.integers(2, 3),
       seed=st.integers(0, 2**16))
def test_replicas_bitwise_identical_for_any_task_structure(task_sizes,
                                                           degree, seed):
    """Any section shape (task count/sizes) leaves all replicas with
    bitwise-identical state."""
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(s) for s in task_sizes]

    def program(ctx, comm):
        outs = [np.zeros_like(x) for x in inputs]
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(
            lambda a, o: np.copyto(o, np.sin(a) * 3.0),
            [Tag.IN, Tag.OUT])
        for x, o in zip(inputs, outs):
            rt.task_launch(tid, [x, o])
        yield from rt.section_end()
        return np.concatenate(outs)

    world = MpiWorld(Cluster(3 * degree, MACHINE), NETSPEC)
    job = launch_intra_job(world, program, 1, degree=degree)
    world.run()
    row = job.results()[0]
    ref = row[0]
    for other in row[1:]:
        assert np.array_equal(ref, other)


@settings(max_examples=15, deadline=None)
@given(crash_us=st.floats(1.0, 4000.0),
       victim=st.integers(0, 1))
def test_any_crash_time_yields_correct_final_state(crash_us, victim):
    """Whenever either replica dies, the survivor finishes with exactly
    the failure-free result (recovery idempotence over crash time)."""
    n, n_tasks, rounds = 64, 8, 3

    def program(ctx, comm):
        acc = np.arange(n, dtype=np.float64)
        for _ in range(rounds):
            rt = ctx.intra
            rt.section_begin()
            tid = rt.task_register(
                lambda p: np.add(p, 1.0, out=p), [Tag.INOUT],
                cost=lambda p: (p.size * 100.0, 16.0 * p.size))
            for sl in split_range(n, n_tasks):
                rt.task_launch(tid, [acc[sl]])
            yield from rt.section_end()
        return acc

    world = MpiWorld(Cluster(4, MACHINE), NETSPEC)
    job = launch_intra_job(world, program, 1, fd_delay=10e-6)
    FailureInjector(job.manager).kill_at(0, victim, crash_us * 1e-6)
    world.run()
    live = job.manager.alive_replicas(0)
    expect = np.arange(n, dtype=np.float64) + rounds
    for info in live:
        got = (info.app_process.value if info.app_process.value is not None
               else None)
        assert got is not None
        np.testing.assert_array_equal(got, expect)


@settings(max_examples=10, deadline=None)
@given(values=st.lists(st.floats(-1e3, 1e3, allow_nan=False,
                                 allow_infinity=False),
                       min_size=2, max_size=9))
def test_collectives_match_numpy_reference(values):
    n = len(values)

    def program(ctx, comm, v):
        s = yield from comm.allreduce(v, op="sum")
        m = yield from comm.allreduce(v, op="max")
        g = yield from comm.allgather(v)
        return (s, m, g)

    world = MpiWorld(Cluster(-(-n // 4), MACHINE), NETSPEC)
    procs = []
    from repro.mpi import Communicator
    from repro.netmodel import block_placement
    slots = block_placement(world.cluster, n)
    ctxs = [world.spawn(slots[i], name=f"p{i}") for i in range(n)]
    comm = Communicator(world, [c.endpoint.id for c in ctxs])
    for i, ctx in enumerate(ctxs):
        procs.append(world.start(ctx, program(ctx, comm.bind(ctx),
                                              values[i])))
    world.run()
    total = sum(values)
    for p in procs:
        s, m, g = p.value
        # binomial reduction order differs from sum()'s left fold:
        # compare with a tolerance scaled to the magnitude of the terms
        scale = max(1.0, max(abs(v) for v in values) * n)
        assert abs(s - total) <= 1e-9 * scale
        assert m == max(values)
        assert g == values
