"""End-to-end integration: whole applications through crashes, and
determinism of the full stack."""

import numpy as np
import pytest

from repro.apps.gtc import GtcConfig, gtc_program
from repro.apps.hpccg import HpccgConfig, hpccg_program
from repro.intra import launch_intra_job, launch_mode
from repro.mpi import MpiWorld
from repro.netmodel import (GRID5000_MACHINE, GRID5000_NETWORK, Cluster)
from repro.replication import FailureInjector

CFG = HpccgConfig(nx=8, ny=8, nz=8, max_iter=6)


def make_world(n_nodes=8):
    return MpiWorld(Cluster(n_nodes, GRID5000_MACHINE), GRID5000_NETWORK)


def run_hpccg_with_crash(kill_spec, fd_delay=50e-6):
    world = make_world()
    job = launch_intra_job(world, hpccg_program, 2, fd_delay=fd_delay,
                           args=(CFG,))
    inj = FailureInjector(job.manager)
    kill_spec(inj)
    world.run()
    return job


def reference_residual():
    world = make_world()
    job = launch_mode("native", world, hpccg_program, 2, args=(CFG,))
    world.run()
    return job.results()[0].value[0]


def test_hpccg_intra_survives_time_triggered_crash():
    ref = reference_residual()
    job = run_hpccg_with_crash(lambda inj: inj.kill_at(0, 1, 0.0015))
    for lrank in range(2):
        for info in job.manager.alive_replicas(lrank):
            assert info.app_process.value.value[0] == pytest.approx(
                ref, rel=1e-12)


def test_hpccg_intra_survives_section_hook_crash():
    ref = reference_residual()
    job = run_hpccg_with_crash(
        lambda inj: inj.kill_on_hook(
            1, 0, "update_injected",
            when=lambda section, **kw: section == 7))
    survivor = job.manager.alive_replicas(1)[0]
    assert survivor.app_process.value.value[0] == pytest.approx(
        ref, rel=1e-12)
    assert survivor.ctx.intra.stats.recoveries >= 1


def test_hpccg_intra_survives_two_crashes_different_ranks():
    ref = reference_residual()

    def kills(inj):
        inj.kill_at(0, 0, 0.001)
        inj.kill_at(1, 1, 0.002)

    job = run_hpccg_with_crash(kills)
    for lrank in range(2):
        live = job.manager.alive_replicas(lrank)
        assert len(live) == 1
        assert live[0].app_process.value.value[0] == pytest.approx(
            ref, rel=1e-12)


def test_crashed_run_takes_longer_than_clean_run():
    """After a crash the survivor executes all tasks alone: the run
    degrades toward SDR speed (the §VI observation that motivates fast
    replica restart)."""
    world = make_world()
    clean = launch_intra_job(world, hpccg_program, 2, args=(CFG,))
    world.run()
    t_clean = world.sim.now

    job = run_hpccg_with_crash(lambda inj: inj.kill_at(0, 1, 1e-4))
    t_crashed = job.world.sim.now
    assert t_crashed > t_clean


def test_full_stack_determinism():
    """Two identical runs produce identical virtual times and results —
    the property every reproduction experiment rests on."""
    outcomes = []
    for _ in range(2):
        world = make_world()
        job = launch_intra_job(world, hpccg_program, 2, args=(CFG,))
        inj = FailureInjector(job.manager)
        inj.kill_at(1, 0, 0.0012)
        world.run()
        survivor = job.manager.alive_replicas(1)[0]
        outcomes.append((world.sim.now,
                         survivor.app_process.value.value[0],
                         survivor.ctx.intra.stats.tasks_reexecuted))
    assert outcomes[0] == outcomes[1]


def test_gtc_intra_crash_preserves_physics():
    cfg = GtcConfig(particles_per_rank=512, cells_per_rank=16, steps=3)
    world = make_world()
    native = launch_mode("native", world, gtc_program, 2, args=(cfg,))
    world.run()
    ref = [r.value for r in native.results()]

    world2 = make_world()
    job = launch_intra_job(world2, gtc_program, 2, fd_delay=20e-6,
                           args=(cfg,))
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 0, "task_executed",
                     when=lambda section, **kw: section == 2)
    world2.run()
    for lrank in range(2):
        for info in job.manager.alive_replicas(lrank):
            got = info.app_process.value.value
            assert got == pytest.approx(ref[lrank], rel=1e-9)


def test_network_traffic_accounting():
    """The replicated run moves strictly more bytes than native (update
    traffic), and intra moves more than SDR (which ships no updates)."""
    def traffic(mode):
        world = make_world()
        launch_mode(mode, world, hpccg_program, 2, args=(CFG,))
        world.run()
        return world.network.bytes_sent

    native, sdr, intra = (traffic(m) for m in ("native", "sdr", "intra"))
    assert sdr >= native            # mirrored messages across planes
    assert intra > sdr              # plus update exchanges
