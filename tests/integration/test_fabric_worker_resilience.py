"""The fabric's headline resilience scenario, end to end: a *real*
worker process is SIGKILLed mid-lease, the lease expires, the point is
re-run exactly once by a second worker, and the final results are
byte-identical to a clean serial run.

The first worker is a genuine ``python -m repro.fabric.worker``
subprocess (the production daemon entry point), so the kill exercises
the whole lease/expiry path — not a mock."""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.apps.hpccg import KernelBenchConfig
from repro.fabric import Fabric
from repro.fabric.worker import run_worker
from repro.scenarios import Scenario

# slow enough (~1.8 s of real simulation) that SIGKILL reliably lands
# mid-lease
SLOW = Scenario(app="hpccg_kernels",
                config=KernelBenchConfig(nx=24, ny=24, nz=24, reps=600),
                n_logical=2, mode="native")

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _spawn_worker(root, lease_s):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.fabric.worker",
         "--root", str(root), "--backend", "sqlite",
         "--lease", str(lease_s), "--poll", "0.02", "--quiet"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait_for_state(queue, key, state, timeout=30.0):
    deadline = time.monotonic() + timeout   # detlint: ignore[DET003] -- test harness wait budget
    while time.monotonic() < deadline:      # detlint: ignore[DET003] -- test harness wait budget
        item = queue.get(key)
        if item is not None and item.state == state:
            return item
        time.sleep(0.01)
    pytest.fail(f"queue item never reached state {state!r}")


def test_sigkilled_worker_mid_lease_point_reruns_once(tmp_path):
    fabric_root = tmp_path / "fabric"
    with Fabric(fabric_root, backend="sqlite", poll=0.02) as fab:
        key = fab.enqueue_scenario(SLOW)

        # worker 1 leases the point... and dies mid-simulation
        proc = _spawn_worker(fabric_root, lease_s=1.0)
        try:
            _wait_for_state(fab.queue, key, "leased")
            time.sleep(0.1)   # well inside the ~1.8 s compute
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert fab.load_result(key) is None        # it never finished

        # worker 2 (in-process): the expired lease is charged one
        # worker-lost attempt, then the point re-runs to completion
        assert run_worker(fab, max_points=1) == 1
        item = fab.queue.get(key)
        assert item.state == "done"
        assert item.worker_lost == 1               # exactly one loss
        assert item.attempts == 2                  # lost + successful
        assert item.error is None

        # the recovered payload is byte-identical to a clean serial run
        from repro.fabric.store import set_cache_backend
        serial_dir = tmp_path / "serial"
        before = set_cache_backend("file")   # the .pkl oracle layout
        try:
            serial = repro.run(SLOW, cache=True, cache_dir=serial_dir)
            assert key == serial.cache_key
            serial_bytes = (serial_dir / key[:2]
                            / f"{key}.pkl").read_bytes()
            assert fab.store.get(key) == serial_bytes

            # and the warm fabric sweep equals a warm serial sweep,
            # JSON for JSON
            warm_serial = repro.sweep([SLOW], cache=True,
                                      cache_dir=serial_dir)
        finally:
            set_cache_backend(before)
        warm_fabric = repro.sweep([SLOW], fabric=fab, timeout=10)
        assert warm_fabric.to_json() == warm_serial.to_json()
