"""Partial-replication model ([18] of the paper's §II)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (mnfti_degree2, mnfti_partial,
                            partial_replication_efficiency,
                            partial_replication_sweep)


def test_no_replication_dies_on_first_failure():
    assert mnfti_partial(0, 100) == 1.0


def test_full_replication_matches_degree2_model():
    for n in (1, 5, 100, 1000):
        assert mnfti_partial(n, 0) == pytest.approx(mnfti_degree2(n))


def test_single_pair_plus_singletons():
    # r=1, u=1: 3 live procs; interrupt prob first failure = 1/3
    # E_0 = 1 + (2/3)*E_1 ; E_1 (pair damaged): live=2, p=2/2=1 -> E=1
    assert mnfti_partial(1, 1) == pytest.approx(1 + 2 / 3)


@given(r=st.integers(0, 300), u=st.integers(0, 300))
def test_property_mnfti_bounds(r, u):
    if r + u == 0:
        return
    e = mnfti_partial(r, u)
    assert 1.0 <= e <= r + 2.0
    if u > 0:
        # singletons can only make things worse than full replication
        assert e <= mnfti_partial(r + u, 0)


@given(r=st.integers(1, 200))
def test_property_more_replication_survives_longer(r):
    # moving one rank from unreplicated to replicated never hurts
    assert mnfti_partial(r, 10) >= mnfti_partial(r - 1, 11) - 1e-9


def test_random_partial_replication_does_not_pay_off():
    """The [18] result the paper cites: for random selection, every
    interior fraction is dominated by one of the endpoints."""
    for n, mtbf_years in ((10_000, 5.0), (100_000, 5.0),
                          (1_000_000, 5.0)):
        rows = partial_replication_sweep(
            n, mtbf_years * 365 * 24 * 3600, 900.0, 900.0,
            fractions=(0.0, 0.25, 0.5, 0.75, 1.0))
        eff = dict(rows)
        best_endpoint = max(eff[0.0], eff[1.0])
        for frac in (0.25, 0.5, 0.75):
            assert eff[frac] <= best_endpoint + 1e-9, (n, frac)


def test_efficiency_cap_scales_with_fraction():
    # failure-free limit: cap = 1 / (1 + fraction)
    e = partial_replication_efficiency(1000, 0.5, 1e18, 1.0, 1.0)
    assert e == pytest.approx(1 / 1.5, rel=1e-3)


def test_validation():
    with pytest.raises(ValueError):
        mnfti_partial(0, 0)
    with pytest.raises(ValueError):
        partial_replication_efficiency(10, 1.5, 1e6, 1, 1)
    with pytest.raises(ValueError):
        partial_replication_efficiency(0, 0.5, 1e6, 1, 1)
