"""The determinism linter's own test wall: rule detection on fixture
files (including the minimized PR 8 set-iteration bug), suppression
semantics, baseline round-trips and CLI exit codes."""

import json
import pathlib
import textwrap

import pytest

from repro.analysis.lint import (ALL_RULES, Baseline, lint_file,
                                 lint_paths, lint_source,
                                 load_baseline, main, write_baseline)
from repro.analysis.lint.baseline import diff_against_baseline

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "detlint"


def rules_of(findings):
    return sorted({f.rule for f in findings})


def lint_fixture(name, relpath=None):
    return lint_file(str(FIXTURES / name),
                     relpath=relpath or f"simulate/{name}")


# ----------------------------------------------------------- fixtures
def test_pr8_set_iteration_bug_is_flagged():
    """The exact defect class the differential harness caught at
    runtime in PR 8 must be caught statically: kill-order iteration
    over a set of identity-hashed Process objects."""
    findings = lint_fixture("bad_pr8_set_iteration.py")
    det001 = [f for f in findings if f.rule == "DET001"]
    assert det001, "DET001 must flag the kill loop"
    assert any("self.victims" in f.message for f in det001)
    assert any("for proc in self.victims" in f.source_line
               for f in det001)


def test_known_bad_fixture_trips_every_rule_family():
    findings = lint_fixture("bad_all_rules.py")
    assert rules_of(findings) == sorted(ALL_RULES)
    # two DET001 shapes: list() materialization and set.pop()
    det001 = [f for f in findings if f.rule == "DET001"]
    assert len(det001) == 2


def test_known_good_fixture_is_clean():
    assert lint_fixture("good_clean.py") == []


def test_fixture_findings_carry_fixits_and_positions():
    for finding in lint_fixture("bad_all_rules.py"):
        assert finding.line > 0
        assert finding.fixit  # every rule documents its remedy
        assert finding.rule in finding.render()


# ------------------------------------------------- rule unit behaviour
def test_det001_layers_do_not_gate_but_det002_does():
    """DET001 applies everywhere; DET002 only in the event-ordering
    layers (simulate/replication/mpi/intra)."""
    src = "order = sorted(stuff, key=id)\nbad = list({1, 2})\n"
    everywhere = lint_source(src, "kernels/somefile.py")
    layered = lint_source(src, "simulate/somefile.py")
    assert rules_of(everywhere) == ["DET001"]
    assert rules_of(layered) == ["DET001", "DET002"]


def test_det003_exempts_perf_timing_code():
    src = "import time\nt0 = time.perf_counter()\n"
    assert rules_of(lint_source(src, "scenarios/x.py")) == ["DET003"]
    assert lint_source(src, "perf/x.py") == []
    assert lint_source(src, "benchmarks/x.py") == []


def test_det003_seeded_randomness_is_allowed():
    src = textwrap.dedent("""\
        import random
        import numpy as np
        rng = random.Random(7)
        gen = np.random.default_rng(7)
        value = rng.random() + gen.standard_normal()
        """)
    assert lint_source(src, "scenarios/x.py") == []


def test_det003_numpy_global_state_is_flagged():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert rules_of(lint_source(src, "scenarios/x.py")) == ["DET003"]
    unseeded = "import numpy as np\ng = np.random.default_rng()\n"
    assert rules_of(lint_source(unseeded,
                                "scenarios/x.py")) == ["DET003"]


def test_env001_only_envflags_may_read_environ():
    src = "import os\nflag = os.environ.get('X', '')\n"
    assert rules_of(lint_source(src, "anymodule.py")) == ["ENV001"]
    assert lint_source(src, "_envflags.py") == []
    getenv = "import os\nflag = os.getenv('X')\n"
    assert rules_of(lint_source(getenv, "anymodule.py")) == ["ENV001"]


def test_orc001_oracle_docstring_satisfies_the_rule():
    toggle = textwrap.dedent("""\
        FLAG = True
        def set_flag(v):
            {doc}global FLAG
            prev = FLAG
            FLAG = bool(v)
            return prev
        """)
    bare = toggle.format(doc="")
    documented = toggle.format(
        doc='"""Falls back to the bit-exact oracle loop."""\n    ')
    assert rules_of(lint_source(bare, "m.py")) == ["ORC001"]
    assert lint_source(documented, "m.py") == []


def test_det001_sorted_wrapping_is_the_documented_remedy():
    assert lint_source("for x in sorted({3, 1}):\n    pass\n",
                       "m.py") == []
    flagged = lint_source("for x in {3, 1}:\n    pass\n", "m.py")
    assert rules_of(flagged) == ["DET001"]


# ---------------------------------------------------------- suppression
def test_justified_suppression_silences_the_finding():
    src = ("bad = list({1, 2})  "
           "# detlint: ignore[DET001] -- test fixture, order unused\n")
    assert lint_source(src, "m.py") == []


def test_unjustified_suppression_does_not_suppress():
    src = "bad = list({1, 2})  # detlint: ignore[DET001]\n"
    findings = lint_source(src, "m.py")
    assert rules_of(findings) == ["DET001"]
    assert "justification" in findings[0].message


def test_suppression_is_rule_specific():
    src = ("bad = list({1, 2})  "
           "# detlint: ignore[ENV001] -- wrong rule cited\n")
    assert rules_of(lint_source(src, "m.py")) == ["DET001"]


def test_comment_line_suppression_covers_the_statement_below():
    src = textwrap.dedent("""\
        # detlint: ignore[DET001] -- the justification can span
        # several comment lines above a long statement
        bad = list({1, 2})
        """)
    assert lint_source(src, "m.py") == []


# ------------------------------------------------------------- baseline
def test_baseline_round_trip(tmp_path):
    findings = lint_fixture("bad_all_rules.py")
    path = tmp_path / "baseline.json"
    write_baseline(str(path), Baseline.from_findings(findings))
    loaded = load_baseline(str(path))
    new, stale = diff_against_baseline(findings, loaded)
    assert new == [] and stale == []
    # the file is stable: load -> write -> identical bytes
    before = path.read_bytes()
    write_baseline(str(path), loaded)
    assert path.read_bytes() == before


def test_baseline_blocks_only_new_findings(tmp_path):
    findings = lint_fixture("bad_all_rules.py")
    baseline = Baseline.from_findings(findings[:-1])
    new, stale = diff_against_baseline(findings, baseline)
    assert new == [findings[-1]]
    assert stale == []


def test_baseline_reports_fixed_findings_as_stale():
    findings = lint_fixture("bad_all_rules.py")
    baseline = Baseline.from_findings(findings)
    new, stale = diff_against_baseline(findings[:-1], baseline)
    assert new == []
    assert stale == [findings[-1].fingerprint()]


def test_fingerprints_survive_line_drift():
    src = "bad = list({1, 2})\n"
    shifted = "\n\n# a comment\n" + src
    (a,) = lint_source(src, "m.py")
    (b,) = lint_source(shifted, "m.py")
    assert a.line != b.line
    assert a.fingerprint() == b.fingerprint()


# ------------------------------------------------------------------ CLI
def test_cli_exits_nonzero_on_the_pr8_fixture(tmp_path, capsys):
    rc = main([str(FIXTURES / "bad_pr8_set_iteration.py"),
               "--no-baseline", "--root", str(FIXTURES)])
    assert rc == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_exits_zero_on_clean_input(tmp_path, capsys):
    rc = main([str(FIXTURES / "good_clean.py"), "--no-baseline",
               "--root", str(FIXTURES)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out


def test_cli_update_baseline_then_clean_exit(tmp_path, capsys):
    baseline = tmp_path / "b.json"
    target = str(FIXTURES / "bad_all_rules.py")
    common = [target, "--baseline", str(baseline),
              "--root", str(FIXTURES)]
    assert main(common) == 1                       # findings, no baseline
    assert main(common + ["--update-baseline"]) == 0
    assert json.loads(baseline.read_text())["findings"]
    assert main(common) == 0                       # baseline-only: clean
    capsys.readouterr()


def test_cli_json_format_is_machine_readable(capsys):
    rc = main([str(FIXTURES / "bad_pr8_set_iteration.py"),
               "--no-baseline", "--format", "json",
               "--root", str(FIXTURES)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert any(f["rule"] == "DET001" for f in payload)
    assert all({"path", "line", "message", "fixit",
                "fingerprint"} <= set(f) for f in payload)


def test_cli_rule_filter(capsys):
    rc = main([str(FIXTURES / "bad_all_rules.py"), "--no-baseline",
               "--rule", "ENV001", "--root", str(FIXTURES)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "ENV001" in out and "DET001" not in out


# ------------------------------------------------- the repo's own state
def test_src_repro_is_lint_clean_against_the_checked_in_baseline():
    """The acceptance invariant: `make lint` exits 0 on the repo, and
    the ENV001 baseline is empty (all raw environ reads are routed
    through repro._envflags)."""
    root = pathlib.Path(__file__).resolve().parents[2]
    findings = lint_paths([str(root / "src" / "repro")],
                          root=str(root))
    baseline = load_baseline(str(root / "tools"
                                 / "detlint_baseline.json"))
    new, _stale = diff_against_baseline(findings, baseline)
    assert new == [], "\n".join(f.render() for f in new)
    assert not any(f.rule == "ENV001" for f in findings), \
        "ENV001 must stay fixed, not baselined"


def test_fixture_paths_note():
    """Fixtures are linted under synthetic relpaths (`simulate/...`)
    so the layer-gated rules apply; keep that invariant explicit."""
    with pytest.raises(AssertionError):
        assert rules_of(lint_fixture("bad_all_rules.py",
                                     relpath="unlayered.py")) \
            == sorted(ALL_RULES)
