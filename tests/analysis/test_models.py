"""Analytic model tests: efficiency metric, Daly cCR, MNFTI."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (ccr_efficiency, daly_interval,
                            doubled_resource_efficiency,
                            expected_segment_time,
                            fixed_resource_efficiency, mean,
                            mnfti_degree2, normalized_time,
                            plain_ccr_efficiency,
                            replicated_ccr_efficiency, replication_mtti,
                            workload_efficiency, young_interval)


def test_efficiency_definitions():
    assert workload_efficiency(10.0, 20.0) == 0.5
    assert fixed_resource_efficiency(10.0, 20.0) == 0.5
    assert doubled_resource_efficiency(10.0, 10.0) == 0.5
    assert normalized_time(10.0, 25.0) == 2.5
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_efficiency_validation():
    with pytest.raises(ValueError):
        workload_efficiency(1.0, 0.0)
    with pytest.raises(ValueError):
        normalized_time(0.0, 1.0)
    with pytest.raises(ValueError):
        mean([])


def test_young_interval_formula():
    assert young_interval(60.0, 30000.0) == pytest.approx(
        math.sqrt(2 * 60 * 30000))


def test_daly_close_to_young_for_small_delta():
    M = 1e5
    d = 10.0
    assert daly_interval(d, M) == pytest.approx(young_interval(d, M),
                                                rel=0.05)


def test_expected_segment_time_failure_free_limit():
    # M -> inf: E[T] -> work
    assert expected_segment_time(100.0, 1e12, 10.0) == pytest.approx(
        100.0, rel=1e-6)


def test_ccr_efficiency_decreases_with_failures():
    e_good = ccr_efficiency(mtbf=1e6, checkpoint_cost=60, restart_cost=60)
    e_bad = ccr_efficiency(mtbf=1e3, checkpoint_cost=60, restart_cost=60)
    assert 0 < e_bad < e_good < 1


def test_ccr_can_drop_below_half():
    """The paper's §II motivation: at exascale-like MTBF and PFS-scale
    checkpoint costs, cCR efficiency falls below 50%."""
    e = ccr_efficiency(mtbf=600.0, checkpoint_cost=300.0,
                       restart_cost=300.0)
    assert e < 0.5


def test_mnfti_small_cases():
    # N=1: two replicas; first failure damages, second kills: E = 2 - ...
    # exact: E_0 = 1 + (1 - 0/2) * E_1 ; E_1 = 1 (j=1 of 1: next failure
    # must hit the survivor).  So E_0 = 2.
    assert mnfti_degree2(1) == pytest.approx(2.0)
    assert mnfti_degree2(2) > mnfti_degree2(1)


def test_mnfti_grows_sublinearly_like_sqrt():
    """[16]: the mean number of failures to interruption grows ~ sqrt(N)
    — large even at scale."""
    e100 = mnfti_degree2(100)
    e10000 = mnfti_degree2(10000)
    ratio = e10000 / e100
    assert 8.0 < ratio < 12.0  # sqrt(100) = 10


def test_replication_mtti_much_larger_than_system_mtbf():
    n = 10000
    node_mtbf = 5 * 365 * 24 * 3600.0  # 5 years per node
    system_mtbf = node_mtbf / (2 * n)
    assert replication_mtti(n, node_mtbf) > 50 * system_mtbf


def test_replication_beats_ccr_at_low_mtbf():
    """The crossover the paper leans on: replicated cCR ≈ 0.5 while
    plain cCR degrades below it when failures are frequent."""
    n = 100000
    node_mtbf = 2 * 365 * 24 * 3600.0
    delta, restart = 1800.0, 1800.0  # PFS-scale checkpoints
    e_plain = plain_ccr_efficiency(n, node_mtbf, delta, restart)
    e_repl = replicated_ccr_efficiency(n // 2, node_mtbf, delta, restart)
    assert e_plain < 0.5
    assert e_repl > e_plain
    assert e_repl <= 0.5


def test_replication_loses_at_high_mtbf():
    """With rare failures plain cCR approaches 1.0 and replication's 50%
    cap makes it unattractive — the other side of the crossover."""
    n = 100
    node_mtbf = 30 * 365 * 24 * 3600.0
    e_plain = plain_ccr_efficiency(n, node_mtbf, 60.0, 60.0)
    e_repl = replicated_ccr_efficiency(n // 2, node_mtbf, 60.0, 60.0)
    assert e_plain > 0.9
    assert e_repl < 0.51


@given(st.integers(1, 2000))
def test_property_mnfti_bounds(n):
    e = mnfti_degree2(n)
    # at least 2 failures (one per replica of some rank), at most 1 + N
    # (every rank damaged once) + 1
    assert 2.0 <= e <= n + 2.0


def test_model_input_validation():
    with pytest.raises(ValueError):
        young_interval(-1, 10)
    with pytest.raises(ValueError):
        ccr_efficiency(0, 1, 1)
    with pytest.raises(ValueError):
        mnfti_degree2(0)
    with pytest.raises(NotImplementedError):
        replication_mtti(10, 1e5, degree=3)
