"""Reporting helpers (table formatting)."""

from repro.analysis import efficiency_label, format_table


def test_format_table_basic():
    out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.123456]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "-+-" in lines[1]
    assert "2.50" in out
    assert "0.123" in out


def test_format_table_title_and_widths():
    out = format_table(["mode"], [["Open MPI"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert len(lines[1]) == len(lines[2]) == len("Open MPI")


def test_format_table_float_ranges():
    out = format_table(["v"], [[1234.5678], [12.345], [0.00123], [0]])
    assert "1234.6" in out
    assert "12.35" in out
    assert "0.001" in out
    assert "\n0" in out


def test_format_table_empty_rows():
    out = format_table(["h1", "h2"], [])
    assert "h1" in out


def test_efficiency_label():
    assert efficiency_label(0.3412) == "0.34"
    assert efficiency_label(0.999) == "1.00"
