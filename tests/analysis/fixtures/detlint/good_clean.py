"""Known-good fixture: every set/rng/clock use follows the repo's
determinism discipline — detlint must report zero findings here."""

import random


def aggregate(groups):
    seen = set()
    for name in sorted(groups):               # sorted(): order-free
        if name in seen:                      # membership: order-free
            continue
        seen.add(name)
    labels = {g for g in groups if g}         # set -> set: order-free
    count = len(labels)                       # len(): order-free
    lowest = min(labels) if labels else None  # min(): order-free
    return sorted(x * 2 for x in labels), count, lowest


def draw_victims(candidates, seed, k):
    rng = random.Random(seed)                 # seeded instance: fine
    pool = sorted(set(candidates))            # canonical order first
    return [pool[rng.randrange(len(pool))] for _ in range(k)]


ACTIVE = True


def set_active(enabled):
    """Toggle the fast path; ``False`` falls back to the bit-exact
    oracle loop (proven identical by the golden-trace tests)."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = bool(enabled)
    return prev
