"""Minimized reconstruction of the PR 8 nondeterminism: the failure
injector iterated a ``set`` of identity-hashed ``Process`` objects to
deliver same-timestamp kills, so the *kill order* — and through a
kill/resource-grant race, a NIC slot leak — depended on the process
hash seed.  DET001 must flag the iteration (this fixture is what
``make lint``'s self-test gates on).
"""


class Process:
    def __init__(self, name):
        self.name = name

    def kill(self, reason="killed"):
        pass


class FailureInjector:
    def __init__(self):
        self.victims = set()

    def register(self, proc):
        self.victims.add(proc)

    def deliver_kills(self):
        # BUG: set iteration order is the kill order (DET001)
        for proc in self.victims:
            proc.kill("crash injected")
