"""Known-bad fixture: at least one finding per rule family (linted
under a synthetic ``simulate/`` path so the layer-scoped rules apply).
"""

import os
import random
import time

FAST_PATH = True


def set_fast_path(enabled):
    # ORC001: fast-path toggle, no oracle fallback documented
    global FAST_PATH
    prev = FAST_PATH
    FAST_PATH = bool(enabled)
    return prev


def consume(items):
    pending = set(items)
    ordered = list(pending)            # DET001: list() over a set
    first = pending.pop()              # DET001: set.pop()
    ranked = sorted(items, key=id)     # DET002: id as sort key
    token = hash(object())             # DET002: object hash
    draw = random.random()             # DET003: unseeded global rng
    t0 = time.perf_counter()           # DET003: wall clock
    debug = os.environ.get("DEBUG")    # ENV001: raw environ read
    return ordered, first, ranked, token, draw, t0, debug
