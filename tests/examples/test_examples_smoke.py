"""Example tests: every examples/*.py script runs end-to-end at tiny
sizes through the :mod:`repro.api` facade and hands back *structured*
results — ``main(tiny=True)`` returns a
:class:`~repro.results.ResultSet`, so the suite asserts on real
:class:`~repro.results.RunResult` fields instead of just exit status
and stdout."""

import importlib.util
import pathlib
import sys

import pytest

from repro.results import ResultSet, RunResult, payload_equal

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    """Import an example script as a module (examples/ is not a
    package); registering it in sys.modules lets scenario app
    references like ``"<name>:program"`` resolve."""
    spec = importlib.util.spec_from_file_location(
        name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


def test_example_set_is_what_we_expect():
    assert EXAMPLES == ["exascale_model", "failure_injection", "gtc_pic",
                       "hpccg_modes", "quickstart", "replica_restart"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_returns_structured_results(name, capsys):
    module = _load(name)
    try:
        assert hasattr(module, "main"), f"{name}.py must define main()"
        results = module.main(tiny=True)
        out = capsys.readouterr().out
        assert out.strip(), f"{name}.py printed nothing"

        # every example routes through the facade and returns the
        # ResultSet it computed
        assert isinstance(results, ResultSet), \
            f"{name}.main(tiny=True) must return a ResultSet"
        assert len(results) > 0
        for run in results:
            assert isinstance(run, RunResult)
            assert run.mode in ("native", "sdr", "intra")
            assert run.wall_time > 0
            assert run.scenario.mode == run.mode
            # lossless JSON round-trip, numpy payloads included
            twin = RunResult.from_json(run.to_json())
            assert payload_equal(twin.value, run.value)
            assert twin == run
    finally:
        sys.modules.pop(name, None)
