"""Smoke tests: every examples/*.py script imports and runs end-to-end
at tiny sizes (each exposes ``main(tiny=True)`` for exactly this)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    """Import an example script as a module (examples/ is not a
    package); registering it in sys.modules lets scenario app
    references like ``"<name>:program"`` resolve."""
    spec = importlib.util.spec_from_file_location(
        name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(name, None)
        raise
    return module


def test_example_set_is_what_we_expect():
    assert EXAMPLES == ["exascale_model", "failure_injection", "gtc_pic",
                       "hpccg_modes", "quickstart", "replica_restart"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_tiny(name, capsys):
    module = _load(name)
    try:
        assert hasattr(module, "main"), f"{name}.py must define main()"
        module.main(tiny=True)
        out = capsys.readouterr().out
        assert out.strip(), f"{name}.py printed nothing"
    finally:
        sys.modules.pop(name, None)
