"""CLI over the generated-grid namespace: listing, running, inline
scenarios, and the did-you-mean path for mistyped grid points."""

import json

import pytest

import repro.experiments  # noqa: F401  (registers scenarios + grids)
from repro.experiments.__main__ import main
from repro.scenarios import Scenario, get_scenario, grid_entries


@pytest.fixture(autouse=True)
def _sandbox(sandbox_perf_config):
    yield


# ------------------------------------------------------------- listing
def test_cli_list_shows_grid_family_summaries(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "generated grids (" in out
    for family in grid_entries():
        assert family.summary() in out
        assert f"{family.size:6d} points" in out
    # families list as one row each — points never materialize
    assert "kind=poisson" not in out


def test_cli_list_tag_grid_selects_only_families(capsys):
    assert main(["list", "--tag", "grid"]) == 0
    out = capsys.readouterr().out
    assert "registered scenarios (0):" in out
    assert "grid:failures/" in out


def test_cli_list_point_pattern_expands_one_family(capsys):
    assert main(["list", "grid:restart/*policy=none*seed=7"]) == 0
    out = capsys.readouterr().out
    assert "generated grid points (2):" in out
    assert "grid:restart/storm=cascade,policy=none,seed=7" in out
    assert "grid:restart/storm=maintenance,policy=none,seed=7" in out


def test_cli_list_grid_pattern_matching_nothing_exits_2(capsys):
    assert main(["list", "grid:restart/*policy=nothere*"]) == 2
    assert "matches no experiment, scenario or grid name" \
        in capsys.readouterr().err


def test_cli_list_format_json_has_grid_entries(capsys):
    assert main(["list", "grid:*", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    grids = [r for r in rows if r["kind"] == "grid"]
    assert {g["name"] for g in grids} == {
        f"grid:{f.name}" for f in grid_entries()}
    for g in grids:
        assert g["points"] >= 1 and g["axes"] and g["description"]


def test_cli_list_format_json_point_rows_carry_the_scenario(capsys):
    name = "grid:hpccg/mode=intra,n=2,nx=8"
    assert main(["list", "grid:hpccg/*n=2,nx=8", "--format",
                 "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    points = [r for r in rows if r["kind"] == "scenario"]
    assert any(r["name"] == name
               and r["scenario"] == get_scenario(name).to_dict()
               for r in points)


# ------------------------------------------------------------- running
def test_cli_runs_a_grid_point(capsys):
    name = "grid:hpccg/mode=native,n=2,nx=8"
    assert main(["run", name]) == 0
    out = capsys.readouterr().out
    assert name in out and "wall time (ms)" in out


def test_cli_runs_a_grid_point_with_overrides_as_result_set(capsys):
    name = "grid:hpccg/mode=intra,n=2,nx=8"
    assert main(["run", name, "--set", "fd_delay=0.0002",
                 "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[0]["scenario"]["fd_delay"] == 2e-4


# --------------------------------------------- did-you-mean regression
def test_cli_unknown_grid_point_exits_2_with_exact_correction(capsys):
    assert main(["run",
                 "grid:failures/kind=possion,seed=3,fd=5e-05"]) == 2
    err = capsys.readouterr().err
    assert "did you mean: grid:failures/kind=poisson,seed=3,fd=5e-05?" \
        in err
    # the suggestion is itself addressable
    get_scenario("grid:failures/kind=poisson,seed=3,fd=5e-05")


def test_cli_unknown_grid_family_exits_2_with_candidate_point(capsys):
    assert main(["run", "grid:restrat/storm=cascade"]) == 2
    err = capsys.readouterr().err
    assert "error: unknown experiment or scenario" in err
    assert "grid:restart/" in err


def test_cli_unknown_grid_point_structured_path_also_suggests(capsys):
    assert main(["run", "grid:hpccg/mode=intra,n=2,nx=12",
                 "--format", "json"]) == 2
    err = capsys.readouterr().err
    assert "did you mean: " in err and "grid:hpccg/" in err


# ------------------------------------------------------ --scenario-json
def test_cli_scenario_json_runs_an_inline_scenario(capsys):
    s = get_scenario("grid:hpccg/mode=intra,n=2,nx=8")
    assert main(["run", "--scenario-json", s.to_json(),
                 "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert Scenario.from_dict(rows[0]["scenario"]) == s


def test_cli_scenario_json_applies_set_overrides(capsys):
    s = get_scenario("grid:hpccg/mode=intra,n=2,nx=8")
    assert main(["run", "--scenario-json", s.to_json(),
                 "--set", "mode=native", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[0]["scenario"]["mode"] == "native"


def test_cli_scenario_json_table_output(capsys):
    s = get_scenario("grid:hpccg/mode=native,n=2,nx=8")
    assert main(["run", "--scenario-json", s.to_json()]) == 0
    out = capsys.readouterr().out
    assert "inline —" in out and "wall time (ms)" in out


def test_cli_scenario_json_rejects_invalid_payload(capsys):
    assert main(["run", "--scenario-json", "{not json"]) == 2
    assert "invalid --scenario-json" in capsys.readouterr().err


def test_cli_scenario_json_rejects_extra_names(capsys):
    assert main(["run", "fig5a", "--scenario-json", "{}"]) == 2
    assert "replaces the scenario name" in capsys.readouterr().err


def test_cli_scenario_json_rejected_for_list(capsys):
    assert main(["list", "--scenario-json", "{}"]) == 2
    assert "does not apply to list" in capsys.readouterr().err
