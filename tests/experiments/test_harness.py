"""Experiment-harness tests on deliberately tiny configurations (the
benchmarks run the full-size versions)."""

import pytest

from repro.apps.hpccg import KernelBenchConfig
from repro.apps.minighost import MiniGhostConfig
from repro.experiments import (ccr_vs_replication, crossover_point,
                               fig5a, fig5b, fig6d, nodes_for, run_mode,
                               three_mode_rows)
from repro.apps.hpccg import hpccg_kernel_bench
from repro.netmodel import GRID5000_MACHINE


SMALL_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)


def test_nodes_for_each_mode():
    assert nodes_for("native", 8, GRID5000_MACHINE) == 2
    assert nodes_for("sdr", 8, GRID5000_MACHINE, degree=2) == 4
    assert nodes_for("intra", 8, GRID5000_MACHINE, degree=2,
                     spread=2) == 6
    assert nodes_for("native", 1, GRID5000_MACHINE) == 1


def test_run_mode_aggregates():
    run = run_mode("native", hpccg_kernel_bench, 4, SMALL_KB)
    assert run.mode == "native"
    assert run.wall_time > 0
    assert {"waxpby", "ddot", "spmv"} <= set(run.timers)
    assert run.intra["tasks_executed"] > 0


def test_run_mode_replicated_uses_replica_zero():
    run = run_mode("intra", hpccg_kernel_bench, 4, SMALL_KB)
    assert run.intra["update_msgs_sent"] > 0
    assert run.wall_time > 0


def test_three_mode_rows_conventions():
    native = run_mode("native", hpccg_kernel_bench, 4, SMALL_KB)
    sdr = run_mode("sdr", hpccg_kernel_bench, 4,
                   SMALL_KB.with_doubled_z())
    intra = run_mode("intra", hpccg_kernel_bench, 4,
                     SMALL_KB.with_doubled_z())
    rows = three_mode_rows(native, sdr, intra, convention="fixed")
    assert [r["mode"] for r in rows] == ["Open MPI", "SDR-MPI", "intra"]
    assert rows[0]["efficiency"] == 1.0
    assert 0.4 < rows[1]["efficiency"] < 0.6
    rows_d = three_mode_rows(native, sdr, intra, convention="doubled")
    assert rows_d[1]["efficiency"] == pytest.approx(
        rows[1]["efficiency"] / 2)


def test_fig5a_tiny_has_expected_structure():
    rows = fig5a(n_logical=4, base=SMALL_KB)
    assert len(rows) == 9  # 3 kernels x 3 modes
    kernels = {r.kernel for r in rows}
    assert kernels == {"waxpby", "ddot", "sparsemv"}
    for r in rows:
        if r.mode == "Open MPI":
            assert r.efficiency == 1.0


def test_fig5b_rejects_odd_process_counts():
    with pytest.raises(ValueError):
        fig5b(process_counts=(7,))


def test_fig6d_tiny():
    rows = fig6d(n_logical=4,
                 config=MiniGhostConfig(nx=8, ny=8, nz=4, steps=2))
    by = {r.mode: r for r in rows}
    assert by["Open MPI"].efficiency == 1.0
    assert abs(by["SDR-MPI"].efficiency - 0.5) < 0.1


def test_background_rows_monotone():
    rows = ccr_vs_replication(proc_counts=(100, 10_000, 1_000_000))
    assert rows[0].ccr_efficiency > rows[-1].ccr_efficiency
    assert all(0 <= r.replication_efficiency <= 0.5 for r in rows)


def test_crossover_none_when_ccr_always_wins():
    rows = ccr_vs_replication(proc_counts=(10, 100),
                              node_mtbf_years=100.0,
                              checkpoint_minutes=0.1,
                              restart_minutes=0.1)
    assert crossover_point(rows) is None
