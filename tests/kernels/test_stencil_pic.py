"""Stencil and PIC kernel correctness."""

import numpy as np
import pytest

from repro.kernels import (apply_27pt, apply_27pt_matvec, apply_7pt,
                           charge_deposit, push_particles, solve_field,
                           split_range)


def test_27pt_average_of_constant_interior():
    g = np.ones((6, 6, 6))  # includes z halos
    out = np.zeros((6, 6, 4))
    apply_27pt(g, out)
    # interior cells away from x/y boundaries: average of 27 ones = 1
    np.testing.assert_allclose(out[2:-2, 2:-2, 1:-1], 1.0)
    # x/y boundary cells see zero padding: average < 1
    assert out[0, 0, 1] < 1.0


def test_27pt_matches_reference_loop():
    rng = np.random.default_rng(5)
    g = rng.standard_normal((4, 4, 5))
    out = np.zeros((4, 4, 3))
    apply_27pt(g, out)
    padded = np.zeros((6, 6, 5))
    padded[1:-1, 1:-1, :] = g
    for i in range(4):
        for j in range(4):
            for k in range(3):
                ref = padded[i:i + 3, j:j + 3, k:k + 3].sum() / 27.0
                assert out[i, j, k] == pytest.approx(ref)


def test_7pt_laplacian_of_linear_field_is_zero_in_interior():
    nx, ny, nz = 6, 6, 4
    x = np.arange(nx)[:, None, None]
    g = np.broadcast_to(x, (nx, ny, nz + 2)).astype(float).copy()
    out = np.zeros((nx, ny, nz))
    apply_7pt(g, out)
    # interior (not touching x/y boundary): 6c - sum(neighbours) = 0
    np.testing.assert_allclose(out[1:-1, 1:-1, 1:-1], 0.0, atol=1e-12)


def test_27pt_matvec_shape_checks():
    with pytest.raises(ValueError):
        apply_27pt_matvec(np.zeros((3, 3, 4)), np.zeros((3, 3, 3)))


def test_charge_deposit_conserves_charge():
    rng = np.random.default_rng(11)
    ngrid = 32
    pos = rng.uniform(0, ngrid, size=500)
    rho = np.zeros(ngrid)
    charge_deposit(pos, np.array([ngrid]), rho)
    assert rho.sum() == pytest.approx(500.0)
    assert (rho >= 0).all()


def test_charge_deposit_cic_weights():
    rho = np.zeros(8)
    charge_deposit(np.array([2.25]), np.array([8]), rho)
    assert rho[2] == pytest.approx(0.75)
    assert rho[3] == pytest.approx(0.25)


def test_charge_private_grids_compose():
    """Per-task private deposits sum to the full deposit — the property
    that makes charge intra-parallelizable."""
    rng = np.random.default_rng(13)
    ngrid = 16
    pos = rng.uniform(0, ngrid, size=400)
    full = np.zeros(ngrid)
    charge_deposit(pos, np.array([ngrid]), full)
    acc = np.zeros(ngrid)
    for sl in split_range(pos.size, 4):
        part = np.zeros(ngrid)
        charge_deposit(pos[sl], np.array([ngrid]), part)
        acc += part
    np.testing.assert_allclose(acc, full)


def test_push_advances_positions_periodically():
    pos = np.array([0.5, 15.9])
    vel = np.array([1.0, 1.0])
    efield = np.zeros(16)
    push_particles(efield, np.array([1.0]), pos, vel)
    np.testing.assert_allclose(pos, [1.5, 0.9], atol=1e-12)


def test_push_kick_uses_interpolated_field():
    pos = np.array([3.5])
    vel = np.array([0.0])
    efield = np.zeros(8)
    efield[3] = 2.0
    efield[4] = 4.0
    push_particles(efield, np.array([0.5]), pos, vel)
    # E at 3.5 = 3.0; dv = 1.5; dx = 0.75
    assert vel[0] == pytest.approx(1.5)
    assert pos[0] == pytest.approx(4.25)


def test_field_solve_zero_mean_and_shape():
    rng = np.random.default_rng(17)
    rho = rng.uniform(0, 2, size=64)
    e = np.zeros(64)
    solve_field(rho, e)
    assert e.shape == (64,)
    # periodic E field integrates to ~0
    assert abs(e.sum()) < 1e-8


def test_field_solve_sinusoidal_mode():
    """For rho = cos(kx), phi = cos(kx)/k^2 and E = sin(kx)/k."""
    n = 128
    xs = np.arange(n)
    k = 2 * np.pi / n
    rho = np.cos(k * xs)
    e = np.zeros(n)
    solve_field(rho, e)
    expect = np.sin(k * xs) / k
    np.testing.assert_allclose(e, expect, atol=1e-2 * abs(expect).max())
