"""27-point CSR operator: structure and spmv correctness vs scipy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.kernels import build_27pt, make_spmv_task, spmv_cost, spmv_rows
from repro.kernels.partition import split_blocks


def to_scipy(m):
    return sp.csr_matrix((m.val, m.col, m.row_ptr),
                         shape=(m.n_rows, m.padded_len))


def test_interior_row_has_27_nonzeros():
    m = build_27pt(5, 5, 5, has_lower=True, has_upper=True)
    # center cell (2,2,2): row = 2 + 5*2 + 25*2 = 62
    row = 62
    assert m.row_ptr[row + 1] - m.row_ptr[row] == 27


def test_corner_row_truncated():
    m = build_27pt(5, 5, 5, has_lower=False, has_upper=False)
    # corner (0,0,0): 2*2*2 = 8 legs survive
    assert m.row_ptr[1] - m.row_ptr[0] == 8


def test_diagonal_is_27():
    m = build_27pt(3, 3, 3, has_lower=False, has_upper=False)
    A = to_scipy(m)
    for r in range(m.n_rows):
        assert A[r, m.halo_lo + r] == 27.0


def test_halo_columns_present_with_neighbours():
    m = build_27pt(3, 3, 2, has_lower=True, has_upper=True)
    assert m.halo_lo == 9 and m.halo_hi == 9
    # row 0 (cell 0,0,0) should reference lower-halo columns [0, 9)
    cols0 = m.col[m.row_ptr[0]:m.row_ptr[1]]
    assert (cols0 < m.halo_lo).any()


@pytest.mark.parametrize("halo", [(False, False), (True, False),
                                  (False, True), (True, True)])
def test_spmv_rows_matches_scipy(halo):
    rng = np.random.default_rng(42)
    m = build_27pt(4, 3, 5, has_lower=halo[0], has_upper=halo[1])
    x = rng.standard_normal(m.padded_len)
    y = np.zeros(m.n_rows)
    spmv_rows(m, x, 0, m.n_rows, y)
    np.testing.assert_allclose(y, to_scipy(m) @ x, rtol=1e-12)


def test_spmv_row_blocks_compose():
    rng = np.random.default_rng(7)
    m = build_27pt(4, 4, 4, has_lower=True, has_upper=True)
    x = rng.standard_normal(m.padded_len)
    y = np.zeros(m.n_rows)
    for lo, hi in split_blocks(m.n_rows, 8):
        spmv_rows(m, x, lo, hi, y[lo:hi])
    np.testing.assert_allclose(y, to_scipy(m) @ x, rtol=1e-12)


def test_spmv_cost_tracks_nnz():
    m = build_27pt(4, 4, 4, has_lower=False, has_upper=False)
    flops, nbytes = spmv_cost(m, 0, m.n_rows)
    assert flops == 2.0 * m.nnz
    assert nbytes == 12.0 * m.nnz + 16.0 * m.n_rows
    # half the rows ~ roughly half the cost
    f2, _ = spmv_cost(m, 0, m.n_rows // 2)
    assert 0.3 * flops < f2 < 0.7 * flops


def test_make_spmv_task_binding():
    rng = np.random.default_rng(3)
    m = build_27pt(3, 3, 3, has_lower=False, has_upper=False)
    fn, cost = make_spmv_task(m)
    x = rng.standard_normal(m.padded_len)
    y = np.zeros(m.n_rows)
    bounds = np.array([0, m.n_rows], dtype=np.int64)
    fn(x, bounds, y)
    np.testing.assert_allclose(y, to_scipy(m) @ x, rtol=1e-12)
    flops, nbytes = cost(x, bounds, y)
    assert flops == 2.0 * m.nnz


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        build_27pt(0, 3, 3, False, False)
