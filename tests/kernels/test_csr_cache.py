"""CSR memoization: equal keys share one matrix, cached arrays are
immutable, and cache hits skip reconstruction."""

import numpy as np
import pytest

from repro.kernels import (build_27pt, build_7pt, build_stencil_csr,
                           clear_csr_cache, csr_cache_info,
                           set_csr_cache_enabled, spmv_rows)
from repro.kernels.spmv import OFFSETS_27, _build_stencil_arrays
from repro.kernels import spmv as spmv_mod


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_csr_cache()
    yield
    clear_csr_cache()


def test_equal_keys_return_equal_matrices():
    a = build_27pt(4, 4, 4, has_lower=True, has_upper=False)
    b = build_27pt(4, 4, 4, has_lower=True, has_upper=False)
    assert a is b  # memoized: the very same object
    fresh = _build_stencil_arrays(4, 4, 4, True, False,
                                  tuple(OFFSETS_27), 27.0, -1.0)
    np.testing.assert_array_equal(a.row_ptr, fresh.row_ptr)
    np.testing.assert_array_equal(a.col, fresh.col)
    np.testing.assert_array_equal(a.val, fresh.val)
    assert (a.n_rows, a.halo_lo, a.halo_hi) == (
        fresh.n_rows, fresh.halo_lo, fresh.halo_hi)


def test_distinct_keys_are_distinct_entries():
    a = build_27pt(4, 4, 4, has_lower=False, has_upper=False)
    b = build_27pt(4, 4, 4, has_lower=True, has_upper=False)
    c = build_7pt(4, 4, 4, has_lower=False, has_upper=False)
    assert a is not b
    assert a.nnz != c.nnz
    assert csr_cache_info()["size"] == 3


def test_cached_arrays_are_read_only():
    m = build_27pt(3, 3, 3, has_lower=False, has_upper=False)
    with pytest.raises(ValueError):
        m.val[0] = 99.0
    with pytest.raises(ValueError):
        m.col[0] = 1
    with pytest.raises(ValueError):
        m.row_ptr[0] = 1


def test_cache_hits_skip_reconstruction():
    before = spmv_mod.build_count
    build_27pt(5, 5, 5, has_lower=False, has_upper=True)
    assert spmv_mod.build_count == before + 1
    for _ in range(10):
        build_27pt(5, 5, 5, has_lower=False, has_upper=True)
    assert spmv_mod.build_count == before + 1  # no further builds
    info = csr_cache_info()
    assert info["hits"] == 10 and info["misses"] == 1


def test_cache_disable_builds_fresh_writable():
    prev = set_csr_cache_enabled(False)
    try:
        a = build_27pt(3, 3, 3, has_lower=False, has_upper=False)
        b = build_27pt(3, 3, 3, has_lower=False, has_upper=False)
        assert a is not b
        a.val[0] = 99.0  # uncached matrices stay writable
    finally:
        set_csr_cache_enabled(prev)


def test_lru_evicts_oldest():
    for i in range(spmv_mod._CSR_CACHE_MAX + 1):
        build_stencil_csr(2, 2, 2, False, False, OFFSETS_27,
                          diag_val=float(i + 1), off_val=-1.0)
    info = csr_cache_info()
    assert info["size"] == spmv_mod._CSR_CACHE_MAX
    # the first entry was evicted: rebuilding it is a miss
    before = spmv_mod.build_count
    build_stencil_csr(2, 2, 2, False, False, OFFSETS_27,
                      diag_val=1.0, off_val=-1.0)
    assert spmv_mod.build_count == before + 1


@pytest.mark.parametrize("shape,lower,upper", [
    ((1, 1, 1), False, False),
    ((4, 4, 4), True, False),
    ((3, 5, 2), False, True),
    ((4, 4, 6), True, True),
])
def test_optimized_builder_matches_seed_reference(shape, lower, upper):
    """Differential test: the restructured (no-stack/no-argsort) builder
    reproduces the seed implementation bit-for-bit."""
    from repro.kernels.spmv import _build_stencil_arrays_reference
    for offsets, diag in ((OFFSETS_27, 27.0), (spmv_mod.OFFSETS_7, 6.0)):
        fast = _build_stencil_arrays(*shape, lower, upper,
                                     tuple(offsets), diag, -1.0)
        ref = _build_stencil_arrays_reference(*shape, lower, upper,
                                              tuple(offsets), diag, -1.0)
        np.testing.assert_array_equal(fast.row_ptr, ref.row_ptr)
        np.testing.assert_array_equal(fast.col, ref.col)
        np.testing.assert_array_equal(fast.val, ref.val)


def test_spmv_rows_matches_seed_reference():
    """Differential test: the block-cached product equals the seed's
    recompute-per-call implementation."""
    from repro.kernels.spmv import _spmv_rows_reference
    m = build_27pt(4, 5, 6, has_lower=True, has_upper=False)
    rng = np.random.default_rng(7)
    x = rng.standard_normal(m.padded_len)
    for lo, hi in ((0, m.n_rows), (3, 17), (100, 101)):
        fast = np.empty(hi - lo)
        ref = np.empty(hi - lo)
        spmv_rows(m, x, lo, hi, fast)
        _spmv_rows_reference(m, x, lo, hi, ref)
        np.testing.assert_array_equal(fast, ref)


def test_row_block_cache_matches_direct_computation():
    m = build_27pt(4, 4, 6, has_lower=True, has_upper=True)
    x = np.arange(m.padded_len, dtype=np.float64)
    lo, hi = 7, 29
    y = np.empty(hi - lo)
    spmv_rows(m, x, lo, hi, y)   # populates the block cache
    spmv_rows(m, x, lo, hi, y)   # exercises the cached path
    # dense reference
    dense = np.zeros((m.n_rows, m.padded_len))
    for r in range(m.n_rows):
        for k in range(int(m.row_ptr[r]), int(m.row_ptr[r + 1])):
            dense[r, m.col[k]] += m.val[k]
    np.testing.assert_allclose(y, dense[lo:hi] @ x)
    assert m.row_nnz(lo, hi) == int(m.row_ptr[hi] - m.row_ptr[lo])
