"""Correctness of the BLAS-like kernels against numpy references."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import (ddot_cost, ddot_partial, grid_sum_cost,
                           grid_sum_partial, waxpby, waxpby_cost)

floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@given(x=hnp.arrays(np.float64, st.integers(1, 100), elements=floats),
       alpha=floats, beta=floats)
def test_waxpby_matches_numpy(x, alpha, beta):
    y = np.ones_like(x) * 2.0
    w = np.zeros_like(x)
    waxpby(alpha, x, beta, y, w)
    np.testing.assert_allclose(w, alpha * x + beta * y, rtol=1e-12,
                               atol=1e-9)


def test_waxpby_beta_one_fast_path():
    x = np.arange(4.0)
    y = np.arange(4.0) * 10
    w = np.empty(4)
    waxpby(2.0, x, 1.0, y, w)
    np.testing.assert_allclose(w, 2 * x + y)


def test_waxpby_does_not_alias_inputs():
    x = np.arange(8.0)
    y = np.arange(8.0)
    w = np.zeros(8)
    waxpby(1.0, x, 1.0, y, w)
    np.testing.assert_allclose(x, np.arange(8.0))
    np.testing.assert_allclose(y, np.arange(8.0))


@given(hnp.arrays(np.float64, st.integers(1, 100), elements=floats))
def test_ddot_partial_matches_numpy(x):
    y = x * 0.5 + 1.0
    out = np.zeros(1)
    ddot_partial(x, y, out)
    assert out[0] == pytest.approx(float(np.dot(x, y)), rel=1e-12,
                                   abs=1e-6)


@given(hnp.arrays(np.float64, st.integers(1, 100), elements=floats))
def test_grid_sum_partial(x):
    out = np.zeros(1)
    grid_sum_partial(x, out)
    assert out[0] == pytest.approx(float(x.sum()), rel=1e-12, abs=1e-6)


def test_cost_models_scale_linearly():
    x = np.zeros(100)
    y = np.zeros(100)
    w = np.zeros(100)
    out = np.zeros(1)
    assert waxpby_cost(1.0, x, 1.0, y, w) == (300.0, 2400.0)
    assert ddot_cost(x, y, out) == (200.0, 1600.0)
    assert grid_sum_cost(x, out) == (100.0, 800.0)


def test_flops_per_output_byte_ordering():
    """The paper's §V-C observation: intra-parallelization efficiency
    tracks compute per output byte.  ddot/grid_sum produce 8 bytes total;
    waxpby produces 8 bytes per element."""
    n = 1000
    x = np.zeros(n)
    w = np.zeros(n)
    out = np.zeros(1)
    wax_bytes_out = w.nbytes
    ddot_bytes_out = out.nbytes
    wax_compute = waxpby_cost(1.0, x, 1.0, x, w)[1]
    ddot_compute = ddot_cost(x, x, out)[1]
    assert ddot_compute / ddot_bytes_out > 10 * (wax_compute
                                                 / wax_bytes_out)
