"""Scenario spec: validation, overrides, dict/JSON round-tripping and
cross-process hash stability."""

import dataclasses
import json
import subprocess
import sys
import pathlib

import pytest

from repro.apps.hpccg import HpccgConfig, KernelBenchConfig
from repro.intra import CopyStrategy
from repro.netmodel import GRID5000_MACHINE, MachineSpec
from repro.scenarios import (FixedFailures, NO_FAILURES, PoissonFailures,
                             Scenario, machine_name_for, parse_override,
                             scenario_cache_key)

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def _rich_scenario() -> Scenario:
    """A scenario exercising every codec branch: nested dataclass config
    with a frozenset and a tuple, enum, inline machine spec, stochastic
    failure schedule with tagged targets."""
    return Scenario(
        app="hpccg_kernels",
        config=KernelBenchConfig(nx=8, ny=8, nz=4, reps=2,
                                 kernels=("ddot", "spmv"),
                                 intra_kernels=frozenset({"ddot",
                                                          "spmv"})),
        n_logical=4, mode="intra", degree=3, spread=2,
        machine=dataclasses.replace(GRID5000_MACHINE, cores_per_node=8),
        distance_model="linear", scheduler="cost-balanced",
        copy_strategy=CopyStrategy.ATOMIC, fd_delay=1e-5,
        failures=PoissonFailures(rate=100.0, seed=42, horizon=1e-2,
                                 targets=((0, 1), (1, 2)),
                                 max_failures=2))


def test_dict_round_trip_is_identity():
    s = _rich_scenario()
    d = s.to_dict()
    assert Scenario.from_dict(d) == s
    # and dict -> Scenario -> dict is an identity too
    assert Scenario.from_dict(d).to_dict() == d


def test_json_round_trip_is_identity():
    s = _rich_scenario()
    text = s.to_json()
    json.loads(text)  # really is JSON
    twin = Scenario.from_json(text)
    assert twin == s
    assert hash(twin) == hash(s)
    assert twin.to_json() == text


def test_round_trip_preserves_cache_key():
    s = _rich_scenario()
    assert (scenario_cache_key(Scenario.from_json(s.to_json()))
            == scenario_cache_key(s))


def test_cache_key_stable_across_processes():
    s = _rich_scenario()
    code = (
        "import sys, json\n"
        "from repro.scenarios import Scenario, scenario_cache_key\n"
        "s = Scenario.from_json(sys.stdin.read())\n"
        "print(scenario_cache_key(s))\n")
    keys = set()
    for _ in range(2):
        out = subprocess.run(
            [sys.executable, "-c", code], input=s.to_json(),
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"})
        keys.add(out.stdout.strip())
    assert keys == {scenario_cache_key(s)}


def test_named_machine_resolution_and_reverse_lookup():
    s = Scenario(app="hpccg", machine="grid5000")
    assert s.resolved_machine() == GRID5000_MACHINE
    assert machine_name_for(GRID5000_MACHINE) == "grid5000"
    inline = MachineSpec(name="weird", cores_per_node=2, flop_rate=1e9,
                         mem_bandwidth=1e9)
    assert machine_name_for(inline) is inline


@pytest.mark.parametrize("kwargs", [
    dict(app=""),
    dict(app="hpccg", mode="turbo"),
    dict(app="hpccg", n_logical=0),
    dict(app="hpccg", degree=0),
    dict(app="hpccg", spread=0),
    dict(app="hpccg", machine="cray"),
    dict(app="hpccg", scheduler="fifo"),
    dict(app="hpccg", fd_delay=-1.0),
    dict(app="hpccg", failures="soon"),
])
def test_validation_rejects_bad_specs(kwargs):
    with pytest.raises(ValueError):
        Scenario(**kwargs)


def test_copy_strategy_coerces_from_string():
    assert (Scenario(app="hpccg", copy_strategy="atomic").copy_strategy
            is CopyStrategy.ATOMIC)


def test_with_overrides_scenario_and_config_fields():
    s = Scenario(app="hpccg", config=HpccgConfig(nx=16), n_logical=8)
    t = s.with_overrides({"degree": 3, "mode": "intra",
                          "config.nx": 8,
                          "config.intra_kernels": ["ddot"]})
    assert (t.degree, t.mode) == (3, "intra")
    assert t.config.nx == 8
    assert t.config.intra_kernels == frozenset({"ddot"})
    # original untouched; unknown fields rejected
    assert s.degree == 2 and s.config.nx == 16
    with pytest.raises(ValueError):
        s.with_overrides({"warp": 9})
    with pytest.raises(ValueError):
        s.with_overrides({"config.bogus": 1})


def test_with_overrides_failures_from_dict():
    s = Scenario(app="hpccg", mode="sdr")
    t = s.with_overrides({"failures": {"kind": "fixed",
                                       "events": [[0, 1, 1e-3]]}})
    assert isinstance(t.failures, FixedFailures)
    assert t.failures.events[0].time == 1e-3
    assert s.failures == NO_FAILURES


def test_parse_override_literals_and_strings():
    assert parse_override("degree=3") == ("degree", 3)
    assert parse_override("config.nx=8") == ("config.nx", 8)
    assert parse_override("mode=intra") == ("mode", "intra")
    assert parse_override("fractions=(0.1, 0.5)") == ("fractions",
                                                      (0.1, 0.5))
    with pytest.raises(ValueError):
        parse_override("degree")


def test_scenarios_are_hashable_and_picklable():
    import pickle
    s = _rich_scenario()
    assert len({s, _rich_scenario()}) == 1
    assert pickle.loads(pickle.dumps(s)) == s
