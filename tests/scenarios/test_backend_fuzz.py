"""Property-based backend oracle harness (hypothesis).

Random bounded :class:`~repro.scenarios.Scenario`\\ s — all four
failure-schedule kinds (none / fixed / Poisson / Weibull) plus the PR 6
production universes (inhomogeneous-Poisson, maintenance windows,
cascading) — run under the ``array`` engine backend and the ``python``
oracle, asserting bit-identical :class:`ModeRun` payloads.  This is the
standing differential harness ROADMAP open item 5 calls for: every
generated case is a fresh theorem that the vectorized event core
preserves event order, virtual timestamps, intra statistics and
application values.

Alongside the scenario-level fuzz, a kernel-level fuzz drives the raw
``Simulator`` with random interleavings of the primitives the fire
loop special-cases (plain sleeps, sticky re-sleeps, abandoned tokens,
zero delays, kills) — targeting the array backend's pooled-row reuse
protocol specifically.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.apps.hpccg import HpccgConfig, KernelBenchConfig
from repro.scenarios import (CascadingFailures, ConstantRate,
                             FixedFailures, InhomogeneousPoissonFailures,
                             MaintenanceWindowFailures, PoissonFailures,
                             RateSpec, Scenario, SinusoidRate,
                             WeibullFailures)
from repro.scenarios.run import _run_scenario
from repro.replication.errors import NoLiveReplicaError
from repro.simulate import Simulator, set_engine_backend

#: bounded app configs — the fuzz explores *schedules and shapes*, not
#: problem sizes, so the programs stay tiny
TINY_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)
TINY_HPCCG = HpccgConfig(nx=8, ny=8, nz=8, max_iter=2,
                         intra_kernels=frozenset({"ddot"}))

HORIZON = 2e-3


def _failure_schedules():
    """One strategy per failure-schedule kind, PR 6 universes included."""
    seeds = st.integers(0, 2**16)
    fixed = st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1),
                  st.floats(1e-6, HORIZON, allow_nan=False)),
        min_size=1, max_size=2).map(
            lambda evs: FixedFailures(tuple(evs)))
    poisson = seeds.map(
        lambda s: PoissonFailures(rate=3e4, seed=s, horizon=HORIZON))
    weibull = seeds.map(
        lambda s: WeibullFailures(scale=1e-4, shape=0.7, seed=s,
                                  horizon=HORIZON))
    ipoisson = seeds.map(
        lambda s: InhomogeneousPoissonFailures(
            rates=RateSpec((ConstantRate(2e4),
                            SinusoidRate(mean=2e4, amplitude=1e4,
                                         period=1e-3))),
            seed=s, horizon=HORIZON))
    maintenance = seeds.map(
        lambda s: MaintenanceWindowFailures(
            base_rate=1e4, window_rate=8e4, period=1e-3, window=2e-4,
            offset=1e-4, seed=s, horizon=HORIZON))
    cascade = seeds.map(
        lambda s: CascadingFailures(
            rate=3e4, multiplier=10.0, window=5e-4, neighbor_distance=1,
            seed=s, horizon=HORIZON))
    return st.one_of(st.none(), fixed, poisson, weibull, ipoisson,
                     maintenance, cascade)


def _scenarios():
    def build(app_cfg, mode, n_logical, failures, fd_delay):
        app, cfg = app_cfg
        kw = dict(app=app, config=cfg, n_logical=n_logical, mode=mode,
                  fd_delay=fd_delay)
        if failures is not None:
            if mode == "native":
                # failure schedules need replicas to kill
                mode_kw = dict(kw, mode="intra")
                return Scenario(failures=failures, **{
                    k: v for k, v in mode_kw.items()})
            kw["failures"] = failures
        return Scenario(**kw)

    return st.builds(
        build,
        st.sampled_from([("hpccg_kernels", TINY_KB),
                         ("hpccg", TINY_HPCCG)]),
        st.sampled_from(["native", "sdr", "intra"]),
        st.integers(2, 3),
        _failure_schedules(),
        st.sampled_from([50e-6, 100e-6]))


def _run_on(backend, scenario):
    """Run fresh (no sweep cache) on ``backend``; a schedule harsh
    enough to exhaust a logical rank's replicas is itself a valid
    outcome — both backends must then raise the *same* error."""
    prev = set_engine_backend(backend)
    try:
        return _run_scenario(scenario)
    except NoLiveReplicaError as err:
        return ("raised", type(err).__name__, str(err))
    finally:
        set_engine_backend(prev)


@settings(max_examples=15, deadline=None)
@given(scenario=_scenarios())
def test_random_scenarios_bit_identical_across_backends(scenario):
    oracle = _run_on("python", scenario)
    array = _run_on("array", scenario)
    assert array == oracle
    assert repr(array) == repr(oracle)


# -- kernel-level fuzz: the fire loop's special-cased shapes -----------

@st.composite
def _proc_scripts(draw):
    """A list of per-process scripts; each step is one primitive the
    array fire loop treats specially."""
    n = draw(st.integers(1, 6))
    steps = st.one_of(
        st.tuples(st.just("sleep"),
                  st.floats(0, 3, allow_nan=False)),
        st.tuples(st.just("sleep_int"), st.integers(0, 3)),
        st.tuples(st.just("hold_sleep"),
                  st.floats(0, 3, allow_nan=False)),
        st.tuples(st.just("abandon"),
                  st.floats(0.5, 3, allow_nan=False)),
        st.tuples(st.just("timeout"),
                  st.floats(0, 3, allow_nan=False)),
    )
    return [draw(st.lists(steps, min_size=1, max_size=6))
            for _ in range(n)]


def _drive(backend, scripts, kill_at):
    sim = Simulator(backend=backend)
    log = []

    def body(sim, pid, script):
        for op, arg in script:
            if op == "sleep":
                yield sim.sleep(arg)
            elif op == "sleep_int":
                yield sim.sleep_until(sim.now + arg)
            elif op == "hold_sleep":
                t = sim.sleep(arg)
                yield t
                log.append((pid, "held", t.processed, sim.now))
                continue
            elif op == "abandon":
                sim.sleep(arg)          # taken, never yielded
                yield sim.sleep(arg / 2)
            elif op == "timeout":
                got = yield sim.timeout(arg, value=(pid, arg))
                log.append((pid, "timeout", got, sim.now))
                continue
            log.append((pid, op, sim.now))
        return pid

    procs = [sim.process(body(sim, pid, script), name=f"p{pid}")
             for pid, script in enumerate(scripts)]
    if kill_at is not None:
        victim, when = kill_at
        victim %= len(procs)

        def killer(sim):
            yield sim.sleep(when)
            if not procs[victim].processed:
                procs[victim].kill()

        sim.process(killer(sim), name="killer")
    sim.run()
    values = [p.value if not p.killed else "killed" for p in procs]
    return log, values, sim.now


@settings(max_examples=60, deadline=None)
@given(scripts=_proc_scripts(),
       kill=st.one_of(st.none(),
                      st.tuples(st.integers(0, 5),
                                st.floats(0.1, 2, allow_nan=False))))
def test_random_primitive_interleavings_match_oracle(scripts, kill):
    log_o, values_o, now_o = _drive("python", scripts, kill)
    log_a, values_a, now_a = _drive("array", scripts, kill)
    assert log_a == log_o
    assert repr(values_a) == repr(values_o)
    assert repr(now_a) == repr(now_o)
