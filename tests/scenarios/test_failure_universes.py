"""Production failure universes: property-style determinism checks for
the inhomogeneous / maintenance / cascading schedules, the RateSpec
codec and the declarative RestartPolicy.

The load-bearing contract is the one every sweep-cache key relies on:
``materialize`` is a *pure function of (schedule, job shape)* — equal
seeds give bit-equal events in any process, under any hash seed.
"""

import dataclasses
import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.scenarios import (CascadingFailures, ConstantRate,
                             FixedFailures, InhomogeneousPoissonFailures,
                             MaintenanceWindowFailures, PiecewiseRate,
                             RateSpec, RestartPolicy, Scenario,
                             SinusoidRate, WindowRate)
from repro.scenarios.failures import FailureSchedule, RateTerm

SEEDS = range(40)

IPOISSON = InhomogeneousPoissonFailures(
    rates=RateSpec((ConstantRate(30.0),
                    SinusoidRate(mean=40.0, amplitude=40.0, period=2e-3),
                    WindowRate(rate=500.0, period=2e-3, duration=3e-4,
                               offset=5e-4))),
    seed=7, horizon=8e-3)
MAINTENANCE = MaintenanceWindowFailures(
    base_rate=20.0, window_rate=800.0, period=2e-3, window=3e-4,
    offset=5e-4, seed=7, horizon=8e-3)
CASCADE = CascadingFailures(
    rate=60.0, multiplier=20.0, window=1e-3, neighbor_distance=1,
    base=FixedFailures(((1, 0, 1e-3),)), seed=7, horizon=8e-3)


# ------------------------------------------------- cross-process bit-equality
@pytest.mark.parametrize("sched", [IPOISSON, MAINTENANCE, CASCADE],
                         ids=lambda s: s.kind)
def test_equal_seeds_bit_equal_across_processes(sched):
    """The cache-key contract: a fresh interpreter with a different
    hash seed materializes the identical event tuple from the
    schedule's JSON twin."""
    here = json.dumps([ev.as_tuple()
                       for ev in sched.materialize(4, 2)])
    src_dir = str(pathlib.Path(repro.__file__).parents[1])
    env = dict(os.environ, PYTHONHASHSEED="12345")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    code = (
        "import json, sys\n"
        "from repro.scenarios.failures import FailureSchedule\n"
        "s = FailureSchedule.from_dict(json.loads(sys.argv[1]))\n"
        "print(json.dumps([list(e.as_tuple())"
        " for e in s.materialize(4, 2)]))\n")
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(sched.to_dict())],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout) == json.loads(here)


@pytest.mark.parametrize("sched", [IPOISSON, MAINTENANCE, CASCADE],
                         ids=lambda s: s.kind)
def test_round_trip_twin_materializes_identically(sched):
    twin = FailureSchedule.from_dict(json.loads(
        json.dumps(sched.to_dict())))
    assert twin == sched
    assert twin.materialize(4, 2) == sched.materialize(4, 2)


# ------------------------------------------------------- thinning properties
def test_thinned_events_only_where_rate_is_positive():
    """Window-only spec: every accepted arrival falls inside a window."""
    sched = InhomogeneousPoissonFailures(
        rates=RateSpec((WindowRate(rate=2e3, period=2e-3, duration=3e-4,
                                   offset=4e-4),)),
        horizon=10e-3)
    hits = 0
    for seed in SEEDS:
        for ev in dataclasses.replace(sched, seed=seed).materialize(4, 2):
            assert (ev.time - 4e-4) % 2e-3 < 3e-4
            hits += 1
    assert hits > 0          # the property must actually be exercised


def test_thinned_events_respect_piecewise_quiet_prefix():
    """Zero rate before the first step: nothing ever fires there."""
    sched = InhomogeneousPoissonFailures(
        rates=RateSpec((PiecewiseRate(((3e-3, 1500.0),)),)),
        horizon=6e-3)
    hits = 0
    for seed in SEEDS:
        events = dataclasses.replace(sched, seed=seed).materialize(4, 2)
        assert all(ev.time >= 3e-3 for ev in events)
        hits += len(events)
    assert hits > 0


def test_thinned_mean_count_bounded_by_majorant():
    """λ(t) ≤ upper_bound everywhere, so the mean accepted-arrival
    count over seeds cannot exceed upper_bound × horizon (law of the
    thinned process; victim-pool exhaustion only lowers it)."""
    sched = MAINTENANCE
    bound = (sched._rate_spec().upper_bound()
             * (sched.horizon - sched.start))
    counts = [len(MaintenanceWindowFailures(
        base_rate=sched.base_rate, window_rate=sched.window_rate,
        period=sched.period, window=sched.window, offset=sched.offset,
        seed=seed, horizon=sched.horizon,
        max_failures=10**6, spare_last=False).materialize(50, 2))
        for seed in SEEDS]
    assert sum(counts) / len(counts) <= bound


# -------------------------------------------------------- cascade properties
def test_cascade_never_targets_dead_replicas():
    for seed in SEEDS:
        sched = CascadingFailures(
            rate=200.0, multiplier=30.0, window=2e-3,
            base=FixedFailures(((0, 0, 1e-3), (0, 0, 2e-3))),
            seed=seed, horizon=8e-3, spare_last=False)
        events = sched.materialize(4, 2)
        seen = set()
        for ev in events:
            victim = (ev.logical_rank, ev.replica_id)
            assert victim not in seen   # a replica dies at most once
            seen.add(victim)
        # the duplicate base event on an already-dead replica is skipped
        assert sum(1 for ev in events
                   if (ev.logical_rank, ev.replica_id) == (0, 0)) <= 1


def test_cascade_spare_last_keeps_every_rank_alive():
    for seed in SEEDS:
        events = CascadingFailures(
            rate=500.0, multiplier=30.0, window=5e-3, seed=seed,
            horizon=20e-3).materialize(3, 2)
        dead_per_rank = {}
        for ev in events:
            dead_per_rank[ev.logical_rank] = \
                dead_per_rank.get(ev.logical_rank, 0) + 1
        assert all(n < 2 for n in dead_per_rank.values())


def test_cascade_events_sorted_and_inside_horizon():
    events = CASCADE.materialize(4, 2)
    assert events == tuple(sorted(
        events, key=lambda e: (e.time, e.logical_rank, e.replica_id)))
    assert all(0.0 <= ev.time < CASCADE.horizon for ev in events)


def test_cascade_base_trigger_is_included():
    events = CASCADE.materialize(4, 2)
    assert any((ev.logical_rank, ev.replica_id, ev.time) == (1, 0, 1e-3)
               for ev in events)


def test_cascade_multiplier_amplifies_burstiness():
    """Same baseline, same seeds: a strong multiplier must produce more
    crashes on average than multiplier=1 (which degenerates to the
    independent baseline)."""
    def mean_count(multiplier):
        counts = [len(CascadingFailures(
            rate=120.0, multiplier=multiplier, window=3e-3, seed=seed,
            horizon=10e-3, spare_last=False).materialize(6, 2))
            for seed in SEEDS]
        return sum(counts) / len(counts)
    assert mean_count(40.0) > mean_count(1.0)


def test_cascade_max_failures_caps_total():
    for seed in SEEDS:
        events = CascadingFailures(
            rate=2e3, multiplier=10.0, window=5e-3,
            base=FixedFailures(((0, 0, 1e-4),)), seed=seed,
            horizon=20e-3, max_failures=3,
            spare_last=False).materialize(4, 2)
        assert len(events) <= 3


# ------------------------------------------------------ codec + validation
def test_unknown_kind_error_lists_registered_kinds():
    with pytest.raises(ValueError) as err:
        FailureSchedule.from_dict({"kind": "solar-flare"})
    msg = str(err.value)
    for kind in ("cascade", "ipoisson", "maintenance", "poisson",
                 "weibull", "fixed", "none"):
        assert kind in msg


def test_unknown_rate_term_kind_lists_registered_kinds():
    with pytest.raises(ValueError) as err:
        RateTerm.from_dict({"kind": "lunar"})
    msg = str(err.value)
    for kind in ("const", "sine", "steps", "window"):
        assert kind in msg


@pytest.mark.parametrize("ctor,field", [
    (lambda: CascadingFailures(rate=-1.0, horizon=1.0), "rate"),
    (lambda: CascadingFailures(multiplier=0.5, horizon=1.0),
     "multiplier"),
    (lambda: CascadingFailures(window=float("nan"), horizon=1.0),
     "window"),
    (lambda: CascadingFailures(neighbor_distance=-1, horizon=1.0),
     "neighbor_distance"),
    (lambda: MaintenanceWindowFailures(window_rate=0.5, base_rate=1.0,
                                       horizon=1.0), "window_rate"),
    (lambda: MaintenanceWindowFailures(window=2.0, period=1.0,
                                       horizon=1.0), "window"),
    (lambda: SinusoidRate(mean=1.0, amplitude=2.0), "amplitude"),
    (lambda: WindowRate(duration=2.0, period=1.0), "duration"),
    (lambda: PiecewiseRate(((1.0, 2.0), (1.0, 3.0))), "steps"),
    (lambda: InhomogeneousPoissonFailures(
        rates=RateSpec((ConstantRate(0.0),)), horizon=1.0),
     "rates.upper_bound"),
])
def test_validation_errors_name_the_field(ctor, field):
    with pytest.raises(ValueError) as err:
        ctor()
    assert field in str(err.value)


def test_rate_spec_round_trips_and_accepts_bare_lists():
    spec = IPOISSON.rates
    assert RateSpec.from_dict(spec.to_dict()) == spec
    assert RateSpec.from_dict(spec.to_dict()["terms"]) == spec


def test_scenario_round_trip_with_new_schedules_and_restart():
    s = Scenario(app="stepsum", n_logical=2, mode="intra",
                 failures=CASCADE, restart=RestartPolicy(delay=2e-4))
    twin = Scenario.from_json(s.to_json())
    assert twin == s
    assert twin.failures.materialize(2, 2) == s.failures.materialize(2, 2)


# ----------------------------------------------------------- restart policy
def test_restart_policy_round_trip_and_defaults():
    pol = RestartPolicy(trigger="on-degree-loss", delay=4e-4,
                        backoff=2.0, max_restarts=4,
                        checkpoint_interval=2)
    assert RestartPolicy.from_dict(pol.to_dict()) == pol


@pytest.mark.parametrize("kwargs,field", [
    ({"trigger": "on-coffee"}, "trigger"),
    ({"delay": 0.0}, "delay"),
    ({"backoff": 0.5}, "backoff"),
    ({"max_restarts": -1}, "max_restarts"),
    ({"checkpoint_interval": 0}, "checkpoint_interval"),
])
def test_restart_policy_validation_names_the_field(kwargs, field):
    with pytest.raises(ValueError) as err:
        RestartPolicy(**kwargs)
    assert field in str(err.value)


def test_restart_requires_intra_degree_two():
    with pytest.raises(ValueError):
        Scenario(app="stepsum", n_logical=2, mode="native",
                 restart=RestartPolicy())
    with pytest.raises(ValueError):
        Scenario(app="stepsum", n_logical=2, mode="intra", degree=3,
                 restart=RestartPolicy())
