"""FailureSchedule hierarchy: determinism, targeting, round-tripping."""

import pytest

from repro.scenarios import (CrashEvent, FailureSchedule, FixedFailures,
                             NO_FAILURES, NoFailures, PoissonFailures,
                             WeibullFailures)


def test_no_failures_is_empty():
    assert NO_FAILURES.materialize(8, 2) == ()
    assert NoFailures() == NO_FAILURES


def test_fixed_failures_normalise_and_sort():
    sched = FixedFailures(((1, 0, 2e-3), CrashEvent(0, 1, 1e-3)))
    events = sched.materialize(2, 2)
    assert [e.time for e in events] == [1e-3, 2e-3]
    assert events[0] == CrashEvent(0, 1, 1e-3)


def test_fixed_failures_validate_bounds():
    with pytest.raises(ValueError):
        FixedFailures(((5, 0, 1e-3),)).materialize(2, 2)
    with pytest.raises(ValueError):
        FixedFailures(((0, 3, 1e-3),)).materialize(2, 2)


def test_poisson_same_seed_same_events():
    a = PoissonFailures(rate=500.0, seed=7, horizon=1e-2)
    b = PoissonFailures(rate=500.0, seed=7, horizon=1e-2)
    assert a == b
    assert a.materialize(4, 2) == b.materialize(4, 2)
    assert a.materialize(4, 2)  # non-empty at this rate/horizon


def test_poisson_different_seed_different_events():
    a = PoissonFailures(rate=500.0, seed=7, horizon=1e-2)
    c = PoissonFailures(rate=500.0, seed=8, horizon=1e-2)
    assert a.materialize(4, 2) != c.materialize(4, 2)


def test_poisson_spares_one_replica_per_rank():
    sched = PoissonFailures(rate=1e6, seed=1, horizon=10.0)
    events = sched.materialize(3, 2)
    # with an absurd rate every killable replica dies exactly once...
    assert len(events) == 3
    killed = {(e.logical_rank, e.replica_id) for e in events}
    assert len(killed) == 3
    # ...but each logical rank keeps one survivor
    assert len({lr for lr, _ in killed}) == 3


def test_poisson_tagged_targets_only():
    sched = PoissonFailures(rate=1e6, seed=3, horizon=10.0,
                            targets=((1, 0),))
    events = sched.materialize(4, 2)
    assert [(e.logical_rank, e.replica_id) for e in events] == [(1, 0)]
    with pytest.raises(ValueError):
        PoissonFailures(rate=1.0, seed=0, horizon=1.0,
                        targets=((9, 0),)).materialize(2, 2)


def test_poisson_max_failures_and_horizon():
    sched = PoissonFailures(rate=1e6, seed=5, horizon=10.0,
                            max_failures=1)
    assert len(sched.materialize(4, 2)) == 1
    nothing = PoissonFailures(rate=1e-9, seed=5, horizon=1e-6)
    assert nothing.materialize(4, 2) == ()


def test_weibull_deterministic_and_distinct_from_poisson():
    w = WeibullFailures(scale=1e-3, shape=0.7, seed=11, horizon=1e-2)
    assert w.materialize(4, 2) == w.materialize(4, 2)
    p = PoissonFailures(rate=1e3, seed=11, horizon=1e-2)
    assert w.materialize(4, 2) != p.materialize(4, 2)


@pytest.mark.parametrize("sched", [
    NO_FAILURES,
    FixedFailures(((0, 1, 1e-3), (1, 0, 2e-3))),
    PoissonFailures(rate=250.0, seed=9, horizon=5e-3,
                    targets=((0, 0), (2, 1)), max_failures=3,
                    spare_last=False),
    WeibullFailures(scale=2e-3, shape=0.5, seed=4, horizon=1e-2),
])
def test_schedule_dict_round_trip(sched):
    d = sched.to_dict()
    twin = FailureSchedule.from_dict(d)
    assert twin == sched
    assert twin.to_dict() == d
    # materialized events survive the round trip bit-for-bit
    assert twin.materialize(3, 2) == sched.materialize(3, 2)


def test_schedule_from_dict_rejects_unknown():
    with pytest.raises(ValueError):
        FailureSchedule.from_dict({"kind": "lightning"})
    with pytest.raises(ValueError):
        FailureSchedule.from_dict({"kind": "poisson", "voltage": 9})


def test_rate_scale_validation():
    with pytest.raises(ValueError):
        PoissonFailures(rate=0.0, seed=0, horizon=1.0)
    with pytest.raises(ValueError):
        WeibullFailures(scale=-1.0, shape=1.0, seed=0, horizon=1.0)


def test_empty_arrival_window_is_rejected():
    # a forgotten horizon must not silently mean "no failures"
    with pytest.raises(ValueError):
        PoissonFailures(rate=2e3, seed=7)
    with pytest.raises(ValueError):
        PoissonFailures(rate=2e3, seed=7, horizon=1e-3, start=1e-3)
