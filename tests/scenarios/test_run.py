"""Running scenarios: twin identity, failure determinism end-to-end,
sweep dedupe on scenario hashes."""

import pytest

from repro.apps.hpccg import HpccgConfig, KernelBenchConfig
from repro.scenarios import (FixedFailures, PoissonFailures, Scenario,
                             run_scenario, scenario_cache_key,
                             sweep_scenarios)

TINY_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)
TINY_HPCCG = HpccgConfig(nx=8, ny=8, nz=8, max_iter=2,
                         intra_kernels=frozenset({"ddot", "spmv"}))


def test_json_twin_reproduces_identical_result():
    """Acceptance: a JSON-serialized scenario reproduces the identical
    result (same sweep-cache key, same ModeRun values) as its in-code
    twin."""
    s = Scenario(app="hpccg_kernels", config=TINY_KB, n_logical=4,
                 mode="intra")
    twin = Scenario.from_json(s.to_json())
    assert twin == s
    assert scenario_cache_key(twin) == scenario_cache_key(s)
    assert run_scenario(twin) == run_scenario(s)


@pytest.mark.parametrize("mode", ["native", "sdr", "intra"])
def test_seeded_poisson_deterministic_in_every_mode(mode):
    """Acceptance: a seeded Poisson failure scenario runs
    deterministically end-to-end in all three modes."""
    s = Scenario(app="hpccg", config=TINY_HPCCG, n_logical=2, mode=mode,
                 failures=PoissonFailures(rate=3e4, seed=13,
                                          horizon=2e-3))
    first = run_scenario(s)
    second = run_scenario(s)
    assert first == second
    assert first.wall_time > 0
    if mode == "native":
        # no replicas to kill: the schedule is vacuous natively
        assert first.crashes == ()
    else:
        assert first.crashes  # the seeded schedule really fires
        assert first.crashes == second.crashes


def test_poisson_scenario_survives_and_differs_from_clean():
    clean = Scenario(app="hpccg", config=TINY_HPCCG, n_logical=2,
                     mode="intra")
    crashy = clean.with_failures(PoissonFailures(rate=3e4, seed=13,
                                                 horizon=2e-3))
    r_clean, r_crashy = run_scenario(clean), run_scenario(crashy)
    # the survivor computed the same answer, more slowly
    assert r_crashy.value == r_clean.value
    assert r_crashy.wall_time > r_clean.wall_time


def test_fixed_failure_triggers_reexecution():
    s = Scenario(app="hpccg", config=TINY_HPCCG, n_logical=2,
                 mode="intra",
                 failures=FixedFailures(((0, 1, 1e-5),)))
    run = run_scenario(s)
    assert len(run.crashes) == 1
    assert run.intra.get("tasks_reexecuted", 0) > 0


def test_sweep_dedupes_equal_scenarios_across_callers(tmp_path):
    """Equal scenarios share one cache entry regardless of which figure
    or sweep evaluates them."""
    a = Scenario(app="hpccg_kernels", config=TINY_KB, n_logical=2,
                 mode="native")
    b = Scenario.from_json(a.to_json())      # equal, separately built
    first = sweep_scenarios([a], cache=True, cache_dir=tmp_path)
    again = sweep_scenarios([b], cache=True, cache_dir=tmp_path)
    assert first == again
    cached = list(tmp_path.rglob("*.pkl"))
    assert len(cached) == 1                   # one shared entry
    assert scenario_cache_key(a) in cached[0].name


def test_sweep_scenarios_rejects_non_scenarios():
    with pytest.raises(TypeError):
        sweep_scenarios([("native", None, 4)])


def test_run_mode_wrapper_matches_scenario_path():
    """The deprecated wrapper and the spec path are the same
    computation (the wrapper returns a RunResult carrying the identical
    ModeRun payload)."""
    from repro.apps.hpccg import hpccg_kernel_bench
    from repro.experiments import run_mode, scenario_for
    via_wrapper = run_mode("intra", hpccg_kernel_bench, 4, TINY_KB)
    via_scenario = run_scenario(
        scenario_for("intra", hpccg_kernel_bench, 4, TINY_KB))
    for field in ("mode", "wall_time", "timers", "intra", "value",
                  "crashes"):
        assert getattr(via_wrapper, field) == getattr(via_scenario,
                                                      field)
    assert via_wrapper.scenario == scenario_for(
        "intra", hpccg_kernel_bench, 4, TINY_KB)
