"""Lazy generated grids: O(1) registration/listing, deterministic
addressing, round-trips, and the catalog-scale acceptance floor."""

import itertools
import time

import pytest

import repro.experiments  # noqa: F401  (registers catalog + grids)
from repro.scenarios import (GRID_PREFIX, GridFamily, Scenario,
                             UnknownScenarioError, get_grid,
                             get_scenario, grid_entries, grid_names,
                             register_grid, scenario_names,
                             total_grid_points)
from repro.scenarios.grids import _GRIDS, format_axis_value
from repro.apps.steploop import StepSumConfig


@pytest.fixture
def scratch_grids():
    """Snapshot/restore the grid registry so tests can register
    synthetic families without leaking into the catalog."""
    before = dict(_GRIDS)
    try:
        yield _GRIDS
    finally:
        _GRIDS.clear()
        _GRIDS.update(before)


def _stepsum_point(**values):
    return Scenario(app="stepsum", config=StepSumConfig(n=2_000),
                    n_logical=2, mode="intra",
                    fd_delay=values.get("fd", 50e-6))


# --------------------------------------------------- acceptance floor
def test_catalog_ships_at_least_1000_addressable_points():
    assert total_grid_points() >= 1000
    # containment, not equality: doc snippets may register demo grids
    assert {"failures", "hpccg", "restart"} <= set(grid_names())


def test_listing_is_o1_in_grid_size(scratch_grids):
    """A billion-point family must register and list in constant time
    — the whole point of lazy grids.  The generous wall-clock bound
    (vs. minutes for any materializing implementation) pins the
    complexity class without being timing-flaky."""
    t0 = time.perf_counter()
    family = register_grid(
        "huge",
        [("a", tuple(range(1000))), ("b", tuple(range(1000))),
         ("c", tuple(range(1000)))],
        _stepsum_point, "synthetic billion-point family")
    assert family.size == 1_000_000_000
    assert "huge" in grid_names()
    assert total_grid_points() >= 1_000_000_000
    assert family.summary() == "grid:huge/<a,b,c>"
    # addressing one point is O(1) too
    assert family.point_name(a=999, b=0, c=500) \
        == "grid:huge/a=999,b=0,c=500"
    elapsed = time.perf_counter() - t0
    assert elapsed < 1.0, f"lazy-grid ops took {elapsed:.2f}s"


def test_scenario_names_stays_eager_only():
    # grid points are addressable but never enumerated into the
    # registry listing
    assert not any(n.startswith(GRID_PREFIX) for n in scenario_names())


# -------------------------------------------------- laziness contract
def test_build_runs_only_when_a_point_is_addressed(scratch_grids):
    calls = []

    def build(**values):
        calls.append(values)
        return _stepsum_point(**values)

    family = register_grid("lazy", {"fd": (25e-6, 50e-6)}, build)
    assert family.size == 2
    list(family.point_names())
    assert calls == []          # enumeration formats names, no builds
    s = get_scenario("grid:lazy/fd=2.5e-05")
    assert calls == [{"fd": 2.5e-05}]
    assert s.fd_delay == 2.5e-05


# ------------------------------------------------- ordering + round-trip
def test_point_order_is_deterministic_last_axis_fastest(scratch_grids):
    family = register_grid(
        "order", [("x", ("a", "b")), ("y", (1, 2, 3))], _stepsum_point)
    assert list(family.point_names()) == [
        f"grid:order/x={x},y={y}"
        for x, y in itertools.product("ab", (1, 2, 3))]


def test_every_token_round_trips():
    assert format_axis_value(True) == "true"
    assert format_axis_value(False) == "false"
    assert format_axis_value(17) == "17"
    assert format_axis_value(5e-05) == "5e-05"
    assert format_axis_value("intra") == "intra"
    with pytest.raises(ValueError):
        format_axis_value("a,b")
    with pytest.raises(ValueError):
        format_axis_value("")
    with pytest.raises(TypeError):
        format_axis_value(object())


def test_catalog_points_round_trip_name_to_scenario_to_name():
    for family in grid_entries():
        name = family.first_point_name()
        values = dict(
            part.split("=", 1)
            for part in name.split("/", 1)[1].split(","))
        scenario = get_scenario(name)
        assert isinstance(scenario, Scenario)
        rebuilt = family.point_name(**{
            axis: table[token]
            for (axis, token), table in zip(
                values.items(), family._tokens().values())})
        assert rebuilt == name
        # same address → equal scenario (pure build)
        assert get_scenario(name) == scenario


def test_point_accessors_agree(scratch_grids):
    family = register_grid("acc", {"fd": (25e-6,), "mode": ("intra",)},
                           lambda **v: _stepsum_point(fd=v["fd"]))
    name = family.point_name(fd=25e-6, mode="intra")
    assert family.point(fd=25e-6, mode="intra") == get_scenario(name) \
        == family.materialize(name.split("/", 1)[1])


# ------------------------------------------------------- error surface
def test_unknown_family_suggests_a_real_point():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("grid:failurez/kind=poisson,seed=0,fd=2.5e-05")
    assert exc.value.suggestions
    get_scenario(exc.value.suggestions[0])   # addressable


def test_typoed_value_suggests_the_exact_correction():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("grid:failures/kind=weibul,seed=3,fd=2.5e-05")
    assert exc.value.suggestions == [
        "grid:failures/kind=weibull,seed=3,fd=2.5e-05"]


def test_missing_axes_fill_to_a_canonical_candidate():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("grid:failures/kind=poisson")
    hint, = exc.value.suggestions
    assert hint.startswith("grid:failures/kind=poisson,seed=")
    get_scenario(hint)


def test_family_without_point_suggests_the_first_point():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("grid:failures")
    assert exc.value.suggestions == [
        get_grid("failures").first_point_name()]


def test_get_grid_accepts_bare_prefixed_and_full_names():
    family = get_grid("failures")
    assert get_grid("grid:failures") is family
    assert get_grid("grid:failures/kind=poisson,seed=0,fd=2.5e-05") \
        is family
    with pytest.raises(UnknownScenarioError):
        get_grid("grid:failurez")


# --------------------------------------------------------- registration
def test_register_grid_validates_its_spec(scratch_grids):
    with pytest.raises(ValueError, match="non-empty"):
        register_grid("", {"a": (1,)}, _stepsum_point)
    with pytest.raises(ValueError, match="may not contain"):
        register_grid("a/b", {"a": (1,)}, _stepsum_point)
    with pytest.raises(ValueError, match="at least one axis"):
        register_grid("empty", {}, _stepsum_point)
    with pytest.raises(ValueError, match="no values"):
        register_grid("novals", {"a": ()}, _stepsum_point)
    with pytest.raises(ValueError, match="collide"):
        register_grid("collide", {"a": (True, "true")}, _stepsum_point)
    with pytest.raises(ValueError, match="duplicate axis"):
        register_grid("dup", [("a", (1,)), ("a", (2,))], _stepsum_point)
    with pytest.raises(ValueError, match="bad axis name"):
        register_grid("badaxis", {"a b": (1,)}, _stepsum_point)


def test_reregistration_identical_is_noop_conflict_raises(scratch_grids):
    family = register_grid("re", {"a": (1, 2)}, _stepsum_point)
    assert register_grid("re", {"a": (1, 2)}, _stepsum_point) == family
    with pytest.raises(ValueError, match="already registered"):
        register_grid("re", {"a": (1, 2, 3)}, _stepsum_point)
    bigger = register_grid("re", {"a": (1, 2, 3)}, _stepsum_point,
                           overwrite=True)
    assert bigger.size == 3


def test_build_must_return_a_scenario(scratch_grids):
    register_grid("badbuild", {"a": (1,)}, lambda **v: "nope")
    with pytest.raises(TypeError, match="expected a Scenario"):
        get_scenario("grid:badbuild/a=1")


def test_grid_family_is_frozen():
    family = grid_entries()[0]
    with pytest.raises(Exception):
        family.name = "other"
