"""Scenario registry + experiment CLI: discovery, overrides, unknown
names."""

import pytest

import repro.experiments  # noqa: F401  (registers figure scenarios)
from repro.experiments.__main__ import EXPERIMENTS, main
from repro.perf import configure, get_config


@pytest.fixture(autouse=True)
def _sandbox_perf_config(tmp_path):
    """main() calls repro.perf.configure; keep the process-global sweep
    config (and any cache writes) from leaking out of each test."""
    cfg = get_config()
    old = (cfg.workers, cfg.cache, cfg.cache_dir)
    configure(cache_dir=tmp_path)
    try:
        yield
    finally:
        configure(workers=old[0], cache=old[1], cache_dir=old[2])
from repro.experiments.fig5 import fig5a_scenarios, fig5b_scenarios
from repro.scenarios import (Scenario, UnknownScenarioError,
                             find_scenario_name, get_scenario,
                             register_scenario, scenario_entries,
                             scenario_names)


def test_every_default_figure_point_is_registered():
    """Acceptance: every figure experiment runs through a registered
    Scenario — the default grids are all present in the registry."""
    for s in fig5a_scenarios() + fig5b_scenarios():
        assert find_scenario_name(s) is not None
    for prefix in ("fig5a:", "fig5b:", "fig6a:", "fig6b:", "fig6c:",
                   "fig6d:", "ablation:", "ext:", "example:"):
        assert any(n.startswith(prefix) for n in scenario_names()), prefix


def test_registry_lookup_and_descriptions():
    s = get_scenario("fig5b:p16:intra")
    assert isinstance(s, Scenario)
    assert s.mode == "intra" and s.n_logical == 8
    for entry in scenario_entries():
        assert entry.description  # --list has a one-liner for each


def test_unknown_scenario_raises_with_suggestions():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("fig5b:p16:intro")
    assert "fig5b:p16:intra" in exc.value.suggestions


def test_reregistering_identical_entry_is_noop():
    entry = scenario_entries()[0]
    register_scenario(entry.name, entry.scenario, entry.description)
    with pytest.raises(ValueError):
        register_scenario(entry.name,
                          entry.scenario.replace(n_logical=99),
                          entry.description)


# ----------------------------------------------------------------- CLI
def test_cli_list_shows_experiments_and_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "registered scenarios" in out
    assert "fig5b:p16:intra" in out
    assert "ext:poisson:intra" in out


def test_cli_unknown_name_exits_nonzero_with_suggestion(capsys):
    assert main(["fig5x"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment or scenario" in err
    assert "did you mean" in err
    assert main(["run"]) == 2  # bare 'run' is an error too


def test_cli_runs_single_scenario_with_overrides(capsys):
    rc = main(["run", "fig5a:waxpby:native", "--set", "config.nx=8",
               "--set", "config.ny=8", "--set", "config.reps=1",
               "--set", "n_logical=2", "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fig5a:waxpby:native" in out
    assert "wall time (ms)" in out


def test_cli_single_scenario_shares_sweep_cache(tmp_path, capsys):
    """`run NAME` goes through the sweep driver: the result lands in
    (and on reruns comes from) the scenario-hash cache."""
    args = ["run", "fig5a:waxpby:native", "--set", "config.nx=8",
            "--set", "config.ny=8", "--set", "config.reps=1",
            "--set", "n_logical=2"]
    assert main(args) == 0
    first = capsys.readouterr().out
    cached = list(get_config().cache_dir.rglob("*.pkl"))
    assert len(cached) == 1
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_cli_rejects_bad_override(capsys):
    assert main(["run", "fig5a:waxpby:native", "--set", "degree"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_cli_rejects_unknown_background_override(capsys):
    assert main(["background", "--set", "degree=3"]) == 2
    assert "background-model override" in capsys.readouterr().err


def test_cli_unknown_set_field_lists_valid_fields(capsys):
    """An unknown --set field fails with the list of valid Scenario
    field names (not just a bare 'unknown field' message)."""
    assert main(["run", "fig5b:p16:intra", "--set", "degre=3"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario field 'degre'" in err
    assert "valid fields:" in err
    for field in ("degree", "mode", "n_logical", "scheduler"):
        assert field in err
    assert "config.<name>" in err


def test_cli_unknown_config_field_lists_valid_fields(capsys):
    assert main(["run", "fig5b:p16:intra", "--set", "config.nq=8"]) == 2
    err = capsys.readouterr().err
    assert "unknown config field 'nq'" in err
    assert "valid config fields:" in err
    assert "nx" in err and "max_iter" in err


def test_with_overrides_unknown_field_error_lists_fields():
    from repro.scenarios import get_scenario

    s = get_scenario("fig5b:p16:intra")
    with pytest.raises(ValueError, match=r"valid fields: .*degree.*mode"):
        s.with_overrides({"degre": 3})
