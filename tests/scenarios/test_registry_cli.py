"""Scenario registry + experiment CLI: discovery, overrides, unknown
names."""

import pytest

import repro.experiments  # noqa: F401  (registers figure scenarios)
from repro.experiments.__main__ import EXPERIMENTS, main
from repro.perf import get_config


@pytest.fixture(autouse=True)
def _sandbox(sandbox_perf_config):
    """main() calls repro.perf.configure; the shared sandbox fixture
    (tests/conftest.py) keeps the process-global sweep config (and any
    cache writes) from leaking out of each test."""
    yield
from repro.experiments.fig5 import fig5a_scenarios, fig5b_scenarios
from repro.scenarios import (Scenario, UnknownScenarioError,
                             find_scenario_name, get_scenario,
                             register_scenario, scenario_entries,
                             scenario_names)


def test_every_default_figure_point_is_registered():
    """Acceptance: every figure experiment runs through a registered
    Scenario — the default grids are all present in the registry."""
    for s in fig5a_scenarios() + fig5b_scenarios():
        assert find_scenario_name(s) is not None
    for prefix in ("fig5a:", "fig5b:", "fig6a:", "fig6b:", "fig6c:",
                   "fig6d:", "ablation:", "ext:", "example:"):
        assert any(n.startswith(prefix) for n in scenario_names()), prefix


def test_registry_lookup_and_descriptions():
    s = get_scenario("fig5b:p16:intra")
    assert isinstance(s, Scenario)
    assert s.mode == "intra" and s.n_logical == 8
    for entry in scenario_entries():
        assert entry.description  # --list has a one-liner for each


def test_unknown_scenario_raises_with_suggestions():
    with pytest.raises(UnknownScenarioError) as exc:
        get_scenario("fig5b:p16:intro")
    assert "fig5b:p16:intra" in exc.value.suggestions


def test_reregistering_identical_entry_is_noop():
    entry = scenario_entries()[0]
    register_scenario(entry.name, entry.scenario, entry.description)
    with pytest.raises(ValueError):
        register_scenario(entry.name,
                          entry.scenario.replace(n_logical=99),
                          entry.description)


# ----------------------------------------------------------------- CLI
def test_cli_list_shows_experiments_and_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out
    assert "registered scenarios" in out
    assert "fig5b:p16:intra" in out
    assert "ext:poisson:intra" in out


def test_cli_unknown_name_exits_nonzero_with_suggestion(capsys):
    assert main(["fig5x"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment or scenario" in err
    assert "did you mean" in err
    assert main(["run"]) == 2  # bare 'run' is an error too


def test_cli_runs_single_scenario_with_overrides(capsys):
    rc = main(["run", "fig5a:waxpby:native", "--set", "config.nx=8",
               "--set", "config.ny=8", "--set", "config.reps=1",
               "--set", "n_logical=2", "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fig5a:waxpby:native" in out
    assert "wall time (ms)" in out


def test_cli_single_scenario_shares_sweep_cache(tmp_path, capsys):
    """`run NAME` goes through the sweep driver: the result lands in
    (and on reruns comes from) the scenario-hash cache."""
    args = ["run", "fig5a:waxpby:native", "--set", "config.nx=8",
            "--set", "config.ny=8", "--set", "config.reps=1",
            "--set", "n_logical=2"]
    assert main(args) == 0
    first = capsys.readouterr().out
    cached = list(get_config().cache_dir.rglob("*.pkl"))
    assert len(cached) == 1
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_cli_list_keyword_matches_list_flag(capsys):
    assert main(["list"]) == 0
    via_keyword = capsys.readouterr().out
    assert main(["--list"]) == 0
    via_flag = capsys.readouterr().out
    assert via_keyword == via_flag
    assert "fig5b:p16:intra" in via_keyword


def test_cli_list_glob_filters_and_sorts(capsys):
    assert main(["list", "fig5a:ddot*"]) == 0
    out = capsys.readouterr().out
    names = [ln.split()[0] for ln in out.splitlines()
             if ln.startswith("  fig5a")]
    assert names == ["fig5a:ddot:intra", "fig5a:ddot:native",
                     "fig5a:ddot:sdr"]      # deterministic sorted order
    assert "fig5b" not in out
    # repeat runs are byte-identical
    assert main(["list", "fig5a:ddot*"]) == 0
    assert capsys.readouterr().out == out


def test_cli_list_tag_filters_namespace(capsys):
    assert main(["list", "--tag", "ext"]) == 0
    out = capsys.readouterr().out
    assert "ext:poisson:intra" in out
    assert "fig5b:p16:intra" not in out
    assert "experiments:" not in out      # no experiment named 'ext'


def test_cli_list_pattern_matching_nothing_exits_nonzero(capsys):
    assert main(["list", "zz-nothing*"]) == 2
    assert "matches no experiment, scenario or grid name" in capsys.readouterr().err
    assert main(["list", "--tag", "zz-nothing"]) == 2
    assert "matches no experiment, scenario or grid name" in capsys.readouterr().err


def test_cli_list_format_json_is_machine_readable(capsys):
    import json

    assert main(["list", "fig5a:ddot*", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [e["name"] for e in payload] == [
        "fig5a:ddot:intra", "fig5a:ddot:native", "fig5a:ddot:sdr"]
    assert all(e["kind"] == "scenario" and "scenario" in e
               for e in payload)


_TINY_ARGS = ["--set", "config.nx=8", "--set", "config.ny=8",
              "--set", "config.reps=1", "--set", "n_logical=2",
              "--no-cache"]


def test_cli_run_format_json_routes_through_result_set(capsys):
    import json

    from repro.results import ResultSet

    rc = main(["run", "fig5a:waxpby:native", *_TINY_ARGS,
               "--format", "json"])
    out = capsys.readouterr().out
    assert rc == 0
    rs = ResultSet.from_json(out)
    assert len(rs) == 1
    assert rs[0].mode == "native" and rs[0].wall_time > 0
    assert rs[0].scenario.config.nx == 8
    assert json.loads(out)  # plain JSON, no table furniture


def test_cli_run_format_csv_has_deterministic_header(capsys):
    rc = main(["run", "fig5a:waxpby:native", *_TINY_ARGS,
               "--format", "csv"])
    out = capsys.readouterr().out
    assert rc == 0
    header = out.splitlines()[0]
    assert header.startswith("app,mode,n_logical,degree,spread,"
                             "scheduler,wall_time,n_crashes,cache_hit,"
                             "value")
    assert len(out.splitlines()) >= 2


def test_cli_format_json_emits_experiment_table_rows(capsys):
    import json

    assert main(["fig5a", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows and all(r["experiment"] == "fig5a" for r in rows)
    assert {r["table"] for r in rows} == {"fig5a"}
    assert all("kernel" in r for r in rows)


def test_cli_format_csv_emits_experiment_table_rows(capsys):
    """--format csv on a whole experiment (a fig6 figure here) flattens
    its table rows under a first-appearance-union header."""
    import csv
    import io

    rc = main(["fig6d", "--set", "config.nx=8", "--set", "config.ny=8",
               "--set", "config.nz=4", "--set", "config.steps=2",
               "--set", "n_logical=4", "--no-cache", "--format", "csv"])
    out = capsys.readouterr().out
    assert rc == 0
    rows = list(csv.DictReader(io.StringIO(out)))
    assert rows and all(r["experiment"] == "fig6d" for r in rows)
    assert {r["mode"] for r in rows} == {"Open MPI", "SDR-MPI", "intra"}


def test_cli_format_rejects_mixed_currencies(capsys):
    """Experiment rows and scenario ResultSets are different record
    shapes; one machine-readable invocation cannot mix them."""
    assert main(["fig5a", "ext:poisson:intra", "--format", "json"]) == 2
    assert "mix" in capsys.readouterr().err


def test_cli_format_csv_rejected_for_list(capsys):
    assert main(["list", "--format", "csv"]) == 2
    assert "csv" in capsys.readouterr().err


def test_cli_list_rejects_run_only_flags(capsys):
    """list must not silently swallow run flags (a typo'd run command
    should not degrade into a successful listing)."""
    assert main(["list", "--set", "degree=3"]) == 2
    assert "do not apply to list" in capsys.readouterr().err
    assert main(["list", "--workers", "2"]) == 2
    capsys.readouterr()
    assert main(["list", "--no-cache"]) == 2


def test_cli_rejects_bad_override(capsys):
    assert main(["run", "fig5a:waxpby:native", "--set", "degree"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_cli_rejects_unknown_background_override(capsys):
    assert main(["background", "--set", "degree=3"]) == 2
    assert "background-model override" in capsys.readouterr().err


def test_cli_unknown_set_field_lists_valid_fields(capsys):
    """An unknown --set field fails with the list of valid Scenario
    field names (not just a bare 'unknown field' message)."""
    assert main(["run", "fig5b:p16:intra", "--set", "degre=3"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario field 'degre'" in err
    assert "valid fields:" in err
    for field in ("degree", "mode", "n_logical", "scheduler"):
        assert field in err
    assert "config.<name>" in err


def test_cli_unknown_config_field_lists_valid_fields(capsys):
    assert main(["run", "fig5b:p16:intra", "--set", "config.nq=8"]) == 2
    err = capsys.readouterr().err
    assert "unknown config field 'nq'" in err
    assert "valid config fields:" in err
    assert "nx" in err and "max_iter" in err


def test_with_overrides_unknown_field_error_lists_fields():
    from repro.scenarios import get_scenario

    s = get_scenario("fig5b:p16:intra")
    with pytest.raises(ValueError, match=r"valid fields: .*degree.*mode"):
        s.with_overrides({"degre": 3})
