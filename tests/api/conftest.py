"""Facade tests run with the shared sandboxed sweep config (see
tests/conftest.py) so cache writes and config changes never leak."""

import pytest


@pytest.fixture(autouse=True)
def _sandbox(sandbox_perf_config):
    yield
