"""The repro.api facade: run/sweep/iter_sweep/compare/scenario, cache
provenance, streaming order, the lazy top-level surface."""

import pytest

import repro
from repro.apps.hpccg import KernelBenchConfig
from repro.results import ResultSet, RunResult
from repro.scenarios import (Scenario, UnknownScenarioError,
                             scenario_cache_key)

TINY_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)
TINY = Scenario(app="hpccg_kernels", config=TINY_KB, n_logical=2,
                mode="native")


# ------------------------------------------------------------ surface
def test_top_level_surface_is_lazy_and_curated():
    for name in ("run", "sweep", "iter_sweep", "compare", "scenario"):
        assert name in repro.__all__ and callable(getattr(repro, name))
    for name in ("RunResult", "ResultSet", "Scenario"):
        assert name in repro.__all__ and isinstance(getattr(repro, name),
                                                    type)
    assert isinstance(repro.__version__, str)
    assert repro.api.run is repro.run     # facade re-exported lazily
    with pytest.raises(AttributeError):
        repro.no_such_name
    assert set(repro.__all__) <= set(dir(repro))


def test_scenario_resolves_names_and_applies_overrides():
    s = repro.scenario("fig5b:p16:intra", degree=3)
    assert isinstance(s, Scenario)
    assert s.mode == "intra" and s.degree == 3
    assert repro.scenario(TINY) is TINY
    with pytest.raises(UnknownScenarioError):
        repro.scenario("no:such:scenario")
    with pytest.raises(TypeError):
        repro.scenario(42)


# ---------------------------------------------------------------- run
def test_run_returns_provenanced_result(tmp_path):
    first = repro.run(TINY, cache=True, cache_dir=tmp_path)
    assert isinstance(first, RunResult)
    assert first.scenario == TINY
    assert first.mode == "native" and first.wall_time > 0
    assert first.cache_hit is False
    assert first.cache_key == scenario_cache_key(TINY)
    again = repro.run(TINY, cache=True, cache_dir=tmp_path)
    assert again.cache_hit is True
    for field in ("mode", "wall_time", "timers", "intra", "value"):
        assert getattr(again, field) == getattr(first, field)


def test_run_without_cache_reports_unknown_hit():
    r = repro.run(TINY, cache=False)
    assert r.cache_hit is None
    assert r.cache_key == scenario_cache_key(TINY)  # still computable


def test_run_with_before_run_hook_bypasses_cache(tmp_path):
    seen = []

    def hook(world, job):
        seen.append((world, job))

    r = repro.run(TINY, before_run=hook)
    assert seen, "the hook must run"
    assert r.cache_key is None and r.cache_hit is None
    assert not list(tmp_path.rglob("*.pkl"))  # impure: never cached


def test_run_accepts_registered_names_with_field_overrides():
    r = repro.run("fig5a:waxpby:native",
                  **{"config.nx": 8, "config.ny": 8, "config.reps": 1,
                     "n_logical": 2})
    assert r.scenario.config.nx == 8 and r.scenario.n_logical == 2
    assert r.wall_time > 0


# -------------------------------------------------------------- sweep
def test_sweep_preserves_input_order_and_streams_progress(tmp_path):
    ss = [TINY.replace(mode=m) for m in ("native", "sdr", "intra")]
    order = []
    rs = repro.sweep(ss, cache=True, cache_dir=tmp_path,
                     on_result=lambda r: order.append(r.mode))
    assert isinstance(rs, ResultSet)
    assert [r.mode for r in rs] == ["native", "sdr", "intra"]
    assert sorted(order) == ["intra", "native", "sdr"]
    assert all(r.cache_hit is False for r in rs)
    warm = repro.sweep(ss, cache=True, cache_dir=tmp_path)
    assert all(r.cache_hit is True for r in warm)
    assert [r.wall_time for r in warm] == [r.wall_time for r in rs]


def test_sweep_dedupes_equal_scenarios(tmp_path):
    twin = Scenario.from_json(TINY.to_json())
    rs = repro.sweep([TINY, twin], cache=True, cache_dir=tmp_path)
    assert len(rs) == 2
    assert rs[0].cache_hit is False
    assert rs[1].cache_hit is True          # deduped onto the first
    assert rs[0].wall_time == rs[1].wall_time
    assert len(list(tmp_path.rglob("*.pkl"))) == 1


def test_iter_sweep_yields_cache_hits_first(tmp_path):
    a = TINY
    b = TINY.replace(mode="sdr")
    repro.run(b, cache=True, cache_dir=tmp_path)      # prewarm b only
    seen = [r for r in repro.iter_sweep([a, b], cache=True,
                                        cache_dir=tmp_path)]
    assert [r.scenario.mode for r in seen] == ["sdr", "native"]
    assert seen[0].cache_hit is True and seen[1].cache_hit is False


def test_iter_sweep_is_lazy(monkeypatch):
    import repro.api as api_mod

    calls = []
    real = api_mod._run_scenario

    def counting(scenario, **kw):
        calls.append(scenario)
        return real(scenario, **kw)

    monkeypatch.setattr(api_mod, "_run_scenario", counting)
    it = repro.iter_sweep([TINY, TINY.replace(mode="sdr")])
    assert calls == []          # nothing simulated before first next()
    first = next(it)
    assert first.wall_time > 0
    assert len(calls) == 1      # and only the yielded point so far


# ------------------------------------------------------------ compare
def test_compare_derives_modes_from_a_scenario():
    rs = repro.compare(TINY, modes=("native", "sdr"))
    assert [r.mode for r in rs] == ["native", "sdr"]
    assert rs[0].scenario.config == rs[1].scenario.config


def test_compare_uses_registered_family_points():
    ov = {"config.nx": 8, "config.ny": 8, "config.reps": 1,
          "n_logical": 2}
    rs = repro.compare("example:waxpby", **ov)
    assert [r.mode for r in rs] == ["native", "sdr", "intra"]
    # family lookup pulled the registered per-mode points
    assert all(r.scenario.app == "hpccg_kernels" for r in rs)
    assert all(r.scenario.n_logical == 2 for r in rs)


def test_compare_falls_back_to_mode_replacement_for_plain_names():
    ov = {"config.nx": 8, "config.ny": 8, "config.reps": 1,
          "n_logical": 2}
    rs = repro.compare("fig5a:waxpby:native", modes=("native", "sdr"),
                       **ov)
    assert [r.mode for r in rs] == ["native", "sdr"]


# ------------------------------------------------- experiments harness
def test_figure_harness_runs_on_the_facade():
    rows = repro.experiments.fig5a(n_logical=2, base=TINY_KB)
    assert len(rows) == 9
    assert {r.mode for r in rows} == {"Open MPI", "SDR-MPI", "intra"}
