"""ResultSet relational verbs over generated-grid sweeps.

Sweeps whose points come from mixed ``grid:*`` families — including
rows that fail (sweep-layer :class:`PointFailure` under
``on_error="return"``) — must filter, group and serialize exactly like
hand-registered scenarios: the grid namespace is an addressing scheme,
not a different result currency.
"""

import csv
import io
import json

import pytest

import repro.experiments  # noqa: F401  (registers catalog + grids)
from repro.api import scenario as api_scenario, sweep
from repro.results import ResultSet, RunResult
from repro.scenarios import RestartPolicy, get_scenario


@pytest.fixture(autouse=True)
def _sandbox(sandbox_perf_config):
    yield


MIXED_NAMES = [
    "grid:hpccg/mode=native,n=2,nx=8",
    "grid:hpccg/mode=intra,n=2,nx=8",
    "grid:restart/storm=cascade,policy=eager,seed=0",
    "grid:failures/kind=fixed,seed=0,fd=2.5e-05",
]


@pytest.fixture(scope="module")
def mixed_results():
    # one scenario per family plus a doomed point: a restart policy on
    # an app with no restartable factory fails at the sweep layer and,
    # under on_error="return", comes back as a failed row
    doomed = get_scenario("grid:hpccg/mode=intra,n=2,nx=8").replace(
        restart=RestartPolicy(delay=1e-4))
    scenarios = [get_scenario(n) for n in MIXED_NAMES] + [doomed]
    return sweep(scenarios, cache=False, on_error="return")


def test_grid_names_resolve_through_the_facade():
    for name in MIXED_NAMES:
        assert api_scenario(name) == get_scenario(name)


def test_mixed_family_sweep_preserves_order_and_failures(mixed_results):
    assert isinstance(mixed_results, ResultSet)
    assert len(mixed_results) == 5
    assert [r.ok for r in mixed_results] == [True] * 4 + [False]
    failed = mixed_results[-1]
    assert "no registered restartable factory" in failed.error
    assert failed.wall_time == 0.0 and failed.cache_key


def test_filter_by_scenario_fields_spans_families(mixed_results):
    intra = mixed_results.filter(mode="intra")
    # hpccg intra, restart point, failures point, doomed
    assert len(intra) == 4
    ok_intra = intra.filter(lambda r: r.ok)
    assert len(ok_intra) == 3
    stepsum = mixed_results.filter(app="stepsum")
    assert len(stepsum) == 1
    assert stepsum[0].scenario.restart is not None


def test_group_by_app_and_ok(mixed_results):
    by_app = mixed_results.group_by("app")
    assert set(by_app) == {"hpccg_kernels", "stepsum"}
    assert len(by_app["hpccg_kernels"]) == 4
    by_ok = mixed_results.group_by(lambda r: r.ok)
    assert len(by_ok[True]) == 4 and len(by_ok[False]) == 1


def test_to_csv_includes_error_column_only_with_failed_rows(
        mixed_results):
    rows = list(csv.DictReader(io.StringIO(mixed_results.to_csv())))
    assert len(rows) == 5
    assert "error" in rows[0]
    assert rows[0]["error"] == ""
    assert "no registered restartable factory" in rows[-1]["error"]
    ok_only = mixed_results.filter(lambda r: r.ok)
    header = next(csv.reader(io.StringIO(ok_only.to_csv())))
    assert "error" not in header


def test_to_json_round_trips_grid_rows(mixed_results):
    payload = json.loads(mixed_results.to_json())
    assert len(payload) == 5
    back = [RunResult.from_dict(rec) for rec in payload]
    assert [r.scenario for r in back] \
        == [r.scenario for r in mixed_results]
    assert back[-1].error == mixed_results[-1].error
