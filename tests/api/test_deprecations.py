"""Deprecation shims: each legacy entry point warns exactly once per
process and returns results identical to the facade path.

The whole module runs under ``-W error::DeprecationWarning``
(``filterwarnings`` mark): any deprecation warning outside an explicit
``pytest.warns`` block — e.g. from an import, or from a shim warning
*twice* — fails the test.
"""

import warnings

import pytest

import repro
from repro import _deprecation
from repro.apps.hpccg import KernelBenchConfig, hpccg_kernel_bench
from repro.experiments import run_mode, scenario_for
from repro.scenarios import Scenario, run_scenario

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")

TINY_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)
TINY = Scenario(app="hpccg_kernels", config=TINY_KB, n_logical=2,
                mode="native")

PAYLOAD_FIELDS = ("mode", "wall_time", "timers", "intra", "value",
                  "crashes")


def _count_deprecations(fn):
    """Run ``fn`` recording warnings; return (result, #deprecations)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn()
    return result, sum(1 for w in caught
                       if issubclass(w.category, DeprecationWarning))


def test_run_scenario_shim_warns_exactly_once_and_matches_facade():
    _deprecation.reset("repro.scenarios.run_scenario")
    legacy, n_first = _count_deprecations(lambda: run_scenario(TINY))
    assert n_first == 1
    again, n_second = _count_deprecations(lambda: run_scenario(TINY))
    assert n_second == 0                      # once per process, not call
    facade = repro.run(TINY)
    for field in PAYLOAD_FIELDS:
        assert getattr(legacy, field) == getattr(facade, field)
        assert getattr(again, field) == getattr(facade, field)


def test_run_mode_shim_warns_exactly_once_and_matches_facade():
    _deprecation.reset("repro.experiments.run_mode")
    call = lambda: run_mode("intra", hpccg_kernel_bench, 2, TINY_KB)
    legacy, n_first = _count_deprecations(call)
    assert n_first == 1
    _again, n_second = _count_deprecations(call)
    assert n_second == 0
    facade = repro.run(scenario_for("intra", hpccg_kernel_bench, 2,
                                    TINY_KB))
    for field in PAYLOAD_FIELDS:
        assert getattr(legacy, field) == getattr(facade, field)
    # the shim returns the facade's structured type outright
    assert isinstance(legacy, repro.RunResult)
    assert legacy.scenario == facade.scenario


def test_shim_warning_names_the_replacement():
    _deprecation.reset("repro.scenarios.run_scenario")
    with pytest.warns(DeprecationWarning, match=r"repro\.run"):
        run_scenario(TINY)


def test_facade_paths_never_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        repro.run(TINY)
        repro.sweep([TINY])
        repro.compare(TINY, modes=("native",))
        repro.experiments.fig5a(n_logical=2, base=TINY_KB)
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
