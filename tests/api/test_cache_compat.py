"""Cache compatibility across the API redesign: scenario-hash keys are
pinned, the stored type stays the scenario layer's ModeRun (never the
facade's RunResult), and entries written by the pre-facade code are
served warm, byte-untouched."""

import pickle

import pytest

import repro
from repro.apps.hpccg import KernelBenchConfig
from repro.scenarios import Scenario, scenario_cache_key
from repro.scenarios.run import ModeRun

TINY = Scenario(app="hpccg_kernels",
                config=KernelBenchConfig(nx=8, ny=8, nz=8, reps=1),
                n_logical=2, mode="native")

#: the key this exact scenario hashed to before the repro.api facade
#: existed — any change here silently orphans every user's .perf_cache
PINNED_KEY = ("37a6013e3f6f34ca63015aebcf6185219c2cf8816"
              "7fd930750128cfc70ef9a94")


def test_scenario_cache_key_is_pinned_across_the_redesign():
    assert scenario_cache_key(TINY) == PINNED_KEY


def test_facade_stores_mode_run_not_run_result(tmp_path):
    result = repro.run(TINY, cache=True, cache_dir=tmp_path)
    assert result.cache_key == PINNED_KEY
    path = tmp_path / PINNED_KEY[:2] / f"{PINNED_KEY}.pkl"
    assert path.is_file()
    stored = pickle.loads(path.read_bytes())
    assert type(stored) is ModeRun            # the pre-facade cache type
    assert stored.wall_time == result.wall_time
    assert stored.value == result.value


def test_pre_facade_cache_entry_served_warm_and_untouched(tmp_path):
    # plant an entry exactly as the pre-facade sweep driver stored it:
    # a pickled ModeRun under the scenario-hash shard path
    planted = ModeRun(mode="native", wall_time=123.25,
                      timers={"solve": 123.25}, intra={}, value=42.0)
    path = tmp_path / PINNED_KEY[:2] / f"{PINNED_KEY}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps(planted,
                                  protocol=pickle.HIGHEST_PROTOCOL))
    before = path.read_bytes()

    result = repro.run(TINY, cache=True, cache_dir=tmp_path)
    assert result.cache_hit is True
    assert result.wall_time == 123.25 and result.value == 42.0
    assert path.read_bytes() == before        # hits never rewrite bytes

    # the scenario-layer sweep path reads the same entry identically
    from repro.scenarios import sweep_scenarios
    legacy, = sweep_scenarios([TINY], cache=True, cache_dir=tmp_path)
    assert legacy == planted
    assert path.read_bytes() == before
