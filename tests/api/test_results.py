"""RunResult/ResultSet: lossless JSON round-trips, CSV golden output,
relational verbs, numpy-aware payload codec."""

import numpy as np
import pytest

from repro.analysis import results_table
from repro.intra import CopyStrategy
from repro.results import (ResultSet, RunResult, decode_payload,
                           encode_payload, payload_equal)
from repro.scenarios import CrashEvent, Scenario

S_NATIVE = Scenario(app="demo:prog", n_logical=2, mode="native")
S_INTRA = S_NATIVE.replace(mode="intra")


def _r_native() -> RunResult:
    return RunResult(scenario=S_NATIVE, mode="native", wall_time=0.25,
                     timers={"solve": 0.25, "spmv": 0.1}, intra={},
                     value=3.5, crashes=(), cache_key="00" * 32,
                     cache_hit=False)


def _r_intra() -> RunResult:
    return RunResult(scenario=S_INTRA, mode="intra", wall_time=0.125,
                     timers={"solve": 0.125},
                     intra={"tasks_executed": 8.0}, value=3.5,
                     crashes=(CrashEvent(0, 1, 1e-3),),
                     cache_key="11" * 32, cache_hit=True)


# ------------------------------------------------------- payload codec
@pytest.mark.parametrize("payload", [
    None, True, 3, 2.5, "text",
    (1.5, "a", None),
    [1, [2, 3]],
    {"k": (1, 2), "j": frozenset({"x", "y"})},
    np.float64(1.25),
    np.int32(-7),
    np.arange(6, dtype=np.float64).reshape(2, 3),
    (np.arange(4, dtype=np.float64), np.ones(3, dtype=np.int64)),
    CopyStrategy.ATOMIC,
])
def test_payload_round_trips_exactly(payload):
    back = decode_payload(encode_payload(payload))
    assert payload_equal(back, payload)
    if isinstance(payload, np.ndarray):
        assert back.dtype == payload.dtype and back.shape == payload.shape
    if isinstance(payload, np.generic):
        assert type(back) is type(payload)


def test_payload_rejects_unserializable():
    with pytest.raises(TypeError):
        encode_payload(object())


def test_payload_equal_is_type_strict():
    assert not payload_equal(True, 1)
    assert not payload_equal((1, 2), [1, 2])
    assert payload_equal({"a": np.ones(2)}, {"a": np.ones(2)})
    assert not payload_equal(np.ones(2), np.ones(3))
    assert not payload_equal(np.ones(2, dtype=np.float32),
                             np.ones(2, dtype=np.float64))


# ----------------------------------------------------------- RunResult
def test_run_result_json_round_trip_is_lossless():
    r = _r_intra()
    twin = RunResult.from_json(r.to_json())
    assert twin == r
    assert twin.scenario == r.scenario
    assert twin.crashes == (CrashEvent(0, 1, 1e-3),)
    assert twin.cache_key == r.cache_key and twin.cache_hit is True


def test_run_result_numpy_value_round_trips():
    value = (np.arange(5, dtype=np.float64), np.full(3, 2.0))
    r = RunResult(scenario=S_INTRA, mode="intra", wall_time=1e-3,
                  timers={}, intra={}, value=value)
    twin = RunResult.from_json(r.to_json())
    assert twin == r
    assert payload_equal(twin.value, value)


def test_run_result_get_resolves_result_scenario_config_fields():
    r = _r_intra()
    assert r.get("wall_time") == 0.125          # result field
    assert r.get("degree") == 2                 # scenario field
    assert r.get("n_crashes") == 1              # derived
    assert r.get("nope", default=None) is None
    with pytest.raises(AttributeError):
        r.get("nope")


# ----------------------------------------------------------- ResultSet
def test_result_set_orders_filters_groups_slices():
    rs = ResultSet([_r_native(), _r_intra()])
    assert len(rs) == 2
    assert [r.mode for r in rs] == ["native", "intra"]
    assert rs.filter(mode="intra")[0] == _r_intra()
    assert len(rs.filter(lambda r: r.wall_time < 0.2)) == 1
    assert rs.filter(mode="intra", n_logical=2)[0].mode == "intra"
    assert len(rs.filter(no_such_field=1)) == 0
    groups = rs.group_by("mode")
    assert list(groups) == ["native", "intra"]
    assert groups["native"][0] == _r_native()
    assert isinstance(rs[0:1], ResultSet) and len(rs[0:1]) == 1
    assert (rs[0:1] + rs[1:2]) == rs


def test_result_set_json_round_trip():
    rs = ResultSet([_r_native(), _r_intra()])
    twin = ResultSet.from_json(rs.to_json())
    assert twin == rs


def test_result_set_rejects_non_results():
    with pytest.raises(TypeError):
        ResultSet([42])


GOLDEN_CSV = """\
app,mode,n_logical,degree,spread,scheduler,wall_time,n_crashes,cache_hit,value,intra:tasks_executed,timer:solve,timer:spmv
demo:prog,native,2,2,1,,0.25,0,False,3.5,,0.25,0.1
demo:prog,intra,2,2,1,,0.125,1,True,3.5,8.0,0.125,
"""


def test_result_set_to_csv_golden():
    rs = ResultSet([_r_native(), _r_intra()])
    assert rs.to_csv() == GOLDEN_CSV
    # deterministic column order: base columns then sorted extras
    assert rs.columns()[-3:] == ["intra:tasks_executed", "timer:solve",
                                 "timer:spmv"]


def test_results_table_renders_from_records():
    rs = ResultSet([_r_native(), _r_intra()])
    table = results_table(rs, columns=("mode", "wall_time", "n_crashes"),
                          title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "mode" in lines[1] and "wall_time" in lines[1]
    assert any("native" in ln for ln in lines)
    assert any("intra" in ln for ln in lines)
