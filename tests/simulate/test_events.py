"""Tests for composite events (AllOf/AnyOf) — the MPI_Waitall/Waitany
analogues that the intra-parallelization update overlap relies on."""

import pytest

from repro.simulate import ConditionError, Simulator


def test_all_of_waits_for_slowest():
    sim = Simulator()

    def body(sim):
        evs = [sim.timeout(1.0, value="a"), sim.timeout(5.0, value="b"),
               sim.timeout(3.0, value="c")]
        vals = yield sim.all_of(evs)
        return (sim.now, vals)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (5.0, ["a", "b", "c"])


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def body(sim):
        vals = yield sim.all_of([])
        return (sim.now, vals)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (0.0, [])


def test_all_of_with_already_processed_children():
    sim = Simulator()

    def body(sim):
        e1 = sim.timeout(1.0, value=1)
        yield sim.timeout(2.0)  # e1 processed by now
        e2 = sim.timeout(1.0, value=2)
        vals = yield sim.all_of([e1, e2])
        return (sim.now, vals)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (3.0, [1, 2])


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()

    def body(sim):
        bad = sim.event()
        bad.fail(RuntimeError("replica crashed"), delay=1.0)
        slow = sim.timeout(100.0)
        try:
            yield sim.all_of([bad, slow])
        except ConditionError as e:
            return (sim.now, str(e.cause))

    p = sim.process(body(sim))
    sim.run()
    assert p.value[0] == 1.0
    assert "replica crashed" in p.value[1]


def test_any_of_returns_first():
    sim = Simulator()

    def body(sim):
        evs = [sim.timeout(4.0, value="slow"), sim.timeout(2.0, value="fast")]
        idx, val = yield sim.any_of(evs)
        return (sim.now, idx, val)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (2.0, 1, "fast")


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.any_of([])


def test_any_of_with_processed_child_fires_immediately():
    sim = Simulator()

    def body(sim):
        done = sim.timeout(0.5, value="x")
        yield sim.timeout(1.0)
        idx, val = yield sim.any_of([sim.timeout(99.0), done])
        return (sim.now, idx, val)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (1.0, 1, "x")


def test_any_of_failure_propagates():
    sim = Simulator()

    def body(sim):
        bad = sim.event()
        bad.fail(ValueError("nope"), delay=1.0)
        try:
            yield sim.any_of([bad, sim.timeout(50.0)])
        except ConditionError as e:
            return str(e.cause)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == "nope"


def test_all_of_same_time_children():
    sim = Simulator()

    def body(sim):
        evs = [sim.timeout(3.0, value=i) for i in range(10)]
        vals = yield sim.all_of(evs)
        return vals

    p = sim.process(body(sim))
    sim.run()
    assert p.value == list(range(10))


def test_nested_conditions():
    sim = Simulator()

    def body(sim):
        inner = sim.all_of([sim.timeout(1.0, value="i1"),
                            sim.timeout(2.0, value="i2")])
        outer = sim.all_of([inner, sim.timeout(3.0, value="o")])
        vals = yield outer
        return (sim.now, vals)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (3.0, [["i1", "i2"], "o"])
