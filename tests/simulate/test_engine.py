"""Unit tests for the discrete-event kernel: clock, processes, joins."""

import pytest

from repro.simulate import (DeadlockError, NotProcessError, ProcessKilled,
                            Simulator, StaleEventError, UnhandledFailure)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(2.5)
        yield sim.timeout(1.5)
        return sim.now

    p = sim.process(body(sim))
    sim.run()
    assert p.value == 4.0
    assert sim.now == 4.0


def test_zero_delay_timeout():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(0.0)
        return "ok"

    p = sim.process(body(sim))
    sim.run()
    assert p.value == "ok"
    assert sim.now == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()

    def body(sim):
        got = yield sim.timeout(1.0, value="payload")
        return got

    p = sim.process(body(sim))
    sim.run()
    assert p.value == "payload"


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(NotProcessError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_is_an_error():
    sim = Simulator()

    def body(sim):
        yield 42  # not an Event

    sim.process(body(sim))
    with pytest.raises(Exception, match="must yield Event"):
        sim.run()


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def ticker(sim, name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.process(ticker(sim, "a", 1.0))
    sim.process(ticker(sim, "b", 1.0))
    sim.run()
    # Same-time events process in scheduling order: a before b each tick.
    assert log == [(1.0, "a"), (1.0, "b"), (2.0, "a"), (2.0, "b"),
                   (3.0, "a"), (3.0, "b")]


def test_join_returns_child_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5.0)
        return 123

    def parent(sim):
        c = sim.process(child(sim))
        got = yield c
        return (sim.now, got)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == (5.0, 123)


def test_join_already_finished_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return "early"

    def parent(sim, c):
        yield sim.timeout(10.0)
        got = yield c  # child finished long ago
        return got

    c = sim.process(child(sim))
    p = sim.process(parent(sim, c))
    sim.run()
    assert p.value == "early"
    assert sim.now == 10.0


def test_event_triggered_twice_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(StaleEventError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()

    def body(sim, ev):
        try:
            yield ev
        except ValueError as e:
            return f"caught {e}"

    ev = sim.event()
    p = sim.process(body(sim, ev))
    ev.fail(ValueError("boom"), delay=1.0)
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_failed_event_aborts_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listens"))
    with pytest.raises(UnhandledFailure):
        sim.run()


def test_defused_failed_event_is_silent():
    sim = Simulator()
    ev = sim.event()
    ev.defused = True
    ev.fail(RuntimeError("expected"))
    sim.run()  # no raise


def test_run_until_stops_clock():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(100.0)

    sim.process(body(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run()
    assert sim.now == 100.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(Exception):
        sim.run(until=1.0)


def test_deadlock_detection():
    sim = Simulator()

    def body(sim):
        yield sim.event()  # never triggered

    sim.process(body(sim), name="stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        sim.run(detect_deadlock=True)


def test_kill_process_runs_finally():
    sim = Simulator()
    cleaned = []

    def body(sim):
        try:
            yield sim.timeout(100.0)
        finally:
            cleaned.append(sim.now)

    def killer(sim, victim):
        yield sim.timeout(3.0)
        victim.kill("injected crash")

    victim = sim.process(body(sim))
    sim.process(killer(sim, victim))
    sim.run()
    assert cleaned == [3.0]
    assert victim.killed
    assert not victim.is_alive
    assert isinstance(victim.exception, ProcessKilled)


def test_kill_is_idempotent():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(10.0)

    p = sim.process(body(sim))

    def killer(sim):
        yield sim.timeout(1.0)
        p.kill()
        p.kill()

    sim.process(killer(sim))
    sim.run()
    assert p.killed


def test_join_on_killed_process_raises_processkilled():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(10.0)

    def parent(sim, c):
        try:
            yield c
        except ProcessKilled:
            return "observed crash"

    c = sim.process(child(sim))
    p = sim.process(parent(sim, c))

    def killer(sim):
        yield sim.timeout(2.0)
        c.kill()

    sim.process(killer(sim))
    sim.run()
    assert p.value == "observed crash"


def test_trace_hook_sees_events():
    seen = []
    sim = Simulator(trace=lambda t, ev: seen.append(t))

    def body(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    sim.process(body(sim))
    sim.run()
    assert 1.0 in seen and 3.0 in seen


def test_peek_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_yield_from_subroutine():
    sim = Simulator()

    def sub(sim):
        yield sim.timeout(2.0)
        return "sub-result"

    def body(sim):
        r = yield from sub(sim)
        return (sim.now, r)

    p = sim.process(body(sim))
    sim.run()
    assert p.value == (2.0, "sub-result")
