"""Batched event dispatch: ``step()`` same-timestamp batches,
``run_batched()`` wake coalescing, ``sleep_until()`` exact scheduling.

The batched paths are order-exact optimizations — every test here pins
equivalence with the unbatched engine (``tests/simulate/
test_determinism.py`` does the same on a full failure-injection
scenario)."""

import pytest

from repro.simulate import (DeadlockError, Simulator, SimulationError,
                            UnhandledFailure)


def _trace_run(run_name, bodies, **run_kw):
    """Run ``bodies(sim)`` under the given run method; return the
    processed-event trace and the final clock."""
    trace = []
    sim = Simulator(trace=lambda t, ev: trace.append(
        (t, type(ev).__name__, ev.label)))
    procs = bodies(sim)
    getattr(sim, run_name)(**run_kw)
    return trace, sim.now, procs


def _sleep_chain(sim, n, dt):
    for _ in range(n):
        yield sim.sleep(dt)
    return sim.now


def test_step_drains_same_time_batch():
    sim = Simulator()
    fired = []
    for i in range(3):
        sim.event(f"e{i}").succeed(i, delay=1.0).add_callback(
            lambda ev: fired.append(ev._value))
    sim.event("later").succeed("x", delay=2.0).add_callback(
        lambda ev: fired.append(ev._value))
    sim.step()
    # all three t=1 events in one step, in scheduling order; t=2 queued
    assert fired == [0, 1, 2]
    assert sim.now == 1.0
    sim.step()
    assert fired == [0, 1, 2, "x"]
    assert sim.now == 2.0


def test_step_includes_zero_delay_followups():
    sim = Simulator()
    order = []

    def chain(ev):
        order.append("first")
        sim.event("follow").succeed(delay=0.0).add_callback(
            lambda e: order.append("follow"))

    sim.event("head").succeed(delay=1.0).add_callback(chain)
    sim.step()
    # the zero-delay follow-up lands at the same timestamp => same batch
    assert order == ["first", "follow"]


def test_run_batched_matches_run_trace():
    def bodies(sim):
        return [sim.process(_sleep_chain(sim, 50, 0.1), name="fast"),
                sim.process(_sleep_chain(sim, 5, 1.0), name="slow")]

    trace_a, now_a, _ = _trace_run("run", bodies)
    trace_b, now_b, _ = _trace_run("run_batched", bodies)
    assert trace_a == trace_b
    assert now_a == now_b


def test_run_batched_coalesces_sole_earliest_wakes():
    """The defer slot engages (no heap growth) yet results are exact."""
    sim = Simulator()
    p = sim.process(_sleep_chain(sim, 1000, 0.25))
    sim.run_batched()
    assert p.value == 250.0
    assert sim.now == 250.0
    assert sim._defer is None and not sim._defer_armed


def test_run_batched_until_preserves_pending_wake():
    sim = Simulator()
    p = sim.process(_sleep_chain(sim, 10, 1.0))
    sim.run_batched(until=4.5)
    assert sim.now == 4.5
    assert p.is_alive
    sim.run_batched()          # resume to completion
    assert p.value == 10.0


def test_run_batched_until_in_past_rejected():
    sim = Simulator()
    sim.process(_sleep_chain(sim, 3, 1.0))
    sim.run_batched()
    with pytest.raises(SimulationError):
        sim.run_batched(until=1.0)


def test_run_batched_interleaves_multiple_processes_exactly():
    def bodies(sim):
        # incommensurate periods => wakes alternate between processes,
        # exercising defer-requeue on every schedule
        return [sim.process(_sleep_chain(sim, 30, 0.7), name="a"),
                sim.process(_sleep_chain(sim, 30, 1.1), name="b"),
                sim.process(_sleep_chain(sim, 30, 1.3), name="c")]

    trace_a, now_a, _ = _trace_run("run", bodies)
    trace_b, now_b, _ = _trace_run("run_batched", bodies)
    assert trace_a == trace_b
    assert now_a == now_b


def test_run_batched_same_time_ordering_with_ties():
    """Equal wake times process in scheduling order, batched or not."""
    def bodies(sim):
        return [sim.process(_sleep_chain(sim, 20, 0.5), name=f"p{i}")
                for i in range(4)]

    trace_a, now_a, _ = _trace_run("run", bodies)
    trace_b, now_b, _ = _trace_run("run_batched", bodies)
    assert trace_a == trace_b
    assert now_a == now_b


def test_run_batched_deadlock_detection():
    sim = Simulator()

    def stuck(sim):
        yield sim.event("never")

    sim.process(stuck(sim), name="stuck")
    with pytest.raises(DeadlockError):
        sim.run_batched(detect_deadlock=True)


def test_run_batched_unhandled_failure_propagates():
    sim = Simulator()

    def boom(sim):
        yield sim.sleep(1.0)
        ev = sim.event("bad")
        ev.fail(RuntimeError("boom"))
        yield sim.sleep(5.0)   # the failed event fires first

    sim.process(boom(sim))
    with pytest.raises(UnhandledFailure):
        sim.run_batched()
    # the parked wake was flushed back; the engine is still consistent
    assert sim._defer is None and not sim._defer_armed


def test_run_batched_falls_back_when_not_fast():
    sim = Simulator(fast=False)
    p = sim.process(_sleep_chain(sim, 10, 1.0))
    sim.run_batched()
    assert p.value == 10.0


def test_abandoned_sleep_still_fires_on_time():
    """A sleep taken but never yielded must keep its place in virtual
    time (it is pushed back to the heap, not lost in the defer slot)."""
    sim = Simulator()
    seen = []

    def body(sim):
        sim.sleep(1.0)                   # taken, never yielded
        yield sim.sleep(3.0)
        seen.append(sim.now)
        return sim.now

    p = sim.process(body(sim))
    sim.run_batched()
    assert p.value == 3.0
    assert seen == [3.0]


def test_sleep_until_exact_time():
    sim = Simulator()

    def body(sim):
        yield sim.sleep(1.5)
        yield sim.sleep_until(4.0)
        return sim.now

    p = sim.process(body(sim))
    sim.run_batched()
    assert p.value == 4.0


def test_sleep_until_past_rejected():
    sim = Simulator()

    def body(sim):
        yield sim.sleep(2.0)
        with pytest.raises(SimulationError):
            sim.sleep_until(1.0)
        return "ok"

    p = sim.process(body(sim))
    sim.run()
    assert p.value == "ok"


def test_peek_sees_parked_wake():
    """peek() must report the deferred wake, not just the heap top."""
    sim = Simulator()
    peeks = []

    def body(sim):
        t = sim.sleep(1.0)
        peeks.append(sim.peek())
        yield t
        return sim.now

    p = sim.process(body(sim))
    sim.run_batched()
    assert peeks == [1.0]
    assert p.value == 1.0


def test_timeout_pool_recycles_through_batched_loop():
    # white-box check of the python engine's defer-cell recycling; the
    # array backend pools wake rows in its own free list, so pin the
    # backend rather than inherit REPRO_ENGINE
    sim = Simulator(backend="python")
    sim.process(_sleep_chain(sim, 500, 1.0))
    sim.run_batched()
    # deferred wakes must feed the free list like heap-popped ones
    assert len(sim._timeout_pool) >= 1
