"""Differential proof: the array engine backend is bit-identical to the
python oracle across the registered scenario families.

Each scenario runs twice — once per backend, fresh (no sweep cache) —
and the full :class:`~repro.scenarios.run.ModeRun` payload must match
exactly: wall-clock virtual times, per-region timers, intra-runtime
statistics, application values and materialized crash tuples.  On top
of that, the :class:`repro.results.RunResult` JSON serialization must
be byte-identical, and the sweep cache must treat the backend as a
pure execution detail (same keys, reusable bytes in both directions).

The families cover the repo's experiment surface: fig5 (HPCCG kernels
+ solver, native/sdr/intra), fig6 (AMG, GTC, MiniGhost), the PR 6
production failure universes (inhomogeneous-Poisson / maintenance /
cascading storms) and scenario-expressible restart.
"""

from __future__ import annotations

import pytest

from repro.api import run as api_run
from repro.apps.amg import AmgConfig
from repro.apps.gtc import GtcConfig
from repro.apps.hpccg import HpccgConfig, KernelBenchConfig
from repro.apps.minighost import MiniGhostConfig
from repro.scenarios import (CascadingFailures, ConstantRate,
                             FixedFailures, InhomogeneousPoissonFailures,
                             MaintenanceWindowFailures, PoissonFailures,
                             RateSpec, RestartPolicy, Scenario,
                             SinusoidRate, scenario_cache_key)
from repro.scenarios.run import _run_scenario
from repro.simulate import set_engine_backend

TINY_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)
TINY_HPCCG = HpccgConfig(nx=8, ny=8, nz=8, max_iter=2,
                         intra_kernels=frozenset({"ddot", "spmv"}))

STORM_IPOISSON = InhomogeneousPoissonFailures(
    rates=RateSpec((ConstantRate(30.0),
                    SinusoidRate(mean=40.0, amplitude=40.0,
                                 period=2e-3))),
    seed=7, horizon=4e-3)
STORM_MAINTENANCE = MaintenanceWindowFailures(
    base_rate=20.0, window_rate=800.0, period=2e-3, window=3e-4,
    offset=5e-4, seed=7, horizon=4e-3)
STORM_CASCADE = CascadingFailures(
    rate=60.0, multiplier=20.0, window=1e-3, neighbor_distance=1,
    base=FixedFailures(((1, 0, 1e-3),)), seed=7, horizon=4e-3)

FAMILIES = {
    # fig5a: kernel benchmarks, native and intra placement
    "fig5a-native": Scenario(app="hpccg_kernels", config=TINY_KB,
                             n_logical=2, mode="native"),
    "fig5a-intra": Scenario(app="hpccg_kernels", config=TINY_KB,
                            n_logical=2, mode="intra"),
    # fig5b: the HPCCG solver, clean and crash-injected, plus sdr
    "fig5b-clean": Scenario(app="hpccg", config=TINY_HPCCG,
                            n_logical=2, mode="intra"),
    "fig5b-crash": Scenario(app="hpccg", config=TINY_HPCCG,
                            n_logical=2, mode="intra",
                            failures=FixedFailures(((0, 1, 1e-5),))),
    "fig5b-sdr": Scenario(app="hpccg", config=TINY_HPCCG,
                          n_logical=2, mode="sdr",
                          failures=PoissonFailures(rate=3e4, seed=13,
                                                   horizon=2e-3)),
    # fig6: the other mini-apps
    "fig6-amg": Scenario(app="amg_pcg",
                         config=AmgConfig(nx=8, ny=8, nz=8, max_iter=2),
                         n_logical=2, mode="intra"),
    "fig6-gtc": Scenario(app="gtc",
                         config=GtcConfig(particles_per_rank=256,
                                          cells_per_rank=16, steps=2),
                         n_logical=2, mode="intra"),
    "fig6-minighost": Scenario(app="minighost",
                               config=MiniGhostConfig(nx=8, ny=8, nz=4,
                                                      steps=2),
                               n_logical=2, mode="intra"),
    # PR 6 failure universes (storm family)
    "storm-ipoisson": Scenario(app="hpccg", config=TINY_HPCCG,
                               n_logical=2, mode="intra",
                               failures=STORM_IPOISSON),
    "storm-maintenance": Scenario(app="hpccg", config=TINY_HPCCG,
                                  n_logical=2, mode="intra",
                                  failures=STORM_MAINTENANCE),
    # scenario-expressible restart under a cascading storm
    "restart-cascade": Scenario(app="stepsum", n_logical=2,
                                mode="intra", failures=STORM_CASCADE,
                                restart=RestartPolicy(delay=2e-4)),
}


def _run_on(backend: str, scenario: Scenario):
    prev = set_engine_backend(backend)
    try:
        return _run_scenario(scenario)
    finally:
        set_engine_backend(prev)


@pytest.mark.parametrize("family", sorted(FAMILIES),
                         ids=sorted(FAMILIES))
def test_mode_run_payload_bit_identical(family):
    scenario = FAMILIES[family]
    oracle = _run_on("python", scenario)
    array = _run_on("array", scenario)
    # dataclass equality first (gives a readable diff on failure) ...
    assert array == oracle
    # ... then repr equality, which also pins float formatting and
    # container types bit-for-bit
    assert repr(array) == repr(oracle)


def test_run_result_json_bytes_identical(tmp_path):
    scenario = FAMILIES["fig5b-crash"]
    prev = set_engine_backend("python")
    try:
        oracle = api_run(scenario, cache=False)
        set_engine_backend("array")
        array = api_run(scenario, cache=False)
    finally:
        set_engine_backend(prev)
    assert array.to_json() == oracle.to_json()


def test_backend_is_cache_neutral(tmp_path):
    """The backend must not leak into cache keys, and cached bytes
    must be interchangeable: a sweep can mix cached python-backend
    results with fresh array-backend runs (and vice versa)."""
    scenario = FAMILIES["fig5a-intra"]
    assert scenario_cache_key(scenario) == scenario_cache_key(scenario)

    prev = set_engine_backend("python")
    try:
        first = api_run(scenario, cache=True, cache_dir=tmp_path)
        set_engine_backend("array")
        second = api_run(scenario, cache=True, cache_dir=tmp_path)
    finally:
        set_engine_backend(prev)
    assert first.cache_key == second.cache_key
    assert first.cache_hit is False
    assert second.cache_hit is True          # python-written, array-read
    # payloads equal regardless of which backend wrote the cache entry
    assert (second.wall_time, second.timers, second.intra,
            second.value) == (first.wall_time, first.timers,
                              first.intra, first.value)
