"""Engine-backend seam: selection, semantics parity, and the array
backend's edge cases.

Selection mirrors the other engine toggles: ``Simulator(backend=...)``
wins over :func:`set_engine_backend`, which wins over ``REPRO_ENGINE``
(parsed defensively — a garbage value warns and falls back to the
python oracle).  The behavioral tests run the same model under both
backends and assert identical observables; the sticky-wake edge cases
target the array fire loop's reuse protocol specifically.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import pytest

from repro.simulate import (DeadlockError, ProcessKilled, Resource,
                            SimulationError, Simulator, Store,
                            ENGINE_BACKENDS, get_engine_backend,
                            set_engine_backend)
from repro.simulate.backends import _env_engine

BACKENDS = list(ENGINE_BACKENDS)


# -- selection ---------------------------------------------------------

def test_backend_names():
    assert ENGINE_BACKENDS == ("python", "array")


def test_explicit_backend_param():
    assert Simulator(backend="python").backend == "python"
    sim = Simulator(backend="array")
    assert sim.backend == "array"
    # the array backend shadows the queue entry points with instance
    # attributes (zero-dispatch-cost seam)
    assert "run" in sim.__dict__ and "sleep" in sim.__dict__


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown engine backend"):
        Simulator(backend="simd")
    with pytest.raises(ValueError, match="unknown engine backend"):
        set_engine_backend("simd")


def test_module_default_toggle_mirrors_set_section_batching():
    prev = set_engine_backend("array")
    try:
        assert get_engine_backend() == "array"
        assert Simulator().backend == "array"
        # explicit always wins over the module default
        assert Simulator(backend="python").backend == "python"
    finally:
        set_engine_backend(prev)
    assert Simulator().backend == prev


def test_fast_false_forces_python_oracle():
    """``fast=False`` is the seed-equivalent baseline loop — the oracle
    cannot be swapped out from under the benchmarks."""
    sim = Simulator(fast=False, backend="array")
    assert sim.backend == "python"
    assert "run" not in sim.__dict__


def test_env_var_selects_backend():
    code = ("import repro.simulate as s; "
            "print(s.Simulator().backend)")
    env = dict(os.environ, REPRO_ENGINE="array",
               PYTHONPATH="src")
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == "array"


def test_garbage_env_var_warns_and_falls_back():
    """A hostile ``REPRO_ENGINE`` must neither raise at import nor
    change semantics — warn and use the python oracle (the
    ``REPRO_WORKERS`` defensive-parse contract)."""
    code = ("import warnings; warnings.simplefilter('error'); "
            "import repro.simulate as s; "
            "print(s.Simulator().backend)")
    env = dict(os.environ, REPRO_ENGINE="turbo9000", PYTHONPATH="src")
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True)
    # with warnings-as-errors the import itself must still not die
    # silently wrong — assert the warning fired and named the value
    assert "turbo9000" in out.stderr
    assert "RuntimeWarning" in out.stderr


def test_env_parse_helper():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        os.environ["_REPRO_ENGINE_TEST"] = "bogus"
        try:
            assert _env_engine("_REPRO_ENGINE_TEST") == "python"
        finally:
            del os.environ["_REPRO_ENGINE_TEST"]
    assert any("bogus" in str(w.message) for w in caught)
    assert _env_engine("_REPRO_ENGINE_UNSET") == "python"


# -- behavioral parity -------------------------------------------------

def _collect(backend, body_factory, **sim_kw):
    sim = Simulator(backend=backend, **sim_kw)
    out = body_factory(sim)
    return sim, out


@pytest.mark.parametrize("backend", BACKENDS)
def test_sleep_chain_clock(backend):
    sim = Simulator(backend=backend)
    log = []

    def body(sim):
        for _ in range(5):
            yield sim.sleep(1.5)
            log.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert log == [1.5, 3.0, 4.5, 6.0, 7.5]
    assert sim.now == 7.5


@pytest.mark.parametrize("backend", BACKENDS)
def test_integer_clock_stays_integral(backend):
    """Consolidation must not launder int times through floats (trace
    ``repr(time)`` bit-identity depends on it).  ``sleep_until`` with an
    int target is the oracle's int-time entry point (``sleep`` adds to
    the float starting clock, so it yields floats under both engines)."""
    sim = Simulator(backend=backend)
    times = []

    def body(sim):
        for t in (2, 5, 9):
            yield sim.sleep_until(t)
            times.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert [repr(t) for t in times] == ["2", "5", "9"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_sleep_until_exact_time(backend):
    """``sleep_until(t)`` wakes at exactly ``t`` — not at
    ``now + (t - now)``, which is a different float."""
    target = 0.30000000000000004  # 0.1 + 0.2: not reachable via now+delta
    sim = Simulator(backend=backend)
    woke = []

    def body(sim):
        yield sim.sleep(0.1)
        yield sim.sleep_until(target)
        woke.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert repr(woke[0]) == repr(target)


@pytest.mark.parametrize("backend", BACKENDS)
def test_same_time_events_fire_in_schedule_order(backend):
    sim = Simulator(backend=backend)
    order = []

    def body(sim, tag, delay):
        yield sim.sleep(delay)
        order.append(tag)

    for tag, delay in (("a", 1.0), ("b", 0.5), ("c", 1.0), ("d", 0.5)):
        sim.process(body(sim, tag, delay))
    sim.run()
    # ties break by scheduling order: b before d (0.5), a before c (1.0)
    assert order == ["b", "d", "a", "c"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_until_stops_clock_between_events(backend):
    sim = Simulator(backend=backend)

    def body(sim):
        yield sim.sleep(10.0)

    sim.process(body(sim))
    sim.run(until=3.0)
    assert sim.now == 3.0
    assert sim.peek() == 10.0
    sim.run()
    assert sim.now == 10.0
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_step_drains_one_timestamp(backend):
    sim = Simulator(backend=backend)
    order = []

    def spawner(sim):
        yield sim.sleep(1.0)
        order.append("parent")
        # zero-delay follow-on at the same timestamp must fire in the
        # same step() call
        ev = sim.event("follow")
        ev.succeed("v")
        got = yield ev
        order.append(("follow", got, sim.now))

    sim.process(spawner(sim))
    sim.step()   # start events at t=0
    sim.step()   # t=1 batch including the zero-delay follow-on
    assert order == ["parent", ("follow", "v", 1.0)]
    with pytest.raises(IndexError):
        sim.step()


@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_sleeping_process(backend):
    sim = Simulator(backend=backend)
    woke = []

    def body(sim):
        yield sim.sleep(5.0)
        woke.append(sim.now)

    p = sim.process(body(sim))
    sim.run(until=1.0)
    p.kill()
    sim.run()
    assert woke == []
    assert p.killed
    assert sim.now == 5.0  # the orphan row still advances the clock


@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_propagates_to_joiner(backend):
    sim = Simulator(backend=backend)
    caught = []

    def victim(sim):
        yield sim.sleep(5.0)

    def joiner(sim, p):
        try:
            yield p
        except ProcessKilled as exc:
            caught.append(str(exc))

    p = sim.process(victim(sim), name="victim")
    sim.process(joiner(sim, p))
    sim.run(until=1.0)
    p.kill()
    sim.run()
    assert len(caught) == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_process_failure_propagates(backend):
    sim = Simulator(backend=backend)

    def boom(sim):
        yield sim.sleep(1.0)
        raise ValueError("boom")

    sim.process(boom(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


@pytest.mark.parametrize("backend", BACKENDS)
def test_exception_keeps_same_time_peers_fireable(backend):
    """An exception mid-batch must leave the unfired same-time rows
    queued (the oracle pops one event at a time; the array fire loop
    pushes the remainder back)."""
    sim = Simulator(backend=backend)
    ran = []

    def boom(sim):
        yield sim.sleep(1.0)
        raise ValueError("boom")

    def peer(sim, tag):
        yield sim.sleep(1.0)
        ran.append(tag)

    sim.process(boom(sim))
    sim.process(peer(sim, "x"))
    sim.process(peer(sim, "y"))
    with pytest.raises(ValueError):
        sim.run()
    sim.run()
    assert ran == ["x", "y"]
    assert sim.now == 1.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_resources_and_store(backend):
    sim = Simulator(backend=backend)
    log = []

    res = Resource(sim, capacity=1, name="r")
    store = Store(sim, name="s")

    def holder(sim):
        yield from res.hold(2.0)
        log.append(("released", sim.now))

    def contender(sim):
        yield res.request()
        log.append(("acquired", sim.now))
        res.release()
        store.put("token")

    def consumer(sim):
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(holder(sim))
    sim.process(contender(sim))
    sim.process(consumer(sim))
    sim.run()
    assert log == [("released", 2.0), ("acquired", 2.0),
                   ("got", "token", 2.0)]


@pytest.mark.parametrize("backend", BACKENDS)
def test_conditions(backend):
    sim = Simulator(backend=backend)
    got = []

    def body(sim):
        t1 = sim.timeout(1.0, value="one")
        t2 = sim.timeout(2.0, value="two")
        first = yield sim.any_of([t1, t2])
        got.append((sim.now, first))
        rest = yield sim.all_of([t2])
        got.append((sim.now, rest))

    sim.process(body(sim))
    sim.run()
    assert got == [(1.0, (0, "one")), (2.0, ["two"])]


# -- sticky-wake edge cases (array fire-loop reuse protocol) -----------

@pytest.mark.parametrize("backend", BACKENDS)
def test_sleep_token_held_and_yielded_later(backend):
    """Holding the token across other work must not confuse the pool:
    the row is observable, so the array backend takes the cold path."""
    sim = Simulator(backend=backend)
    log = []

    def body(sim):
        t = sim.sleep(1.0)
        yield t
        log.append(sim.now)
        assert t.processed
        yield sim.sleep(1.0)
        log.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert log == [1.0, 2.0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_sleep_then_yield_other_event_no_spurious_wake(backend):
    """A process that takes a sleep token but yields a *different*
    event must not be woken by the abandoned row (the array backend
    hands the fired row to sleep() still bound — the binding must be
    stripped when the process yields something else)."""
    sim = Simulator(backend=backend)
    woke = []

    def body(sim, ev):
        yield sim.sleep(1.0)          # primes the sticky hand-off
        sim.sleep(2.0)                # taken, abandoned (fires at 3.0)
        got = yield ev                # real wait: fires at 5.0
        woke.append((sim.now, got))

    ev = sim.event("gate")
    sim.process(body(sim, ev))

    def trigger(sim, ev):
        yield sim.sleep(5.0)
        ev.succeed("go")

    sim.process(trigger(sim, ev))
    sim.run()
    assert woke == [(5.0, "go")]


@pytest.mark.parametrize("backend", BACKENDS)
def test_sleep_abandoned_then_reyielded(backend):
    """An abandoned-then-reyielded token still works: the stripped row
    rebinds when finally yielded (before it fires)."""
    sim = Simulator(backend=backend)
    woke = []

    def body(sim):
        yield sim.sleep(1.0)
        t = sim.sleep(4.0)            # fires at 5.0
        yield sim.sleep(1.0)          # meanwhile, a nested wait
        yield t
        woke.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert woke == [5.0]


@pytest.mark.parametrize("backend", BACKENDS)
def test_final_sleep_then_return(backend):
    """sleep() consumed, process returns without yielding: the staged
    row becomes a waiterless no-op (oracle: an unyielded timeout)."""
    sim = Simulator(backend=backend)

    def body(sim):
        yield sim.sleep(1.0)
        sim.sleep(3.0)
        return "done"

    p = sim.process(body(sim))
    sim.run()
    assert p.value == "done"
    assert sim.now == 4.0             # the orphan still drains


@pytest.mark.parametrize("backend", BACKENDS)
def test_zero_delay_sleep_chain(backend):
    sim = Simulator(backend=backend)
    ticks = []

    def body(sim):
        for i in range(4):
            yield sim.sleep(0.0)
            ticks.append((i, sim.now))

    sim.process(body(sim))
    sim.run()
    assert ticks == [(0, 0.0), (1, 0.0), (2, 0.0), (3, 0.0)]


# -- peek()/DeadlockError parity on pooled-row-only queues -------------
# (the satellite bugfix: both backends must agree when the queue holds
# nothing but pooled timeout rows — e.g. after their waiters were
# killed — including what peek() reports and how deadlock is detected)

def _orphan_queue(backend):
    sim = Simulator(backend=backend)

    def sleeper(sim):
        yield sim.sleep(5.0)

    def stuck(sim, ev):
        yield ev

    p = sim.process(sleeper(sim), name="sleeper")
    ev = sim.event("never")
    sim.process(stuck(sim, ev), name="stuck")
    sim.run(until=1.0)
    p.kill()
    return sim


def test_peek_agrees_on_orphan_only_queue():
    peeks = {}
    for backend in BACKENDS:
        sim = _orphan_queue(backend)
        # drain the kill-propagation event; only the orphan wake row
        # (waiterless pooled timeout) remains queued
        sim.run(until=2.0)
        peeks[backend] = sim.peek()
    assert peeks["python"] == peeks["array"] == 5.0


def test_deadlock_reporting_agrees_on_orphan_only_queue():
    outcomes = {}
    for backend in BACKENDS:
        sim = _orphan_queue(backend)
        with pytest.raises(DeadlockError) as exc:
            sim.run(detect_deadlock=True)
        outcomes[backend] = (str(exc.value), sim.now)
    assert outcomes["python"] == outcomes["array"]
    msg, now = outcomes["python"]
    assert "stuck" in msg and "sleeper" not in msg
    assert now == 5.0                 # orphan rows still advance time


def test_peek_sees_unconsolidated_rows():
    """Rows scheduled but not yet run (staged, for the array backend)
    are part of the queue and must be visible to peek()."""
    for backend in BACKENDS:
        sim = Simulator(backend=backend)
        sim.timeout(3.0)
        assert sim.peek() == 3.0, backend
    sim = Simulator()
    assert sim.peek() == float("inf")
