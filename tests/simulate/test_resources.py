"""Tests for Resource (FIFO server) and Store (FIFO buffer)."""

import pytest

from repro.simulate import Resource, Simulator, Store


def test_resource_serializes_holders():
    sim = Simulator()
    nic = Resource(sim, capacity=1, name="nic")
    done = []

    def sender(sim, name, hold):
        yield from nic.hold(hold)
        done.append((sim.now, name))

    sim.process(sender(sim, "m1", 2.0))
    sim.process(sender(sim, "m2", 3.0))
    sim.process(sender(sim, "m3", 1.0))
    sim.run()
    # FIFO: m1 [0,2], m2 [2,5], m3 [5,6]
    assert done == [(2.0, "m1"), (5.0, "m2"), (6.0, "m3")]


def test_resource_capacity_two_runs_pairs():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def user(sim, name):
        yield from res.hold(4.0)
        done.append((sim.now, name))

    for n in ("a", "b", "c"):
        sim.process(user(sim, n))
    sim.run()
    assert done == [(4.0, "a"), (4.0, "b"), (8.0, "c")]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_queue_length_visible():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    probes = []

    def holder(sim):
        yield from res.hold(10.0)

    def waiter(sim):
        req = res.request()
        yield req
        res.release()

    def probe(sim):
        yield sim.timeout(1.0)
        probes.append((res.in_use, res.queue_length))

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.process(probe(sim))
    sim.run()
    assert probes == [(1, 1)]


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")
    assert len(store) == 2

    def body(sim):
        a = yield store.get()
        b = yield store.get()
        return [a, b]

    p = sim.process(body(sim))
    sim.run()
    assert p.value == ["x", "y"]  # FIFO order


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def getter(sim):
        item = yield store.get()
        return (sim.now, item)

    def putter(sim):
        yield sim.timeout(5.0)
        store.put("late")

    p = sim.process(getter(sim))
    sim.process(putter(sim))
    sim.run()
    assert p.value == (5.0, "late")


def test_store_getters_served_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, name):
        item = yield store.get()
        got.append((name, item))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put(1)
        store.put(2)

    sim.process(getter(sim, "first"))
    sim.process(getter(sim, "second"))
    sim.process(putter(sim))
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_kill_between_grant_and_resume_releases_slot():
    """A holder killed in the same timestep its queued grant fired must
    not leak the slot.

    The race: ``release()`` succeeds the next queued request (slot
    assigned), then the granted process is killed *before* its resume
    callback runs — it dies parked on ``yield req`` inside ``hold()``,
    past the point where the dead-waiter sweep could skip it.  This
    leaked NIC slots under crash schedules (every later sender queued
    forever → deadlock)."""
    sim = Simulator()
    res = Resource(sim, capacity=1, name="nic")
    first = res.request()                       # slot taken synchronously
    assert first.triggered and res.in_use == 1

    def victim(sim):
        yield from res.hold(1.0)

    p = sim.process(victim(sim))
    sim.run(until=0.0)                          # victim parks in the queue
    assert res.queue_length == 1

    res.release()                               # grant fires for victim...
    p.kill("crashed before resuming")           # ...who dies un-resumed
    assert res.in_use == 0
    assert res.queue_length == 0

    done = []

    def successor(sim):
        yield from res.hold(2.0)
        done.append(sim.now)

    sim.process(successor(sim))
    sim.run()
    assert done == [2.0]


def test_kill_while_queued_does_not_release_and_is_skipped():
    """A waiter killed while still *pending* in the queue must not call
    ``release()`` (it never owned a slot); the dead request is skipped
    by the next release and the slot count stays balanced."""
    sim = Simulator()
    res = Resource(sim, capacity=1, name="nic")
    first = res.request()
    assert first.triggered and res.in_use == 1

    def victim(sim):
        yield from res.hold(1.0)

    p = sim.process(victim(sim))
    sim.run(until=0.0)
    assert res.queue_length == 1

    p.kill("crashed while queued")              # grant never fired
    assert res.in_use == 1                      # original holder still owns it

    res.release()                               # sweeps the dead waiter
    assert res.in_use == 0
    assert res.queue_length == 0
