"""Determinism regression for the engine fast path.

The simulation kernel promises that a run is a pure function of its
inputs: events scheduled for the same virtual time process in scheduling
order, so re-running a failure-injection scenario replays the identical
interleaving.  The engine optimizations (lazy callbacks, single-waiter
fast path, inlined run loop, pooled sleep timeouts) must not perturb
that ordering in any way.

The scenario here is the sharpest determinism probe the repo has: an
HPCCG run under intra-parallelization where one replica of logical rank
0 is crash-injected mid-solve, forcing failure detection, update-receive
failures and local re-execution.  Every processed event is recorded as
``(time, event type, label)`` and the full stream is fingerprinted.

``golden_trace_failure.json`` was generated against the *seed* engine
(pre-optimization, commit bb8776c) by running this file as a script::

    PYTHONPATH=src python tests/simulate/test_determinism.py --regen

so the test asserts bit-identical event interleaving before and after
the engine fast path.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from repro.apps.hpccg import HpccgConfig, hpccg_program
from repro.intra import launch_intra_job
from repro.mpi import MpiWorld
from repro.netmodel import GRID5000_MACHINE, GRID5000_NETWORK, Cluster
from repro.replication import FailureInjector

GOLDEN = pathlib.Path(__file__).parent / "golden_trace_failure.json"

#: crash replica 1 of logical rank 0 at this virtual time (mid-solve)
CRASH_AT = 0.002


def run_scenario(batched: bool = True):
    """Run the failure-injection scenario; return (trace, results).

    ``trace`` is a list of ``[time_repr, type_name, label]`` triples, one
    per processed event, in processing order.  ``batched`` selects the
    engine run loop: ``Simulator.run_batched`` (the default dispatch
    path of ``MpiWorld.run``) or the unbatched ``Simulator.run`` oracle
    — the two must replay identical event streams.
    """
    trace = []

    def record(time, event):
        trace.append([repr(time), type(event).__name__, event.label])

    config = HpccgConfig(nx=4, ny=4, nz=8, max_iter=3,
                         intra_kernels=frozenset({"ddot", "spmv"}))
    world = MpiWorld(Cluster(4, GRID5000_MACHINE), GRID5000_NETWORK,
                     trace=record)
    world.sim.batched = batched
    job = launch_intra_job(world, hpccg_program, 2, args=(config,))
    FailureInjector(job.manager).kill_at(0, 1, CRASH_AT)
    world.run()
    values = [[info.app_process.value.value
               for info in row if info.alive]
              for row in job.manager.replicas]
    return trace, values


def fingerprint(trace):
    blob = "\n".join(":".join(entry) for entry in trace)
    return hashlib.sha256(blob.encode()).hexdigest()


def test_trace_matches_seed_golden():
    """The optimized engine replays the seed engine's exact event
    interleaving (count, per-event type/label/time, final clock)."""
    golden = json.loads(GOLDEN.read_text())
    trace, values = run_scenario()
    assert len(trace) == golden["n_events"]
    assert fingerprint(trace) == golden["sha256"]
    # head and tail spot checks make a mismatch debuggable
    assert trace[:10] == golden["head"]
    assert trace[-10:] == golden["tail"]
    assert repr(values) == golden["values_repr"]


def test_trace_is_replayable():
    """Two runs of the same scenario are bit-identical event-for-event."""
    trace_a, values_a = run_scenario()
    trace_b, values_b = run_scenario()
    assert trace_a == trace_b
    assert repr(values_a) == repr(values_b)


def test_batched_dispatch_matches_unbatched_event_order():
    """run_batched() replays the unbatched engine's exact event
    interleaving — the wake-coalescing defer slot is order-exact even
    through failure detection and recovery."""
    trace_batched, values_batched = run_scenario(batched=True)
    trace_unbatched, values_unbatched = run_scenario(batched=False)
    assert trace_batched == trace_unbatched
    assert repr(values_batched) == repr(values_unbatched)


def test_unbatched_run_still_matches_seed_golden():
    """The unbatched oracle loop also replays the seed golden trace
    (guards against the batched path becoming load-bearing)."""
    golden = json.loads(GOLDEN.read_text())
    trace, values = run_scenario(batched=False)
    assert len(trace) == golden["n_events"]
    assert fingerprint(trace) == golden["sha256"]
    assert repr(values) == golden["values_repr"]


def test_array_backend_matches_seed_golden():
    """The array engine backend replays the seed golden trace
    bit-for-bit — event count, per-event time/type/label order and
    final values all survive the backend swap (with a trace hook
    installed the backend stages real Timeouts and fires every event
    on the oracle-equivalent generic path)."""
    from repro.simulate import set_engine_backend

    golden = json.loads(GOLDEN.read_text())
    prev = set_engine_backend("array")
    try:
        trace, values = run_scenario()
    finally:
        set_engine_backend(prev)
    assert len(trace) == golden["n_events"]
    assert fingerprint(trace) == golden["sha256"]
    assert trace[:10] == golden["head"]
    assert trace[-10:] == golden["tail"]
    assert repr(values) == golden["values_repr"]


if __name__ == "__main__":
    import sys

    trace, values = run_scenario()
    payload = {
        "scenario": "hpccg intra 2 logical ranks, kill (0,1) at %r"
                    % CRASH_AT,
        "n_events": len(trace),
        "sha256": fingerprint(trace),
        "head": trace[:10],
        "tail": trace[-10:],
        "values_repr": repr(values),
    }
    if "--regen" in sys.argv:
        GOLDEN.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {GOLDEN} ({payload['n_events']} events)")
    else:
        print(json.dumps(payload, indent=2))
