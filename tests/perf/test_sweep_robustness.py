"""The self-healing sweep runtime: retry, timeout, dead workers,
structured failures, cache quarantine.

The pool-path functions here are module-level so the worker processes
can unpickle them by reference; cross-attempt state lives in marker
files under a directory encoded in the point (worker processes share
no memory with the sweep)."""

import os
import pickle
import signal
import time

import pytest

from repro.perf import (PointFailure, clear_result_cache, iter_sweep,
                        point_cache_key, run_sweep)


def _square(x):
    return x * x


def _blob(x):
    return {"x": x, "pad": list(range(64))}


def _fail_if_negative(x):
    if x < 0:
        raise RuntimeError(f"bad point {x}")
    return x * 10


def _flaky(point):
    """(x, marker_dir): raises on the first call per x, succeeds after."""
    x, d = point
    marker = os.path.join(d, f"flaky-{x}")
    if os.path.exists(marker):
        return x * 10
    open(marker, "w").close()
    raise RuntimeError(f"flaky {x}")


def _suicidal(point):
    """(x, marker_dir): x == 2 SIGKILLs its own pool worker once."""
    x, d = point
    marker = os.path.join(d, "killed")
    if x == 2 and not os.path.exists(marker):
        open(marker, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 100


def _slow(point):
    x, _ = point
    if x == 1:
        time.sleep(8.0)
    return x


# ----------------------------------------------------------- serial retry
def test_serial_retry_recovers(tmp_path):
    out = run_sweep([(5, str(tmp_path))], _flaky, retries=1, backoff=0.0)
    assert out == [50]


def test_serial_exhausted_retries_raise_original(tmp_path):
    with pytest.raises(RuntimeError, match="flaky 7"):
        run_sweep([(7, str(tmp_path))], _flaky, retries=0)


def test_serial_on_error_return_yields_point_failure():
    out = run_sweep([-9, 5], _fail_if_negative, backoff=0.0,
                    retries=1, on_error="return")
    assert isinstance(out[0], PointFailure)
    assert out[0].kind == "error" and out[0].attempts == 2
    assert "bad point -9" in out[0].error
    assert out[1] == 50      # the sweep carried on past the failure


# ------------------------------------------------------------- pool rounds
def test_pool_survives_worker_death_and_retries(tmp_path):
    points = [(x, str(tmp_path)) for x in range(1, 5)]
    out = run_sweep(points, _suicidal, workers=3, retries=1, backoff=0.0)
    assert out == [101, 102, 103, 104]


def test_pool_worker_death_without_retries_reports_structured(tmp_path):
    points = [(x, str(tmp_path)) for x in range(1, 5)]
    out = run_sweep(points, _suicidal, workers=3, retries=0,
                    on_error="return")
    assert isinstance(out[1], PointFailure)
    assert out[1].kind == "worker-lost"
    # in-flight siblings lost with the broken pool are also structured,
    # never silently dropped — and the completed ones keep their values
    for v in out:
        assert v in (101, 102, 103, 104) or (
            isinstance(v, PointFailure) and v.kind == "worker-lost")


def test_pool_worker_death_on_error_raise(tmp_path):
    points = [(x, str(tmp_path)) for x in range(1, 5)]
    with pytest.raises(RuntimeError, match="worker died"):
        run_sweep(points, _suicidal, workers=3, retries=0)


def test_pool_timeout_reports_straggler(tmp_path):
    points = [(0, str(tmp_path)), (1, str(tmp_path))]
    out = run_sweep(points, _slow, workers=2, timeout=1.0,
                    on_error="return")
    assert out[0] == 0
    assert isinstance(out[1], PointFailure) and out[1].kind == "timeout"


def test_pool_matches_serial_under_retries(tmp_path):
    points = list(range(6))
    assert (run_sweep(points, _square, workers=3, retries=2)
            == run_sweep(points, _square))


# ----------------------------------------------------- failures vs. cache
def test_failures_are_never_cached(tmp_path):
    d = tmp_path / "markers"
    d.mkdir()
    cache = tmp_path / "cache"
    point = (11, str(d))
    out = run_sweep([point], _flaky, cache=True, cache_dir=cache,
                    tag="rob", on_error="return")
    assert isinstance(out[0], PointFailure)
    key = point_cache_key(_flaky, point, tag="rob")
    assert not (cache / key[:2] / f"{key}.pkl").exists()
    # next sweep recomputes (marker now set -> success) and caches
    out = run_sweep([point], _flaky, cache=True, cache_dir=cache,
                    tag="rob")
    assert out == [110]
    assert (cache / key[:2] / f"{key}.pkl").exists()


def test_duplicate_points_share_one_failure(tmp_path):
    d = tmp_path / "markers"
    d.mkdir()
    point = (13, str(d))
    items = list(iter_sweep([point, point], _flaky, cache=True,
                            cache_dir=tmp_path / "cache", tag="dup",
                            on_error="return"))
    assert len(items) == 2
    assert all(isinstance(it.value, PointFailure) for it in items)
    assert not any(it.cache_hit for it in items)


# -------------------------------------------------------- cache quarantine
def _poison(cache, key, payload):
    path = cache / key[:2] / f"{key}.pkl"
    assert path.exists()
    path.write_bytes(payload)
    return path


def test_corrupt_cache_entry_quarantined_and_recomputed(tmp_path):
    run_sweep([4], _square, cache=True, cache_dir=tmp_path, tag="q")
    key = point_cache_key(_square, 4, tag="q")
    path = _poison(tmp_path, key, b"definitely not a pickle")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        out = run_sweep([4], _square, cache=True, cache_dir=tmp_path,
                        tag="q")
    assert out == [16]
    quarantined = path.with_suffix(".corrupt")
    assert quarantined.exists()          # kept for post-mortems
    with open(path, "rb") as fh:         # slot rewritten with the value
        assert pickle.load(fh) == 16


def test_truncated_cache_shard_is_a_miss(tmp_path):
    """A writer killed mid-write (or disk-full) leaves a truncated
    pickle; loading it must warn and recompute, not crash the sweep."""
    first, = run_sweep([6], _blob, cache=True, cache_dir=tmp_path,
                       tag="t")
    key = point_cache_key(_blob, 6, tag="t")
    path = tmp_path / key[:2] / f"{key}.pkl"
    path.write_bytes(path.read_bytes()[:path.stat().st_size // 2])
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert run_sweep([6], _blob, cache=True, cache_dir=tmp_path,
                         tag="t") == [first]


def test_clear_cache_sweeps_quarantined_entries(tmp_path):
    run_sweep([3], _square, cache=True, cache_dir=tmp_path, tag="c")
    key = point_cache_key(_square, 3, tag="c")
    _poison(tmp_path, key, b"junk")
    with pytest.warns(RuntimeWarning):
        run_sweep([3], _square, cache=True, cache_dir=tmp_path, tag="c")
    assert clear_result_cache(tmp_path) == 1   # results only
    assert list(tmp_path.rglob("*")) == []     # .corrupt swept too


# ------------------------------------------------------------- validation
@pytest.mark.parametrize("kwargs", [
    {"on_error": "explode"},
    {"retries": -1},
    {"timeout": 0.0},
    {"timeout": -1.0},
    {"backoff": -0.5},
])
def test_robustness_knob_validation(kwargs):
    with pytest.raises(ValueError):
        list(iter_sweep([1], _square, **kwargs))
