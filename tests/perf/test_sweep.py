"""The parallel sweep driver: ordering, pooling, caching, stable keys."""

import dataclasses
import importlib
import os
import pathlib
import subprocess
import sys

import pytest

import repro
import repro.perf.sweep as sweep_mod
from repro.apps.hpccg import HpccgConfig
from repro.intra import CopyStrategy
from repro.perf import (clear_result_cache, configure, get_config,
                        run_sweep, stable_token)


def _square(x):
    return x * x


def _record_calls(x):
    _record_calls.calls.append(x)
    return x + 1


_record_calls.calls = []


def test_results_preserve_point_order():
    assert run_sweep([3, 1, 2], _square) == [9, 1, 4]


def test_empty_sweep():
    assert run_sweep([], _square) == []


def test_process_pool_matches_serial():
    points = list(range(8))
    assert (run_sweep(points, _square, workers=2)
            == run_sweep(points, _square, workers=1))


def _worker_backend(_x):
    from repro.simulate import get_engine_backend
    return get_engine_backend()


def test_pool_workers_inherit_engine_backend():
    """A backend selected programmatically in the parent (not via the
    REPRO_ENGINE env var) must reach pool workers too."""
    from repro.simulate import set_engine_backend
    prev = set_engine_backend("array")
    try:
        assert (run_sweep([1, 2], _worker_backend, workers=2)
                == ["array", "array"])
    finally:
        set_engine_backend(prev)
    assert run_sweep([1, 2], _worker_backend, workers=2) == [prev, prev]


def test_disk_cache_hit_skips_recompute(tmp_path):
    _record_calls.calls = []
    points = [1, 2, 3]
    first = run_sweep(points, _record_calls, cache=True,
                      cache_dir=tmp_path)
    assert _record_calls.calls == points
    again = run_sweep(points, _record_calls, cache=True,
                      cache_dir=tmp_path)
    assert again == first == [2, 3, 4]
    assert _record_calls.calls == points  # nothing recomputed


def test_cache_is_keyed_on_point_and_tag(tmp_path):
    a = run_sweep([2], _square, cache=True, cache_dir=tmp_path)
    b = run_sweep([3], _square, cache=True, cache_dir=tmp_path)
    c = run_sweep([2], _square, cache=True, cache_dir=tmp_path,
                  tag="other")
    assert (a, b, c) == ([4], [9], [4])
    assert clear_result_cache(tmp_path) == 3  # three distinct entries


def test_configure_sets_defaults(tmp_path):
    cfg = get_config()
    old = (cfg.workers, cfg.cache, cfg.cache_dir)
    try:
        configure(workers=2, cache=True, cache_dir=tmp_path)
        assert run_sweep([5], _square) == [25]
        assert list(tmp_path.rglob("*.pkl"))  # default cache dir used
    finally:
        configure(workers=old[0], cache=old[1], cache_dir=old[2])


def test_configure_rejects_bad_workers():
    with pytest.raises(ValueError):
        configure(workers=0)


# -------------------------------------------------- env-var round trips
def _reload_with_workers_env(monkeypatch, value):
    """Re-execute the module's import-time env parsing under a
    controlled REPRO_WORKERS, restoring the default state afterwards."""
    if value is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", value)
    try:
        return importlib.reload(sweep_mod).get_config().workers
    finally:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        importlib.reload(sweep_mod)


@pytest.mark.parametrize("value,expected,warns", [
    (None, 1, False),
    ("", 1, False),
    ("3", 3, False),
    (" 2 ", 2, False),
    ("abc", 1, True),       # garbage: warn, fall back (used to raise)
    ("0", 1, True),         # < 1: warn, fall back (used to install 0)
    ("-4", 1, True),
])
def test_env_workers_round_trip(monkeypatch, value, expected, warns):
    if warns:
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            got = _reload_with_workers_env(monkeypatch, value)
    else:
        got = _reload_with_workers_env(monkeypatch, value)
    assert got == expected
    # whatever the env said, the installed default passes configure()'s
    # own validation
    assert get_config().workers >= 1


def test_garbage_env_workers_survives_fresh_import():
    """`REPRO_WORKERS=abc python -c 'import repro.perf.sweep'` must not
    raise — the experiment modules all import the sweep driver at
    module scope, so a bad env var used to break every entry point."""
    src_dir = str(pathlib.Path(repro.__file__).parents[1])
    env = dict(os.environ, REPRO_WORKERS="abc")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c",
         "import repro.perf.sweep as s; print(s.get_config().workers)"],
        env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "1"
    assert "RuntimeWarning" in proc.stderr


# ------------------------------------------- in-sweep duplicate dedupe
def test_duplicate_points_compute_once_in_cold_cached_sweep(tmp_path):
    _record_calls.calls = []
    out = run_sweep([4, 4, 4], _record_calls, cache=True,
                    cache_dir=tmp_path)
    assert out == [5, 5, 5]
    assert _record_calls.calls == [4]   # one compute, fanned out


def test_duplicates_of_cached_point_stay_hits(tmp_path):
    _record_calls.calls = []
    run_sweep([6], _record_calls, cache=True, cache_dir=tmp_path)
    out = run_sweep([6, 6, 9, 9], _record_calls, cache=True,
                    cache_dir=tmp_path)
    assert out == [7, 7, 10, 10]
    assert _record_calls.calls == [6, 9]   # 6 hit the cache both times


def test_duplicate_dedupe_respects_tag_namespaces(tmp_path):
    _record_calls.calls = []
    a = run_sweep([2, 2], _record_calls, cache=True, cache_dir=tmp_path)
    b = run_sweep([2, 2], _record_calls, cache=True, cache_dir=tmp_path,
                  tag="other")
    assert a == b == [3, 3]
    assert _record_calls.calls == [2, 2]   # one compute per namespace


def test_uncached_sweep_still_calls_per_point():
    # without a cache there is no key to dedupe on; fn may be impure
    # in ways the caller accepts, so every occurrence runs
    _record_calls.calls = []
    assert run_sweep([8, 8], _record_calls, cache=False) == [9, 9]
    assert _record_calls.calls == [8, 8]


# ------------------------------------------------- tmp-dropping cleanup
def test_clear_cache_sweeps_tmp_droppings_and_empty_shards(tmp_path):
    run_sweep([1, 2], _square, cache=True, cache_dir=tmp_path)
    # simulate a _cache_store writer that died between open and replace
    shard = tmp_path / "zz"
    shard.mkdir()
    (shard / "feedface.tmp4242").write_bytes(b"partial pickle")
    orphan = tmp_path / "aa" / "bb"
    orphan.mkdir(parents=True)
    removed = clear_result_cache(tmp_path)
    assert removed == 2                      # counts results only
    assert list(tmp_path.rglob("*")) == []   # droppings + dirs swept
    assert tmp_path.is_dir()                 # the root itself survives


def test_clear_cache_missing_dir_is_noop(tmp_path):
    assert clear_result_cache(tmp_path / "never-created") == 0


# ------------------------------------------------------------ stable keys
def test_stable_token_sorts_sets():
    # frozenset iteration order depends on the hash seed; tokens must not
    assert (stable_token(frozenset({"ddot", "spmv", "waxpby"}))
            == stable_token(frozenset({"waxpby", "spmv", "ddot"})))


def test_stable_token_distinguishes_configs():
    a = HpccgConfig(nx=16, ny=16, nz=16)
    b = dataclasses.replace(a, nz=32)
    assert stable_token(a) != stable_token(b)
    assert stable_token(a) == stable_token(
        HpccgConfig(nx=16, ny=16, nz=16))


def test_stable_token_handles_experiment_types():
    token = stable_token({
        "mode": "intra",
        "cfg": HpccgConfig(),
        "strategy": CopyStrategy.LAZY,
        "fn": _square,
        "nested": (1, [2.5, None], {"k": frozenset({1, 2})}),
    })
    assert "CopyStrategy.LAZY" in token
    assert "_square" in token


def test_stable_token_rejects_address_reprs():
    class Opaque:
        __slots__ = ()

    with pytest.raises(TypeError):
        stable_token(Opaque())
