"""The parallel sweep driver: ordering, pooling, caching, stable keys."""

import dataclasses

import pytest

from repro.apps.hpccg import HpccgConfig
from repro.intra import CopyStrategy
from repro.perf import (clear_result_cache, configure, get_config,
                        run_sweep, stable_token)


def _square(x):
    return x * x


def _record_calls(x):
    _record_calls.calls.append(x)
    return x + 1


_record_calls.calls = []


def test_results_preserve_point_order():
    assert run_sweep([3, 1, 2], _square) == [9, 1, 4]


def test_empty_sweep():
    assert run_sweep([], _square) == []


def test_process_pool_matches_serial():
    points = list(range(8))
    assert (run_sweep(points, _square, workers=2)
            == run_sweep(points, _square, workers=1))


def test_disk_cache_hit_skips_recompute(tmp_path):
    _record_calls.calls = []
    points = [1, 2, 3]
    first = run_sweep(points, _record_calls, cache=True,
                      cache_dir=tmp_path)
    assert _record_calls.calls == points
    again = run_sweep(points, _record_calls, cache=True,
                      cache_dir=tmp_path)
    assert again == first == [2, 3, 4]
    assert _record_calls.calls == points  # nothing recomputed


def test_cache_is_keyed_on_point_and_tag(tmp_path):
    a = run_sweep([2], _square, cache=True, cache_dir=tmp_path)
    b = run_sweep([3], _square, cache=True, cache_dir=tmp_path)
    c = run_sweep([2], _square, cache=True, cache_dir=tmp_path,
                  tag="other")
    assert (a, b, c) == ([4], [9], [4])
    assert clear_result_cache(tmp_path) == 3  # three distinct entries


def test_configure_sets_defaults(tmp_path):
    cfg = get_config()
    old = (cfg.workers, cfg.cache, cfg.cache_dir)
    try:
        configure(workers=2, cache=True, cache_dir=tmp_path)
        assert run_sweep([5], _square) == [25]
        assert list(tmp_path.rglob("*.pkl"))  # default cache dir used
    finally:
        configure(workers=old[0], cache=old[1], cache_dir=old[2])


def test_configure_rejects_bad_workers():
    with pytest.raises(ValueError):
        configure(workers=0)


# ------------------------------------------------------------ stable keys
def test_stable_token_sorts_sets():
    # frozenset iteration order depends on the hash seed; tokens must not
    assert (stable_token(frozenset({"ddot", "spmv", "waxpby"}))
            == stable_token(frozenset({"waxpby", "spmv", "ddot"})))


def test_stable_token_distinguishes_configs():
    a = HpccgConfig(nx=16, ny=16, nz=16)
    b = dataclasses.replace(a, nz=32)
    assert stable_token(a) != stable_token(b)
    assert stable_token(a) == stable_token(
        HpccgConfig(nx=16, ny=16, nz=16))


def test_stable_token_handles_experiment_types():
    token = stable_token({
        "mode": "intra",
        "cfg": HpccgConfig(),
        "strategy": CopyStrategy.LAZY,
        "fn": _square,
        "nested": (1, [2.5, None], {"k": frozenset({1, 2})}),
    })
    assert "CopyStrategy.LAZY" in token
    assert "_square" in token


def test_stable_token_rejects_address_reprs():
    class Opaque:
        __slots__ = ()

    with pytest.raises(TypeError):
        stable_token(Opaque())
