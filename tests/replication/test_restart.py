"""Replica restart (§VI extension): respawn, state handover, rejoin."""

import numpy as np
import pytest

from repro.intra import Tag
from repro.kernels import split_range
from repro.mpi import MpiWorld
from repro.netmodel import Cluster, MachineSpec, NetworkSpec
from repro.replication import (FailureInjector, Restartable,
                               ReplicationError, RestartCoordinator,
                               ReplicationManager, launch_restartable_job)

MACHINE = MachineSpec(name="t", cores_per_node=4, flop_rate=1e9,
                      mem_bandwidth=4e9)
NETSPEC = NetworkSpec(bandwidth=1e9, latency=1e-6, half_duplex=False)


class CounterApp(Restartable):
    """pos += 1 per step in an intra section (INOUT), plus a cross-rank
    allreduce — exercises sections, dedupe and restart together."""

    def __init__(self, n=64, n_tasks=8, n_steps=6):
        self.n = n
        self.n_tasks = n_tasks
        self.n_steps = n_steps

    def init_state(self, ctx, comm):
        return {"pos": np.full(self.n, float(comm.rank)),
                "checks": []}

    def step(self, ctx, comm, state, step_index):
        pos = state["pos"]
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(
            lambda p: np.add(p, 1.0, out=p), [Tag.INOUT],
            cost=lambda p: (5e4 * p.size, 16.0 * p.size))
        for sl in split_range(self.n, self.n_tasks):
            rt.task_launch(tid, [pos[sl]])
        yield from rt.section_end()
        total = yield from comm.allreduce(float(pos.sum()), op="sum")
        state["checks"].append(total)

    def snapshot(self, state):
        return {"pos": state["pos"].copy(),
                "checks": list(state["checks"])}

    def restore(self, payload):
        return {"pos": payload["pos"].copy(),
                "checks": list(payload["checks"])}

    def finalize(self, ctx, comm, state):
        return (state["pos"].copy(), tuple(state["checks"]))


def run_restartable(n_logical=2, kills=(), n_steps=6, fd_delay=20e-6,
                    restart_delay=1e-4):
    world = MpiWorld(Cluster(8, MACHINE), NETSPEC)
    app = CounterApp(n_steps=n_steps)
    job, coord = launch_restartable_job(world, app, n_logical,
                                        fd_delay=fd_delay,
                                        restart_delay=restart_delay)
    inj = FailureInjector(job.manager)
    for lrank, rid, t in kills:
        inj.kill_at(lrank, rid, t)
    world.run()
    return job, coord


def expected(n_logical, n_steps, rank):
    pos = np.full(64, float(rank) + n_steps)
    checks = tuple(
        sum(64.0 * (r + s + 1) for r in range(n_logical))
        for s in range(n_steps))
    return pos, checks


def test_failure_free_restartable_run():
    job, coord = run_restartable()
    assert coord.restarts_completed == 0
    for lrank in range(2):
        pos, checks = expected(2, 6, lrank)
        for info in job.manager.alive_replicas(lrank):
            got_pos, got_checks = info.app_process.value
            np.testing.assert_allclose(got_pos, pos)
            assert got_checks == pytest.approx(checks)


def test_crash_then_restart_rejoins_and_finishes_correctly():
    # each step takes ~1.6 ms; crash lands mid-run
    job, coord = run_restartable(kills=[(0, 1, 0.003)])
    assert coord.restarts_completed == 1
    info = job.manager.replica(0, 1)
    assert info.alive                      # the replacement is alive
    assert info.ctx.name.endswith("'")     # and is the respawned one
    pos, checks = expected(2, 6, 0)
    for replica in job.manager.replicas[0]:
        got_pos, got_checks = replica.app_process.value
        np.testing.assert_allclose(got_pos, pos)
        assert got_checks == pytest.approx(checks)


def test_restarted_replica_shares_work_again():
    """After the rejoin, sections schedule on both replicas: the
    survivor executed-task count is strictly below the run-alone
    count."""
    n_steps = 10
    job, coord = run_restartable(kills=[(0, 1, 0.002)],
                                 n_steps=n_steps)
    assert coord.restarts_completed == 1
    survivor = job.manager.replica(0, 0)
    executed = survivor.ctx.intra.stats.tasks_executed
    # 10 steps x 8 tasks: alone would be ~80; shared-only would be ~40.
    assert 40 <= executed < 76
    replacement = job.manager.replica(0, 1)
    assert replacement.ctx.intra.stats.tasks_executed > 0


def test_crash_of_restarted_replica_triggers_another_restart():
    job, coord = run_restartable(
        kills=[(0, 1, 0.002), (0, 1, 0.012)], n_steps=10)
    assert coord.restarts_completed == 2
    pos, checks = expected(2, 10, 0)
    for replica in job.manager.replicas[0]:
        got_pos, got_checks = replica.app_process.value
        np.testing.assert_allclose(got_pos, pos)


def test_restart_requires_degree_two():
    world = MpiWorld(Cluster(12, MACHINE), NETSPEC)
    manager = ReplicationManager(world, 1, degree=3)
    with pytest.raises(ReplicationError, match="degree 2"):
        RestartCoordinator(manager, CounterApp())


def test_wipeout_is_not_restartable():
    """Both replicas dead before any handover: no restart possible."""
    with pytest.raises(Exception):
        run_restartable(kills=[(0, 0, 0.002), (0, 1, 0.0021)])


def test_crash_after_completion_is_abandoned():
    """A replica dying after the job finished spawns a replacement that
    gets abandoned — no deadlock, no restart counted."""
    job, coord = run_restartable(kills=[(0, 1, 5.0)], n_steps=2)
    # the run ends long before t=5s, so the kill never fires inside the
    # job; nothing to restart
    assert coord.restarts_completed == 0
