"""Failure-free replicated communication: every replica of every logical
rank observes exactly the messages a native run would."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.replication import launch_replicated_job


def run_replicated(make_world, program, n_logical, degree=2, n_nodes=8,
                   args=()):
    world = make_world(n_nodes)
    job = launch_replicated_job(world, program, n_logical, degree=degree,
                                args=args)
    world.run()
    return job


def test_send_recv_all_replicas_get_message(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send(123.0, dest=1, tag=7)
            return None
        got = yield from comm.recv(source=0, tag=7)
        return got

    job = run_replicated(make_world, program, n_logical=2)
    assert job.results()[1] == [123.0, 123.0]


def test_logical_rank_and_size_visible(make_world):
    def program(ctx, comm):
        return (comm.rank, comm.size)
        yield  # pragma: no cover

    job = run_replicated(make_world, program, n_logical=3)
    for lrank in range(3):
        assert job.results()[lrank] == [(lrank, 3)] * 2


def test_numpy_payload_isolated_between_replicas(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send(np.ones(4), dest=1)
            return None
        got = yield from comm.recv(source=0)
        got += comm.size  # mutate the local copy
        return got

    job = run_replicated(make_world, program, n_logical=2)
    a, b = job.results()[1]
    np.testing.assert_array_equal(a, np.full(4, 3.0))
    np.testing.assert_array_equal(b, np.full(4, 3.0))
    assert a is not b


def test_tags_and_ordering(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            for i in range(4):
                yield from comm.send(i, dest=1, tag=i % 2)
            return None
        evens = []
        odds = []
        for _ in range(2):
            evens.append((yield from comm.recv(source=0, tag=0)))
        for _ in range(2):
            odds.append((yield from comm.recv(source=0, tag=1)))
        return (evens, odds)

    job = run_replicated(make_world, program, n_logical=2)
    for got in job.results()[1]:
        assert got == ([0, 2], [1, 3])


def test_any_source_any_tag(make_world):
    def program(ctx, comm):
        if comm.rank == 2:
            got, status = yield from comm.recv_with_status(
                source=ANY_SOURCE, tag=ANY_TAG)
            return (got, status.source)
        yield ctx.sleep(0.001 * (comm.rank + 1))
        yield from comm.send(f"hello-{comm.rank}", dest=2, tag=comm.rank)

    job = run_replicated(make_world, program, n_logical=3)
    for got, src in job.results()[2]:
        assert got == "hello-0" and src == 0


def test_isend_waitall(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            reqs = [comm.isend(i * 10, dest=1, tag=i) for i in range(3)]
            yield from comm.waitall(reqs)
            return None
        reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
        vals = yield from comm.waitall(reqs)
        return vals

    job = run_replicated(make_world, program, n_logical=2)
    assert job.results()[1] == [[0, 10, 20], [0, 10, 20]]


@pytest.mark.parametrize("n_logical", [1, 2, 3, 5])
def test_replicated_allreduce(make_world, n_logical):
    def program(ctx, comm):
        got = yield from comm.allreduce(comm.rank + 1, op="sum")
        return got

    job = run_replicated(make_world, program, n_logical)
    expect = n_logical * (n_logical + 1) // 2
    for row in job.results():
        assert row == [expect, expect]


def test_replicated_bcast_and_allgather(make_world):
    def program(ctx, comm):
        v = yield from comm.bcast("root-data" if comm.rank == 0 else None,
                                  root=0)
        g = yield from comm.allgather(comm.rank * 2)
        return (v, g)

    job = run_replicated(make_world, program, n_logical=4)
    for row in job.results():
        for v, g in row:
            assert v == "root-data"
            assert g == [0, 2, 4, 6]


def test_degree_three(make_world):
    def program(ctx, comm):
        got = yield from comm.allreduce(comm.rank, op="max")
        return got

    job = run_replicated(make_world, program, n_logical=2, degree=3,
                         n_nodes=12)
    for row in job.results():
        assert row == [1, 1, 1]


def test_replicas_do_not_share_plane_traffic(make_world):
    """A replica must never observe its sibling's plane messages: each
    replica of rank 1 receives exactly 3 messages."""
    def program(ctx, comm):
        if comm.rank == 0:
            for i in range(3):
                yield from comm.send(i, dest=1, tag=0)
            return None
        out = []
        for _ in range(3):
            out.append((yield from comm.recv(source=0, tag=0)))
        return (out, len(ctx.endpoint.unexpected))

    job = run_replicated(make_world, program, n_logical=2)
    for out, leftovers in job.results()[1]:
        assert out == [0, 1, 2]
        assert leftovers == 0


def test_sdr_like_overhead_is_small(make_world):
    """Replicated ping-pong completes in about native time (the mirror
    protocol adds only the 8-byte lseq header)."""
    import repro.mpi as mpi
    from repro.netmodel import Slot

    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(12_500), dest=1)  # 100 KB
            yield from comm.recv(source=1)
        else:
            got = yield from comm.recv(source=0)
            yield from comm.send(got, dest=0)
        return ctx.now

    world = make_world(8)
    native = mpi.launch_job(world, program, 2,
                            placement=[Slot(0, 0), Slot(1, 0)])
    world.run()
    t_native = max(native.results())

    job = run_replicated(make_world, program, n_logical=2)
    t_repl = max(max(row) for row in job.results())
    assert t_repl <= t_native * 1.05
