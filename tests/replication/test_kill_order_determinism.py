"""Run-to-run determinism of the crash path, in one process.

The crash machinery iterates collections of ``Process`` objects to kill
receive pumps (``ReplicatedComm.pending_loops``) and retract uninjected
transfers (``MpiWorld._uninjected``).  Both were plain ``set``s once:
iteration order of an object set follows id()-derived hashes — memory
addresses — so kill order, and with it the whole simulation, varied from
run to run *within one interpreter*.  The differential oracle matrix
(``tests/differential/``) caught this as a scenario that alternated
between success and ``DeadlockError`` on consecutive identical runs.

These tests pin the shrunken counterexamples: a cascading failure storm
on three intra-parallelized logical ranks must produce byte-identical
``RunResult`` JSON on every repeat — and must *succeed*, since the storm
leaves each logical rank a live replica (the historical deadlock arm was
a NIC slot leaked by a kill racing a resource grant; see
``tests/simulate/test_resources.py``).
"""

import json

import pytest

from repro.api import run as api_run
from repro.apps.hpccg import KernelBenchConfig
from repro.scenarios import CascadingFailures, Scenario


def _cascade_scenario(seed):
    return Scenario(app="hpccg_kernels",
                    config=KernelBenchConfig(nx=8, ny=8, nz=8, reps=1),
                    n_logical=3, mode="intra",
                    failures=CascadingFailures(rate=30000.0, multiplier=10.0,
                                               window=0.0005,
                                               neighbor_distance=1,
                                               seed=seed, horizon=2e-3),
                    fd_delay=5e-05)


def _canonical(result):
    payload = json.loads(result.to_json())
    payload.get("cache", {}).pop("hit", None)
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("seed", [99, 3939])
def test_cascade_storm_is_run_to_run_deterministic(seed):
    scenario = _cascade_scenario(seed)
    runs = [api_run(scenario, cache=False, on_error="return")
            for _ in range(3)]
    assert runs[0].ok, runs[0].error
    want = _canonical(runs[0])
    for i, result in enumerate(runs[1:], start=2):
        assert _canonical(result) == want, (
            f"run {i} diverged from run 1 for seed {seed}")
