"""Replication protocol internals: dedupe filter, send log, replay
service, cover selection."""

import pytest
from hypothesis import given, strategies as st

from repro.replication import launch_replicated_job
from repro.replication.comm import ReplicatedComm


class _FakeCtx:
    class _Sim:
        pass
    sim = _Sim()


def make_filter():
    """A ReplicatedComm shell exercising only the dedupe filter."""
    rc = ReplicatedComm.__new__(ReplicatedComm)
    rc._seen = {}
    rc._prefix = {}
    return rc


def test_consume_fresh_and_duplicate():
    rc = make_filter()
    assert rc._consume(0, 1) is True
    assert rc._consume(0, 1) is False
    assert rc._consume(0, 2) is True
    assert rc._consume(0, 2) is False


def test_consume_out_of_order_then_fill():
    rc = make_filter()
    assert rc._consume(0, 3) is True    # tags allow consuming 3 first
    assert rc._consume(0, 1) is True
    assert rc._consume(0, 2) is True
    assert rc.seen_prefix(0) == 3       # prefix compacted
    assert rc._seen[0] == set()         # sparse set emptied
    assert rc._consume(0, 3) is False   # still a duplicate via prefix


def test_consume_channels_independent():
    rc = make_filter()
    assert rc._consume(0, 1) is True
    assert rc._consume(5, 1) is True
    assert rc._consume(0, 1) is False
    assert rc._consume(5, 2) is True


def test_was_consumed():
    rc = make_filter()
    rc._consume(2, 1)
    rc._consume(2, 5)
    assert rc.was_consumed(2, 1)
    assert rc.was_consumed(2, 5)
    assert not rc.was_consumed(2, 3)


@given(perm=st.permutations(list(range(1, 30))),
       dup_at=st.lists(st.integers(0, 28), max_size=10))
def test_property_filter_accepts_each_lseq_exactly_once(perm, dup_at):
    """Any consumption order with arbitrary duplicate injections: each
    lseq is accepted exactly once, and the prefix ends complete."""
    rc = make_filter()
    stream = list(perm)
    for i in dup_at:
        stream.insert(i, perm[i % len(perm)])
    accepted = [x for x in stream if rc._consume(0, x)]
    assert sorted(accepted) == list(range(1, 30))
    assert rc.seen_prefix(0) == 29
    assert rc._seen[0] == set()


def test_send_log_grows_per_destination(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send("a", dest=1)
            yield from comm.send("b", dest=1)
            yield from comm.send("c", dest=2)
            return [len(comm.send_log[d]) for d in (1, 2)]
        yield ctx.sleep(0.01)

    world = make_world()
    job = launch_replicated_job(world, program, 3)
    world.run()
    for log_sizes in job.results()[0]:
        assert log_sizes == [2, 1]


def test_cover_is_lowest_live_replica(make_world):
    def program(ctx, comm):
        yield ctx.sleep(0.01)

    world = make_world(n_nodes=12)
    job = launch_replicated_job(world, program, 1, degree=3)
    mgr = job.manager
    assert mgr.cover_of(0).replica_id == 0
    mgr.crash_replica(0, 0)
    assert mgr.cover_of(0).replica_id == 1
    assert mgr.planes_covered_by(0, 1) == [1, 0]
    assert mgr.planes_covered_by(0, 2) == [2]
    assert mgr.planes_covered_by(0, 0) == []  # dead replica covers none
    world.run()


def test_live_sender_endpoint_resolution(make_world):
    def program(ctx, comm):
        yield ctx.sleep(0.01)

    world = make_world()
    job = launch_replicated_job(world, program, 2)
    mgr = job.manager
    ep_mirror = mgr.live_sender_endpoint(0, plane=1)
    assert ep_mirror == mgr.replica(0, 1).endpoint_id
    mgr.crash_replica(0, 1)
    assert mgr.live_sender_endpoint(0, plane=1) == \
        mgr.replica(0, 0).endpoint_id
    world.run()


def test_replay_deduped_when_requested_twice(make_world):
    """Two replay requests for the same channel produce duplicate
    messages on the wire, but the receiver consumes each lseq once."""
    def program(ctx, comm):
        if comm.rank == 0:
            for i in range(4):
                yield from comm.send(i, dest=1, tag=0)
            yield ctx.sleep(0.02)
            return None
        yield ctx.sleep(0.005)
        out = []
        for _ in range(4):
            out.append((yield from comm.recv(source=0, tag=0)))
        return out

    world = make_world()
    job = launch_replicated_job(world, program, 2)
    mgr = job.manager

    def extra_replays():
        yield world.sim.timeout(0.002)
        mgr.request_replay(1, 0, channel_lrank=0)
        mgr.request_replay(1, 0, channel_lrank=0)

    world.sim.process(extra_replays())
    world.run()
    for got in job.results()[1]:
        assert got == [0, 1, 2, 3]
