"""Crash-stop failures against the mirror protocol: survivor takeover,
replay, dedupe, and application-level continuity."""

import numpy as np
import pytest

from repro.mpi import MpiWorld
from repro.replication import (FailureInjector, NoLiveReplicaError,
                               launch_replicated_job)


def run_with_failure(make_world, program, n_logical, kills, degree=2,
                     n_nodes=8, fd_delay=50e-6):
    world = make_world(n_nodes)
    job = launch_replicated_job(world, program, n_logical, degree=degree,
                                fd_delay=fd_delay)
    inj = FailureInjector(job.manager)
    for lrank, rid, t in kills:
        inj.kill_at(lrank, rid, t)
    world.run()
    return job


def test_receiver_replica_dies_sender_unaffected(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield ctx.sleep(0.01)
            yield from comm.send("late", dest=1)
            return "sender-done"
        got = yield from comm.recv(source=0)
        return got

    job = run_with_failure(make_world, program, 2, kills=[(1, 1, 0.001)])
    results = job.results()
    assert results[0] == ["sender-done", "sender-done"]
    assert results[1][0] == "late"            # surviving replica got it
    assert job.manager.replica(1, 1).alive is False


def test_sender_replica_dies_before_send_survivor_covers(make_world):
    """Replica 0 of the sender dies before sending anything; the
    surviving replica 1 must deliver to BOTH receiver replicas."""
    def program(ctx, comm):
        if comm.rank == 0:
            yield ctx.sleep(0.01)  # die window is [0, 0.01)
            yield from comm.send(np.arange(4.0), dest=1)
            return None
        got = yield from comm.recv(source=0)
        return got

    job = run_with_failure(make_world, program, 2, kills=[(0, 0, 0.001)])
    a, b = job.results()[1]
    np.testing.assert_array_equal(a, np.arange(4.0))
    np.testing.assert_array_equal(b, np.arange(4.0))


def test_sender_dies_after_partial_channel_history_replay_fills_gap(
        make_world):
    """Replica 0 of rank 0 sends messages 1..3 then dies; the survivor
    has sent the same stream to its own plane.  Receiver replica 0 (which
    lost its mirror) must still obtain messages it never got, via replay
    from the survivor's send log."""
    def program(ctx, comm):
        if comm.rank == 0:
            for i in range(6):
                yield from comm.send(i, dest=1, tag=0)
                yield ctx.sleep(0.002)
            return None
        out = []
        for _ in range(6):
            out.append((yield from comm.recv(source=0, tag=0)))
        return out

    # Replica 0 of logical 0 dies at t=0.005, i.e. after ~3 sends.
    job = run_with_failure(make_world, program, 2, kills=[(0, 0, 0.005)])
    for got in job.results()[1]:
        assert got == [0, 1, 2, 3, 4, 5]


def test_both_directions_with_midstream_crash(make_world):
    """Ping-pong with a crash of one side's replica mid-stream."""
    def program(ctx, comm):
        other = 1 - comm.rank
        total = 0
        for i in range(8):
            if comm.rank == 0:
                yield from comm.send(i, dest=other, tag=1)
                total += yield from comm.recv(source=other, tag=2)
            else:
                got = yield from comm.recv(source=other, tag=1)
                yield from comm.send(got * 2, dest=other, tag=2)
                total += got
        return total

    job = run_with_failure(make_world, program, 2, kills=[(1, 0, 0.004)])
    # rank 0 receives 2*sum(0..7) = 56; rank 1 receives sum(0..7) = 28
    assert job.results()[0] == [56, 56]
    live = job.manager.alive_replicas(1)
    assert len(live) == 1 and live[0].app_process.value == 28


def test_collective_survives_replica_crash(make_world):
    def program(ctx, comm):
        total = 0
        for i in range(5):
            total += yield from comm.allreduce(comm.rank + i, op="sum")
            yield ctx.sleep(0.001)
        return total

    job = run_with_failure(make_world, program, 4, kills=[(2, 1, 0.0025)])
    # sum over ranks of (rank + i) = 6 + 4i; total over i=0..4: 30 + 40
    for lrank in range(4):
        for info in job.manager.alive_replicas(lrank):
            assert info.app_process.value == 70


def test_degree_three_tolerates_two_failures(make_world):
    def program(ctx, comm):
        total = 0
        for i in range(6):
            total += yield from comm.allreduce(1, op="sum")
            yield ctx.sleep(0.001)
        return total

    job = run_with_failure(make_world, program, 2,
                           kills=[(0, 0, 0.0015), (0, 2, 0.0035)],
                           degree=3, n_nodes=12)
    for info in job.manager.alive_replicas(0):
        assert info.app_process.value == 12
    for info in job.manager.alive_replicas(1):
        assert info.app_process.value == 12
    assert len(job.manager.alive_replicas(0)) == 1


def test_logical_rank_wipeout_raises(make_world):
    def program(ctx, comm):
        if comm.rank == 1:
            got = yield from comm.recv(source=0)
            return got
        yield ctx.sleep(1.0)
        yield from comm.send("never", dest=1)

    world = make_world(8)
    job = launch_replicated_job(world, program, 2)
    inj = FailureInjector(job.manager)
    inj.kill_at(0, 0, 0.001)
    inj.kill_at(0, 1, 0.002)
    with pytest.raises(Exception):
        world.run()
    with pytest.raises(NoLiveReplicaError):
        job.surviving_results()


def test_crash_is_idempotent_and_recorded(make_world):
    def program(ctx, comm):
        yield ctx.sleep(0.01)
        return "ok"

    world = make_world(8)
    job = launch_replicated_job(world, program, 1)
    inj = FailureInjector(job.manager)
    inj.kill_at(0, 1, 0.002)
    inj.kill_at(0, 1, 0.003)  # second kill: no-op
    world.run()
    info = job.manager.replica(0, 1)
    assert info.crash_time == pytest.approx(0.002)
    assert job.manager.replica(0, 0).app_process.value == "ok"


def test_hook_triggered_crash(make_world):
    """Kill a replica precisely when it emits a protocol hook event."""
    def program(ctx, comm):
        mgr = comm.manager
        for i in range(5):
            mgr.hooks.emit("step_done", logical_rank=comm.rank,
                           replica_id=comm.rid, step=i)
            yield ctx.sleep(0.001)
        return "finished"

    world = make_world(8)
    job = launch_replicated_job(world, program, 1)
    inj = FailureInjector(job.manager)
    plan = inj.kill_on_hook(0, 1, "step_done",
                            when=lambda step, **kw: step == 3)
    world.run()
    assert plan.fired
    info = job.manager.replica(0, 1)
    assert info.crash_time == pytest.approx(0.003)
    assert job.manager.replica(0, 0).app_process.value == "finished"


def test_fd_delay_controls_detection_time(make_world):
    seen = []

    def program(ctx, comm):
        yield ctx.sleep(0.02)
        return None

    world = make_world(8)
    job = launch_replicated_job(world, program, 1, fd_delay=0.005)
    job.manager.on_death(lambda lr, rid: seen.append(
        (lr, rid, world.sim.now)))
    inj = FailureInjector(job.manager)
    inj.kill_at(0, 1, 0.001)
    world.run()
    assert seen == [(0, 1, pytest.approx(0.006))]
