"""Wiring for the differential suite.

pytest runs with ``--import-mode=importlib``, so the shared harness
module (:mod:`oracle_matrix`) is not importable from test modules
unless this directory is on ``sys.path`` — put it there before
collection imports the tests.

A module-scoped autouse guard snapshots the process-global execution
toggles around each test module and restores them, failing loudly if a
test leaked a toggle flip (every leg is supposed to restore through
``oracle_matrix.applied``).  Module scope keeps hypothesis's
function-scoped-fixture health check quiet.
"""

import pathlib
import sys

import pytest

_HERE = str(pathlib.Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import oracle_matrix  # noqa: E402  (needs the sys.path line above)


@pytest.fixture(autouse=True, scope="module")
def toggle_guard():
    before = oracle_matrix.snapshot_toggles()
    yield
    after = oracle_matrix.snapshot_toggles()
    for (_key, _values, _env, setter, _getter), value in zip(
            oracle_matrix.TOGGLE_AXES, before):
        setter(value)
    assert after == before, (
        f"a test leaked execution toggles: {before} -> {after}")
