"""Cache corruption inside the differential matrix.

The warm-cache leg trusts on-disk bytes; this suite corrupts the one
shard a scenario hashes to *mid-matrix* and asserts the sweep layer
quarantines it (``<key>.corrupt`` + RuntimeWarning), recomputes
bit-identically under every toggle leg, rewrites the shard, and goes
back to clean warm hits.
"""

from __future__ import annotations

import warnings

import pytest

import oracle_matrix as om
from repro.scenarios import Scenario


@pytest.fixture
def scenario():
    return Scenario(app="stepsum", config=om.TINY_STEPSUM, n_logical=2,
                    mode="intra")


def _shard(cache_dir, key):
    return cache_dir / key[:2] / f"{key}.pkl"


def test_corrupt_shard_quarantined_and_recomputed_identically(
        scenario, tmp_path):
    key = om.expected_cache_key(scenario)
    reference = om.run_leg(scenario, om.ORACLE_LEG, cache_dir=tmp_path)
    want = om.canonical(reference)
    shard = _shard(tmp_path, key)
    assert shard.is_file()

    # mid-matrix corruption: clobber the shard, then run the remaining
    # warm legs — each must quarantine-or-reuse and still match
    shard.write_bytes(b"not a pickle")
    quarantined = shard.with_suffix(".corrupt")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = om.run_leg(scenario, om.TOGGLE_LEGS[-1],
                           cache_dir=tmp_path)
    assert om.canonical(first) == want, om.describe(
        scenario, om.TOGGLE_LEGS[-1], "post-corruption recompute")
    assert quarantined.is_file()
    assert quarantined.read_bytes() == b"not a pickle"
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    # the recompute rewrote the shard: every leg now reads it warm,
    # silently, and byte-identically
    assert shard.is_file()
    for leg in om.TOGGLE_LEGS:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warm = om.run_leg(scenario, leg, cache_dir=tmp_path)
        assert om.canonical(warm) == want, om.describe(
            scenario, leg, "post-recovery warm")
        assert warm.cache_hit is True


def test_failed_runs_never_reach_the_cache(tmp_path):
    # a schedule harsh enough to exhaust every replica fails the run;
    # the failure must not be written, so each leg recomputes (and
    # fails identically) rather than serving a poisoned hit
    from repro.scenarios import FixedFailures

    doomed = Scenario(
        app="stepsum", config=om.TINY_STEPSUM, n_logical=2, mode="intra",
        failures=FixedFailures(((0, 0, 1e-6), (0, 1, 2e-6))))
    first = om.run_leg(doomed, om.ORACLE_LEG, cache_dir=tmp_path)
    assert not first.ok
    assert not _shard(tmp_path, om.expected_cache_key(doomed)).exists()
    again = om.run_leg(doomed, om.TOGGLE_LEGS[-1], cache_dir=tmp_path)
    assert om.canonical(again) == om.canonical(first)
    assert again.cache_hit is False
