"""The toggle plumbing under the matrix: env parsing, setters, and the
leg context manager.

Every matrix axis rides a process-global knob with an env-var default
(``REPRO_ENGINE``, ``REPRO_BATCHED``, ``REPRO_SECTION_BATCHING``,
``REPRO_TASK_POOLING``); these tests pin the defensive parsing
discipline (garbage warns and falls back, never breaks imports) and
that ``oracle_matrix.applied`` restores every knob even when the body
raises.
"""

from __future__ import annotations

import pytest

import oracle_matrix as om
from repro._envflags import env_flag


@pytest.mark.parametrize("raw,expect", [
    ("1", True), ("true", True), ("YES", True), (" on ", True),
    ("0", False), ("false", False), ("No", False), ("OFF", False),
])
def test_env_flag_parses_the_documented_spellings(
        monkeypatch, raw, expect):
    monkeypatch.setenv("REPRO_TEST_FLAG", raw)
    assert env_flag("REPRO_TEST_FLAG", not expect) is expect


@pytest.mark.parametrize("default", [True, False])
def test_env_flag_unset_and_empty_use_the_default(monkeypatch, default):
    monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
    assert env_flag("REPRO_TEST_FLAG", default) is default
    monkeypatch.setenv("REPRO_TEST_FLAG", "  ")
    assert env_flag("REPRO_TEST_FLAG", default) is default


def test_env_flag_garbage_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_FLAG", "maybe")
    with pytest.warns(RuntimeWarning, match="REPRO_TEST_FLAG='maybe'"):
        assert env_flag("REPRO_TEST_FLAG", True) is True
    with pytest.warns(RuntimeWarning):
        assert env_flag("REPRO_TEST_FLAG", False) is False


def test_setters_return_the_previous_value():
    for _key, values, _env, setter, getter in om.TOGGLE_AXES:
        start = getter()
        other = next(v for v in values if v != start)
        assert setter(other) == start
        assert getter() == other
        assert setter(start) == other
        assert getter() == start


def test_applied_restores_every_knob_on_error():
    before = om.snapshot_toggles()
    flipped = om.TOGGLE_LEGS[-1]
    with pytest.raises(RuntimeError, match="boom"):
        with om.applied(flipped):
            for (key, _v, _e, _setter, getter) in om.TOGGLE_AXES:
                assert getter() == flipped[key]
            raise RuntimeError("boom")
    assert om.snapshot_toggles() == before


def test_env_defaults_reach_the_knobs_in_a_fresh_process():
    # the env vars must actually wire into module defaults at import
    # time — check in a subprocess so this process's state is untouched
    import subprocess
    import sys

    code = (
        "import warnings\n"
        "warnings.simplefilter('error')\n"
        "from repro.simulate.engine import BATCHED_DEFAULT\n"
        "from repro.intra import runtime\n"
        "print(BATCHED_DEFAULT, runtime.BATCH_SECTIONS,\n"
        "      runtime.POOL_TASKS)\n")
    env = {"REPRO_BATCHED": "0", "REPRO_SECTION_BATCHING": "off",
           "REPRO_TASK_POOLING": "no", "PYTHONPATH": "src",
           "PATH": "/usr/bin:/bin"}
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, cwd=".")
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["False", "False", "False"]
