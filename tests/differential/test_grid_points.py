"""Differential legs over the *registered* generated grids.

The hypothesis matrix explores synthetic scenarios; this suite walks
the real ``grid:*`` catalog — a deterministic, evenly-strided sample
from every family — and runs each point fresh under the oracle leg and
under the maximally-different leg (array backend, every toggle off),
asserting byte identity.  It pins that the shipped grid families stay
inside the differential envelope as they grow.
"""

from __future__ import annotations

import itertools

import pytest

import oracle_matrix as om
from repro.scenarios import grid_entries

CONTRARIAN_LEG = om.TOGGLE_LEGS[-1]


def _sampled_points():
    """An evenly-strided, deterministic sample of point names across
    all registered families, ``budget('grid_points')`` names total."""
    families = grid_entries()
    per_family = max(1, om.budget("grid_points") // max(1, len(families)))
    names = []
    for family in families:
        stride = max(1, family.size // per_family)
        names += itertools.islice(family.point_names(), 0, None, stride)
    return names[:max(om.budget("grid_points"), len(families))]


@pytest.mark.parametrize("name", _sampled_points())
def test_grid_point_identical_across_contrarian_leg(name):
    from repro.scenarios import get_scenario
    scenario = get_scenario(name)
    oracle = om.run_leg(scenario, om.ORACLE_LEG)
    other = om.run_leg(scenario, CONTRARIAN_LEG)
    assert om.canonical(other) == om.canonical(oracle), om.describe(
        scenario, CONTRARIAN_LEG, f"grid point {name}")


def test_sample_spans_every_family():
    sampled = _sampled_points()
    families = {n.split("/", 1)[0] for n in sampled}
    assert families == {f"grid:{f.name}" for f in grid_entries()}
