"""Shared core of the oracle-matrix differential harness.

One hypothesis strategy (:func:`scenarios`) produces random bounded
:class:`~repro.scenarios.Scenario`\\ s over every failure-schedule kind
— none / fixed / Poisson / Weibull plus the PR 6 production universes
(inhomogeneous-Poisson, maintenance windows, cascading) — and, on
StepSum, :class:`~repro.scenarios.RestartPolicy` variants.  Each one
runs under every combination of the execution toggles
(:data:`TOGGLE_LEGS`: engine backend × batched dispatch × section
batching × task pooling) in both cache states (cold and warm), and the
tests assert the :class:`~repro.results.RunResult` JSON is
byte-identical across all legs (:func:`canonical` — only the cache
*hit* flag may differ between cold and warm) and that the cache key is
toggle-neutral.

A surviving counterexample is a real bug in one of the execution paths;
:func:`repro_command` prints the exact shell command — env toggles plus
``python -m repro.experiments run --scenario-json '...'`` — that
replays the shrunken scenario outside the test harness.

Budgets are profile-switched: the default ``smoke`` profile keeps
tier-1 fast, ``REPRO_FUZZ_PROFILE=differential`` (the nightly CI job,
``make fuzz``) raises them to the standing-harness scale.  New toggle
axes slot in by appending to :data:`TOGGLE_AXES` — the leg product,
:func:`applied`, and :func:`repro_command` all derive from it.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import shlex
import warnings

from hypothesis import strategies as st

from repro.api import run as api_run
from repro.apps.hpccg import HpccgConfig, KernelBenchConfig
from repro.apps.steploop import StepSumConfig
from repro.intra import (section_batching_enabled, set_section_batching,
                         set_task_pooling, task_pooling_enabled)
from repro.scenarios import (CascadingFailures, ConstantRate,
                             FixedFailures, InhomogeneousPoissonFailures,
                             MaintenanceWindowFailures, PoissonFailures,
                             RateSpec, RestartPolicy, Scenario,
                             SinusoidRate, WeibullFailures)
from repro.scenarios.run import scenario_cache_key
from repro.simulate import (batched_default, get_engine_backend,
                            set_batched_default, set_engine_backend)

# ------------------------------------------------------------- budgets
#: per-test example budgets by profile.  ``differential`` is the
#: standing-harness scale the nightly job runs at; a meta-test pins the
#: >= 200 floor on the matrix so a refactor cannot silently shrink it.
PROFILES = {
    "smoke": {"matrix": 8, "grid_points": 6},
    "differential": {"matrix": 200, "grid_points": 48},
}


def active_profile() -> str:
    raw = os.environ.get("REPRO_FUZZ_PROFILE", "").strip().lower()
    if not raw:
        return "smoke"
    if raw not in PROFILES:
        warnings.warn(
            f"ignoring REPRO_FUZZ_PROFILE={raw!r}: expected one of "
            f"{sorted(PROFILES)}; using 'smoke'", RuntimeWarning)
        return "smoke"
    return raw


PROFILE = active_profile()


def budget(name: str) -> int:
    """The active profile's example budget for test ``name``."""
    return PROFILES[PROFILE][name]


# --------------------------------------------------------- toggle legs
#: the oracle axes: (leg key, values, env var, setter, getter).  The
#: first value of every axis is the reference; the all-reference leg —
#: python backend, everything enabled — is the oracle every other leg
#: must match byte for byte.
TOGGLE_AXES = (
    ("backend", ("python", "array"), "REPRO_ENGINE",
     set_engine_backend, get_engine_backend),
    ("batched", (True, False), "REPRO_BATCHED",
     set_batched_default, batched_default),
    ("sections", (True, False), "REPRO_SECTION_BATCHING",
     set_section_batching, section_batching_enabled),
    ("pooling", (True, False), "REPRO_TASK_POOLING",
     set_task_pooling, task_pooling_enabled),
)

#: all toggle combinations, deterministic order, oracle leg first
TOGGLE_LEGS = tuple(
    dict(zip((axis[0] for axis in TOGGLE_AXES), values))
    for values in itertools.product(*(axis[1] for axis in TOGGLE_AXES)))

ORACLE_LEG = TOGGLE_LEGS[0]


@contextlib.contextmanager
def applied(leg):
    """Apply a toggle leg process-wide; restore every knob on exit."""
    prev = [setter(leg[key])
            for key, _values, _env, setter, _getter in TOGGLE_AXES]
    try:
        yield
    finally:
        for (_key, _values, _env, setter, _getter), value in zip(
                TOGGLE_AXES, prev):
            setter(value)


def snapshot_toggles():
    return tuple(getter()
                 for _k, _v, _e, _setter, getter in TOGGLE_AXES)


def run_leg(scenario, leg, cache_dir=None):
    """One matrix leg: run ``scenario`` under the leg's toggles.

    ``cache_dir=None`` runs fresh (the cold, uncached leg);
    with a directory the sweep cache is live, so the first call per
    (scenario, dir) is the cold cached leg and the second the warm one.
    Failures surface as failed RunResult rows (``on_error="return"``) —
    a schedule harsh enough to exhaust replicas is a valid outcome, and
    every leg must then fail with the *same* error.
    """
    with applied(leg):
        if cache_dir is None:
            return api_run(scenario, cache=False, on_error="return")
        return api_run(scenario, cache=True, cache_dir=cache_dir,
                       on_error="return")


def canonical(result) -> str:
    """Leg-invariant bytes of a RunResult: the full lossless JSON with
    only the cache ``hit`` flag dropped (cold vs warm is the one axis
    *allowed* to differ).  The cache *key* stays in, so toggle-neutral
    cache keys are part of byte identity."""
    data = json.loads(result.to_json())
    cache = dict(data.get("cache") or {})
    cache.pop("hit", None)
    data["cache"] = cache
    return json.dumps(data, sort_keys=True)


def _env_token(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def repro_command(scenario, leg) -> str:
    """The exact shell command replaying this (scenario, leg) outside
    the harness — print it on failure so a shrunken counterexample is
    one paste away from a debugger."""
    env = " ".join(
        f"{envvar}={_env_token(leg[key])}"
        for key, _values, envvar, _setter, _getter in TOGGLE_AXES)
    return (f"{env} python -m repro.experiments run "
            f"--scenario-json {shlex.quote(scenario.to_json())} "
            f"--format json")


def describe(scenario, leg, phase: str) -> str:
    """Failure context: which leg diverged and how to replay it."""
    return (f"[{phase}] leg={leg} scenario={scenario.summary()}\n"
            f"replay: {repro_command(scenario, leg)}")


def expected_cache_key(scenario) -> str:
    return scenario_cache_key(scenario)


# ----------------------------------------------------------- scenarios
#: bounded app configs — the matrix explores *schedules, shapes and
#: toggles*, not problem sizes, so the programs stay tiny
TINY_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)
TINY_HPCCG = HpccgConfig(nx=8, ny=8, nz=8, max_iter=2,
                         intra_kernels=frozenset({"ddot"}))
TINY_STEPSUM = StepSumConfig(n=4_000, n_steps=4)

HORIZON = 2e-3


def failure_schedules():
    """One strategy per failure-schedule kind, PR 6 universes included."""
    seeds = st.integers(0, 2**16)
    fixed = st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1),
                  st.floats(1e-6, HORIZON, allow_nan=False)),
        min_size=1, max_size=2).map(
            lambda evs: FixedFailures(tuple(evs)))
    poisson = seeds.map(
        lambda s: PoissonFailures(rate=3e4, seed=s, horizon=HORIZON))
    weibull = seeds.map(
        lambda s: WeibullFailures(scale=1e-4, shape=0.7, seed=s,
                                  horizon=HORIZON))
    ipoisson = seeds.map(
        lambda s: InhomogeneousPoissonFailures(
            rates=RateSpec((ConstantRate(2e4),
                            SinusoidRate(mean=2e4, amplitude=1e4,
                                         period=1e-3))),
            seed=s, horizon=HORIZON))
    maintenance = seeds.map(
        lambda s: MaintenanceWindowFailures(
            base_rate=1e4, window_rate=8e4, period=1e-3, window=2e-4,
            offset=1e-4, seed=s, horizon=HORIZON))
    cascade = seeds.map(
        lambda s: CascadingFailures(
            rate=3e4, multiplier=10.0, window=5e-4, neighbor_distance=1,
            seed=s, horizon=HORIZON))
    return st.one_of(st.none(), fixed, poisson, weibull, ipoisson,
                     maintenance, cascade)


def restart_policies():
    """None (crashes stay permanent) or a bounded RestartPolicy —
    restart is only legal on intra/degree-2 StepSum, which the scenario
    builder enforces."""
    policies = st.builds(
        RestartPolicy,
        trigger=st.sampled_from(["on-crash", "on-degree-loss"]),
        delay=st.sampled_from([1e-4, 2e-4, 4e-4]),
        backoff=st.sampled_from([1.0, 2.0]),
        max_restarts=st.integers(1, 4),
        checkpoint_interval=st.sampled_from([1, 2]))
    return st.one_of(st.none(), policies)


def scenarios():
    """Random bounded scenarios over apps × modes × schedules ×
    restart policies — the generator every differential test shares."""
    def build(app_cfg, mode, n_logical, failures, fd_delay, restart):
        app, cfg = app_cfg
        kw = dict(app=app, config=cfg, n_logical=n_logical, mode=mode,
                  fd_delay=fd_delay)
        if failures is not None:
            if mode == "native":
                # failure schedules need replicas to kill
                kw["mode"] = "intra"
            kw["failures"] = failures
            if restart is not None and app == "stepsum":
                # restart requires intra + a restartable app factory
                kw["mode"] = "intra"
                kw["restart"] = restart
        return Scenario(**kw)

    return st.builds(
        build,
        st.sampled_from([("hpccg_kernels", TINY_KB),
                         ("hpccg", TINY_HPCCG),
                         ("stepsum", TINY_STEPSUM)]),
        st.sampled_from(["native", "sdr", "intra"]),
        st.integers(2, 3),
        failure_schedules(),
        st.sampled_from([50e-6, 100e-6]),
        restart_policies())
