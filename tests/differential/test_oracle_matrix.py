"""The oracle matrix: random scenarios × every execution-toggle leg ×
cold/warm cache, all byte-identical.

The python heap engine with batching, section batching and task
pooling all at their defaults is the oracle; the other 15 toggle legs
— and the warm-cache reads, including reads of bytes *written by a
different leg* — must reproduce its :class:`RunResult` JSON byte for
byte and agree on the scenario's cache key.  On failure, hypothesis
shrinks the scenario and the assertion message carries the exact
``python -m repro.experiments run --scenario-json`` command replaying
the diverging leg.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings

import oracle_matrix as om


@settings(max_examples=om.budget("matrix"), deadline=None,
          suppress_health_check=[HealthCheck.data_too_large])
@given(scenario=om.scenarios())
def test_matrix_all_legs_bit_identical(scenario):
    tmp = tempfile.mkdtemp(prefix="oracle-matrix-")
    try:
        # the reference: oracle leg, fresh, no cache anywhere
        oracle = om.run_leg(scenario, om.ORACLE_LEG)
        want = om.canonical(oracle)
        key = om.expected_cache_key(scenario)
        assert json.loads(want)["cache"]["key"] == key

        # cold cached oracle leg seeds the shared cache dir; every
        # other leg then reads those *oracle-written* bytes warm AND
        # recomputes fresh — both must match the reference
        seeded = om.run_leg(scenario, om.ORACLE_LEG, cache_dir=tmp)
        assert om.canonical(seeded) == want, om.describe(
            scenario, om.ORACLE_LEG, "cold-cached")
        for leg in om.TOGGLE_LEGS:
            fresh = om.run_leg(scenario, leg)
            assert om.canonical(fresh) == want, om.describe(
                scenario, leg, "fresh")
            warm = om.run_leg(scenario, leg, cache_dir=tmp)
            assert om.canonical(warm) == want, om.describe(
                scenario, leg, "warm")
            assert fresh.cache_key == key
            assert warm.cache_key == key
            if oracle.ok:
                # failures are never cached, so hit provenance only
                # applies to successful runs
                assert warm.cache_hit is True, om.describe(
                    scenario, leg, "warm-miss")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ------------------------------------------------- harness meta-tests

def test_matrix_covers_all_toggle_combinations():
    assert len(om.TOGGLE_LEGS) == 2 ** len(om.TOGGLE_AXES)
    assert len({tuple(sorted(leg.items())) for leg in om.TOGGLE_LEGS}
               ) == len(om.TOGGLE_LEGS)
    assert om.ORACLE_LEG == {"backend": "python", "batched": True,
                             "sections": True, "pooling": True}


def test_differential_profile_meets_the_standing_budget():
    # the acceptance floor: >= 200 generated scenarios per nightly run,
    # each across all toggle legs; keep tier-1's smoke budget small
    assert om.PROFILES["differential"]["matrix"] >= 200
    assert om.PROFILES["smoke"]["matrix"] <= 20
    for name, budgets in om.PROFILES.items():
        assert set(budgets) == set(om.PROFILES["smoke"]), name


def test_unknown_profile_falls_back_to_smoke(monkeypatch, recwarn):
    monkeypatch.setenv("REPRO_FUZZ_PROFILE", "nightlyy")
    assert om.active_profile() == "smoke"
    assert any("REPRO_FUZZ_PROFILE" in str(w.message) for w in recwarn)
    monkeypatch.setenv("REPRO_FUZZ_PROFILE", "differential")
    assert om.active_profile() == "differential"
    monkeypatch.delenv("REPRO_FUZZ_PROFILE")
    assert om.active_profile() == "smoke"


def test_repro_command_replays_a_leg_verbatim():
    import shlex

    from repro.scenarios import Scenario

    scenario = Scenario(app="stepsum", config=om.TINY_STEPSUM,
                        n_logical=2, mode="intra")
    leg = om.TOGGLE_LEGS[-1]
    cmd = om.repro_command(scenario, leg)
    assert "--scenario-json" in cmd
    assert "REPRO_ENGINE=array" in cmd
    assert "REPRO_BATCHED=0" in cmd
    assert "REPRO_SECTION_BATCHING=0" in cmd
    assert "REPRO_TASK_POOLING=0" in cmd
    # the embedded JSON round-trips to the same scenario
    payload = cmd.split("--scenario-json ", 1)[1].rsplit(
        " --format", 1)[0]
    assert Scenario.from_json(shlex.split(payload)[0]) == scenario
