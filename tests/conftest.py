"""Repo-wide fixtures.

``sandbox_perf_config`` is the single implementation of the
save/override/restore dance around the process-global sweep config;
suites whose tests touch it (the CLI, doc snippets, the facade) opt in
with a one-line autouse stub so the knobs stay in one place.
"""

import pytest

from repro.perf import configure, get_config


@pytest.fixture
def sandbox_perf_config(tmp_path):
    """Pin the process-global sweep config to (serial, uncached,
    tmp_path cache dir) for the test, restoring the caller's config —
    every field of :class:`repro.perf.SweepConfig` — afterwards."""
    cfg = get_config()
    old = (cfg.workers, cfg.cache, cfg.cache_dir)
    configure(workers=1, cache=False, cache_dir=tmp_path)
    try:
        yield cfg
    finally:
        configure(workers=old[0], cache=old[1], cache_dir=old[2])
