"""Section/task semantics in all three modes: consistency at section
exit, work split, update traffic, API error handling."""

import numpy as np
import pytest

from repro.intra import (Intra_Section_begin, Intra_Section_end,
                         Intra_Task_launch, Intra_Task_register,
                         IntraError, Tag, launch_intra_job, launch_mode,
                         launch_native_job, launch_sdr_job)
from tests.intra.conftest import waxpby_cost, waxpby_task


def waxpby_program(ctx, comm, n=64, n_tasks=8):
    """The paper's Figure 4: waxpby split into n_tasks tasks."""
    x = np.arange(n, dtype=np.float64) + comm.rank
    y = np.ones(n, dtype=np.float64)
    w = np.zeros(n, dtype=np.float64)
    Intra_Section_begin(ctx)
    tid = Intra_Task_register(
        ctx, waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
        cost=waxpby_cost)
    ts = n // n_tasks
    for i in range(n_tasks):
        sl = slice(i * ts, (i + 1) * ts)
        Intra_Task_launch(ctx, tid, [2.0, x[sl], 3.0, y[sl], w[sl]])
    yield from Intra_Section_end(ctx)
    return w


def expected_w(rank, n=64):
    return 2.0 * (np.arange(n, dtype=np.float64) + rank) + 3.0


def test_native_mode_computes_waxpby(make_world):
    world = make_world()
    job = launch_native_job(world, waxpby_program, 2)
    world.run()
    for rank, w in enumerate(job.results()):
        np.testing.assert_allclose(w, expected_w(rank))


def test_sdr_mode_all_replicas_compute_everything(make_world):
    world = make_world()
    job = launch_sdr_job(world, waxpby_program, 2)
    world.run()
    for lrank, row in enumerate(job.results()):
        for w in row:
            np.testing.assert_allclose(w, expected_w(lrank))
    # every replica executed all 8 tasks itself
    for row in job.manager.replicas:
        for info in row:
            assert info.ctx.intra.stats.tasks_executed == 8
            assert info.ctx.intra.stats.update_msgs_sent == 0


def test_intra_mode_replicas_consistent_and_share_work(make_world):
    world = make_world()
    job = launch_intra_job(world, waxpby_program, 2)
    world.run()
    for lrank, row in enumerate(job.results()):
        for w in row:
            np.testing.assert_allclose(w, expected_w(lrank))
    for row in job.manager.replicas:
        stats = [info.ctx.intra.stats for info in row]
        # paper's static split: 4 tasks per replica (8 tasks, degree 2)
        assert [s.tasks_executed for s in stats] == [4, 4]
        # each replica shipped its 4 task outputs (one OUT arg each)
        assert all(s.update_msgs_sent == 4 for s in stats)
        assert all(s.update_msgs_applied == 4 for s in stats)


def test_intra_replicas_bitwise_identical(make_world):
    world = make_world()
    job = launch_intra_job(world, waxpby_program, 3)
    world.run()
    for row in job.results():
        ref = row[0]
        for w in row[1:]:
            assert np.array_equal(ref, w)  # bit-for-bit


def test_intra_faster_than_sdr_for_compute_heavy_task(make_world):
    """A task with large compute and tiny update (ddot-like) should run
    ~2x faster under intra than under SDR."""
    def program(ctx, comm):
        x = np.arange(1024.0)
        out = [np.zeros(1) for _ in range(8)]
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(
            ctx, lambda v, o: np.copyto(o, v.sum()), [Tag.IN, Tag.OUT],
            cost=lambda v, o: (2.0 * v.size * 1000, 0.0))  # compute-heavy
        for i in range(8):
            Intra_Task_launch(ctx, tid, [x[i * 128:(i + 1) * 128], out[i]])
        yield from Intra_Section_end(ctx)
        return (ctx.now, float(sum(o[0] for o in out)))

    world = make_world()
    sdr = launch_sdr_job(world, program, 1)
    world.run()
    t_sdr = max(t for t, _ in sdr.results()[0])

    world2 = make_world()
    intra = launch_intra_job(world2, program, 1)
    world2.run()
    t_intra = max(t for t, _ in intra.results()[0])
    val = intra.results()[0][0][1]

    assert val == float(np.arange(1024.0).sum())
    assert t_intra < 0.6 * t_sdr


def test_multiple_sections_in_sequence(make_world):
    def program(ctx, comm, k=5):
        acc = np.zeros(16)
        for step in range(k):
            Intra_Section_begin(ctx)
            tid = Intra_Task_register(
                ctx, lambda a, o: np.copyto(o, a + 1.0),
                [Tag.IN, Tag.OUT])
            half = 8
            buf = acc.copy()
            Intra_Task_launch(ctx, tid, [buf[:half], acc[:half]])
            Intra_Task_launch(ctx, tid, [buf[half:], acc[half:]])
            yield from Intra_Section_end(ctx)
        return acc

    world = make_world()
    job = launch_intra_job(world, program, 2)
    world.run()
    for row in job.results():
        for acc in row:
            np.testing.assert_allclose(acc, np.full(16, 5.0))


def test_section_with_zero_tasks(make_world):
    def program(ctx, comm):
        Intra_Section_begin(ctx)
        yield from Intra_Section_end(ctx)
        return "ok"

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    assert job.results()[0] == ["ok", "ok"]


def test_fewer_tasks_than_replicas(make_world):
    def program(ctx, comm):
        out = np.zeros(4)
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(ctx, lambda o: o.fill(7.0), [Tag.OUT])
        Intra_Task_launch(ctx, tid, [out])
        yield from Intra_Section_end(ctx)
        return out

    world = make_world()
    job = launch_intra_job(world, program, 1, degree=3, placements=None,
                           spread=1)
    world.run()
    for out in job.results()[0]:
        np.testing.assert_allclose(out, np.full(4, 7.0))


def test_nested_section_rejected(make_world):
    def program(ctx, comm):
        Intra_Section_begin(ctx)
        try:
            Intra_Section_begin(ctx)
        except IntraError:
            return "caught"
        yield  # pragma: no cover

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_launch_without_register_rejected(make_world):
    def program(ctx, comm):
        Intra_Section_begin(ctx)
        try:
            Intra_Task_launch(ctx, 99, [])
        except IntraError:
            return "caught"
        yield  # pragma: no cover

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_out_arg_must_be_ndarray(make_world):
    def program(ctx, comm):
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(ctx, lambda o: None, [Tag.OUT])
        try:
            Intra_Task_launch(ctx, tid, [3.0])  # scalar OUT: invalid
        except TypeError:
            return "caught"
        yield  # pragma: no cover

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_api_outside_launcher_rejected(make_world):
    from repro.mpi import launch_job

    def program(ctx, comm):
        try:
            Intra_Section_begin(ctx)
        except RuntimeError:
            return "caught"
        yield  # pragma: no cover

    world = make_world()
    job = launch_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


@pytest.mark.parametrize("mode", ["native", "sdr", "intra"])
def test_launch_mode_dispatch(make_world, mode):
    world = make_world()
    job = launch_mode(mode, world, waxpby_program, 2, degree=2)
    world.run()
    if mode == "native":
        for rank, w in enumerate(job.results()):
            np.testing.assert_allclose(w, expected_w(rank))
    else:
        for lrank, row in enumerate(job.results()):
            for w in row:
                np.testing.assert_allclose(w, expected_w(lrank))


def test_inout_task_all_modes_agree(make_world):
    """GTC-style inout kernel: new value depends on old value."""
    def program(ctx, comm):
        pos = np.arange(32, dtype=np.float64)
        vel = np.full(32, 0.5)
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(
            ctx, lambda p, v: np.add(p, v, out=p), [Tag.INOUT, Tag.IN])
        for i in range(4):
            sl = slice(i * 8, (i + 1) * 8)
            Intra_Task_launch(ctx, tid, [pos[sl], vel[sl]])
        yield from Intra_Section_end(ctx)
        return pos

    expect = np.arange(32, dtype=np.float64) + 0.5
    for mode in ("native", "sdr", "intra"):
        world = make_world()
        job = launch_mode(mode, world, program, 1, degree=2)
        world.run()
        if mode == "native":
            np.testing.assert_allclose(job.results()[0], expect)
        else:
            for pos in job.results()[0]:
                np.testing.assert_allclose(pos, expect)


def test_exposed_update_time_tracked_for_large_updates(make_world):
    """waxpby-style task: output as large as input — update transfer
    dominates and is visible in stats.exposed_update_time."""
    def program(ctx, comm):
        n = 1_000_000  # 8 MB vectors
        x = np.ones(n)
        w = np.zeros(n)
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(
            ctx, lambda a, o: np.multiply(a, 2.0, out=o),
            [Tag.IN, Tag.OUT],
            cost=lambda a, o: (a.size, 8.0 * a.size))
        ts = n // 8
        for i in range(8):
            sl = slice(i * ts, (i + 1) * ts)
            Intra_Task_launch(ctx, tid, [x[sl], w[sl]])
        yield from Intra_Section_end(ctx)
        s = ctx.intra.stats
        return (s.exposed_update_time, s.section_time)

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    for exposed, total in job.results()[0]:
        assert exposed > 0.3 * total  # transfer-dominated, like Fig 5a
