"""Fixtures for intra-parallelization tests."""

import numpy as np
import pytest

from repro.mpi import MpiWorld
from repro.netmodel import Cluster, MachineSpec, NetworkSpec


@pytest.fixture
def machine():
    return MachineSpec(name="t", cores_per_node=4, flop_rate=1e9,
                       mem_bandwidth=4e9, copy_bandwidth=1e9)


@pytest.fixture
def netspec():
    return NetworkSpec(bandwidth=1e9, latency=1e-6, o_send=0.0, o_recv=0.0,
                       o_nic=0.0, half_duplex=False,
                       intranode_bandwidth=4e9, intranode_latency=0.0)


@pytest.fixture
def make_world(machine, netspec):
    def _make(n_nodes=8):
        return MpiWorld(Cluster(n_nodes, machine), netspec)

    return _make


def waxpby_task(alpha, x, beta, y, w):
    """The paper's running example kernel (Figure 4)."""
    np.multiply(x, alpha, out=w)
    w += beta * y


def waxpby_cost(alpha, x, beta, y, w):
    n = x.size
    return (3.0 * n, 24.0 * n)
