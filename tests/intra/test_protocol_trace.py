"""Protocol-shape assertions (Figure 1 of the paper).

Classic replication: both replicas execute the computation step w.
Intra-parallelization: the step splits into tasks t1/t2 executed in
parallel on the two replicas, followed by a cross-update exchange.
"""

import numpy as np
import pytest

from repro.intra import (Intra_Section_begin, Intra_Section_end,
                         Intra_Task_launch, Intra_Task_register, Tag,
                         launch_intra_job, launch_sdr_job)


def two_task_program(ctx, comm):
    """Figure 1's pattern: recv m0/m1, compute w as {t1, t2}, send
    m2/m3."""
    if comm.rank == 1:
        yield from comm.send(np.ones(4), dest=0, tag=0)   # m0
        yield from comm.send(np.ones(4), dest=0, tag=1)   # m1
        m2 = yield from comm.recv(source=0, tag=2)
        m3 = yield from comm.recv(source=0, tag=3)
        return float(m2.sum() + m3.sum())
    m0 = yield from comm.recv(source=1, tag=0)
    m1 = yield from comm.recv(source=1, tag=1)
    w = np.zeros(8)
    src = np.concatenate([m0, m1])
    Intra_Section_begin(ctx)
    tid = Intra_Task_register(
        ctx, lambda a, o: np.multiply(a, 5.0, out=o), [Tag.IN, Tag.OUT],
        cost=lambda a, o: (a.size, 16.0 * a.size))
    Intra_Task_launch(ctx, tid, [src[:4], w[:4]])   # t1
    Intra_Task_launch(ctx, tid, [src[4:], w[4:]])   # t2
    yield from Intra_Section_end(ctx)
    yield from comm.send(w[:4], dest=1, tag=2)      # m2
    yield from comm.send(w[4:], dest=1, tag=3)      # m3
    return float(w.sum())


def test_intra_splits_w_into_t1_t2(make_world):
    world = make_world()
    job = launch_intra_job(world, two_task_program, 2)
    world.run()
    # correctness of the full message+section pipeline
    for row in job.results():
        for v in row:
            assert v == pytest.approx(40.0)
    # the two replicas of rank 0 each executed exactly one task (t1, t2)
    r0 = job.manager.replicas[0]
    execs = [info.ctx.intra.stats.tasks_executed for info in r0]
    assert execs == [1, 1]
    # each shipped one update to its sibling
    sends = [info.ctx.intra.stats.update_msgs_sent for info in r0]
    assert sends == [1, 1]


def test_classic_replication_duplicates_w(make_world):
    world = make_world()
    job = launch_sdr_job(world, two_task_program, 2)
    world.run()
    for row in job.results():
        for v in row:
            assert v == pytest.approx(40.0)
    r0 = job.manager.replicas[0]
    execs = [info.ctx.intra.stats.tasks_executed for info in r0]
    assert execs == [2, 2]  # both replicas executed both tasks (w and w')


def test_intra_section_hooks_fire_in_order(make_world):
    world = make_world()
    job = launch_intra_job(world, two_task_program, 2)
    job.manager.hooks.record = True
    world.run()
    names = [n for n, kw in job.manager.hooks.events_seen
             if kw.get("logical_rank") == 0 and kw.get("replica_id") == 0]
    assert names[0] == "section_enter"
    assert "task_executed" in names
    assert "update_injected" in names
    assert names[-1] == "section_exit"
    assert (names.index("task_executed")
            < names.index("update_injected"))


def test_intra_parallel_section_halves_compute_time(make_world):
    """Compute-dominated two-task section: each replica charges half the
    compute of the SDR run (the parallel speed-up of Figure 1b)."""
    def program(ctx, comm):
        w = np.zeros(2)
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(
            ctx, lambda o: o.fill(1.0), [Tag.OUT],
            cost=lambda o: (1e6, 0.0))  # 1 ms at 1 Gflop/s
        Intra_Task_launch(ctx, tid, [w[:1]])
        Intra_Task_launch(ctx, tid, [w[1:]])
        yield from Intra_Section_end(ctx)
        return ctx.intra.stats.task_compute_time

    world = make_world()
    sdr = launch_sdr_job(world, program, 1)
    world.run()
    world2 = make_world()
    intra = launch_intra_job(world2, program, 1)
    world2.run()
    t_sdr = sdr.results()[0][0]
    t_intra = intra.results()[0][0]
    assert t_sdr == pytest.approx(2e-3)
    assert t_intra == pytest.approx(1e-3)
