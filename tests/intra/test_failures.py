"""Failure handling inside intra-parallel sections (paper §III-B2).

Three crash cases are distinguished by the paper:
  1. before the replica sent any update for its current task,
  2. after the full update reached some (all, at degree 2) replicas,
  3. mid-update — some variables delivered, others not (Figure 2).

Plus: failures outside sections need no action, and the true-dependence
hazard of case 3 is only avoided thanks to the extra `inout` copy
(Figure 2c); with protection disabled we reproduce the *incorrect*
execution of Figure 2b.
"""

import numpy as np
import pytest

from repro.intra import (CopyStrategy, Intra_Section_begin,
                         Intra_Section_end, Intra_Task_launch,
                         Intra_Task_register, Tag, launch_intra_job)
from repro.replication import FailureInjector


def doubler_program(ctx, comm, n=64, n_tasks=8, sleep_before=0.0):
    """Simple OUT-only section: w = 2 * x."""
    x = np.arange(n, dtype=np.float64)
    w = np.zeros(n, dtype=np.float64)
    if sleep_before:
        yield ctx.sleep(sleep_before)
    Intra_Section_begin(ctx)
    tid = Intra_Task_register(
        ctx, lambda a, o: np.multiply(a, 2.0, out=o), [Tag.IN, Tag.OUT],
        cost=lambda a, o: (a.size, 16.0 * a.size))
    ts = n // n_tasks
    for i in range(n_tasks):
        sl = slice(i * ts, (i + 1) * ts)
        Intra_Task_launch(ctx, tid, [x[sl], w[sl]])
    yield from Intra_Section_end(ctx)
    return w


def inout_program(ctx, comm, n=32, n_tasks=4, rounds=1):
    """GTC-push-style INOUT section: pos += 1 (depends on old pos)."""
    pos = np.arange(n, dtype=np.float64)
    for _ in range(rounds):
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(
            ctx, lambda p: np.add(p, 1.0, out=p), [Tag.INOUT],
            cost=lambda p: (p.size, 16.0 * p.size))
        ts = n // n_tasks
        for i in range(n_tasks):
            Intra_Task_launch(ctx, tid, [pos[i * ts:(i + 1) * ts]])
        yield from Intra_Section_end(ctx)
    return pos


def survivors_w(job, lrank=0):
    return [info.app_process.value
            for info in job.manager.alive_replicas(lrank)]


def test_failure_outside_section_needs_no_action(make_world):
    """Crash before the section starts: survivor executes all tasks."""
    world = make_world()
    job = launch_intra_job(world, doubler_program, 1,
                           kwargs=dict(sleep_before=0.01))
    FailureInjector(job.manager).kill_at(0, 1, 0.001)
    world.run()
    (w,) = survivors_w(job)
    np.testing.assert_allclose(w, 2.0 * np.arange(64.0))
    # survivor executed all 8 tasks, sent no updates (no live sibling)
    survivor = job.manager.alive_replicas(0)[0]
    assert survivor.ctx.intra.stats.tasks_executed == 8
    assert survivor.ctx.intra.stats.update_msgs_sent == 0


def test_case1_crash_before_any_update(make_world):
    """Replica dies right when the section starts: none of its task
    updates exist; survivor re-executes them all."""
    world = make_world()
    job = launch_intra_job(world, doubler_program, 1, fd_delay=10e-6)
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 1, "section_enter")
    world.run()
    (w,) = survivors_w(job)
    np.testing.assert_allclose(w, 2.0 * np.arange(64.0))
    survivor = job.manager.alive_replicas(0)[0]
    s = survivor.ctx.intra.stats
    assert s.tasks_reexecuted == 4
    assert s.recoveries >= 1


def test_case2_crash_after_full_update_delivery(make_world):
    """Replica dies after executing and fully delivering every one of
    its tasks' updates: the survivor needs no re-execution."""
    world = make_world()
    # large fd_delay: the crash (late in virtual time) is detected long
    # after the section completed.
    job = launch_intra_job(world, doubler_program, 1, fd_delay=0.5)
    inj = FailureInjector(job.manager)
    # kill replica 1 after its last update was injected AND delivered:
    # its 4th task is index 7; let the run finish the section first by
    # killing at a hook that fires on section exit.
    inj.kill_on_hook(0, 1, "section_exit")
    world.run()
    (w,) = survivors_w(job)
    np.testing.assert_allclose(w, 2.0 * np.arange(64.0))
    survivor = job.manager.alive_replicas(0)[0]
    assert survivor.ctx.intra.stats.tasks_reexecuted == 0


def test_case3_crash_mid_task_stream(make_world):
    """Replica dies after injecting only its first task's update: the
    survivor re-executes the remaining tasks."""
    world = make_world()
    job = launch_intra_job(world, doubler_program, 1, fd_delay=10e-6)
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 1, "update_injected",
                     when=lambda task, arg, **kw: task == 4)
    world.run()
    (w,) = survivors_w(job)
    np.testing.assert_allclose(w, 2.0 * np.arange(64.0))
    survivor = job.manager.alive_replicas(0)[0]
    s = survivor.ctx.intra.stats
    # task 4's update was delivered; tasks 5-7 re-executed
    assert s.tasks_reexecuted == 3


def test_figure2_partial_update_with_lazy_copy_is_correct(make_world):
    """Figure 2c: task writes variables a then b; executor dies after
    a's update is injected but before b's.  The survivor restores its
    `inout` copy before re-executing, so no true dependence corrupts the
    result."""
    def program(ctx, comm):
        a = np.array([1.0])
        b = np.array([0.0])
        Intra_Section_begin(ctx)

        def task1(a, b):
            a += 1.0
            b[...] = a * 2.0

        tid = Intra_Task_register(ctx, task1, [Tag.INOUT, Tag.OUT],
                                  cost=lambda a, b: (2.0, 1e6))
        Intra_Task_launch(ctx, tid, [a, b])
        yield from Intra_Section_end(ctx)
        return (float(a[0]), float(b[0]))

    world = make_world()
    job = launch_intra_job(world, program, 1, fd_delay=10e-6,
                           copy_strategy=CopyStrategy.LAZY)
    inj = FailureInjector(job.manager)
    # replica 0 executes the single task (static-block assigns task 0 to
    # the lowest live rid); kill it the moment update arg 0 (a) hits the
    # wire — arg 1 (b) is still queued behind it and is retracted.
    inj.kill_on_hook(0, 0, "update_injected",
                     when=lambda task, arg, **kw: arg == 0)
    world.run()
    (result,) = survivors_w(job)
    # correct execution: a = 2, b = 4 (Figure 2's expected values)
    assert result == (2.0, 4.0)


def test_figure2_without_protection_reproduces_incorrect_run(make_world):
    """Figure 2b: same scenario with CopyStrategy.NONE — the partial
    update of `a` leaks into the re-execution, giving a=3, b=6."""
    def program(ctx, comm):
        a = np.array([1.0])
        b = np.array([0.0])
        Intra_Section_begin(ctx)

        def task1(a, b):
            a += 1.0
            b[...] = a * 2.0

        tid = Intra_Task_register(ctx, task1, [Tag.INOUT, Tag.OUT],
                                  cost=lambda a, b: (2.0, 1e6))
        Intra_Task_launch(ctx, tid, [a, b])
        yield from Intra_Section_end(ctx)
        return (float(a[0]), float(b[0]))

    world = make_world()
    job = launch_intra_job(world, program, 1, fd_delay=10e-6,
                           copy_strategy=CopyStrategy.NONE)
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 0, "update_injected",
                     when=lambda task, arg, **kw: arg == 0)
    world.run()
    (result,) = survivors_w(job)
    # incorrect execution of Figure 2b: a=2 applied, then re-execution
    # reads the updated a: a=3, b=6.
    assert result == (3.0, 6.0)


@pytest.mark.parametrize("strategy", [CopyStrategy.LAZY, CopyStrategy.EAGER,
                                      CopyStrategy.ATOMIC])
def test_inout_protection_strategies_all_correct(make_world, strategy):
    """All three protection strategies of §III-B2 give the correct
    result under a mid-update crash."""
    world = make_world()
    job = launch_intra_job(world, inout_program, 1, fd_delay=10e-6,
                           copy_strategy=strategy,
                           kwargs=dict(rounds=3))
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 0, "update_injected",
                     when=lambda task, arg, section, **kw: section == 1
                     and task == 0)
    world.run()
    (pos,) = survivors_w(job)
    np.testing.assert_allclose(pos, np.arange(32.0) + 3.0)


def test_subsequent_sections_run_on_survivor(make_world):
    """After a crash, later sections schedule all tasks on the survivor
    (paper: "During the next intra-parallel sections, tasks would be
    scheduled on the remaining replicas")."""
    world = make_world()
    job = launch_intra_job(world, inout_program, 1, fd_delay=10e-6,
                           kwargs=dict(rounds=4))
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 1, "section_exit",
                     when=lambda section, **kw: section == 0)
    world.run()
    (pos,) = survivors_w(job)
    np.testing.assert_allclose(pos, np.arange(32.0) + 4.0)
    survivor = job.manager.alive_replicas(0)[0]
    s = survivor.ctx.intra.stats
    # round 0: 2 tasks locally; rounds 1-3: all 4 tasks each
    assert s.tasks_executed == 2 + 3 * 4
    # updates only in round 0 (2 local tasks x 1 inout arg x 1 sibling);
    # rounds 1-3 have no live sibling to update
    assert s.update_msgs_sent == 2
    assert s.tasks_reexecuted == 0


def test_degree3_crash_survivors_both_reexecute_locally(make_world):
    """With degree 3, both survivors independently re-execute the dead
    replica's unfinished tasks and stay bitwise consistent."""
    def program(ctx, comm):
        w = yield from doubler_program(ctx, comm, n=60, n_tasks=6)
        return w

    world = make_world(n_nodes=12)
    job = launch_intra_job(world, program, 1, degree=3, fd_delay=10e-6)
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 2, "section_enter")
    world.run()
    vals = survivors_w(job)
    assert len(vals) == 2
    np.testing.assert_array_equal(vals[0], vals[1])
    np.testing.assert_allclose(vals[0], 2.0 * np.arange(60.0))


def test_crash_during_intra_section_with_mpi_phases_around(make_world):
    """Full mini-app shape: MPI allreduce, intra section, MPI allreduce,
    with a crash inside the section."""
    def program(ctx, comm):
        pre = yield from comm.allreduce(comm.rank + 1.0, op="sum")
        w = np.zeros(32)
        x = np.full(32, pre)
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(
            ctx, lambda a, o: np.multiply(a, 3.0, out=o),
            [Tag.IN, Tag.OUT], cost=lambda a, o: (a.size, 1e6))
        for i in range(4):
            Intra_Task_launch(ctx, tid, [x[i * 8:(i + 1) * 8],
                                         w[i * 8:(i + 1) * 8]])
        yield from Intra_Section_end(ctx)
        post = yield from comm.allreduce(float(w.sum()), op="sum")
        return post

    world = make_world()
    job = launch_intra_job(world, program, 2, fd_delay=10e-6)
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(1, 0, "update_injected",
                     when=lambda task, **kw: task == 0)
    world.run()
    # pre = 3 on every rank; w = 9 everywhere; sum_w = 288; post = 576
    for lrank in range(2):
        for info in job.manager.alive_replicas(lrank):
            assert info.app_process.value == pytest.approx(576.0)
