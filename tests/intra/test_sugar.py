"""Tests for the section-builder sugar API."""

import numpy as np
import pytest

from repro.intra import (IN, INOUT, OUT, launch_intra_job,
                         launch_native_job, parallel_for, section)
from repro.kernels import waxpby, waxpby_cost


def test_section_builder_equivalent_to_raw_api(make_world):
    def program(ctx, comm):
        n = 64
        x = np.arange(n, dtype=np.float64)
        y = np.ones(n)
        w = np.zeros(n)
        sec = section(ctx)
        for i in range(8):
            sl = slice(i * 8, (i + 1) * 8)
            sec.run(waxpby, [2.0, x[sl], 3.0, y[sl], w[sl]],
                    tags=[IN, IN, IN, IN, OUT], cost=waxpby_cost)
        yield from sec.end()
        return w

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    for w in job.results()[0]:
        np.testing.assert_allclose(w, 2.0 * np.arange(64.0) + 3.0)


def test_section_builder_caches_task_types(make_world):
    def program(ctx, comm):
        outs = [np.zeros(1) for _ in range(4)]
        sec = section(ctx)
        for o in outs:
            sec.run(lambda o: o.fill(1.0), [o], tags=[OUT])
        yield from sec.end()
        # one task *type*, four launches
        return (len(sec._ids), ctx.intra.stats.tasks_launched)

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    # note: the lambda is the same object each iteration? No — it is
    # recreated; the cache key is per function object, so expect 4 ids.
    n_ids, n_launched = job.results()[0][0]
    assert n_launched == 4
    assert 1 <= n_ids <= 4


def test_parallel_for_slices_arrays(make_world):
    def program(ctx, comm):
        n = 40
        x = np.arange(n, dtype=np.float64)
        y = np.full(n, 2.0)
        w = np.zeros(n)
        yield from parallel_for(ctx, waxpby, [0.5, x, 1.0, y, w],
                                tags=[IN, IN, IN, IN, OUT],
                                cost=waxpby_cost, n_tasks=8)
        return w

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    for w in job.results()[0]:
        np.testing.assert_allclose(w, 0.5 * np.arange(40.0) + 2.0)


def test_parallel_for_inout(make_world):
    def program(ctx, comm):
        pos = np.arange(24, dtype=np.float64)
        yield from parallel_for(ctx, lambda p: np.add(p, 10.0, out=p),
                                [pos], tags=[INOUT], n_tasks=4)
        return pos

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    for pos in job.results()[0]:
        np.testing.assert_allclose(pos, np.arange(24.0) + 10.0)


def test_parallel_for_needs_array(make_world):
    def program(ctx, comm):
        try:
            yield from parallel_for(ctx, lambda a: None, [1.0],
                                    tags=[IN])
        except ValueError:
            return "caught"

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_parallel_for_mismatched_lengths(make_world):
    def program(ctx, comm):
        try:
            yield from parallel_for(
                ctx, lambda a, b: None,
                [np.zeros(8), np.zeros(9)], tags=[IN, IN])
        except ValueError:
            return "caught"

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_parallel_for_works_in_native_mode(make_world):
    def program(ctx, comm):
        w = np.zeros(16)
        yield from parallel_for(ctx, lambda o: np.add(o, 5.0, out=o),
                                [w], tags=[OUT], n_tasks=4)
        return w

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    np.testing.assert_allclose(job.results()[0], 5.0)
