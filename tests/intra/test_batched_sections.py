"""Batched section execution (LocalIntraRuntime): bit-identical results,
timers and stats vs the task-by-task oracle path, in native and SDR
modes, including crash injection landing mid-batch."""

import numpy as np
import pytest

import repro.simulate.engine as engine_mod
from repro.intra import (Tag, launch_native_job, launch_sdr_job,
                         section_batching_enabled, set_section_batching)
from repro.replication import FailureInjector
from tests.intra.conftest import waxpby_cost, waxpby_task


@pytest.fixture
def toggle_batching():
    """Restore the process-wide batching switches after the test."""
    prev_sections = section_batching_enabled()
    prev_engine = engine_mod.BATCHED_DEFAULT

    def _set(enabled):
        set_section_batching(enabled)
        engine_mod.BATCHED_DEFAULT = enabled

    yield _set
    set_section_batching(prev_sections)
    engine_mod.BATCHED_DEFAULT = prev_engine


def sectioned_program(ctx, comm, n=64, n_tasks=8, n_sections=5):
    """Back-to-back sections over a rank-dependent vector, mixing
    zero-cost and costed tasks, plus a run_local stretch."""
    x = np.arange(n, dtype=np.float64) + comm.rank
    y = np.ones(n, dtype=np.float64)
    w = np.zeros(n, dtype=np.float64)
    rt = ctx.intra
    for s in range(n_sections):
        with ctx.region("sections"):
            rt.section_begin()
            tid = rt.task_register(
                waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
                cost=waxpby_cost)
            free = rt.task_register(
                waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT])
            ts = n // n_tasks
            for i in range(n_tasks):
                sl = slice(i * ts, (i + 1) * ts)
                rt.task_launch(tid, [2.0, x[sl], 3.0, y[sl], w[sl]])
            # a zero-cost task in the middle of the batch
            rt.task_launch(free, [1.0, w[:ts], 0.0, y[:ts], w[:ts]])
            yield from rt.section_end()
        yield from rt.run_local(waxpby_task, [1.0, w, float(s), y, x],
                                waxpby_cost)
    return ctx.now, float(x.sum()), float(w.sum())


def _run_native(make_world, batched, toggle):
    toggle(batched)
    world = make_world()
    job = launch_native_job(world, sectioned_program, 3)
    world.run()
    stats = [dict(c.intra.stats.__dict__) for c in job.contexts]
    timers = [dict(c.timers) for c in job.contexts]
    return job.results(), stats, timers


def test_native_batched_bit_identical(make_world, toggle_batching):
    res_b, stats_b, timers_b = _run_native(make_world, True,
                                           toggle_batching)
    res_u, stats_u, timers_u = _run_native(make_world, False,
                                           toggle_batching)
    assert repr(res_b) == repr(res_u)      # exact floats, same clocks
    assert stats_b == stats_u              # per-task accounting replayed
    assert timers_b == timers_u


def _run_sdr(make_world, batched, toggle, crash_at=None):
    toggle(batched)
    world = make_world()
    job = launch_sdr_job(world, sectioned_program, 2)
    if crash_at is not None:
        FailureInjector(job.manager).kill_at(0, 1, crash_at)
    world.run()
    return job


def test_sdr_batched_bit_identical(make_world, toggle_batching):
    job_b = _run_sdr(make_world, True, toggle_batching)
    job_u = _run_sdr(make_world, False, toggle_batching)
    assert repr(job_b.results()) == repr(job_u.results())
    for row_b, row_u in zip(job_b.manager.replicas, job_u.manager.replicas):
        for ib, iu in zip(row_b, row_u):
            assert ib.ctx.intra.stats.__dict__ == iu.ctx.intra.stats.__dict__


def test_sdr_crash_lands_mid_batch_at_exact_time(make_world,
                                                 toggle_batching):
    """A kill scheduled inside a batched section terminates the replica
    at the exact scheduled virtual time, and the survivors' results are
    identical to the unbatched run's."""
    # pick a crash time inside the compute window of the run
    probe = _run_sdr(make_world, True, toggle_batching)
    end = probe.world.sim.now
    crash_at = end * 0.41

    job_b = _run_sdr(make_world, True, toggle_batching, crash_at=crash_at)
    job_u = _run_sdr(make_world, False, toggle_batching, crash_at=crash_at)

    for job in (job_b, job_u):
        victim = job.manager.replicas[0][1]
        assert not victim.alive
        assert victim.app_process.killed
    assert repr(job_b.results()) == repr(job_u.results())
    assert job_b.world.sim.now == job_u.world.sim.now


def test_single_task_sections_skip_batching(make_world, toggle_batching):
    """A one-task section takes the oracle path (nothing to batch) and
    still matches results."""

    def one_task(ctx, comm):
        x = np.arange(16, dtype=np.float64)
        w = np.zeros(16)
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(
            waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
            cost=waxpby_cost)
        rt.task_launch(tid, [2.0, x, 0.0, x, w])
        yield from rt.section_end()
        return float(w.sum())

    out = []
    for batched in (True, False):
        toggle_batching(batched)
        world = make_world()
        job = launch_native_job(world, one_task, 1)
        world.run()
        out.append((job.results(), world.sim.now))
    assert repr(out[0]) == repr(out[1])


def test_trace_hook_disables_section_batching(make_world, machine,
                                              netspec, toggle_batching):
    """With a trace installed, sections run task-by-task so per-event
    traces stay seed-exact."""
    from repro.mpi import MpiWorld
    from repro.netmodel import Cluster

    toggle_batching(True)
    events = []
    world = MpiWorld(Cluster(8, machine), netspec,
                     trace=lambda t, ev: events.append(ev.label))
    job = launch_native_job(world, sectioned_program, 1)
    world.run()
    # 9 tasks per section with nonzero cost on 8 of them -> at least 8
    # distinct compute wakes per section in the traced (oracle) run
    assert len(events) > 5 * 8
    assert job.results()
