"""Scheduler policies: determinism, balance, completeness."""

import pytest
from hypothesis import given, strategies as st

from repro.intra import (CostBalancedScheduler, RoundRobinScheduler,
                         StaticBlockScheduler, Tag, TaskDef, LaunchedTask,
                         make_scheduler)


def make_tasks(n, costs=None):
    tdef = TaskDef(1, lambda o: None, [Tag.OUT])
    import numpy as np
    tasks = []
    for i in range(n):
        t = LaunchedTask(index=i, tdef=tdef, vars=[np.zeros(1)])
        tasks.append(t)
    if costs:
        for t, c in zip(tasks, costs):
            t.tdef = TaskDef(1, lambda o: None, [Tag.OUT],
                             cost=lambda o, c=c: (c, 0.0))
    return tasks


def test_static_block_paper_split():
    """Paper §V-A: with 8 tasks and 2 replicas, first 4 go to replica 0,
    last 4 to replica 1."""
    sched = StaticBlockScheduler()
    out = sched.assign(make_tasks(8), [0, 1])
    assert out == [0, 0, 0, 0, 1, 1, 1, 1]


def test_static_block_uneven():
    sched = StaticBlockScheduler()
    out = sched.assign(make_tasks(5), [0, 1])
    assert out in ([0, 0, 0, 1, 1], [0, 0, 1, 1, 1])
    assert sorted(set(out)) == [0, 1]


def test_static_block_single_executor():
    sched = StaticBlockScheduler()
    assert sched.assign(make_tasks(4), [7]) == [7, 7, 7, 7]


def test_round_robin_interleaves():
    sched = RoundRobinScheduler()
    assert sched.assign(make_tasks(5), [0, 1]) == [0, 1, 0, 1, 0]


def test_cost_balanced_puts_heavy_alone():
    sched = CostBalancedScheduler()
    tasks = make_tasks(4, costs=[100.0, 1.0, 1.0, 1.0])
    out = sched.assign(tasks, [0, 1])
    heavy = out[0]
    assert all(e != heavy for e in out[1:])


def test_no_executors_rejected():
    with pytest.raises(ValueError):
        StaticBlockScheduler().assign(make_tasks(2), [])


def test_duplicate_executors_rejected():
    with pytest.raises(ValueError):
        RoundRobinScheduler().assign(make_tasks(2), [1, 1])


def test_make_scheduler_factory():
    assert isinstance(make_scheduler("static-block"), StaticBlockScheduler)
    assert isinstance(make_scheduler("round-robin"), RoundRobinScheduler)
    assert isinstance(make_scheduler("cost-balanced"),
                      CostBalancedScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic")


@given(n=st.integers(1, 200), r=st.integers(1, 8),
       policy=st.sampled_from(["static-block", "round-robin"]))
def test_property_every_task_assigned_to_valid_executor(n, r, policy):
    sched = make_scheduler(policy)
    executors = list(range(10, 10 + r))
    out = sched.assign(make_tasks(n), executors)
    assert len(out) == n
    assert all(e in executors for e in out)


@given(n=st.integers(1, 200), r=st.integers(1, 8))
def test_property_static_block_is_balanced_and_contiguous(n, r):
    sched = StaticBlockScheduler()
    executors = list(range(r))
    out = sched.assign(make_tasks(n), executors)
    # contiguity: executor ids non-decreasing along launch order
    assert out == sorted(out)
    # balance: counts differ by at most 1
    counts = [out.count(e) for e in executors]
    assert max(counts) - min(counts) <= 1


@given(n=st.integers(1, 100), r=st.integers(1, 6), seed=st.integers(0, 99))
def test_property_cost_balanced_deterministic(n, r, seed):
    import random
    rng = random.Random(seed)
    costs = [rng.uniform(0.1, 10.0) for _ in range(n)]
    executors = list(range(r))
    a = CostBalancedScheduler().assign(make_tasks(n, costs), executors)
    b = CostBalancedScheduler().assign(make_tasks(n, costs), executors)
    assert a == b
    assert all(e in executors for e in a)
