"""Intra-runtime internals: stats accounting, stale updates, run_local
guard, ATOMIC buffering, tags."""

import dataclasses

import numpy as np
import pytest

from repro.intra import (CopyStrategy, IntraError, IntraStats, Tag,
                         launch_intra_job, launch_native_job)
from repro.replication import FailureInjector


def test_stats_merge():
    a = IntraStats(sections=2, tasks_executed=5, copy_bytes=100,
                   section_time=1.5)
    b = IntraStats(sections=1, tasks_executed=3, copy_bytes=50,
                   section_time=0.5)
    m = a.merge(b)
    assert m.sections == 3
    assert m.tasks_executed == 8
    assert m.copy_bytes == 150
    assert m.section_time == 2.0
    # originals untouched
    assert a.sections == 2 and b.sections == 1


def test_run_local_inside_section_rejected(make_world):
    def program(ctx, comm):
        ctx.intra.section_begin()
        try:
            yield from ctx.intra.run_local(lambda: None, [])
        except IntraError:
            return "caught"

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_stale_update_after_local_reexecution_is_ignored(make_world):
    """If a task was re-executed locally, a late-arriving update from
    the (now dead) original executor must not clobber post-section
    state.  We verify through the done-flag path: the re-executed value
    equals the update value (determinism), so state stays consistent
    either way — the assertion is that nothing crashes and replicas
    agree."""
    def program(ctx, comm):
        w = np.zeros(16)
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(lambda o: o.fill(3.0), [Tag.OUT],
                               cost=lambda o: (1e5, 1e6))
        for i in range(4):
            rt.task_launch(tid, [w[i * 4:(i + 1) * 4]])
        yield from rt.section_end()
        return w

    world = make_world()
    job = launch_intra_job(world, program, 1, fd_delay=5e-6)
    inj = FailureInjector(job.manager)
    inj.kill_on_hook(0, 0, "update_injected",
                     when=lambda task, **kw: task == 0)
    world.run()
    for info in job.manager.alive_replicas(0):
        np.testing.assert_allclose(info.app_process.value, 3.0)


def test_atomic_strategy_buffers_until_complete(make_world):
    """Under ATOMIC, a task with two OUT args applies both at once; a
    mid-update crash leaves the receiver's vars untouched before
    re-execution."""
    def program(ctx, comm):
        a = np.zeros(4)
        b = np.zeros(4)
        rt = ctx.intra
        rt.section_begin()

        def task(x, y):
            x.fill(1.0)
            y.fill(2.0)

        tid = rt.task_register(task, [Tag.OUT, Tag.OUT],
                               cost=lambda x, y: (10.0, 1e6))
        rt.task_launch(tid, [a, b])
        yield from rt.section_end()
        return np.concatenate([a, b])

    world = make_world()
    job = launch_intra_job(world, program, 1, fd_delay=5e-6,
                           copy_strategy=CopyStrategy.ATOMIC)
    inj = FailureInjector(job.manager)
    # crash the executor between its two update injections
    inj.kill_on_hook(0, 0, "update_injected",
                     when=lambda arg, **kw: arg == 0)
    world.run()
    survivor = job.manager.alive_replicas(0)[0]
    np.testing.assert_allclose(survivor.app_process.value,
                               [1, 1, 1, 1, 2, 2, 2, 2])
    assert survivor.ctx.intra.stats.tasks_reexecuted == 1


def test_update_tags_unique_across_sections(make_world):
    """Two sections with identical task structure must not cross-match
    update messages (section index is baked into the tag)."""
    def program(ctx, comm):
        out1 = np.zeros(4)
        out2 = np.zeros(4)
        for val, out in ((1.0, out1), (2.0, out2)):
            rt = ctx.intra
            rt.section_begin()
            tid = rt.task_register(
                lambda o, v=val: o.fill(v), [Tag.OUT])
            rt.task_launch(tid, [out])
            yield from rt.section_end()
        return (out1.copy(), out2.copy())

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    for o1, o2 in job.results()[0]:
        np.testing.assert_allclose(o1, 1.0)
        np.testing.assert_allclose(o2, 2.0)


def test_max_args_enforced(make_world):
    def program(ctx, comm):
        ctx.intra.section_begin()
        try:
            ctx.intra.task_register(lambda *a: None, [Tag.IN] * 100)
        except IntraError:
            return "caught"
        yield  # pragma: no cover

    world = make_world()
    job = launch_native_job(world, program, 1)
    world.run()
    assert job.results() == ["caught"]


def test_string_tags_accepted(make_world):
    def program(ctx, comm):
        w = np.zeros(4)
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(lambda o: o.fill(9.0), ["out"])
        rt.task_launch(tid, [w])
        yield from rt.section_end()
        return w

    world = make_world()
    job = launch_intra_job(world, program, 1)
    world.run()
    for w in job.results()[0]:
        np.testing.assert_allclose(w, 9.0)


def test_task_overhead_charged_per_task(make_world):
    def program(ctx, comm, n_tasks):
        outs = [np.zeros(1) for _ in range(n_tasks)]
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(lambda o: None, [Tag.OUT])
        for o in outs:
            rt.task_launch(tid, [o])
        yield from rt.section_end()
        return ctx.now

    def run(n_tasks, overhead):
        world = make_world()
        job = launch_intra_job(world, program, 1,
                               task_overhead=overhead,
                               args=(n_tasks,))
        world.run()
        return max(job.results()[0])

    t_small = run(4, 1e-5)
    t_large = run(32, 1e-5)
    assert t_large - t_small == pytest.approx(28e-5, rel=0.2)
