"""Split-on-send batched execution (work-sharing IntraRuntime):
bit-identical results, stats, timers and update-send timing vs the
task-by-task oracle, including crashes landing mid-batch — plus the
section-shape object pooling that rides on the same toggle discipline.
"""

import numpy as np
import pytest

import repro.intra.runtime as runtime_mod
import repro.simulate.engine as engine_mod
from repro.intra import (CopyStrategy, Tag, launch_intra_job,
                         section_batching_enabled, set_section_batching,
                         set_task_pooling, task_pooling_enabled)
from repro.mpi.world import ProcContext
from repro.replication import FailureInjector
from tests.intra.conftest import waxpby_cost, waxpby_task


@pytest.fixture
def toggle_batching():
    """Restore the process-wide batching switches after the test."""
    prev_sections = section_batching_enabled()
    prev_engine = engine_mod.BATCHED_DEFAULT

    def _set(enabled):
        set_section_batching(enabled)
        engine_mod.BATCHED_DEFAULT = enabled

    yield _set
    set_section_batching(prev_sections)
    engine_mod.BATCHED_DEFAULT = prev_engine


@pytest.fixture
def toggle_pooling():
    prev = task_pooling_enabled()
    yield set_task_pooling
    set_task_pooling(prev)


@pytest.fixture
def count_charge_batches(monkeypatch):
    """Count ProcContext.charge_batch calls — proof of which path ran."""
    calls = {"n": 0}
    real = ProcContext.charge_batch

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return real(self, *args, **kwargs)

    monkeypatch.setattr(ProcContext, "charge_batch", counting)
    return calls


def sharing_program(ctx, comm, n=64, n_tasks=8, n_sections=4):
    """Work-shared sections mixing update-sending tasks (OUT), silent
    tasks (IN-only: they coalesce), and INOUT tasks (restore memcpys in
    the EAGER strategy), plus a run_local stretch between sections."""
    x = np.arange(n, dtype=np.float64) + comm.lrank
    y = np.ones(n, dtype=np.float64)
    w = np.zeros(n, dtype=np.float64)
    z = np.full(n, 2.0)
    rt = ctx.intra
    for s in range(n_sections):
        rt.section_begin()
        out_t = rt.task_register(
            waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
            cost=waxpby_cost)
        silent = rt.task_register(
            waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.IN])
        inout_t = rt.task_register(
            waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.INOUT],
            cost=waxpby_cost)
        ts = n // n_tasks
        for i in range(n_tasks):
            sl = slice(i * ts, (i + 1) * ts)
            if i % 3 == 2:
                rt.task_launch(inout_t, [2.0, x[sl], 1.0, y[sl], z[sl]])
            else:
                rt.task_launch(out_t, [2.0, x[sl], 3.0, y[sl], w[sl]])
            if i % 2 == 0:
                # zero-cost, update-free: coalesces into the next wake
                rt.task_launch(silent, [1.0, x[sl], 0.0, y[sl], x[sl]])
        yield from rt.section_end()
        yield from rt.run_local(waxpby_task, [1.0, w, float(s), y, x],
                                waxpby_cost)
    return ctx.now, float(x.sum()), float(w.sum()), float(z.sum())


def _run_intra(make_world, batched, toggle, copy_strategy=CopyStrategy.LAZY,
               injector_fn=None, **job_kw):
    toggle(batched)
    world = make_world()
    job = launch_intra_job(world, sharing_program, 2,
                           copy_strategy=copy_strategy, **job_kw)
    if injector_fn is not None:
        injector_fn(FailureInjector(job.manager))
    world.run()
    return job


def _survivor_state(job):
    stats, timers, results = [], [], []
    for row in job.manager.replicas:
        for info in row:
            if info.alive:
                stats.append(dict(info.ctx.intra.stats.__dict__))
                timers.append(dict(info.ctx.timers))
                results.append(info.app_process.value)
    return results, stats, timers


@pytest.mark.parametrize("strategy", [CopyStrategy.LAZY, CopyStrategy.EAGER,
                                      CopyStrategy.ATOMIC])
def test_intra_batched_bit_identical(make_world, toggle_batching, strategy):
    job_b = _run_intra(make_world, True, toggle_batching, strategy)
    job_u = _run_intra(make_world, False, toggle_batching, strategy)
    assert repr(job_b.results()) == repr(job_u.results())
    assert job_b.world.sim.now == job_u.world.sim.now
    for row_b, row_u in zip(job_b.manager.replicas, job_u.manager.replicas):
        for ib, iu in zip(row_b, row_u):
            assert ib.ctx.intra.stats.__dict__ == iu.ctx.intra.stats.__dict__
            assert ib.ctx.timers == iu.ctx.timers


def test_batched_path_actually_runs(make_world, toggle_batching,
                                    count_charge_batches):
    job = _run_intra(make_world, True, toggle_batching)
    assert count_charge_batches["n"] > 0
    assert job.results()


def test_update_sends_land_at_exact_oracle_times(make_world,
                                                 toggle_batching):
    """The split-on-send golden trace: every update injection — the
    Figure 2 crash window — happens at the same virtual timestamp, for
    the same (replica, section, task, arg), in batched and oracle runs.
    (``update_injected`` subscribers do NOT disable batching: the hook
    fires from a transfer callback whose time split-on-send preserves.)
    """
    traces = {}
    for batched in (True, False):
        toggle_batching(batched)
        world = make_world()
        job = launch_intra_job(world, sharing_program, 2)
        trace = []
        job.manager.hooks.subscribe(
            "update_injected",
            lambda **kw: trace.append((world.sim.now, kw["logical_rank"],
                                       kw["replica_id"], kw["section"],
                                       kw["task"], kw["arg"])))
        world.run()
        assert trace, "program produced no update traffic"
        traces[batched] = trace
    assert repr(traces[True]) == repr(traces[False])


def _kill_on_injection(injector, lrank=0, rid=1, task=None):
    injector.kill_on_hook(
        lrank, rid, "update_injected",
        when=(None if task is None
              else (lambda **kw: kw.get("task") == task)))


def test_crash_at_update_injected_mid_batch(make_world, toggle_batching):
    """A replica killed the instant one of its updates hits the wire —
    while its next sub-batch wake is pending — leaves survivors in a
    state bit-identical to the task-by-task oracle, including the
    recovery re-executions."""
    # task 8 is an INOUT task in the static block of replica (0, 1) —
    # killing at its update injection is exactly the Figure 2 scenario,
    # with tasks 9/11 of the block still unexecuted
    job_b = _run_intra(make_world, True, toggle_batching,
                       injector_fn=lambda inj: _kill_on_injection(inj,
                                                                  task=8))
    job_u = _run_intra(make_world, False, toggle_batching,
                       injector_fn=lambda inj: _kill_on_injection(inj,
                                                                  task=8))
    for job in (job_b, job_u):
        victim = job.manager.replicas[0][1]
        assert not victim.alive and victim.app_process.killed
    res_b, stats_b, timers_b = _survivor_state(job_b)
    res_u, stats_u, timers_u = _survivor_state(job_u)
    assert repr(res_b) == repr(res_u)
    assert stats_b == stats_u
    assert timers_b == timers_u
    assert job_b.world.sim.now == job_u.world.sim.now
    assert any(s["recoveries"] for s in stats_b)


def test_timed_crash_lands_mid_batch_at_exact_time(make_world,
                                                   toggle_batching):
    """A time-triggered kill inside the local stretch terminates the
    replica at the exact scheduled time in both paths."""
    probe = _run_intra(make_world, True, toggle_batching)
    crash_at = probe.world.sim.now * 0.37

    def inject(inj):
        inj.kill_at(1, 0, crash_at)

    job_b = _run_intra(make_world, True, toggle_batching,
                       injector_fn=inject)
    job_u = _run_intra(make_world, False, toggle_batching,
                       injector_fn=inject)
    for job in (job_b, job_u):
        victim = job.manager.replicas[1][0]
        assert not victim.alive and victim.crash_time == crash_at
    res_b, stats_b, _ = _survivor_state(job_b)
    res_u, stats_u, _ = _survivor_state(job_u)
    assert repr(res_b) == repr(res_u)
    assert stats_b == stats_u
    assert job_b.world.sim.now == job_u.world.sim.now


def test_task_executed_subscriber_forces_oracle(make_world, toggle_batching,
                                                count_charge_batches):
    """A ``task_executed`` subscriber observes per-task protocol points
    mid-stretch, so the runtime must fall back to the task-by-task
    path."""
    toggle_batching(True)
    world = make_world()
    job = launch_intra_job(world, sharing_program, 2)
    seen = []
    job.manager.hooks.subscribe("task_executed",
                                lambda **kw: seen.append(kw["task"]))
    world.run()
    assert count_charge_batches["n"] == 0
    assert seen


def test_recording_hookbus_forces_oracle(make_world, toggle_batching,
                                         count_charge_batches):
    toggle_batching(True)
    world = make_world()
    job = launch_intra_job(world, sharing_program, 2)
    job.manager.hooks.record = True
    world.run()
    assert count_charge_batches["n"] == 0
    assert any(name == "task_executed"
               for name, _ in job.manager.hooks.events_seen)


# ------------------------------------------------------- object pooling
def test_pooling_bit_identical(make_world, toggle_batching, toggle_pooling):
    toggle_batching(True)
    runs = {}
    for pooled in (True, False):
        toggle_pooling(pooled)
        world = make_world()
        job = launch_intra_job(world, sharing_program, 2)
        world.run()
        runs[pooled] = (repr(job.results()), world.sim.now,
                        [[dict(i.ctx.intra.stats.__dict__) for i in row]
                         for row in job.manager.replicas])
    assert runs[True] == runs[False]


def test_pooling_recycles_task_objects(make_world, toggle_pooling):
    """Across same-shape sections the runtime reuses LaunchedTask
    objects and the cached TaskDef instead of reallocating."""
    toggle_pooling(True)
    world = make_world()
    seen_ids = []

    def prog(ctx, comm):
        x = np.arange(16, dtype=np.float64)
        rt = ctx.intra
        for _ in range(3):
            rt.section_begin()
            tid = rt.task_register(
                waxpby_task, [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT],
                cost=waxpby_cost)
            seen_ids.append(tid)
            w = np.zeros(16)
            rt.task_launch(tid, [2.0, x, 0.0, x, w])
            rt.task_launch(tid, [3.0, x, 0.0, x, w])
            seen_ids.append(tuple(id(t) for t in rt._section.tasks))
            yield from rt.section_end()
        return True

    # degree=1: a single replica, so seen_ids is one runtime's history
    job = launch_intra_job(world, prog, 1, degree=1)
    world.run()
    tids = seen_ids[::2]
    objs = seen_ids[1::2]
    assert tids[0] == tids[1] == tids[2]        # TaskDef cached
    # the pool is LIFO, so object order may rotate — but the same two
    # objects must serve every section after the first
    assert set(objs[0]) == set(objs[1]) == set(objs[2])
    assert job.results()
    rt = job.manager.replicas[0][0].ctx.intra
    for task in rt._task_pool:
        assert task.vars == [] and not task.copies  # payloads released


def test_tdef_cache_bounded_under_closure_registration(make_world,
                                                       toggle_pooling):
    """Apps that register fresh closures every section (the
    ``make_spmv_task(matrix)`` pattern) must not grow the signature
    cache without bound — dead entries pin whatever the closure
    captured."""
    toggle_pooling(True)
    world = make_world()

    def prog(ctx, comm):
        x = np.arange(8, dtype=np.float64)
        rt = ctx.intra
        for _ in range(runtime_mod._TDEF_CACHE_MAX + 50):
            rt.section_begin()
            fn = lambda a: None           # noqa: E731 — fresh each section
            tid = rt.task_register(fn, [Tag.IN])
            rt.task_launch(tid, [x])
            yield from rt.section_end()
        return len(rt._tdef_cache)

    job = launch_intra_job(world, prog, 1, degree=1)
    world.run()
    (cache_size,) = [info.app_process.value
                     for row in job.manager.replicas for info in row]
    assert cache_size <= runtime_mod._TDEF_CACHE_MAX


def test_pooling_keeps_section_scoping_errors(make_world, toggle_pooling):
    """Launching an id not registered in the *current* section still
    raises, pooled or not (the per-section task_defs scope survives)."""
    from repro.intra import IntraError

    for pooled in (True, False):
        toggle_pooling(pooled)
        world = make_world()

        def prog(ctx, comm):
            rt = ctx.intra
            rt.section_begin()
            tid = rt.task_register(waxpby_task,
                                   [Tag.IN, Tag.IN, Tag.IN, Tag.IN, Tag.OUT])
            yield from rt.section_end()
            rt.section_begin()
            with pytest.raises(IntraError):
                rt.task_launch(tid + 1000, [])
            yield from rt.section_end()
            return True

        job = launch_intra_job(world, prog, 1)
        world.run()
        assert job.results()
