"""Shared fixtures for MPI-layer tests: a small fast-cluster world."""

import pytest

from repro.netmodel import Cluster, MachineSpec, NetworkSpec
from repro.mpi import MpiWorld


@pytest.fixture
def machine():
    return MachineSpec(name="t", cores_per_node=4, flop_rate=1e9,
                       mem_bandwidth=4e9)


@pytest.fixture
def netspec():
    # Zero overheads and tiny latency: message time = latency + 2*size/bw.
    return NetworkSpec(bandwidth=1e9, latency=1e-6, o_send=0.0, o_recv=0.0,
                       o_nic=0.0, half_duplex=False,
                       intranode_bandwidth=4e9, intranode_latency=0.0)


@pytest.fixture
def make_world(machine, netspec):
    def _make(n_nodes=4):
        return MpiWorld(Cluster(n_nodes, machine), netspec)

    return _make
