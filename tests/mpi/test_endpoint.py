"""Endpoint internals: matching discipline, reorder buffer, failure
hooks, payload sizing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi import (ANY_SOURCE, ANY_TAG, Endpoint, Envelope,
                       RankFailure, copy_payload, payload_nbytes)
from repro.simulate import Simulator


def env(src=0, tag=0, ctx=1, seq=1, payload="x"):
    return Envelope(context=ctx, src_endpoint=src, src_rank=src, tag=tag,
                    payload=payload, nbytes=payload_nbytes(payload),
                    seq=seq)


def make_ep():
    return Endpoint(Simulator(), endpoint_id=9, node=0)


def test_unexpected_then_match():
    ep = make_ep()
    ep.deliver(env(payload="hello"))
    req = ep.post_recv(source_endpoint=0, source_rank=0, tag=0, context=1)
    assert req.complete
    assert req.event.value[0] == "hello"


def test_posted_then_deliver():
    ep = make_ep()
    req = ep.post_recv(source_endpoint=0, source_rank=0, tag=0, context=1)
    assert not req.complete
    ep.deliver(env(payload="later"))
    assert req.complete
    assert req.event.value[0] == "later"


def test_context_isolation():
    ep = make_ep()
    ep.deliver(env(ctx=1, payload="ctx1"))
    req = ep.post_recv(source_endpoint=0, source_rank=0, tag=0, context=2)
    assert not req.complete


def test_posted_recvs_matched_fifo():
    ep = make_ep()
    r1 = ep.post_recv(ANY_SOURCE, ANY_SOURCE, ANY_TAG, context=1)
    r2 = ep.post_recv(ANY_SOURCE, ANY_SOURCE, ANY_TAG, context=1)
    ep.deliver(env(seq=1, payload="first"))
    assert r1.complete and not r2.complete
    ep.deliver(env(seq=2, payload="second"))
    assert r2.complete


def test_reorder_buffer_holds_out_of_order_seq():
    ep = make_ep()
    r = ep.post_recv(source_endpoint=0, source_rank=0, tag=0, context=1)
    ep.deliver(env(seq=2, payload="second"))   # arrives early
    assert not r.complete                       # held back
    ep.deliver(env(seq=1, payload="first"))
    assert r.complete
    assert r.event.value[0] == "first"
    # seq 2 was drained into the unexpected queue
    r2 = ep.post_recv(source_endpoint=0, source_rank=0, tag=0, context=1)
    assert r2.complete and r2.event.value[0] == "second"


def test_reorder_is_per_channel():
    ep = make_ep()
    ep.deliver(env(src=5, seq=1, payload="a"))
    ep.deliver(env(src=7, seq=1, payload="b"))  # different channel
    assert len(ep.unexpected) == 2


def test_peer_died_fails_matching_recvs_only():
    ep = make_ep()
    r_dead = ep.post_recv(source_endpoint=3, source_rank=3, tag=0,
                          context=1)
    r_live = ep.post_recv(source_endpoint=4, source_rank=4, tag=0,
                          context=1)
    r_any = ep.post_recv(ANY_SOURCE, ANY_SOURCE, ANY_TAG, context=1)
    ep.peer_died(3)
    assert r_dead.failed
    assert isinstance(r_dead.event.exception, RankFailure)
    assert not r_live.complete
    assert not r_any.complete


def test_recv_from_known_dead_fails_fast_unless_message_queued():
    ep = make_ep()
    ep.known_dead.add(3)
    r = ep.post_recv(source_endpoint=3, source_rank=3, tag=0, context=1)
    assert r.failed
    # ...but a message that already arrived is still deliverable (the
    # "replica died after sending the full update" case)
    ep2 = make_ep()
    ep2.deliver(env(src=3, payload="sent before dying"))
    ep2.known_dead.add(3)
    r2 = ep2.post_recv(source_endpoint=3, source_rank=3, tag=0, context=1)
    assert r2.complete and not r2.failed


def test_delivery_to_dead_endpoint_dropped():
    ep = make_ep()
    ep.kill()
    ep.deliver(env())
    assert len(ep.unexpected) == 0
    assert ep.delivered_count == 0


# ------------------------------------------------------ payload helpers
def test_payload_nbytes_various():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(1.5) == 8
    assert payload_nbytes(True) == 8
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes("héllo") == len("héllo".encode())
    assert payload_nbytes(np.zeros(10)) == 80
    assert payload_nbytes(np.float32(1.0)) == 4
    assert payload_nbytes([1.0, np.zeros(2)]) == 8 + 16
    assert payload_nbytes({"k": np.zeros(4)}) == 1 + 32
    with pytest.raises(TypeError):
        payload_nbytes(object())


def test_copy_payload_value_semantics():
    arr = np.arange(4.0)
    t = (arr, [arr], {"a": arr})
    c = copy_payload(t)
    arr[:] = -1
    np.testing.assert_array_equal(c[0], np.arange(4.0))
    np.testing.assert_array_equal(c[1][0], np.arange(4.0))
    np.testing.assert_array_equal(c[2]["a"], np.arange(4.0))
    with pytest.raises(TypeError):
        copy_payload(object())


@given(st.recursive(
    st.one_of(st.none(), st.floats(allow_nan=False), st.integers(),
              st.text(max_size=20), st.binary(max_size=20)),
    lambda inner: st.lists(inner, max_size=4) | st.tuples(inner, inner),
    max_leaves=10))
def test_property_copy_preserves_size(payload):
    assert payload_nbytes(copy_payload(payload)) == payload_nbytes(payload)
