"""Point-to-point semantics: blocking, nonblocking, matching, ordering."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, launch_job
from repro.netmodel import Slot


def run_program(make_world, program, n_ranks=2, n_nodes=4, placement=None):
    world = make_world(n_nodes)
    job = launch_job(world, program, n_ranks, placement=placement)
    world.run()
    return job


def test_send_recv_scalar(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send(42.5, dest=1, tag=3)
            return None
        got = yield from comm.recv(source=0, tag=3)
        return got

    job = run_program(make_world, program)
    assert job.results() == [None, 42.5]


def test_send_recv_numpy_array_is_copied(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            data = np.arange(8, dtype=np.float64)
            req = comm.isend(data, dest=1)
            data[:] = -1  # mutate after post: receiver must see original
            yield req.event
            return None
        got = yield from comm.recv(source=0)
        return got

    job = run_program(make_world, program)
    np.testing.assert_array_equal(job.results()[1], np.arange(8.0))


def test_recv_any_source_any_tag(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            got, status = yield from comm.recv_with_status(
                source=ANY_SOURCE, tag=ANY_TAG)
            return (got, status.source, status.tag)
        yield ctx.sleep(0.001 * comm.rank)
        yield from comm.send(f"from{comm.rank}", dest=0, tag=comm.rank)

    job = run_program(make_world, program, n_ranks=3)
    got, src, tag = job.results()[0]
    assert got == "from1" and src == 1 and tag == 1


def test_tag_selectivity(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send("a", dest=1, tag=5)
            yield from comm.send("b", dest=1, tag=9)
            return None
        # Receive tag 9 first even though tag 5 arrived first.
        first = yield from comm.recv(source=0, tag=9)
        second = yield from comm.recv(source=0, tag=5)
        return (first, second)

    job = run_program(make_world, program)
    assert job.results()[1] == ("b", "a")


def test_non_overtaking_same_tag(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(i, dest=1, tag=0)
            return None
        out = []
        for _ in range(5):
            out.append((yield from comm.recv(source=0, tag=0)))
        return out

    job = run_program(make_world, program)
    assert job.results()[1] == [0, 1, 2, 3, 4]


def test_isend_irecv_waitall(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            reqs = [comm.isend(np.full(4, i), dest=1, tag=i)
                    for i in range(3)]
            yield from comm.waitall(reqs)
            return None
        reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
        vals = yield from comm.waitall(reqs)
        return [v[0] for v in vals]

    job = run_program(make_world, program)
    assert job.results()[1] == [0.0, 1.0, 2.0]


def test_waitany_returns_first(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield ctx.sleep(0.010)
            yield from comm.send("slow", dest=2, tag=1)
        elif comm.rank == 1:
            yield ctx.sleep(0.001)
            yield from comm.send("fast", dest=2, tag=2)
        else:
            reqs = [comm.irecv(source=0, tag=1), comm.irecv(source=1, tag=2)]
            idx, val = yield from comm.waitany(reqs)
            return (idx, val)

    job = run_program(make_world, program, n_ranks=3)
    assert job.results()[2] == (1, "fast")


def test_sendrecv_exchange(make_world):
    def program(ctx, comm):
        partner = 1 - comm.rank
        got = yield from comm.sendrecv(f"hello-{comm.rank}", dest=partner,
                                       source=partner)
        return got

    job = run_program(make_world, program)
    assert job.results() == ["hello-1", "hello-0"]


def test_send_to_self(make_world):
    def program(ctx, comm):
        req = comm.isend("loop", dest=0, tag=1)
        got = yield from comm.recv(source=0, tag=1)
        yield req.event
        return got

    job = run_program(make_world, program, n_ranks=1)
    assert job.results() == ["loop"]


def test_message_time_scales_with_size(make_world):
    # 1 MB at 1 GB/s across nodes: 1 ms tx + 1 us wire + 1 ms rx.
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(125_000), dest=1)  # 1 MB
            return None
        yield from comm.recv(source=0)
        return ctx.now

    job = run_program(make_world, program,
                      placement=[Slot(0, 0), Slot(1, 0)])
    assert job.results()[1] == pytest.approx(2.001e-3, rel=1e-3)


def test_intranode_message_faster_than_internode(make_world):
    def program(ctx, comm):
        if comm.rank == 0:
            yield from comm.send(np.zeros(125_000), dest=1)
            return None
        yield from comm.recv(source=0)
        return ctx.now

    same = run_program(make_world, program,
                       placement=[Slot(0, 0), Slot(0, 1)])
    cross = run_program(make_world, program,
                        placement=[Slot(0, 0), Slot(1, 0)])
    assert same.results()[1] < cross.results()[1]


def test_compute_charges_roofline_time(make_world):
    def program(ctx, comm):
        # 4 MB at 1 GB/s-per-core (4-core node, all busy) = 4 ms.
        yield ctx.compute(flops=100.0, bytes_moved=4e6)
        return ctx.now
        yield  # pragma: no cover

    job = run_program(make_world, program, n_ranks=1)
    assert job.results()[0] == pytest.approx(4e-3)


def test_unmatched_recv_deadlocks(make_world):
    from repro.simulate import DeadlockError

    def program(ctx, comm):
        if comm.rank == 1:
            yield from comm.recv(source=0, tag=0)  # never sent

    world = make_world(4)
    launch_job(world, program, 2)
    with pytest.raises(DeadlockError):
        world.run(detect_deadlock=True)


def test_region_timers(make_world):
    def program(ctx, comm):
        with ctx.region("sections"):
            yield ctx.sleep(0.5)
        with ctx.region("others"):
            yield ctx.sleep(0.25)
        with ctx.region("sections"):
            yield ctx.sleep(0.5)
        return dict(ctx.timers)

    job = run_program(make_world, program, n_ranks=1)
    assert job.results()[0] == pytest.approx({"sections": 1.0,
                                              "others": 0.25})
