"""World-level crash semantics: message retraction at the injection
boundary, endpoint kill, death notification.

Layering contract documented here: the (perfect) failure detector fails
*pending* receives from a dead peer immediately — even if a message from
that peer is still in flight.  An in-flight message that was already
injected still arrives and sits in the unexpected queue, so a raw-MPI
caller can re-post and consume it; the replication layer's receive loop
does exactly that (plus replay for the retracted ones).
"""

import numpy as np
import pytest

from repro.mpi import MpiWorld, RankFailure, launch_job
from repro.netmodel import Cluster, MachineSpec, NetworkSpec, Slot

MACHINE = MachineSpec(name="t", cores_per_node=4, flop_rate=1e9,
                      mem_bandwidth=4e9)
# 1 MB/s network: transfers are slow enough to observe in-flight state
NETSPEC = NetworkSpec(bandwidth=1e6, latency=1e-3, half_duplex=False)


def run_crash_scenario(payloads, kill_time):
    """Sender posts ``payloads`` then idles; killed at ``kill_time``.
    Receiver drains what it can, observing RankFailures, and returns
    the list of received payload descriptions."""
    world = MpiWorld(Cluster(2, MACHINE), NETSPEC)

    def program(ctx, comm):
        if comm.rank == 0:
            for p in payloads:
                comm.isend(p, dest=1)
            yield ctx.sleep(10.0)
            return None
        got = []
        for _ in payloads:
            try:
                item = yield from comm.recv(source=0)
            except RankFailure:
                # re-post once: an injected-but-in-flight message may
                # still arrive after the failure notification
                yield ctx.sleep(0.01)
                req = comm.irecv(source=0)
                if req.complete and not req.failed:
                    got.append(("late", np.size(req.data)))
                else:
                    req.defuse()
                    got.append(("lost", None))
                continue
            got.append(("ok", np.size(item)))
        return got

    job = launch_job(world, program, 2,
                     placement=[Slot(0, 0), Slot(1, 0)])

    def killer():
        yield world.sim.timeout(kill_time)
        world.kill_endpoint(0)
        world.notify_death(0)

    world.sim.process(killer())
    world.run(detect_deadlock=False)
    return job.results()[1]


def test_uninjected_messages_retracted_on_crash():
    """Both messages still queued at the sender's NIC when it dies (the
    100 KB first message needs ~100 ms of tx): nothing ever arrives."""
    got = run_crash_scenario(
        payloads=[np.zeros(12_500), np.zeros(4)], kill_time=0.050)
    assert got == [("lost", None), ("lost", None)]


def test_injected_message_survives_crash():
    """A tiny message is injected within microseconds; killing the
    sender during the wire latency cannot retract it — the paper's
    "update fully sent" case.  The FD verdict still fails the pending
    recv first, so the receiver re-posts and finds the late arrival."""
    got = run_crash_scenario(payloads=["tiny"], kill_time=0.0005)
    assert got == [("late", 1)]


def test_mixed_injected_and_retracted():
    """First (small) message injected before the crash, second (large)
    still serializing: exactly one arrives — a suffix gap, never a
    hole."""
    got = run_crash_scenario(
        payloads=[np.zeros(4), np.zeros(50_000)], kill_time=0.010)
    # the small message was injected (and here even delivered) before
    # the crash; the large one was still serializing and is retracted
    assert got[0] in (("ok", 4), ("late", 4))
    assert got[1] == ("lost", None)


def test_kill_endpoint_idempotent_and_send_from_dead_rejected():
    world = MpiWorld(Cluster(1, MACHINE), NETSPEC)

    def body(ctx, comm):
        yield ctx.sleep(1.0)

    job = launch_job(world, body, 2)
    world.kill_endpoint(0)
    world.kill_endpoint(0)  # no-op
    with pytest.raises(Exception, match="dead endpoint"):
        world.post_send(src=world.endpoints[0], dst_endpoint=1,
                        src_rank=0, tag=0, context=1, payload=None,
                        nbytes=0)
    world.run(detect_deadlock=False)
    assert job.processes[0].killed


def test_notify_death_scoped_to_observers():
    world = MpiWorld(Cluster(1, MACHINE), NETSPEC)

    def body(ctx, comm):
        yield ctx.sleep(1.0)

    launch_job(world, body, 3)
    world.kill_endpoint(0)
    world.notify_death(0, observers=[1])
    assert 0 in world.endpoints[1].known_dead
    assert 0 not in world.endpoints[2].known_dead
    world.run(detect_deadlock=False)
