"""Collective operations: correctness against numpy references."""

import numpy as np
import pytest

from repro.mpi import launch_job

SIZES = [1, 2, 3, 4, 5, 8, 13]


def run_collective(make_world, program, n_ranks):
    world = make_world(n_nodes=max(1, -(-n_ranks // 4)))
    job = launch_job(world, program, n_ranks)
    world.run()
    return job.results()


@pytest.mark.parametrize("n", SIZES)
def test_bcast(make_world, n):
    def program(ctx, comm):
        data = np.arange(10) * 7 if comm.rank == 2 % comm.size else None
        got = yield from comm.bcast(data, root=2 % comm.size)
        return got

    results = run_collective(make_world, program, n)
    for got in results:
        np.testing.assert_array_equal(got, np.arange(10) * 7)


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(make_world, n):
    def program(ctx, comm):
        got = yield from comm.reduce(float(comm.rank + 1), op="sum", root=0)
        return got

    results = run_collective(make_world, program, n)
    assert results[0] == pytest.approx(n * (n + 1) / 2)
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", SIZES)
def test_reduce_nonzero_root(make_world, n):
    root = n - 1

    def program(ctx, comm):
        got = yield from comm.reduce(comm.rank, op="max", root=root)
        return got

    results = run_collective(make_world, program, n)
    assert results[root] == n - 1


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_sum_arrays(make_world, n):
    def program(ctx, comm):
        local = np.full(4, float(comm.rank))
        got = yield from comm.allreduce(local, op="sum")
        return got

    results = run_collective(make_world, program, n)
    expect = np.full(4, sum(range(n)), dtype=float)
    for got in results:
        np.testing.assert_allclose(got, expect)


@pytest.mark.parametrize("op,expect", [("max", 12), ("min", 0),
                                       ("prod", 0)])
def test_allreduce_ops(make_world, op, expect):
    def program(ctx, comm):
        got = yield from comm.allreduce(comm.rank * 3, op=op)
        return got

    results = run_collective(make_world, program, 5)
    assert all(r == expect for r in results)


def test_allreduce_custom_op(make_world):
    def program(ctx, comm):
        got = yield from comm.allreduce((comm.rank,),
                                        op=lambda a, b: a + b)
        return got

    results = run_collective(make_world, program, 4)
    assert all(sorted(r) == [0, 1, 2, 3] for r in results)


@pytest.mark.parametrize("n", SIZES)
def test_allgather(make_world, n):
    def program(ctx, comm):
        got = yield from comm.allgather(comm.rank * 10)
        return got

    results = run_collective(make_world, program, n)
    expect = [r * 10 for r in range(n)]
    assert all(r == expect for r in results)


@pytest.mark.parametrize("n", SIZES)
def test_gather(make_world, n):
    def program(ctx, comm):
        got = yield from comm.gather(chr(ord("a") + comm.rank), root=0)
        return got

    results = run_collective(make_world, program, n)
    assert results[0] == [chr(ord("a") + r) for r in range(n)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", SIZES)
def test_scatter(make_world, n):
    def program(ctx, comm):
        chunks = [i * i for i in range(comm.size)] if comm.rank == 0 else None
        got = yield from comm.scatter(chunks, root=0)
        return got

    results = run_collective(make_world, program, n)
    assert results == [r * r for r in range(n)]


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_alltoall(make_world, n):
    def program(ctx, comm):
        chunks = [f"{comm.rank}->{d}" for d in range(comm.size)]
        got = yield from comm.alltoall(chunks)
        return got

    results = run_collective(make_world, program, n)
    for dst, got in enumerate(results):
        assert got == [f"{src}->{dst}" for src in range(n)]


def test_barrier_synchronizes(make_world):
    def program(ctx, comm):
        yield ctx.sleep(0.01 * comm.rank)
        yield from comm.barrier()
        return ctx.now

    results = run_collective(make_world, program, 6)
    # Nobody leaves the barrier before the slowest rank arrived at 0.05.
    assert min(results) >= 0.05


def test_consecutive_collectives_do_not_crosstalk(make_world):
    def program(ctx, comm):
        a = yield from comm.allreduce(1, op="sum")
        b = yield from comm.allreduce(comm.rank, op="max")
        c = yield from comm.bcast("x" if comm.rank == 0 else None, root=0)
        return (a, b, c)

    results = run_collective(make_world, program, 7)
    assert all(r == (7, 6, "x") for r in results)


def test_collectives_isolated_between_communicators(make_world):
    """Two disjoint communicators running collectives concurrently."""
    from repro.mpi import Communicator, MpiWorld
    from repro.netmodel import Slot

    world = make_world(4)
    ctxs = [world.spawn(Slot(i // 4, i % 4), name=f"p{i}") for i in range(8)]
    comm_a = Communicator(world, [c.endpoint.id for c in ctxs[:4]], "A")
    comm_b = Communicator(world, [c.endpoint.id for c in ctxs[4:]], "B")

    def program(ctx, comm, val):
        got = yield from comm.allreduce(val, op="sum")
        return got

    procs = []
    for ctx in ctxs[:4]:
        procs.append(world.start(ctx, program(ctx, comm_a.bind(ctx), 1)))
    for ctx in ctxs[4:]:
        procs.append(world.start(ctx, program(ctx, comm_b.bind(ctx), 100)))
    world.run()
    assert [p.value for p in procs] == [4] * 4 + [400] * 4


def test_unknown_reduce_op_rejected(make_world):
    def program(ctx, comm):
        yield from comm.allreduce(1, op="median")

    world = make_world(1)
    launch_job(world, program, 2)
    with pytest.raises(Exception, match="median"):
        world.run()
