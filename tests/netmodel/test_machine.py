"""Tests for the roofline machine model."""

import pytest

from repro.netmodel import MachineSpec, TESTBENCH_MACHINE


def make_spec(**kw):
    base = dict(name="m", cores_per_node=4, flop_rate=1e9,
                mem_bandwidth=4e9, mem_per_node=1e9, copy_bandwidth=1e9)
    base.update(kw)
    return MachineSpec(**base)


def test_memory_bound_kernel():
    m = make_spec()
    # 1 MB at 1 GB/s per core (all 4 cores busy) = 1 ms; flops negligible.
    assert m.kernel_time(flops=1e3, bytes_moved=1e6) == pytest.approx(1e-3)


def test_compute_bound_kernel():
    m = make_spec()
    # 1 Gflop at 1 Gflop/s = 1 s; bytes negligible.
    assert m.kernel_time(flops=1e9, bytes_moved=8.0) == pytest.approx(1.0)


def test_roofline_crossover():
    m = make_spec()
    # per-core bw = 1e9 B/s, flop rate 1e9 f/s: a kernel with intensity
    # exactly 1 flop/byte sits on the ridge.
    t = m.kernel_time(flops=1e6, bytes_moved=1e6)
    assert t == pytest.approx(1e-3)


def test_fewer_active_cores_get_more_bandwidth():
    m = make_spec()
    t_all = m.kernel_time(flops=0, bytes_moved=4e6, active_cores=4)
    t_solo = m.kernel_time(flops=0, bytes_moved=4e6, active_cores=1)
    assert t_all == pytest.approx(4e-3)
    assert t_solo == pytest.approx(1e-3)


def test_active_cores_out_of_range():
    m = make_spec()
    with pytest.raises(ValueError):
        m.kernel_time(1, 1, active_cores=0)
    with pytest.raises(ValueError):
        m.kernel_time(1, 1, active_cores=5)


def test_negative_inputs_rejected():
    m = make_spec()
    with pytest.raises(ValueError):
        m.kernel_time(-1, 0)
    with pytest.raises(ValueError):
        m.kernel_time(0, -1)
    with pytest.raises(ValueError):
        m.copy_time(-1)


def test_copy_time():
    m = make_spec()
    assert m.copy_time(2e9) == pytest.approx(2.0)


def test_invalid_spec_fields():
    with pytest.raises(ValueError):
        make_spec(cores_per_node=0)
    with pytest.raises(ValueError):
        make_spec(flop_rate=0)
    with pytest.raises(ValueError):
        make_spec(mem_bandwidth=-1)


def test_mem_bandwidth_per_core():
    assert TESTBENCH_MACHINE.mem_bandwidth_per_core == pytest.approx(1e9)


def test_spec_is_frozen():
    m = make_spec()
    with pytest.raises(Exception):
        m.flop_rate = 1.0  # type: ignore[misc]
