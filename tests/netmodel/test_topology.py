"""Tests for cluster topology and placement policies."""

import pytest

from repro.netmodel import (Cluster, MachineSpec, Slot, block_placement,
                            replica_placement, round_robin_placement,
                            validate_placement)

MACHINE = MachineSpec(name="m", cores_per_node=4, flop_rate=1e9,
                      mem_bandwidth=4e9)


def test_switch_distance_is_one_hop():
    c = Cluster(8, MACHINE, distance_model="switch")
    assert c.hops(0, 7) == 1
    assert c.hops(3, 3) == 0


def test_linear_distance():
    c = Cluster(8, MACHINE, distance_model="linear")
    assert c.hops(1, 6) == 5
    assert c.hops(6, 1) == 5


def test_unknown_distance_model():
    with pytest.raises(ValueError):
        Cluster(4, MACHINE, distance_model="torus")


def test_total_cores():
    assert Cluster(8, MACHINE).total_cores == 32


def test_block_placement_fills_nodes():
    c = Cluster(2, MACHINE)
    slots = block_placement(c, 6)
    assert slots[:4] == [Slot(0, 0), Slot(0, 1), Slot(0, 2), Slot(0, 3)]
    assert slots[4:] == [Slot(1, 0), Slot(1, 1)]


def test_round_robin_placement_cycles_nodes():
    c = Cluster(3, MACHINE)
    slots = round_robin_placement(c, 5)
    assert [s.node for s in slots] == [0, 1, 2, 0, 1]
    assert [s.core for s in slots] == [0, 0, 0, 1, 1]


def test_placement_capacity_check():
    c = Cluster(1, MACHINE)
    with pytest.raises(ValueError):
        block_placement(c, 5)
    with pytest.raises(ValueError):
        round_robin_placement(c, 5)


def test_replica_placement_distinct_nodes():
    c = Cluster(8, MACHINE)
    placements = replica_placement(c, n_logical=8, degree=2)
    validate_placement(c, placements)
    for replicas in placements:
        assert replicas[0].node != replicas[1].node


def test_replica_placement_neighbouring_groups():
    c = Cluster(4, MACHINE)
    placements = replica_placement(c, n_logical=4, degree=2, spread=1)
    # 4 logical ranks on 1 node => replica 0 all on node 0, replica 1 on 1.
    assert {r[0].node for r in placements} == {0}
    assert {r[1].node for r in placements} == {1}


def test_replica_placement_spread():
    c = Cluster(16, MACHINE)
    near = replica_placement(c, n_logical=4, degree=2, spread=1)
    far = replica_placement(c, n_logical=4, degree=2, spread=5)
    assert far[0][1].node - far[0][0].node > near[0][1].node - near[0][0].node


def test_replica_placement_degree_three():
    c = Cluster(12, MACHINE)
    placements = replica_placement(c, n_logical=8, degree=3)
    validate_placement(c, placements)
    for replicas in placements:
        assert len({s.node for s in replicas}) == 3


def test_replica_placement_too_small_cluster():
    c = Cluster(2, MACHINE)
    with pytest.raises(ValueError):
        replica_placement(c, n_logical=8, degree=2, spread=3)


def test_validate_placement_catches_shared_slot():
    c = Cluster(4, MACHINE)
    bad = [[Slot(0, 0), Slot(1, 0)], [Slot(0, 0), Slot(2, 0)]]
    with pytest.raises(ValueError, match="assigned twice"):
        validate_placement(c, bad)


def test_validate_placement_catches_same_node_replicas():
    c = Cluster(4, MACHINE)
    bad = [[Slot(0, 0), Slot(0, 1)]]
    with pytest.raises(ValueError, match="share a node"):
        validate_placement(c, bad)
