"""Tests for the LogGP-style network model with NIC contention."""

import pytest

from repro.netmodel import Network, NetworkSpec
from repro.simulate import Simulator


def make_spec(**kw):
    base = dict(bandwidth=100e6, latency=1e-3, hop_latency=0.0, o_send=0.0,
                o_recv=0.0, o_nic=0.0, half_duplex=False,
                intranode_bandwidth=1e9, intranode_latency=0.0)
    base.update(kw)
    return NetworkSpec(**base)


def run_transfer(net, sim, src, dst, nbytes):
    def body(sim):
        yield from net.transfer(src, dst, nbytes)
        return sim.now

    return sim.process(body(sim))


def test_single_message_time():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=2)
    # Store-and-forward: 1 MB at 100 MB/s = 10 ms tx serialization,
    # 1 ms wire, 10 ms rx drain.
    p = run_transfer(net, sim, 0, 1, 1e6)
    sim.run()
    assert p.value == pytest.approx(0.021)


def test_analytic_message_time_matches_des():
    spec = make_spec(o_send=2e-6, o_recv=3e-6, o_nic=1e-6)
    sim = Simulator()
    net = Network(sim, spec, n_nodes=2)
    p = run_transfer(net, sim, 0, 1, 1e6)
    sim.run()
    # DES path excludes the CPU-side o_send/o_recv (charged by the MPI
    # layer), so analytic = DES + o_send + o_recv.
    assert spec.message_time(1e6) == pytest.approx(
        p.value + spec.o_send + spec.o_recv)


def test_sustained_exchange_throughput_is_bandwidth():
    # Symmetric bulk exchange with non-blocking sends (each transfer is
    # its own in-flight process, like MPI isend): despite
    # store-and-forward, each direction sustains the full link bandwidth,
    # and the exchange pipelines to ~ (k+1) serialization slots.
    sim = Simulator()
    net = Network(sim, make_spec(latency=0.0), n_nodes=2)
    k, size = 10, 1e6

    def one(sim, src, dst):
        yield from net.transfer(src, dst, size)
        return sim.now

    procs = [sim.process(one(sim, 0, 1)) for _ in range(k)]
    procs += [sim.process(one(sim, 1, 0)) for _ in range(k)]
    sim.run()
    assert max(p.value for p in procs) == pytest.approx((k + 1) * 0.01)


def test_tx_contention_serializes_messages():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=3)
    # Two 1 MB messages leaving node 0 concurrently: second tx waits.
    p1 = run_transfer(net, sim, 0, 1, 1e6)
    p2 = run_transfer(net, sim, 0, 2, 1e6)
    sim.run()
    assert p1.value == pytest.approx(0.021)
    assert p2.value == pytest.approx(0.031)  # 10 ms queued behind p1's tx


def test_rx_contention_serializes_messages():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=3)
    p1 = run_transfer(net, sim, 1, 0, 1e6)
    p2 = run_transfer(net, sim, 2, 0, 1e6)
    sim.run()
    times = sorted([p1.value, p2.value])
    assert times[0] == pytest.approx(0.021)
    assert times[1] == pytest.approx(0.031)


def test_full_duplex_tx_rx_do_not_interfere():
    sim = Simulator()
    net = Network(sim, make_spec(half_duplex=False), n_nodes=2)
    p1 = run_transfer(net, sim, 0, 1, 1e6)
    p2 = run_transfer(net, sim, 1, 0, 1e6)
    sim.run()
    assert p1.value == pytest.approx(0.021)
    assert p2.value == pytest.approx(0.021)


def test_half_duplex_tx_rx_share_engine():
    # Under sustained bidirectional load, a half-duplex NIC serializes
    # transmit and receive, roughly doubling the exchange time.
    def total_time(half_duplex):
        sim = Simulator()
        net = Network(sim, make_spec(half_duplex=half_duplex, latency=0.0),
                      n_nodes=2)
        k, size = 5, 1e6

        def one(sim, src, dst):
            yield from net.transfer(src, dst, size)
            return sim.now

        procs = [sim.process(one(sim, 0, 1)) for _ in range(k)]
        procs += [sim.process(one(sim, 1, 0)) for _ in range(k)]
        sim.run()
        return max(p.value for p in procs)

    full = total_time(False)
    half = total_time(True)
    assert half > 1.5 * full
    # structural check: the resources actually alias
    sim = Simulator()
    net = Network(sim, make_spec(half_duplex=True), n_nodes=2)
    assert net.nics[0].rx is net.nics[0].tx
    net = Network(sim, make_spec(half_duplex=False), n_nodes=2)
    assert net.nics[0].rx is not net.nics[0].tx


def test_intranode_transfer_bypasses_nic():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=2)
    p = run_transfer(net, sim, 0, 0, 1e6)
    sim.run()
    # 1 MB at 1 GB/s intranode = 1 ms, no wire latency.
    assert p.value == pytest.approx(1e-3)
    # NIC untouched
    assert net.nics[0].tx.in_use == 0


def test_hop_latency():
    spec = make_spec(hop_latency=1e-3)
    sim = Simulator()
    net = Network(sim, spec, n_nodes=5, hop_fn=lambda a, b: abs(a - b))
    p = run_transfer(net, sim, 0, 4, 0.0)
    sim.run()
    # zero bytes: pure latency = 1 ms base + 4 hops * 1 ms
    assert p.value == pytest.approx(5e-3)


def test_zero_byte_message_still_pays_latency():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=2)
    p = run_transfer(net, sim, 0, 1, 0.0)
    sim.run()
    assert p.value == pytest.approx(1e-3)


def test_counters():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=2)
    run_transfer(net, sim, 0, 1, 5000.0)
    run_transfer(net, sim, 1, 0, 7000.0)
    sim.run()
    assert net.bytes_sent == 12000.0
    assert net.messages_sent == 2


def test_invalid_nodes_rejected():
    sim = Simulator()
    net = Network(sim, make_spec(), n_nodes=2)
    with pytest.raises(ValueError):
        list(net.transfer(0, 5, 10))
    with pytest.raises(ValueError):
        list(net.transfer(-1, 0, 10))


def test_spec_validation():
    with pytest.raises(ValueError):
        make_spec(bandwidth=0)
    with pytest.raises(ValueError):
        make_spec(latency=-1)
