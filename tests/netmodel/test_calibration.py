"""Calibration sanity: the GRID5000_2015 profile puts the HPCCG kernels
in the regimes Figure 5a requires (the analytic pre-check of the DES
results)."""

import pytest

from repro.netmodel import (GRID5000_MACHINE, GRID5000_NETWORK,
                            TESTBENCH_MACHINE, TESTBENCH_NETWORK)


def test_grid5000_testbed_parameters():
    m, n = GRID5000_MACHINE, GRID5000_NETWORK
    assert m.cores_per_node == 4                    # 4-core Xeon
    assert m.mem_per_node == pytest.approx(16e9)    # 16 GB
    # per-core sustained bandwidth at the saturated operating point
    assert m.mem_bandwidth_per_core == pytest.approx(3e9)
    # IB 20G effective MPI bandwidth, full duplex
    assert 1e9 < n.bandwidth < 2e9
    assert not n.half_duplex
    assert 1e-6 < n.latency < 10e-6


def test_waxpby_update_costs_more_than_recompute():
    """The Figure 5a waxpby condition: per output element, shipping
    8 bytes (at the per-process NIC share) costs more than streaming
    24 bytes through memory — so intra loses to recomputation."""
    m, n = GRID5000_MACHINE, GRID5000_NETWORK
    compute_per_elem = 24.0 / m.mem_bandwidth_per_core
    nic_share = n.bandwidth / m.cores_per_node   # 4 procs share the NIC
    transfer_per_elem = 2 * 8.0 / nic_share      # tx at sender + rx at peer
    assert transfer_per_elem > compute_per_elem


def test_sparsemv_compute_hides_updates():
    """The sparsemv condition: ~340 streamed bytes per output row dwarf
    the 8-byte update, so transfers overlap."""
    m, n = GRID5000_MACHINE, GRID5000_NETWORK
    compute_per_row = 340.0 / m.mem_bandwidth_per_core
    nic_share = n.bandwidth / m.cores_per_node
    transfer_per_row = 2 * 8.0 / nic_share
    assert compute_per_row > 2.5 * transfer_per_row


def test_testbench_profile_round_numbers():
    m, n = TESTBENCH_MACHINE, TESTBENCH_NETWORK
    assert m.kernel_time(flops=0, bytes_moved=1e9) == pytest.approx(1.0)
    assert n.serialization_time(100e6) == pytest.approx(1.0)
