"""HPCCG: numerical correctness in all three modes + CG convergence."""

import numpy as np
import pytest

from repro.apps.hpccg import HpccgConfig, KernelBenchConfig, \
    hpccg_kernel_bench, hpccg_program
from repro.intra import launch_mode
from repro.mpi import MpiWorld
from repro.netmodel import Cluster, MachineSpec, NetworkSpec

MACHINE = MachineSpec(name="t", cores_per_node=4, flop_rate=2.5e9,
                      mem_bandwidth=12e9)
NETSPEC = NetworkSpec(bandwidth=1.5e9, latency=3e-6, half_duplex=False)


def run(mode, program, n_logical, config, n_nodes=8, **kw):
    world = MpiWorld(Cluster(n_nodes, MACHINE), NETSPEC)
    job = launch_mode(mode, world, program, n_logical,
                      args=(config,), **kw)
    world.run()
    return job


def residuals(job, mode):
    if mode == "native":
        return [r.value[0] for r in job.results()]
    return [res.value[0] for row in job.results() for res in row]


CFG = HpccgConfig(nx=8, ny=8, nz=8, max_iter=20)


def test_cg_converges_native():
    job = run("native", hpccg_program, 2, CFG)
    res = residuals(job, "native")
    assert all(r == res[0] for r in res)
    assert res[0] < 1e-3  # b = A@1, CG converges toward x = 1


def test_cg_solution_is_ones():
    """With b = A@1 the CG solution must be the ones vector — verified
    through the residual (machine-precision after enough iterations)."""
    job = run("native", hpccg_program, 2,
              HpccgConfig(nx=6, ny=6, nz=6, max_iter=40))
    assert residuals(job, "native")[0] < 1e-8


@pytest.mark.parametrize("mode", ["sdr", "intra"])
def test_cg_replicated_matches_native(mode):
    native = residuals(run("native", hpccg_program, 2, CFG), "native")
    repl = run(mode, hpccg_program, 2, CFG)
    got = residuals(repl, mode)
    for r in got:
        assert r == pytest.approx(native[0], rel=1e-12)


def test_cg_intra_replicas_bitwise_identical():
    job = run("intra", hpccg_program, 2, CFG)
    for row in job.results():
        a, b = row
        assert a.value == b.value


def test_single_rank_job():
    job = run("native", hpccg_program, 1, CFG)
    assert residuals(job, "native")[0] < 1e-4


def test_intra_only_some_kernels():
    cfg = HpccgConfig(nx=8, ny=8, nz=8, max_iter=5,
                      intra_kernels=frozenset({"ddot", "spmv"}))
    native = residuals(run("native", hpccg_program, 2, cfg), "native")
    job = run("intra", hpccg_program, 2, cfg)
    assert residuals(job, "intra")[0] == pytest.approx(native[0],
                                                       rel=1e-12)
    # waxpby ran outside sections: every replica executed it fully, so
    # only ddot/spmv tasks were shared
    info = job.manager.replica(0, 0)
    stats = info.ctx.intra.stats
    assert stats.sections > 0


def test_kernel_bench_checksum_consistent_across_modes():
    cfg = KernelBenchConfig(nx=8, ny=8, nz=8, reps=2)
    vals = []
    for mode in ("native", "sdr", "intra"):
        job = run(mode, hpccg_kernel_bench, 2, cfg)
        if mode == "native":
            vals.append(job.results()[0].value)
        else:
            for row in job.results():
                for r in row:
                    assert r.value == pytest.approx(vals[0], rel=1e-12)


def test_kernel_bench_timers_present():
    cfg = KernelBenchConfig(nx=8, ny=8, nz=8, reps=2)
    job = run("native", hpccg_kernel_bench, 2, cfg)
    timers = job.results()[0].timers
    assert {"waxpby", "ddot", "spmv"} <= set(timers)
    assert all(v > 0 for v in timers.values())


def test_hpccg_intra_faster_than_sdr_on_doubled_problem():
    """The Figure 5b effect at small scale: same physical resources,
    doubled per-logical problem; intra (ddot+spmv) beats SDR."""
    cfg = HpccgConfig(nx=8, ny=8, nz=16, max_iter=5,
                      intra_kernels=frozenset({"ddot", "spmv"}))
    t_sdr = run("sdr", hpccg_program, 2, cfg).world.sim.now
    t_intra = run("intra", hpccg_program, 2, cfg).world.sim.now
    assert t_intra < t_sdr
