"""MiniGhost and GTC: mode-consistency and physics checks."""

import numpy as np
import pytest

from repro.apps.gtc import GtcConfig, gtc_program
from repro.apps.minighost import MiniGhostConfig, minighost_program
from repro.intra import launch_mode
from repro.mpi import MpiWorld
from repro.netmodel import Cluster, MachineSpec, NetworkSpec

MACHINE = MachineSpec(name="t", cores_per_node=4, flop_rate=2.5e9,
                      mem_bandwidth=12e9)
NETSPEC = NetworkSpec(bandwidth=1.5e9, latency=3e-6, half_duplex=False)


def run(mode, program, n_logical, config, n_nodes=8):
    world = MpiWorld(Cluster(n_nodes, MACHINE), NETSPEC)
    job = launch_mode(mode, world, program, n_logical, args=(config,))
    world.run()
    return job


def values(job, mode):
    if mode == "native":
        return [r.value for r in job.results()]
    return [res.value for row in job.results() for res in row]


MG_CFG = MiniGhostConfig(nx=8, ny=8, nz=4, steps=3)
GTC_CFG = GtcConfig(particles_per_rank=256, cells_per_rank=16, steps=3)


@pytest.mark.parametrize("mode", ["native", "sdr", "intra"])
def test_minighost_total_agrees_across_ranks(mode):
    job = run(mode, minighost_program, 2, MG_CFG)
    vals = values(job, mode)
    assert all(v == pytest.approx(vals[0], rel=1e-12) for v in vals)


def test_minighost_modes_agree():
    ref = values(run("native", minighost_program, 2, MG_CFG), "native")[0]
    for mode in ("sdr", "intra"):
        got = values(run(mode, minighost_program, 2, MG_CFG), mode)
        assert all(v == pytest.approx(ref, rel=1e-12) for v in got)


def test_minighost_smoothing_contracts():
    """The 27-pt average with zero x/y padding loses mass each step."""
    job = run("native", minighost_program, 1,
              MiniGhostConfig(nx=8, ny=8, nz=4, steps=1))
    one = values(job, "native")[0]
    job = run("native", minighost_program, 1,
              MiniGhostConfig(nx=8, ny=8, nz=4, steps=4))
    four = values(job, "native")[0]
    assert 0 < four < one


def test_minighost_sum_section_stats():
    job = run("intra", minighost_program, 2, MG_CFG)
    for row in job.manager.replicas:
        for info in row:
            s = info.ctx.intra.stats
            assert s.sections == MG_CFG.steps  # grid_sum only
            # stencil ran outside sections: no stencil updates shipped
            assert s.update_bytes_sent <= MG_CFG.steps * 8 * 8


@pytest.mark.parametrize("mode", ["native", "sdr", "intra"])
def test_gtc_conserves_particles(mode):
    job = run(mode, gtc_program, 2, GTC_CFG)
    vals = values(job, mode)
    total = (sum(v[0] for v in vals) if mode == "native"
             else sum(v[0] for v in vals) / 2)  # two replicas each
    assert total == 2 * GTC_CFG.particles_per_rank


def test_gtc_modes_agree():
    ref = values(run("native", gtc_program, 2, GTC_CFG), "native")
    for mode in ("sdr", "intra"):
        got = values(run(mode, gtc_program, 2, GTC_CFG), mode)
        # per logical rank: both replicas match the native rank value
        assert got[0] == pytest.approx(ref[0], rel=1e-9)
        assert got[1] == pytest.approx(ref[0], rel=1e-9)
        assert got[2] == pytest.approx(ref[1], rel=1e-9)
        assert got[3] == pytest.approx(ref[1], rel=1e-9)


def test_gtc_inout_copies_charged_in_intra_mode():
    job = run("intra", gtc_program, 1, GTC_CFG)
    for info in job.manager.replicas[0]:
        s = info.ctx.intra.stats
        assert s.copy_bytes > 0      # pos/vel INOUT protection copies
        assert s.copy_time > 0
        assert s.sections == 2 * GTC_CFG.steps  # charge + push per step


def test_gtc_momentum_is_finite_and_symmetric():
    job = run("native", gtc_program, 2, GTC_CFG)
    for _n, mom in values(job, "native"):
        assert np.isfinite(mom)
