"""AMG-like app: multigrid correctness and solver convergence."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.amg import (AmgConfig, amg_gmres_program, amg_pcg_program,
                            build_hierarchy, extract_diagonal,
                            prolong_injection, restrict_full_weighting)
from repro.intra import launch_mode
from repro.kernels import OFFSETS_27, OFFSETS_7, build_27pt
from repro.mpi import MpiWorld
from repro.netmodel import Cluster, MachineSpec, NetworkSpec

MACHINE = MachineSpec(name="t", cores_per_node=4, flop_rate=2.5e9,
                      mem_bandwidth=12e9)
NETSPEC = NetworkSpec(bandwidth=1.5e9, latency=3e-6, half_duplex=False)


def run(mode, program, n_logical, config, n_nodes=8):
    world = MpiWorld(Cluster(n_nodes, MACHINE), NETSPEC)
    job = launch_mode(mode, world, program, n_logical, args=(config,))
    world.run()
    return job


def values(job, mode):
    if mode == "native":
        return [r.value for r in job.results()]
    return [res.value for row in job.results() for res in row]


CFG = AmgConfig(nx=8, ny=8, nz=8, max_iter=5)


# ------------------------------------------------------------ MG pieces
def test_extract_diagonal():
    m = build_27pt(4, 4, 4, False, False)
    diag = extract_diagonal(m)
    np.testing.assert_allclose(diag, 27.0)


def test_hierarchy_depth():
    h = build_hierarchy(16, 16, 16, OFFSETS_27, 27.0, -1.0, min_dim=4)
    assert [l.shape for l in h.levels] == [(16, 16, 16), (8, 8, 8),
                                           (4, 4, 4)]


def test_hierarchy_stops_at_min_dim():
    # (6, 6, 3) would violate min_dim=4: hierarchy stays single-level
    h = build_hierarchy(12, 12, 6, OFFSETS_7, 6.0, -1.0, min_dim=4)
    assert [l.shape for l in h.levels] == [(12, 12, 6)]


def test_hierarchy_stops_on_odd_dims():
    # coarsening continues to (3, 3, 2), whose odd dimension ends it
    h = build_hierarchy(12, 12, 8, OFFSETS_7, 6.0, -1.0, min_dim=2)
    assert [l.shape for l in h.levels] == [(12, 12, 8), (6, 6, 4),
                                           (3, 3, 2)]


def test_restrict_prolong_adjoint_like():
    rng = np.random.default_rng(1)
    fine = rng.standard_normal(8 * 8 * 8)
    coarse = restrict_full_weighting(fine, (8, 8, 8))
    assert coarse.size == 4 * 4 * 4
    # restriction of a prolonged field is the identity on coarse space
    back = restrict_full_weighting(prolong_injection(coarse, (4, 4, 4)),
                                   (8, 8, 8))
    np.testing.assert_allclose(back, coarse)


def test_restrict_preserves_mean():
    fine = np.ones(8 * 8 * 8) * 3.5
    coarse = restrict_full_weighting(fine, (8, 8, 8))
    np.testing.assert_allclose(coarse, 3.5)


# ------------------------------------------------------------- solvers
def test_pcg_reduces_residual():
    job = run("native", amg_pcg_program, 2, CFG)
    res, iters = values(job, "native")[0]
    # initial ||b|| is ~ sqrt(n); 5 MG-PCG iterations shrink it hard
    n = CFG.nx * CFG.ny * CFG.nz
    assert res < 0.01 * np.sqrt(n)
    assert iters == CFG.max_iter


def test_pcg_preconditioner_helps():
    plain = AmgConfig(nx=8, ny=8, nz=8, max_iter=5,
                      use_preconditioner=False)
    res_plain = values(run("native", amg_pcg_program, 2, plain),
                       "native")[0][0]
    res_mg = values(run("native", amg_pcg_program, 2, CFG), "native")[0][0]
    assert res_mg < res_plain


def test_gmres_reduces_residual():
    job = run("native", amg_gmres_program, 2, CFG)
    res, iters = values(job, "native")[0]
    n = CFG.nx * CFG.ny * CFG.nz
    assert res < 0.05 * np.sqrt(n)
    assert iters >= 1


@pytest.mark.parametrize("program", [amg_pcg_program, amg_gmres_program])
def test_modes_agree(program):
    ref = values(run("native", program, 2, CFG), "native")[0]
    for mode in ("sdr", "intra"):
        got = values(run(mode, program, 2, CFG), mode)
        for v in got:
            assert v[0] == pytest.approx(ref[0], rel=1e-9, abs=1e-12)


def test_intra_sections_present_in_amg():
    job = run("intra", amg_pcg_program, 2, CFG)
    info = job.manager.replica(0, 0)
    s = info.ctx.intra.stats
    assert s.sections > 0
    assert s.update_bytes_sent > 0
    # smoother + outer spmv regions both recorded
    timers = job.results()[0][0].timers
    assert "smoother_spmv" in timers and "spmv" in timers
    assert "ddot" in timers


def test_operator_matches_scipy_reference():
    """The 7-pt CSR operator equals the scipy-assembled Laplacian."""
    from repro.kernels import build_7pt
    m = build_7pt(4, 4, 4, False, False)
    A = sp.csr_matrix((m.val, m.col, m.row_ptr),
                      shape=(m.n_rows, m.padded_len))
    dense = A.toarray()
    assert np.allclose(dense.diagonal(), 6.0)
    # symmetric (no halo): A == A.T
    np.testing.assert_allclose(dense, dense.T)
