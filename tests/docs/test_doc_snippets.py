"""Execute every fenced ``python`` block in ``docs/*.md``.

The docs promise runnable examples; this test is what keeps that
promise from rotting.  Conventions (documented in each guide):

* blocks tagged exactly ```` ```python ```` execute, in order, sharing
  one namespace per file (so guides can build up state progressively);
* blocks tagged ``sh`` / ``text`` / anything else are illustrative and
  are not executed;
* snippet sizes are kept tiny, so this whole module runs in seconds.
"""

import pathlib
import re

import pytest

DOCS_DIR = pathlib.Path(__file__).resolve().parents[2] / "docs"

_FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL)


def extract_python_blocks(text: str):
    """The source of every ```` ```python ```` fenced block, in order."""
    return [m.group(1) for m in _FENCE.finditer(text)]


def doc_files():
    files = sorted(DOCS_DIR.glob("*.md"))
    assert files, f"no markdown files under {DOCS_DIR}"
    return files


@pytest.fixture(autouse=True)
def _sandbox(sandbox_perf_config):
    """Snippets may call the CLI main() or the facade, which touch the
    process-global sweep config and the on-disk cache; the shared
    sandbox fixture (tests/conftest.py) keeps both from leaking."""
    yield


def test_docs_exist_and_have_snippets():
    names = {p.name for p in doc_files()}
    required_docs = ("architecture.md", "scenarios.md", "cli.md",
                     "api.md")
    assert set(required_docs) <= names
    for required in required_docs:
        text = (DOCS_DIR / required).read_text()
        assert extract_python_blocks(text), \
            f"{required} has no executable python snippets"


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_doc_snippets_execute(path):
    """Every python block in the file runs; blocks share a namespace."""
    blocks = extract_python_blocks(path.read_text())
    namespace = {"__name__": f"docsnippet:{path.name}"}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[python block {i}]",
                         "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name}, python block {i} failed: "
                f"{type(exc).__name__}: {exc}\n--- block ---\n{block}")
