#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and verifies that relative targets resolve to an
existing file or directory.  External schemes (``http(s)://``,
``mailto:``) are ignored; ``#fragment`` suffixes are stripped (anchors
are not validated); bare in-page anchors (``(#section)``) are skipped.

Used by the CI docs job and ``make docs-check``::

    python tools/check_md_links.py [root]

Exit status: 0 when all links resolve, 1 otherwise (each broken link is
reported as ``file:line: target``).
"""

from __future__ import annotations

import pathlib
import re
import sys

#: inline markdown link/image: [text](target) / ![alt](target);
#: target ends at the first unescaped ')' or whitespace (titles like
#: [t](url "title") keep only the url part)
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: fenced code block delimiter — links inside code blocks are examples,
#: not navigation, so they are skipped
_FENCE = re.compile(r"^\s*(```|~~~)")

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

#: directories never worth scanning
_SKIP_DIRS = {".git", "__pycache__", ".perf_cache", ".pytest_cache",
              "node_modules", "_results"}


def iter_markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def check_file(path: pathlib.Path, root: pathlib.Path):
    """Yield ``(line_number, target)`` for each broken link in ``path``."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            base = root if rel.startswith("/") else path.parent
            candidate = (base / rel.lstrip("/")).resolve()
            if not candidate.exists():
                yield lineno, target


def main(argv):
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    broken = []
    n_files = 0
    for md in iter_markdown_files(root):
        n_files += 1
        for lineno, target in check_file(md, root):
            broken.append(f"{md.relative_to(root)}:{lineno}: {target}")
    if broken:
        print(f"broken intra-repo markdown links ({len(broken)}):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"checked {n_files} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
