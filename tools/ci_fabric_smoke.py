"""CI smoke for the result fabric, end to end with real processes.

Boots the production daemons — ``python -m repro.fabric.worker`` and
``python -m repro.fabric.serve`` — against a temporary SQLite-backed
fabric root, sweeps a small scenario grid through :class:`FabricClient`,
and asserts every served ``RunResult`` is JSON-identical to a warm
serial sweep of the same points.  Exit 0 on parity, 1 on any mismatch
or timeout.

Run locally:  ``PYTHONPATH=src python tools/ci_fabric_smoke.py``
"""

import os
import pathlib
import socket
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

import repro                                      # noqa: E402
from repro.fabric.client import FabricClient      # noqa: E402

NAMES = ["example:hpccg:native", "example:hpccg:sdr",
         "example:hpccg:intra", "example:waxpby:native"]
BOOT_TIMEOUT_S = 30.0
SWEEP_TIMEOUT_S = 300.0


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn(module: str, *args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return subprocess.Popen([sys.executable, "-m", module, *args],
                            env=env)


def main() -> int:
    with tempfile.TemporaryDirectory() as d:
        fabric_root = pathlib.Path(d) / "fabric"
        port = _free_port()
        serve = _spawn("repro.fabric.serve",
                       "--root", str(fabric_root), "--backend", "sqlite",
                       "--host", "127.0.0.1", "--port", str(port))
        worker = _spawn("repro.fabric.worker",
                        "--root", str(fabric_root), "--backend", "sqlite",
                        "--poll", "0.05", "--quiet")
        client = FabricClient(f"http://127.0.0.1:{port}", poll=0.1)
        try:
            deadline = time.monotonic() + BOOT_TIMEOUT_S
            while not client.healthz():
                if time.monotonic() >= deadline:
                    print("FAIL: service never became healthy",
                          file=sys.stderr)
                    return 1
                time.sleep(0.1)

            served = client.sweep(NAMES, wait_timeout=SWEEP_TIMEOUT_S)

            # ground truth: a warm serial sweep (same cache-hit
            # provenance as fabric-served results)
            cache_dir = pathlib.Path(d) / "serial"
            repro.sweep(NAMES, cache=True, cache_dir=cache_dir)
            warm = repro.sweep(NAMES, cache=True, cache_dir=cache_dir)

            for name, got, want in zip(NAMES, served, warm):
                if got.to_json() != want.to_json():
                    print(f"FAIL: {name}: fabric-served RunResult "
                          f"differs from the serial sweep",
                          file=sys.stderr)
                    return 1

            stats = client.stats()
            print(f"fabric smoke OK: {len(served)} point(s) served "
                  f"with serial parity "
                  f"(store entries: {stats['store']['entries']}, "
                  f"queue done: {stats['queue']['done']})")
            return 0
        finally:
            for proc in (worker, serve):
                proc.terminate()
            for proc in (worker, serve):
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    sys.exit(main())
