#!/usr/bin/env python
"""Fail if ``repro.__all__`` drifts from the checked-in manifest.

The public surface of the package is a contract: ``tools/public_api.txt``
holds the agreed ``repro.__all__`` (sorted, one name per line), and this
check — wired into ``make api-check`` and CI — fails on any drift in
either direction, with a diff.  It also verifies every exported name
actually resolves (the lazy ``__getattr__`` of ``repro/__init__.py``
must be able to import each one).

To change the public API intentionally: update ``repro.__all__``, rerun
``make api-check``, and commit the updated manifest alongside the code
(and a version bump per the stability policy in ``repro``'s docstring).
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))

MANIFEST = pathlib.Path(__file__).resolve().parent / "public_api.txt"


def main() -> int:
    import repro

    actual = sorted(repro.__all__)
    if actual != sorted(set(actual)):
        print("error: repro.__all__ contains duplicates",
              file=sys.stderr)
        return 1

    expected = [ln.strip() for ln in MANIFEST.read_text().splitlines()
                if ln.strip() and not ln.startswith("#")]
    if actual != expected:
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        print(f"error: repro.__all__ drifted from {MANIFEST}",
              file=sys.stderr)
        for name in missing:
            print(f"  - {name}  (in manifest, not exported)",
                  file=sys.stderr)
        for name in extra:
            print(f"  + {name}  (exported, not in manifest)",
                  file=sys.stderr)
        print("update tools/public_api.txt deliberately if this is an "
              "intentional API change", file=sys.stderr)
        return 1

    broken = []
    for name in actual:
        try:
            getattr(repro, name)
        except Exception as exc:   # noqa: BLE001 - report, don't crash
            broken.append((name, exc))
    if broken:
        print("error: exported names that do not resolve:",
              file=sys.stderr)
        for name, exc in broken:
            print(f"  {name}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
        return 1

    print(f"public API OK: {len(actual)} names match {MANIFEST.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
