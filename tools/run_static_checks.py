#!/usr/bin/env python
"""Run the optional third-party static checks (ruff, mypy) when they
are installed; skip loudly when they are not.

``make lint`` composes three layers: the repo's own determinism linter
(``python -m repro.analysis.lint``, always available — stdlib only),
then ruff (style/correctness lint + format check on the analysis
package) and mypy (strict on the simulate/scenarios/results/_envflags
core), both configured in ``pyproject.toml``.  The container that runs
the tier-1 suite does not always ship ruff/mypy, so this wrapper
treats "tool not installed" as a skip, never a failure — CI's ``lint``
job installs the ``lint`` extra and therefore always runs all three.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

#: (tool, module probed for availability, argv after the interpreter)
CHECKS = [
    ("ruff check", "ruff",
     ["-m", "ruff", "check", "src/repro", "tools"]),
    ("ruff format", "ruff",
     ["-m", "ruff", "format", "--check", "src/repro/analysis/lint",
      "src/repro/analysis/detcheck.py"]),
    ("mypy", "mypy",
     ["-m", "mypy", "-p", "repro.simulate", "-p", "repro.scenarios",
      "-m", "repro.results", "-m", "repro._envflags"]),
]


def main() -> int:
    failed = []
    for label, module, argv in CHECKS:
        if importlib.util.find_spec(module) is None:
            print(f"static-checks: skip: {label} ({module} not "
                  f"installed; `pip install -e .[lint]` enables it)")
            continue
        print(f"static-checks: running {label}")
        proc = subprocess.run([sys.executable] + argv)
        if proc.returncode != 0:
            failed.append(label)
    if failed:
        print(f"static-checks: FAIL: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
