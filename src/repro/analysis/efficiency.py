"""Workload-efficiency metric (paper §II).

``E = T_solve / T_wallclock`` where ``T_solve`` is the time to solution
in a fault-free system and ``T_wallclock`` the actual execution time for
a given amount of computing resources.  The paper uses two experimental
conventions, both provided here:

* **fixed resources** (Figure 5a/5b): the replicated run keeps the same
  physical process count and doubles the per-logical-process problem;
  ``E = T_native / T_mode``.
* **doubled resources** (Figure 6): the replicated run keeps the problem
  and doubles the physical processes; ``E = 0.5 · T_native / T_mode``.
"""

from __future__ import annotations

import typing as _t


def workload_efficiency(t_solve: float, t_wallclock: float,
                        resource_factor: float = 1.0) -> float:
    """General form: ``E = t_solve / (t_wallclock * resource_factor)``.

    ``resource_factor`` is the ratio of resources used relative to the
    fault-free baseline (2.0 for replication with doubled resources).
    """
    if t_solve < 0 or t_wallclock <= 0 or resource_factor <= 0:
        raise ValueError("times must be positive")
    return t_solve / (t_wallclock * resource_factor)


def fixed_resource_efficiency(t_native: float, t_mode: float) -> float:
    """Figure 5a/5b convention (same physical processes, doubled
    per-logical problem under replication)."""
    return workload_efficiency(t_native, t_mode)


def doubled_resource_efficiency(t_native: float, t_mode: float) -> float:
    """Figure 6 convention (same problem, doubled physical processes):
    equal run times mean 50% efficiency."""
    return workload_efficiency(t_native, t_mode, resource_factor=2.0)


def normalized_time(t_native: float, t_mode: float) -> float:
    """Figure 5a's y-axis: execution time normalized to Open MPI."""
    if t_native <= 0:
        raise ValueError("t_native must be positive")
    return t_mode / t_native


def mean(values: _t.Sequence[float]) -> float:
    """Average over ranks/replicas (the paper reports per-process
    averages; standard deviation in its runs is < 1%)."""
    vals = list(values)
    if not vals:
        raise ValueError("no values to average")
    return sum(vals) / len(vals)
