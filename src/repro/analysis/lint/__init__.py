"""detlint — the repo's determinism & oracle-discipline linter.

The reproduction's whole value rests on bit-determinism: scenario
hashes are cache keys, fast paths are proven against oracles by
byte-identity, and failure schedules must replay exactly from seed.
PR 8's differential harness caught a real run-to-run nondeterminism —
kill-order iteration over ``set()``\\ s of identity-hashed ``Process``
objects — *at runtime, by fuzzing*.  That defect class is statically
detectable; this package encodes the repo's invariants as lint rules
so the next one never lands:

``DET001``
    Ordering-sensitive consumption (iteration, ``list()``/``tuple()``,
    ``.pop()``, ``*`` unpacking, ``.join()``, ``sum()``) of a
    ``set``/``frozenset`` value.  Set iteration order depends on the
    process hash seed; wrap the consumption in ``sorted(...)`` or use
    an insertion-ordered ``dict`` instead.
``DET002``
    Identity-dependent logic — ``id()`` calls and object-``hash()``
    — in the simulate / replication / mpi / intra layers, where
    per-process object addresses must never influence event order.
``DET003``
    Unseeded randomness (module-level ``random.*``, ``numpy.random``
    global state) and wall-clock reads (``time.time`` /
    ``perf_counter`` / ``monotonic``, ``datetime.now``) outside
    ``repro.perf`` timing code and ``benchmarks/``.
``ENV001``
    Raw ``os.environ`` / ``os.getenv`` reads outside
    :mod:`repro._envflags` — every env toggle goes through the
    defensive parsers so garbage values warn instead of diverging.
``ORC001``
    A module-level fast-path toggle (a ``set_*`` function mutating a
    global) whose docstring does not document its oracle fallback —
    ROADMAP's perf discipline: every fast path keeps a toggleable
    oracle.

Findings can be suppressed in place with a *justified* comment::

    for p in procs:  # detlint: ignore[DET001] -- procs is a sorted tuple here

and pre-existing accepted findings live in a checked-in baseline
(``tools/detlint_baseline.json``) so new findings block while old ones
do not.  See ``docs/static-analysis.md`` for the full catalog and the
policy for adding rules.

Run it as ``python -m repro.analysis.lint`` (or ``make lint``).
"""

from .baseline import Baseline, load_baseline, write_baseline
from .rules import ALL_RULES, Finding, lint_file, lint_source
from .cli import lint_paths, main

__all__ = [
    "ALL_RULES", "Baseline", "Finding", "lint_file", "lint_paths",
    "lint_source", "load_baseline", "main", "write_baseline",
]
