"""The checked-in finding baseline: accepted debt does not block CI.

A baseline entry is a finding *fingerprint* (file + rule + normalized
source text — stable across line-number drift) with an occurrence
count.  ``detlint`` exits non-zero only for findings beyond the
baseline; ``--update-baseline`` rewrites the file from the current
findings, and stale entries (fixed findings) are reported so the
baseline only ever shrinks by deliberate action.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import typing as _t

from .rules import Finding

__all__ = ["Baseline", "diff_against_baseline", "load_baseline",
           "write_baseline"]

_FORMAT_VERSION = 1


@dataclasses.dataclass
class Baseline:
    """fingerprint -> accepted occurrence count (+ description for
    humans reading the JSON)."""

    counts: _t.Dict[str, int] = dataclasses.field(default_factory=dict)
    notes: _t.Dict[str, str] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: _t.Iterable[Finding]) -> "Baseline":
        counts: _t.Dict[str, int] = collections.Counter()
        notes: _t.Dict[str, str] = {}
        for f in findings:
            fp = f.fingerprint()
            counts[fp] += 1
            notes.setdefault(fp, f"{f.path}: {f.rule} "
                                 f"{f.source_line.strip()}")
        return cls(counts=dict(counts), notes=notes)


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return Baseline()
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a detlint baseline file")
    counts: _t.Dict[str, int] = {}
    notes: _t.Dict[str, str] = {}
    for fp, entry in data["findings"].items():
        counts[fp] = int(entry.get("count", 1))
        notes[fp] = str(entry.get("note", ""))
    return Baseline(counts=counts, notes=notes)


def write_baseline(path: str, baseline: Baseline) -> None:
    """Write the baseline with sorted keys so diffs stay minimal."""
    payload = {
        "version": _FORMAT_VERSION,
        "comment": ("accepted detlint findings; regenerate with "
                    "`python -m repro.analysis.lint --update-baseline`"),
        "findings": {
            fp: {"count": baseline.counts[fp],
                 "note": baseline.notes.get(fp, "")}
            for fp in sorted(baseline.counts)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def diff_against_baseline(findings: _t.Sequence[Finding],
                          baseline: Baseline
                          ) -> _t.Tuple[_t.List[Finding], _t.List[str]]:
    """``(new_findings, stale_fingerprints)``.

    Occurrences of a fingerprint up to its baselined count are
    accepted; every occurrence beyond that — and every fingerprint the
    baseline has never seen — is new.  Fingerprints in the baseline
    with no current occurrence are stale (fixed debt to prune).
    """
    budget = dict(baseline.counts)
    new: _t.List[Finding] = []
    for f in findings:
        fp = f.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
        else:
            new.append(f)
    stale = sorted(fp for fp, count in baseline.counts.items()
                   if count > 0 and budget.get(fp) == count)
    return new, stale
