"""The detlint rule engine: one AST pass per file, five rule families.

The engine is deliberately heuristic — it has no type inference — but
the heuristics are tuned to this codebase: set-valued names are tracked
through literal/constructor/annotation bindings per lexical scope, and
only *ordering-sensitive* consumption is flagged (membership tests,
``len``, ``sorted``, ``min``/``max`` and re-collection into another set
are all order-free and stay silent).  False positives are expected to
be rare and are handled by the justified-suppression syntax, never by
weakening a rule.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import re
import typing as _t

__all__ = ["ALL_RULES", "Finding", "Rule", "lint_file", "lint_source"]


# ----------------------------------------------------------- rule table
@dataclasses.dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, one-line summary, fix-it template."""

    code: str
    summary: str
    fixit: str


ALL_RULES: _t.Dict[str, Rule] = {r.code: r for r in (
    Rule("DET001",
         "ordering-sensitive consumption of a set/frozenset value",
         "iterate sorted(...) / an insertion-ordered dict instead, or "
         "suppress with a justification if order provably cannot leak "
         "into results"),
    Rule("DET002",
         "identity-dependent logic (id()/object hash()) in an "
         "order-sensitive layer",
         "key on a deterministic field (rank, name, sequence number) "
         "instead of the object's address"),
    Rule("DET003",
         "unseeded randomness or wall-clock read in simulation code",
         "thread a seeded random.Random(seed) / "
         "numpy.random.default_rng(seed) through the scenario, and "
         "keep wall-clock reads in repro.perf / repro.fabric / "
         "benchmarks"),
    Rule("ENV001",
         "raw os.environ read outside repro._envflags",
         "route the variable through a repro._envflags helper "
         "(env_flag/env_int/env_choice/env_str) so garbage values "
         "warn instead of silently diverging"),
    Rule("ORC001",
         "fast-path toggle without a documented oracle fallback",
         "state in the setter's docstring which oracle path the "
         "toggle falls back to and how results are proven identical "
         "(ROADMAP perf discipline)"),
)}


#: rule families that only apply under these path fragments
_DET002_LAYERS = ("simulate", "replication", "mpi", "intra")
#: path fragments where DET003 does not apply (timing code measures
#: real time by definition; benchmarks are not simulation results;
#: the fabric's queue leases / retry backoff / HTTP polling are
#: operational wall-clock concerns, not simulated time)
_DET003_EXEMPT = ("perf", "benchmarks", "fabric")
#: the one module allowed to touch os.environ
_ENV001_EXEMPT = ("_envflags.py",)


# -------------------------------------------------------------- finding
@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding, self-describing and baseline-fingerprintable."""

    path: str
    rule: str
    line: int
    col: int
    message: str
    source_line: str

    @property
    def fixit(self) -> str:
        return ALL_RULES[self.rule].fixit

    def fingerprint(self) -> str:
        """Stable identity for the baseline: file + rule + normalized
        source text (line numbers shift; code rarely does)."""
        norm = re.sub(r"\s+", " ", self.source_line.strip())
        digest = hashlib.sha256(
            f"{self.path}::{self.rule}::{norm}".encode()).hexdigest()
        return digest[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.message}\n    hint: {self.fixit}")


# -------------------------------------------------- suppression parsing
_IGNORE_RE = re.compile(
    r"#\s*detlint:\s*ignore\[([A-Z0-9,\s]+)\](.*)$")


def _parse_suppressions(source: str) -> _t.Dict[int, _t.Tuple[
        _t.FrozenSet[str], bool]]:
    """``line -> (rules, justified)`` for every ``# detlint: ignore``.

    A suppression on a comment-only line covers the next non-comment
    line (wrapped justifications may span several comment lines), so
    long statements can carry the comment above them.
    """
    out: _t.Dict[int, _t.Tuple[_t.FrozenSet[str], bool]] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        m = _IGNORE_RE.search(text)
        if m is None:
            continue
        rules = frozenset(r.strip() for r in m.group(1).split(",")
                          if r.strip())
        justification = m.group(2).strip().lstrip("-—:– ").strip()
        entry = (rules, bool(justification))
        out[lineno] = entry
        if text.lstrip().startswith("#"):  # comment-only line: covers
            nxt = lineno + 1               # the statement below
            while (nxt <= len(lines)
                   and lines[nxt - 1].lstrip().startswith("#")):
                nxt += 1
            out.setdefault(nxt, entry)
    return out


# ------------------------------------------------------- the AST visitor
_SET_ANNOTATIONS = frozenset({
    "Set", "FrozenSet", "MutableSet", "AbstractSet", "set", "frozenset"})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: set methods returning another set (order-free to *build*; tracked so
#: consumption of the result is still checked)
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy"})
#: call targets whose consumption of a set argument is order-sensitive
_ORDER_SENSITIVE_CALLS = frozenset({
    "list", "tuple", "iter", "enumerate", "reversed", "sum", "next"})
#: call targets that consume a set argument order-insensitively
_ORDER_FREE_CALLS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "bool", "set",
    "frozenset"})

_NONDET_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "binomialvariate",
    "getrandbits", "seed", "setstate"})
_WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns"})
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


def _annotation_is_set(node: ast.AST) -> bool:
    """True for ``Set[...]`` / ``_t.FrozenSet[...]`` / ``set`` etc."""
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: cheap textual check is enough here
        head = node.value.split("[", 1)[0].split(".")[-1].strip()
        return head in _SET_ANNOTATIONS
    return False


class _Scope:
    """One lexical scope's set-valued name bindings."""

    def __init__(self, node: _t.Optional[ast.AST]) -> None:
        self.node = node
        self.set_names: _t.Set[str] = set()


class _FileChecker(ast.NodeVisitor):
    """Single-pass checker: collects set-valued bindings on the way
    down (assignments precede most uses in well-ordered code; class
    attribute bindings are pre-collected) and flags rule violations."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 *, det002: bool, det003: bool, env001: bool) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.findings: _t.List[Finding] = []
        self.scopes: _t.List[_Scope] = [_Scope(tree)]
        #: attribute names bound to sets anywhere in the file
        #: (``self.X = set()`` — class-granular tracking is not worth
        #: the complexity at this codebase's size)
        self.set_attrs: _t.Set[str] = set()
        #: alias -> canonical module path ("np" -> "numpy")
        self.modules: _t.Dict[str, str] = {}
        #: names imported from modules ("perf_counter" -> "time")
        self.from_imports: _t.Dict[str, str] = {}
        self.check_det002 = det002
        self.check_det003 = det003
        self.check_env001 = env001
        self._module_doc = (ast.get_docstring(tree) or "")
        self._comprehensions_checked = set()
        self._precollect(tree)

    # -- pre-pass: attribute bindings + imports can follow their uses
    def _precollect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if (isinstance(tgt, ast.Attribute)
                            and self._is_set_expr(node.value,
                                                  binding_pass=True)):
                        self.set_attrs.add(tgt.attr)
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Attribute)
                        and _annotation_is_set(node.annotation)):
                    self.set_attrs.add(node.target.attr)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or
                                 alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level:
                    for alias in node.names:
                        self.from_imports[alias.asname or
                                          alias.name] = node.module

    # ---------------------------------------------------------- helpers
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = (self.lines[line - 1] if 0 < line <= len(self.lines)
                else "")
        self.findings.append(Finding(
            path=self.path, rule=rule, line=line, col=col,
            message=message, source_line=text))

    def _name_is_set(self, name: str) -> bool:
        return any(name in scope.set_names
                   for scope in reversed(self.scopes))

    def _is_set_expr(self, node: _t.Optional[ast.AST], *,
                     binding_pass: bool = False) -> bool:
        """Syntactic "this expression is a set" judgement."""
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Name)
                    and func.id in _SET_CONSTRUCTORS):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_PRODUCING_METHODS
                    and self._is_set_expr(func.value,
                                          binding_pass=binding_pass)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left,
                                      binding_pass=binding_pass)
                    or self._is_set_expr(node.right,
                                         binding_pass=binding_pass))
        if binding_pass:
            # the pre-pass runs before scopes exist; only structural
            # evidence counts there
            return False
        if isinstance(node, ast.Name):
            return self._name_is_set(node.id)
        if isinstance(node, ast.Attribute):
            return (isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in self.set_attrs)
        if isinstance(node, ast.IfExp):
            return (self._is_set_expr(node.body)
                    or self._is_set_expr(node.orelse))
        return False

    def _describe(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"

    def _resolves_to(self, node: ast.AST, module: str) -> bool:
        """Does ``node`` name the module ``module`` (alias-aware)?"""
        if isinstance(node, ast.Name):
            return self.modules.get(node.id) == module
        if isinstance(node, ast.Attribute):
            # e.g. ``np.random`` for module "numpy.random"
            parent, _, last = module.rpartition(".")
            return (node.attr == last and parent != ""
                    and self._resolves_to(node.value, parent))
        return False

    # ------------------------------------------------- scope management
    def _visit_in_scope(self, node: ast.AST) -> None:
        self.scopes.append(_Scope(node))
        try:
            self.generic_visit(node)
        finally:
            self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_orc001(node)
        self._bind_set_args(node)
        self._visit_in_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._bind_set_args(node)
        self._visit_in_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_in_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_in_scope(node)

    def _bind_set_args(self, node: _t.Union[ast.FunctionDef,
                                            ast.AsyncFunctionDef]) -> None:
        """Parameters annotated as sets bind into the function scope."""
        scope = _Scope(node)
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if arg.annotation is not None and _annotation_is_set(
                    arg.annotation):
                scope.set_names.add(arg.arg)
        # pre-seed: _visit_in_scope pushes its own scope, so merge the
        # annotated parameters into it via a deferred list
        self._pending_arg_scope = scope.set_names

    _pending_arg_scope: _t.Optional[_t.Set[str]] = None

    # ------------------------------------------------ binding collection
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self.scopes[-1].set_names.add(tgt.id)
        else:
            # rebinding a tracked name to a non-set value clears it
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self.scopes[-1].set_names.discard(tgt.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if (_annotation_is_set(node.annotation)
                    or self._is_set_expr(node.value)):
                self.scopes[-1].set_names.add(node.target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``s |= other`` keeps s a set; nothing to do either way
        self.generic_visit(node)

    # --------------------------------------------------- DET001 checks
    def _flag_set_iteration(self, iter_node: ast.AST,
                            context: str) -> None:
        if self._is_set_expr(iter_node):
            self._flag(
                "DET001", iter_node,
                f"{context} over set `{self._describe(iter_node)}`: "
                f"iteration order depends on the hash seed")

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, "for-loop iteration")
        self.generic_visit(node)

    def _check_comprehension(self, node: _t.Union[
            ast.ListComp, ast.SetComp, ast.DictComp,
            ast.GeneratorExp], parent: _t.Optional[ast.AST]) -> None:
        for gen in node.generators:
            if not self._is_set_expr(gen.iter):
                continue
            # order-free sinks: the comprehension feeds sorted()/another
            # set / min / max / ... directly, or builds a set/dict whose
            # own order does not matter for sets (dict display order
            # DOES matter -> only SetComp is order-free by construction)
            if isinstance(node, ast.SetComp):
                continue
            if (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_FREE_CALLS
                    and node in parent.args):
                continue
            self._flag(
                "DET001", gen.iter,
                f"comprehension iterates set "
                f"`{self._describe(gen.iter)}`: iteration order "
                f"depends on the hash seed")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # DET001: list(s) / tuple(s) / iter(s) / sum(s) / enumerate(s)
        if isinstance(func, ast.Name):
            if (func.id in _ORDER_SENSITIVE_CALLS and node.args
                    and self._is_set_expr(node.args[0])):
                self._flag(
                    "DET001", node,
                    f"{func.id}() materializes set "
                    f"`{self._describe(node.args[0])}` in hash order")
            # comprehension arguments are checked with parent context
            for arg in node.args:
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp,
                                    ast.DictComp)):
                    self._check_comprehension(arg, node)
                    self._comprehensions_checked.add(id(arg))
            if self.check_det002 and func.id == "id" and node.args:
                self._flag(
                    "DET002", node,
                    f"id({self._describe(node.args[0])}) is a "
                    f"process-lifetime address, not stable data")
            if self.check_det002 and func.id == "hash" and node.args:
                arg0 = node.args[0]
                if not isinstance(arg0, ast.Constant):
                    self._flag(
                        "DET002", node,
                        f"hash({self._describe(arg0)}) may be the "
                        f"identity hash (and str/bytes hashes are "
                        f"seed-dependent)")
        # DET001: s.pop() on a set; "sep".join(s)
        if isinstance(func, ast.Attribute):
            if (func.attr == "pop" and not node.args
                    and self._is_set_expr(func.value)):
                self._flag(
                    "DET001", node,
                    f"set.pop() on `{self._describe(func.value)}` "
                    f"removes a hash-order-dependent element")
            if (func.attr == "join" and node.args
                    and self._is_set_expr(node.args[0])):
                self._flag(
                    "DET001", node,
                    f"join() over set "
                    f"`{self._describe(node.args[0])}` concatenates "
                    f"in hash order")
        self._check_det003_call(node)
        self._check_env001_call(node)
        self.generic_visit(node)

    _comprehensions_checked: _t.Set[int]

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if id(node) not in self._comprehensions_checked:
            self._check_comprehension(node, None)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if id(node) not in self._comprehensions_checked:
            self._check_comprehension(node, None)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if id(node) not in self._comprehensions_checked:
            self._check_comprehension(node, None)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node, None)
        self.generic_visit(node)

    def visit_Starred(self, node: ast.Starred) -> None:
        if self._is_set_expr(node.value):
            self._flag(
                "DET001", node,
                f"*-unpacking set `{self._describe(node.value)}` "
                f"expands in hash order")
        self.generic_visit(node)

    # --------------------------------------------------- DET002 extras
    def visit_keyword(self, node: ast.keyword) -> None:
        if (self.check_det002 and node.arg == "key"
                and isinstance(node.value, ast.Name)
                and node.value.id == "id"):
            self._flag(
                "DET002", node.value,
                "sort key `id` orders by object address")
        self.generic_visit(node)

    # --------------------------------------------------- DET003 checks
    def _check_det003_call(self, node: ast.Call) -> None:
        if not self.check_det003:
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if (attr in _NONDET_RANDOM_FNS
                    and self._resolves_to(func.value, "random")):
                self._flag(
                    "DET003", node,
                    f"random.{attr}() draws from the unseeded global "
                    f"generator")
            elif self._resolves_to(func.value, "numpy.random"):
                seeded = (attr in ("default_rng", "RandomState",
                                   "Generator", "SeedSequence")
                          and bool(node.args or node.keywords))
                if not seeded:
                    self._flag(
                        "DET003", node,
                        f"numpy.random.{attr}() touches numpy's "
                        f"global random state (seed a "
                        f"default_rng(seed) instead)")
            elif (attr in _WALLCLOCK_TIME_FNS
                    and self._resolves_to(func.value, "time")):
                self._flag(
                    "DET003", node,
                    f"time.{attr}() reads the wall clock inside "
                    f"simulation code")
            elif (attr in _WALLCLOCK_DATETIME_FNS
                    and isinstance(func.value, (ast.Name, ast.Attribute))
                    and "datetime" in ast.dump(func.value)):
                self._flag(
                    "DET003", node,
                    f"datetime {attr}() reads the wall clock inside "
                    f"simulation code")
        elif isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin == "random" and func.id in _NONDET_RANDOM_FNS:
                self._flag(
                    "DET003", node,
                    f"{func.id}() (from random) draws from the "
                    f"unseeded global generator")
            elif origin == "time" and func.id in _WALLCLOCK_TIME_FNS:
                self._flag(
                    "DET003", node,
                    f"{func.id}() (from time) reads the wall clock "
                    f"inside simulation code")

    # --------------------------------------------------- ENV001 checks
    def _check_env001_call(self, node: ast.Call) -> None:
        if not self.check_env001:
            return
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "getenv"
                and self._resolves_to(func.value, "os")):
            self._flag("ENV001", node,
                       "os.getenv() bypasses repro._envflags")
        elif (isinstance(func, ast.Name)
                and self.from_imports.get(func.id) == "os"
                and func.id == "getenv"):
            self._flag("ENV001", node,
                       "getenv() (from os) bypasses repro._envflags")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (self.check_env001 and node.attr == "environ"
                and self._resolves_to(node.value, "os")):
            self._flag("ENV001", node,
                       "os.environ read bypasses repro._envflags")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (self.check_env001
                and self.from_imports.get(node.id) == "os"
                and node.id == "environ"):
            self._flag("ENV001", node,
                       "environ (from os) bypasses repro._envflags")
        self.generic_visit(node)

    # --------------------------------------------------- ORC001 checks
    def _check_orc001(self, node: ast.FunctionDef) -> None:
        if not node.name.startswith("set_"):
            return
        if len(self.scopes) != 1:  # module-level setters only
            return
        has_global = any(isinstance(stmt, ast.Global)
                         for stmt in ast.walk(node))
        if not has_global:
            return
        doc = (ast.get_docstring(node) or "") + self._module_doc
        if "oracle" in doc.lower():
            return
        self._flag(
            "ORC001", node,
            f"{node.name}() flips a module-level fast-path toggle but "
            f"neither its docstring nor the module docstring documents "
            f"the oracle fallback")

    # -------------------------------------------------- scope plumbing
    def generic_visit(self, node: ast.AST) -> None:
        # merge parameters annotated as sets into the fresh scope
        if (self._pending_arg_scope is not None
                and self.scopes[-1].node is node):
            self.scopes[-1].set_names |= self._pending_arg_scope
            self._pending_arg_scope = None
        super().generic_visit(node)


# -------------------------------------------------------------- drivers
def lint_source(source: str, path: str, *,
                rules: _t.Optional[_t.Collection[str]] = None
                ) -> _t.List[Finding]:
    """Lint one file's source text; returns unsuppressed findings.

    ``path`` scopes the path-sensitive rules (DET002 layers, DET003
    exemptions, the ``_envflags`` ENV001 carve-out) and labels the
    findings; it need not exist on disk.
    """
    norm = path.replace("\\", "/")
    tree = ast.parse(source, filename=path)
    checker = _FileChecker(
        norm, source, tree,
        det002=any(f"/{layer}/" in norm or norm.startswith(f"{layer}/")
                   for layer in _DET002_LAYERS),
        det003=not any(f"/{frag}/" in norm or norm.startswith(f"{frag}/")
                       for frag in _DET003_EXEMPT),
        env001=not norm.endswith(_ENV001_EXEMPT))
    checker.visit(tree)
    wanted = set(rules) if rules is not None else set(ALL_RULES)
    suppressions = _parse_suppressions(source)
    kept: _t.List[Finding] = []
    for finding in sorted(checker.findings,
                          key=lambda f: (f.line, f.col, f.rule)):
        if finding.rule not in wanted:
            continue
        entry = suppressions.get(finding.line)
        if entry is not None and finding.rule in entry[0]:
            if entry[1]:
                continue  # justified suppression
            finding = dataclasses.replace(
                finding, message=finding.message
                + " (suppression present but missing a justification: "
                  "write `# detlint: ignore[RULE] -- why`)")
        kept.append(finding)
    return kept


def lint_file(filename: str, *, relpath: _t.Optional[str] = None,
              rules: _t.Optional[_t.Collection[str]] = None
              ) -> _t.List[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    with open(filename, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, relpath or filename, rules=rules)
