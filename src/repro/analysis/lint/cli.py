"""``python -m repro.analysis.lint`` — the detlint command line.

Exit status: 0 when every finding is suppressed or baselined, 1 when
new findings exist, 2 on usage errors.  ``--update-baseline`` rewrites
the checked-in baseline from the current findings and exits 0.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import typing as _t

from .baseline import (Baseline, diff_against_baseline, load_baseline,
                       write_baseline)
from .rules import ALL_RULES, Finding, lint_file

__all__ = ["lint_paths", "main"]

#: default lint target and baseline location, relative to the repo root
_DEFAULT_TARGET = os.path.join("src", "repro")
_DEFAULT_BASELINE = os.path.join("tools", "detlint_baseline.json")


def _find_root(start: str) -> str:
    """The enclosing repo root (nearest ancestor with pyproject.toml),
    so detlint runs from any working directory inside the repo."""
    path = os.path.abspath(start)
    while True:
        if os.path.exists(os.path.join(path, "pyproject.toml")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start)
        path = parent


def _python_files(target: str) -> _t.Iterator[str]:
    if os.path.isfile(target):
        yield target
        return
    for dirpath, dirnames, filenames in os.walk(target):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__"
                             and not d.startswith("."))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_paths(paths: _t.Sequence[str], *, root: _t.Optional[str] = None,
               rules: _t.Optional[_t.Collection[str]] = None
               ) -> _t.List[Finding]:
    """Lint files/directories; finding paths are root-relative (posix)
    so baselines are stable across checkouts."""
    root = os.path.abspath(root or _find_root(os.getcwd()))
    findings: _t.List[Finding] = []
    for target in paths:
        for filename in _python_files(target):
            rel = os.path.relpath(os.path.abspath(filename), root)
            rel = rel.replace(os.sep, "/")
            findings.extend(lint_file(filename, relpath=rel,
                                      rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="determinism & oracle-discipline linter "
                    "(rule catalog: docs/static-analysis.md)")
    parser.add_argument(
        "paths", nargs="*",
        help=f"files/directories to lint (default: {_DEFAULT_TARGET} "
             f"under the repo root)")
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE",
        choices=sorted(ALL_RULES),
        help="restrict to these rules (repeatable)")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=f"baseline file (default: {_DEFAULT_BASELINE} under the "
             f"repo root)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, baseline or not")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="accept the current findings into the baseline and exit 0")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits one object per finding)")
    parser.add_argument(
        "--root", help="repo root override (path anchoring)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root or _find_root(os.getcwd()))
    paths = list(args.paths) or [os.path.join(root, _DEFAULT_TARGET)]
    baseline_path = args.baseline or os.path.join(root,
                                                  _DEFAULT_BASELINE)
    findings = lint_paths(paths, root=root, rules=args.rules)

    if args.update_baseline:
        write_baseline(baseline_path, Baseline.from_findings(findings))
        print(f"detlint: baseline updated with {len(findings)} "
              f"finding(s) -> {baseline_path}")
        return 0

    baseline = (Baseline() if args.no_baseline
                else load_baseline(baseline_path))
    new, stale = diff_against_baseline(findings, baseline)

    if args.format == "json":
        print(json.dumps([{
            "path": f.path, "rule": f.rule, "line": f.line,
            "col": f.col, "message": f.message, "fixit": f.fixit,
            "fingerprint": f.fingerprint(),
        } for f in new], indent=2))
    else:
        for f in new:
            print(f.render())
        if stale:
            print(f"detlint: note: {len(stale)} baselined finding(s) "
                  f"no longer occur; prune them with --update-baseline")
        accepted = len(findings) - len(new)
        status = "ok" if not new else "FAIL"
        print(f"detlint: {status}: {len(new)} new finding(s), "
              f"{accepted} baselined, "
              f"{len(list(_all_lint_targets(paths)))} file(s) checked")
    return 1 if new else 0


def _all_lint_targets(paths: _t.Sequence[str]) -> _t.Iterator[str]:
    for target in paths:
        yield from _python_files(target)
