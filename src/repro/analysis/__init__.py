"""Efficiency metrics and analytic fault-tolerance models (system S13)."""

from .ccr_model import (ccr_efficiency, daly_interval,
                        expected_segment_time, mnfti_degree2,
                        plain_ccr_efficiency, replicated_ccr_efficiency,
                        replication_mtti, young_interval)
from .partial_replication import (mnfti_partial,
                                  partial_replication_efficiency,
                                  partial_replication_sweep)
from .efficiency import (doubled_resource_efficiency,
                         fixed_resource_efficiency, mean, normalized_time,
                         workload_efficiency)
from .reporting import (efficiency_label, format_table,
                        results_table)

__all__ = [
    "ccr_efficiency", "daly_interval", "doubled_resource_efficiency",
    "efficiency_label", "expected_segment_time",
    "fixed_resource_efficiency", "format_table", "mean", "mnfti_degree2",
    "results_table",
    "normalized_time", "plain_ccr_efficiency",
    "mnfti_partial", "partial_replication_efficiency",
    "partial_replication_sweep",
    "replicated_ccr_efficiency", "replication_mtti",
    "workload_efficiency", "young_interval",
]
