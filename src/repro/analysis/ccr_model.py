"""Analytic checkpoint-restart efficiency model (paper §II background).

The paper motivates replication by the observation [1], [8] that global
coordinated checkpoint-restart (cCR) to a parallel file system can drop
below 50% efficiency at exascale MTBFs, at which point replication —
capped at 50% — becomes competitive.  This module reproduces that
motivating comparison:

* Young's and Daly's optimal checkpoint intervals,
* the exact expected-completion-time model for exponential failures
  (renewal argument), from which cCR efficiency follows,
* the replication-side model: mean number of failures to interruption
  (MNFTI) for replication degree 2 [16], giving the application MTTI
  under replication, and the combined replication+cCR efficiency (the
  checkpoint frequency can then be very low).
"""

from __future__ import annotations

import math
import typing as _t


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimum: ``τ = sqrt(2 δ M)``."""
    _check(checkpoint_cost, mtbf)
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimum (valid for δ < 2M)."""
    _check(checkpoint_cost, mtbf)
    delta, M = checkpoint_cost, mtbf
    if delta >= 2.0 * M:
        return M
    x = delta / (2.0 * M)
    return math.sqrt(2.0 * delta * M) * (1.0 + math.sqrt(x) / 3.0
                                         + x / 9.0) - delta


def expected_segment_time(work: float, mtbf: float,
                          restart_cost: float) -> float:
    """Expected wall time to complete ``work`` seconds of uninterruptible
    progress under Poisson failures (rate 1/M) with per-failure restart
    cost R (exact renewal result):

        E[T] = (M + R) · (e^{work/M} − 1)
    """
    if work < 0 or mtbf <= 0 or restart_cost < 0:
        raise ValueError("invalid model parameters")
    return (mtbf + restart_cost) * math.expm1(work / mtbf)


def ccr_efficiency(mtbf: float, checkpoint_cost: float,
                   restart_cost: float,
                   interval: _t.Optional[float] = None) -> float:
    """Efficiency of coordinated checkpoint-restart.

    Per period the application makes ``τ`` seconds of progress at an
    expected wall cost of ``expected_segment_time(τ + δ)``; the interval
    defaults to Daly's optimum.
    """
    _check(checkpoint_cost, mtbf)
    if interval is None:
        interval = daly_interval(checkpoint_cost, mtbf)
    if interval <= 0:
        raise ValueError("interval must be positive")
    wall = expected_segment_time(interval + checkpoint_cost, mtbf,
                                 restart_cost)
    return interval / wall


def mnfti_degree2(n_logical: int) -> float:
    """Mean number of (non-repaired, uniformly targeted) process failures
    until some logical rank loses *both* replicas, for replication
    degree 2 over ``n_logical`` ranks [16].

    Exact recurrence on j = number of ranks with one dead replica:
    a failure hits one of the ``2N − j`` live replicas uniformly; with
    probability ``j / (2N − j)`` it kills a previously-hit rank's
    survivor (interruption), otherwise j grows by one.
    """
    if n_logical < 1:
        raise ValueError("n_logical must be >= 1")
    n = n_logical
    # E_j = 1 + (1 - j/(2n - j)) * E_{j+1}, E_n terminates (j = n means
    # every rank has one dead replica; the next failure always kills).
    expect = 1.0  # E_n
    for j in range(n - 1, -1, -1):
        p_kill = j / (2.0 * n - j)
        expect = 1.0 + (1.0 - p_kill) * expect
    return expect


def replication_mtti(n_logical: int, node_mtbf: float,
                     degree: int = 2) -> float:
    """Application mean time to interruption under replication.

    Failures arrive at aggregate rate ``(degree · N) / node_mtbf``; the
    application survives ``mnfti`` of them on average.
    """
    if degree != 2:
        raise NotImplementedError("MNFTI recurrence implemented for "
                                  "degree 2 (the paper's setting)")
    if node_mtbf <= 0:
        raise ValueError("node_mtbf must be positive")
    failure_rate = (degree * n_logical) / node_mtbf
    return mnfti_degree2(n_logical) / failure_rate


def replicated_ccr_efficiency(n_logical: int, node_mtbf: float,
                              checkpoint_cost: float,
                              restart_cost: float) -> float:
    """Efficiency of replication (degree 2) combined with rare
    checkpoints: the effective MTBF becomes the replication MTTI, so the
    checkpoint frequency can be very low [16]; the resource doubling
    caps the result at 50%."""
    mtti = replication_mtti(n_logical, node_mtbf)
    return 0.5 * ccr_efficiency(mtti, checkpoint_cost, restart_cost)


def plain_ccr_efficiency(n_procs: int, node_mtbf: float,
                         checkpoint_cost: float,
                         restart_cost: float) -> float:
    """Efficiency of cCR without replication: system MTBF scales as
    ``node_mtbf / n_procs``."""
    if n_procs < 1 or node_mtbf <= 0:
        raise ValueError("invalid parameters")
    return ccr_efficiency(node_mtbf / n_procs, checkpoint_cost,
                          restart_cost)


def _check(checkpoint_cost: float, mtbf: float) -> None:
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ValueError("checkpoint_cost and mtbf must be positive")
