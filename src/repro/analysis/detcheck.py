"""Hash-seed variance smoke check: a standing proof that no
hash-order dependence has crept into the simulation.

Python randomizes ``str``/``bytes`` hashes per process
(``PYTHONHASHSEED``), so any ``set``/``dict``-order dependence in the
engine, the runtimes or the aggregation layer shows up as run-to-run
variance across interpreter invocations.  This check runs one tiny
registered scenario (cache off) in two subprocesses pinned to
*different* hash seeds and asserts the :class:`repro.results.RunResult`
JSON is byte-identical — the dynamic complement to the static ``DET``
rules of :mod:`repro.analysis.lint`, wired into ``make lint``.

Run it as ``python -m repro.analysis.detcheck``; ~5 seconds, exit 0 on
byte-identity, 1 on divergence (with a diff-style report).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import typing as _t

__all__ = ["main", "run_scenario_under_seed"]

#: small, fast (~15 ms simulated) and failure-injecting: kills replicas
#: mid-run, so the kill path — where PR 8's set-iteration bug lived —
#: is on the probed trace
_DEFAULT_SCENARIO = "example:failure-injection"

_SNIPPET = """\
import sys
from repro import api
result = api.run({name!r}, cache=False)
sys.stdout.write(result.to_json(indent=0))
"""


def run_scenario_under_seed(name: str, seed: str, *,
                            timeout: float = 120.0) -> bytes:
    """Run scenario ``name`` in a subprocess under
    ``PYTHONHASHSEED=seed``; returns the RunResult JSON bytes."""
    # detlint: ignore[ENV001] -- not a config read: the whole parent
    # environment is forwarded to the child, with only the seed pinned
    env = dict(os.environ, PYTHONHASHSEED=seed)
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET.format(name=name)],
        env=env, capture_output=True, timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scenario {name!r} failed under PYTHONHASHSEED={seed}:\n"
            f"{proc.stderr.decode(errors='replace')}")
    return proc.stdout


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.detcheck",
        description="hash-seed variance smoke check (RunResult JSON "
                    "must be byte-identical across PYTHONHASHSEED "
                    "values)")
    parser.add_argument(
        "--scenario", default=_DEFAULT_SCENARIO,
        help=f"registered scenario name (default: "
             f"{_DEFAULT_SCENARIO})")
    parser.add_argument(
        "--seeds", nargs=2, default=("0", "12345"), metavar="SEED",
        help="the two PYTHONHASHSEED values (default: 0 12345)")
    args = parser.parse_args(argv)

    outputs = [run_scenario_under_seed(args.scenario, seed)
               for seed in args.seeds]
    if outputs[0] == outputs[1]:
        print(f"detcheck: ok: {args.scenario!r} is byte-identical "
              f"under PYTHONHASHSEED={args.seeds[0]} and "
              f"={args.seeds[1]} ({len(outputs[0])} bytes)")
        return 0
    print(f"detcheck: FAIL: {args.scenario!r} diverges across hash "
          f"seeds — a set/dict-order dependence reached the results:",
          file=sys.stderr)
    for seed, out in zip(args.seeds, outputs):
        text = out.decode(errors="replace")
        head = text if len(text) < 2000 else text[:2000] + "..."
        print(f"--- PYTHONHASHSEED={seed} ({len(out)} bytes)\n{head}",
              file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
