"""Result tables for the benchmark harness (EXPERIMENTS.md source).

:func:`format_table` renders any row list; :func:`results_table`
renders a :class:`repro.results.ResultSet` directly from its flat
records, so callers stop hand-rolling row lists from run objects.
"""

from __future__ import annotations

import typing as _t


def format_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence[_t.Any]],
                 title: str = "") -> str:
    """Fixed-width ASCII table; floats rendered with 3 significant
    decimals (matching the paper's reported precision)."""
    def render(cell: _t.Any) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 100:
                return f"{cell:.1f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def efficiency_label(e: float) -> str:
    """The paper's above-the-bar annotation style (e.g. '0.34')."""
    return f"{e:.2f}"


def results_table(results: _t.Any,
                  columns: _t.Optional[_t.Sequence[str]] = None,
                  title: str = "") -> str:
    """Render a :class:`repro.results.ResultSet` as a fixed-width table.

    ``columns`` defaults to the set's deterministic column order
    (:meth:`~repro.results.ResultSet.columns`); names absent from a
    record render as '-'.  This is the human-facing sibling of
    ``ResultSet.to_csv`` — same records, same ordering guarantees.
    """
    cols = list(columns) if columns is not None else results.columns()
    rows = [["-" if rec.get(c) is None else rec[c] for c in cols]
            for rec in results.records()]
    return format_table(cols, rows, title=title)
