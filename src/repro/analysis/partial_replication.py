"""Partial-replication model (§II background, refs [18], [19]).

The paper motivates intra-parallelization over *partial redundancy*:
"It has been shown that if the replicated processes are chosen
randomly, partial replication does not pay off [18]", while
predictor-guided selection can beat 50% [19].  This module reproduces
the random-selection result analytically:

With ``N`` logical ranks of which a fraction ``p`` is duplicated,
failures hit live physical processes uniformly at random (no repair).
The run is interrupted by the first failure on an *unreplicated* rank
or by the second failure on the same replicated rank.  We compute the
mean number of failures to interruption (MNFTI) exactly by dynamic
programming, convert it to an application MTTI, and combine it with the
Daly checkpoint model — exposing the bathtub: for random selection,
every intermediate ``p`` is dominated by either ``p = 0`` (cheap, cCR
carries the load) or ``p = 1`` (full replication).
"""

from __future__ import annotations

import typing as _t

from .ccr_model import ccr_efficiency


def mnfti_partial(n_replicated: int, n_unreplicated: int) -> float:
    """Mean failures to interruption with ``n_replicated`` duplicated
    ranks and ``n_unreplicated`` singleton ranks (uniform targeting, no
    repair).

    State: j = replicated ranks that already lost one replica.  Live
    process count is ``2·r + u − j``; the next failure interrupts with
    probability ``(u + j) / (2r + u − j)`` (a singleton, or the
    survivor of a damaged pair), else j grows.
    """
    r, u = n_replicated, n_unreplicated
    if r < 0 or u < 0 or r + u == 0:
        raise ValueError("need at least one rank")

    expect = 0.0
    # E_j computed backwards from j = r (all pairs damaged: next failure
    # always interrupts).
    for j in range(r, -1, -1):
        live = 2 * r + u - j
        p_kill = (u + j) / live
        if j == r:
            expect = 1.0 / p_kill if p_kill > 0 else float("inf")
        else:
            expect = 1.0 + (1.0 - p_kill) * expect
    return expect


def partial_replication_efficiency(n_logical: int, fraction: float,
                                   node_mtbf: float,
                                   checkpoint_cost: float,
                                   restart_cost: float) -> float:
    """Workload efficiency of randomly-selected partial replication.

    ``fraction`` of the ``n_logical`` ranks are duplicated; resources
    grow by the same factor, so the efficiency cap is
    ``1 / (1 + fraction)``.  The effective MTBF is the partial-MNFTI
    times the per-failure interval.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if n_logical < 1:
        raise ValueError("need at least one rank")
    r = round(n_logical * fraction)
    u = n_logical - r
    n_phys = 2 * r + u
    failure_interval = node_mtbf / n_phys
    mtti = mnfti_partial(r, u) * failure_interval
    cap = n_logical / n_phys
    return cap * ccr_efficiency(mtti, checkpoint_cost, restart_cost)


def partial_replication_sweep(n_logical: int, node_mtbf: float,
                              checkpoint_cost: float, restart_cost: float,
                              fractions: _t.Sequence[float] = (
                                  0.0, 0.25, 0.5, 0.75, 1.0),
                              ) -> _t.List[_t.Tuple[float, float]]:
    """Efficiency at each replication fraction; the [18] shape is that
    no interior point beats both endpoints."""
    return [(f, partial_replication_efficiency(
        n_logical, f, node_mtbf, checkpoint_cost, restart_cost))
        for f in fractions]
