"""Defensive environment-variable parsing — the only module that may
touch ``os.environ``.

The execution-toggle env vars (``REPRO_BATCHED``,
``REPRO_SECTION_BATCHING``, ``REPRO_TASK_POOLING``, ``REPRO_ENGINE``,
``REPRO_WORKERS``, ``REPRO_SWEEP_CACHE``, ``REPRO_CACHE_DIR``) are
parsed at import time by modules that *everything* imports, so a
garbage value must never break imports or silently flip behaviour:
unknown values warn (``RuntimeWarning``) and fall back to the default.
The determinism linter (``python -m repro.analysis.lint``, rule
``ENV001``) rejects raw ``os.environ`` reads anywhere else in
``src/repro`` — add a typed helper here instead of reading directly.
"""

from __future__ import annotations

import os
import typing as _t
import warnings

__all__ = ["env_choice", "env_flag", "env_int", "env_str"]

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def env_flag(name: str, default: bool) -> bool:
    """Parse the on/off env var ``name``; unset/empty → ``default``,
    garbage → ``RuntimeWarning`` + ``default``."""
    raw = os.environ.get(name, "")
    value = raw.strip().lower()
    if not value:
        return default
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    warnings.warn(
        f"ignoring {name}={raw!r}: expected one of "
        f"{sorted(_TRUE | _FALSE)}; using the default "
        f"({'on' if default else 'off'})", RuntimeWarning,
        stacklevel=2)
    return default


def env_str(name: str, default: str = "") -> str:
    """The raw (stripped) value of ``name``; unset/empty →
    ``default``.  For free-form values (paths) that have no invalid
    spellings — prefer the validating helpers where a vocabulary
    exists."""
    raw = os.environ.get(name, "").strip()
    return raw if raw else default


def env_int(name: str, default: int, *,
            minimum: _t.Optional[int] = None) -> int:
    """Parse the integer env var ``name``; unset/empty → ``default``,
    non-integers and values below ``minimum`` →
    ``RuntimeWarning`` + ``default``."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {name}={raw!r}: not an integer; using the "
            f"default ({default})", RuntimeWarning, stacklevel=2)
        return default
    if minimum is not None and value < minimum:
        warnings.warn(
            f"ignoring {name}={value}: must be >= {minimum}; using "
            f"the default ({default})", RuntimeWarning, stacklevel=2)
        return default
    return value


def env_choice(name: str, choices: _t.Sequence[str],
               default: str) -> str:
    """Parse an enumerated env var (lower-cased); unset/empty →
    ``default``, unknown values → ``RuntimeWarning`` + ``default``.
    ``choices`` is kept in documentation order in the warning."""
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    if raw in choices:
        return raw
    warnings.warn(
        f"ignoring {name}={raw!r}: expected one of "
        f"{', '.join(choices)}; using the default ({default!r})",
        RuntimeWarning, stacklevel=2)
    return default
