"""Defensive boolean environment switches.

The execution-toggle env vars (``REPRO_BATCHED``,
``REPRO_SECTION_BATCHING``, ``REPRO_TASK_POOLING`` — and, with its own
value set, ``REPRO_ENGINE``) are parsed at import time by modules that
*everything* imports, so a garbage value must never break imports or
silently flip behaviour: unknown values warn (``RuntimeWarning``) and
fall back to the default, the same discipline ``REPRO_WORKERS`` and
``REPRO_ENGINE`` established.
"""

from __future__ import annotations

import os
import warnings

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def env_flag(name: str, default: bool) -> bool:
    """Parse the on/off env var ``name``; unset/empty → ``default``,
    garbage → ``RuntimeWarning`` + ``default``."""
    raw = os.environ.get(name, "")
    value = raw.strip().lower()
    if not value:
        return default
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    warnings.warn(
        f"ignoring {name}={raw!r}: expected one of "
        f"{sorted(_TRUE | _FALSE)}; using the default "
        f"({'on' if default else 'off'})", RuntimeWarning,
        stacklevel=2)
    return default
