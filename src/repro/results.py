"""First-class results: :class:`RunResult` and :class:`ResultSet`.

The paper's artifacts are *comparisons* — native vs. SDR vs. intra
work-sharing across failure scenarios — so results need to be more than
loose dicts: a :class:`RunResult` binds one simulation outcome to the
:class:`~repro.scenarios.Scenario` that produced it, together with its
sweep-cache provenance (hit/miss and key), and round-trips through JSON
losslessly (numpy payloads included).  A :class:`ResultSet` is an
ordered, filterable, groupable collection of them — the common currency
of :func:`repro.sweep`, :func:`repro.compare`, the figure modules and
the CLI's ``--format json|csv`` output.

``RunResult`` subsumes the scenario layer's
:class:`~repro.scenarios.run.ModeRun` (same payload fields, same
semantics); ``ModeRun`` remains the *stored* type in the on-disk sweep
cache so cached bytes stay byte-identical across this API layer —
provenance is attached outside the cache boundary by the facade.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import typing as _t

import numpy as np

from .scenarios.failures import CrashEvent
from .scenarios.spec import Scenario
from .scenarios import spec as _spec

__all__ = ["RunResult", "ResultSet", "decode_payload", "encode_payload",
           "payload_equal"]


# ------------------------------------------------------- payload codec
def _np_encode(obj: _t.Any, recurse: _t.Callable[[_t.Any], _t.Any]
               ) -> _t.Any:
    """Scenario-codec extension: the two numpy cases, encode side."""
    if isinstance(obj, np.ndarray):
        return {"$ndarray": [obj.dtype.str, list(obj.shape),
                             obj.ravel(order="C").tolist()]}
    if isinstance(obj, np.generic):
        return {"$npscalar": [obj.dtype.str, obj.item()]}
    return NotImplemented


def _np_decode(obj: _t.Any, recurse: _t.Callable[[_t.Any], _t.Any]
               ) -> _t.Any:
    """Scenario-codec extension: the two numpy markers, decode side."""
    if isinstance(obj, dict):
        if set(obj) == {"$ndarray"}:
            dtype, shape, flat = obj["$ndarray"]
            return np.array(flat, dtype=np.dtype(dtype)).reshape(shape)
        if set(obj) == {"$npscalar"}:
            dtype, item = obj["$npscalar"]
            return np.dtype(dtype).type(item)
    return NotImplemented


def encode_payload(obj: _t.Any) -> _t.Any:
    """Lower an arbitrary result payload to plain JSON types, reversibly.

    The scenario codec (:func:`repro.scenarios.spec.encode_value` —
    one shared ``$kind`` marker vocabulary and implementation) extended
    with numpy arrays and scalars: application values (residuals,
    checksums, raw arrays from didactic examples) must survive a
    ``to_json``/``from_json`` round trip exactly.
    """
    return _spec.encode_value(obj, extension=_np_encode)


def decode_payload(obj: _t.Any) -> _t.Any:
    """Inverse of :func:`encode_payload`."""
    return _spec.decode_value(obj, extension=_np_decode)


def payload_equal(a: _t.Any, b: _t.Any) -> bool:
    """Exact structural equality, numpy-aware (``==`` on arrays yields
    arrays; this flattens that back to one bool, bit-exactly)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.shape == b.shape
                and bool(np.array_equal(a, b)))
    if isinstance(a, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(payload_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and set(a) == set(b)
                and all(payload_equal(v, b[k]) for k, v in a.items()))
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    return bool(a == b)


_MISSING = object()


# ------------------------------------------------------------ RunResult
@dataclasses.dataclass(eq=False)
class RunResult:
    """One simulation outcome, bound to the scenario that produced it.

    The payload fields (``mode``, ``wall_time``, ``timers``, ``intra``,
    ``value``, ``crashes``) carry exactly the semantics of the scenario
    layer's :class:`~repro.scenarios.run.ModeRun`; on top of those, a
    ``RunResult`` knows *which* :class:`~repro.scenarios.Scenario` ran
    and how the sweep cache treated it:

    ``cache_key``
        The scenario-hash key under which the result is (or would be)
        memoized on disk — ``None`` only for impure runs that bypass
        the cache (a ``before_run`` hook).
    ``cache_hit``
        ``True`` when the result was loaded from the cache (or deduped
        onto an equal point in the same sweep), ``False`` when it was
        freshly simulated, ``None`` when caching was disabled, so
        hit/miss is not meaningful.

    ``to_json``/``from_json`` round-trip losslessly, numpy payloads
    included.  Equality is numpy-aware full-field equality.

    A sweep run under ``on_error="return"`` may deliver a *failed*
    result (the point exhausted its retries): ``error`` then carries
    the structured failure description (kind, message, attempt count)
    and the payload fields are empty — check :attr:`ok` before trusting
    ``wall_time``/``value``.  Failed results are never cached.
    """

    scenario: Scenario
    mode: str
    #: max over ranks of the 'solve' region (app wall time)
    wall_time: float
    #: per-region wall time, averaged over ranks
    timers: _t.Dict[str, float]
    #: averaged intra-runtime statistics
    intra: _t.Dict[str, float]
    #: rank-0 application value (correctness payload)
    value: _t.Any
    #: the crash events the scenario's failure schedule materialized
    crashes: _t.Tuple[CrashEvent, ...] = ()
    cache_key: _t.Optional[str] = None
    cache_hit: _t.Optional[bool] = None
    #: ``None`` on success; "<kind>: <message> (N attempts)" on failure
    error: _t.Optional[str] = None

    @classmethod
    def from_mode_run(cls, run: _t.Any, scenario: Scenario,
                      cache_key: _t.Optional[str] = None,
                      cache_hit: _t.Optional[bool] = None) -> "RunResult":
        """Attach scenario + cache provenance to a scenario-layer
        :class:`~repro.scenarios.run.ModeRun` (the cached type)."""
        return cls(scenario=scenario, mode=run.mode,
                   wall_time=run.wall_time, timers=dict(run.timers),
                   intra=dict(run.intra), value=run.value,
                   crashes=tuple(run.crashes), cache_key=cache_key,
                   cache_hit=cache_hit)

    @classmethod
    def from_failure(cls, failure: _t.Any, scenario: Scenario,
                     cache_key: _t.Optional[str] = None) -> "RunResult":
        """A failed result from a sweep-layer
        :class:`~repro.perf.PointFailure` (the point exhausted its
        retries under ``on_error="return"``): empty payload, the
        failure summarized in :attr:`error`."""
        return cls(scenario=scenario, mode=scenario.mode, wall_time=0.0,
                   timers={}, intra={}, value=None, crashes=(),
                   cache_key=cache_key, cache_hit=False,
                   error=(f"{failure.kind}: {failure.error} "
                          f"({failure.attempts} attempt"
                          f"{'s' if failure.attempts != 1 else ''})"))

    # -------------------------------------------------------- accessors
    @property
    def ok(self) -> bool:
        """True unless this is a failed sweep point (see ``error``)."""
        return self.error is None

    @property
    def n_crashes(self) -> int:
        return len(self.crashes)

    def get(self, name: str, default: _t.Any = _MISSING) -> _t.Any:
        """Look ``name`` up on the result, then its scenario, then the
        scenario's config — the resolution order ``ResultSet.filter``
        and ``ResultSet.group_by`` use, so ``degree`` or ``config.nx``
        -style field names work without spelling the path out."""
        for obj in (self, self.scenario, self.scenario.config):
            if obj is None:
                continue
            try:
                return getattr(obj, name)
            except AttributeError:
                continue
        if default is _MISSING:
            raise AttributeError(
                f"{name!r} is neither a result, scenario nor config "
                f"field")
        return default

    def __eq__(self, other: _t.Any) -> bool:
        if not isinstance(other, RunResult):
            return NotImplemented
        return (self.scenario == other.scenario
                and self.mode == other.mode
                and self.wall_time == other.wall_time
                and self.timers == other.timers
                and self.intra == other.intra
                and payload_equal(self.value, other.value)
                and self.crashes == other.crashes
                and self.cache_key == other.cache_key
                and self.cache_hit == other.cache_hit
                and self.error == other.error)

    # ------------------------------------------------------- round-trip
    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Plain-JSON-types dict; :meth:`from_dict` is its exact
        inverse."""
        data = {
            "scenario": self.scenario.to_dict(),
            "mode": self.mode,
            "wall_time": self.wall_time,
            "timers": {k: self.timers[k] for k in sorted(self.timers)},
            "intra": {k: self.intra[k] for k in sorted(self.intra)},
            "value": encode_payload(self.value),
            "crashes": [list(ev.as_tuple()) for ev in self.crashes],
            "cache": {"key": self.cache_key, "hit": self.cache_hit},
        }
        if self.error is not None:   # successful dicts stay unchanged
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: _t.Mapping[str, _t.Any]) -> "RunResult":
        cache = data.get("cache") or {}
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            mode=data["mode"],
            wall_time=data["wall_time"],
            timers=dict(data["timers"]),
            intra=dict(data["intra"]),
            value=decode_payload(data["value"]),
            crashes=tuple(CrashEvent(int(r), int(p), float(at))
                          for r, p, at in data["crashes"]),
            cache_key=cache.get("key"),
            cache_hit=cache.get("hit"),
            error=data.get("error"))

    def to_json(self, **dumps_kw: _t.Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kw)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    # ----------------------------------------------------------- record
    #: flat-record columns always present, in order (before the sorted
    #: ``timer:*`` / ``intra:*`` columns)
    BASE_COLUMNS: _t.ClassVar[_t.Tuple[str, ...]] = (
        "app", "mode", "n_logical", "degree", "spread", "scheduler",
        "wall_time", "n_crashes", "cache_hit", "value")

    def record(self) -> _t.Dict[str, _t.Any]:
        """One flat row: the :data:`BASE_COLUMNS` plus a ``timer:<k>``
        and ``intra:<k>`` column per payload entry.  Non-scalar values
        flatten to ``None`` (CSV is the lossy path; use ``to_json`` for
        lossless)."""
        s = self.scenario
        value = self.value if isinstance(
            self.value, (int, float, str, bool, type(None))) else None
        row: _t.Dict[str, _t.Any] = {
            "app": s.app, "mode": self.mode, "n_logical": s.n_logical,
            "degree": s.degree, "spread": s.spread,
            "scheduler": s.scheduler, "wall_time": self.wall_time,
            "n_crashes": self.n_crashes, "cache_hit": self.cache_hit,
            "value": value,
        }
        if self.error is not None:  # column appears only on failed rows
            row["error"] = self.error
        for k in sorted(self.timers):
            row[f"timer:{k}"] = self.timers[k]
        for k in sorted(self.intra):
            row[f"intra:{k}"] = self.intra[k]
        return row

    def __repr__(self) -> str:  # keep huge payloads out of tracebacks
        if self.error is not None:
            return (f"RunResult({self.scenario.summary()}, "
                    f"FAILED: {self.error})")
        return (f"RunResult({self.scenario.summary()}, "
                f"wall_time={self.wall_time:.6g}, "
                f"crashes={self.n_crashes}, cache_hit={self.cache_hit})")


# ------------------------------------------------------------ ResultSet
class ResultSet(_t.Sequence["RunResult"]):
    """An ordered, filterable, groupable collection of
    :class:`RunResult`\\ s — what :func:`repro.sweep` and
    :func:`repro.compare` return, and what the reporting layer
    consumes.

    Behaves as an immutable sequence (index, slice, iterate, ``+``),
    with relational verbs::

        rs.filter(mode="intra")          # field match (result,
                                         # scenario or config fields)
        rs.filter(lambda r: r.wall_time < 1e-3)
        rs.group_by("degree")            # ordered {key: ResultSet}
        rs.records()                     # flat dict rows
        rs.to_json() / ResultSet.from_json(text)   # lossless
        rs.to_csv()                      # deterministic columns
    """

    def __init__(self, results: _t.Iterable[RunResult] = ()) -> None:
        self._results: _t.List[RunResult] = list(results)
        for r in self._results:
            if not isinstance(r, RunResult):
                raise TypeError(f"ResultSet holds RunResults, got "
                                f"{type(r).__name__}")

    # ------------------------------------------------- sequence protocol
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> _t.Iterator[RunResult]:
        return iter(self._results)

    @_t.overload
    def __getitem__(self, index: int) -> RunResult: ...

    @_t.overload
    def __getitem__(self, index: slice) -> "ResultSet": ...

    def __getitem__(self, index: _t.Union[int, slice]
                    ) -> "_t.Union[RunResult, ResultSet]":
        if isinstance(index, slice):
            return ResultSet(self._results[index])
        return self._results[index]

    def __add__(self, other: "ResultSet") -> "ResultSet":
        if not isinstance(other, ResultSet):
            return NotImplemented
        return ResultSet(self._results + other._results)

    def __eq__(self, other: _t.Any) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._results == other._results

    def __repr__(self) -> str:
        modes = [r.mode for r in self._results[:6]]
        more = "..." if len(self) > 6 else ""
        return f"ResultSet({len(self)} results: {modes}{more})"

    # -------------------------------------------------- relational verbs
    def filter(self, pred: _t.Optional[_t.Callable[[RunResult], bool]]
               = None, **fields: _t.Any) -> "ResultSet":
        """Results matching the predicate and every ``field=value``
        (fields resolve through :meth:`RunResult.get`, so scenario and
        config fields match too; missing fields never match)."""
        absent = object()

        def keep(r: RunResult) -> bool:
            if pred is not None and not pred(r):
                return False
            for name, want in fields.items():
                got = r.get(name, absent)
                if got is absent or not payload_equal(got, want):
                    return False
            return True
        return ResultSet(r for r in self._results if keep(r))

    def group_by(self, key: _t.Union[str, _t.Callable[[RunResult],
                                                      _t.Any]]
                 ) -> "_t.Dict[_t.Any, ResultSet]":
        """Ordered mapping of group key → :class:`ResultSet`, grouped
        by a field name (via :meth:`RunResult.get`) or a callable;
        groups appear in first-occurrence order."""
        fn = key if callable(key) else (lambda r: r.get(key, None))
        groups: _t.Dict[_t.Any, _t.List[RunResult]] = {}
        for r in self._results:
            groups.setdefault(fn(r), []).append(r)
        return {k: ResultSet(v) for k, v in groups.items()}

    def scenarios(self) -> _t.List[Scenario]:
        return [r.scenario for r in self._results]

    def records(self) -> _t.List[_t.Dict[str, _t.Any]]:
        """One flat dict per result (see :meth:`RunResult.record`)."""
        return [r.record() for r in self._results]

    def columns(self) -> _t.List[str]:
        """Deterministic column order for tabular output: the base
        columns, then the sorted union of ``timer:*`` / ``intra:*``
        columns over all results (plus ``error``, only when some result
        failed — all-success sets keep their historical header)."""
        extra: _t.Set[str] = set()
        for r in self._results:
            if r.error is not None:
                extra.add("error")
            extra.update(f"timer:{k}" for k in r.timers)
            extra.update(f"intra:{k}" for k in r.intra)
        return list(RunResult.BASE_COLUMNS) + sorted(extra)

    # ------------------------------------------------------- round-trip
    def to_json(self, **dumps_kw: _t.Any) -> str:
        return json.dumps([r.to_dict() for r in self._results],
                          sort_keys=True, **dumps_kw)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls(RunResult.from_dict(d) for d in json.loads(text))

    def to_csv(self) -> str:
        """CSV with the deterministic :meth:`columns` header; cells
        missing on a row render empty, floats render via ``repr`` (so
        they round-trip through ``float()``)."""
        cols = self.columns()
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(cols)
        for rec in self.records():
            # float() first: np.float64 IS-A float but (numpy >= 2)
            # reprs as 'np.float64(...)', which float() cannot read back
            writer.writerow(["" if rec.get(c) is None
                             else repr(float(rec[c]))
                             if isinstance(rec[c], float)
                             else rec[c] for c in cols])
        return buf.getvalue()
