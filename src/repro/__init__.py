"""repro — reproduction of *Efficient Process Replication for MPI
Applications: Sharing Work Between Replicas* (Ropars, Lefray, Kim,
Schiper — IPDPS 2015).

The package implements the paper's contribution, **intra-
parallelization** (work sharing between the replicas of a logical MPI
process), together with every substrate it needs, on a deterministic
discrete-event simulation of the paper's testbed.

Public API (the facade — see ``docs/api.md`` for the tour)::

    import repro

    result = repro.run("fig5b:p16:intra", degree=3)   # RunResult
    result.wall_time, result.cache_hit, result.to_json()

    rs = repro.compare("example:hpccg")               # ResultSet
    rs.filter(mode="intra")[0].wall_time

    for r in repro.iter_sweep(["fig5a:ddot:native",
                               "fig5a:ddot:intra"]):  # streaming
        print(r.scenario.mode, r.wall_time)

Subsystems (importable lazily as ``repro.<name>``):

========================  ====================================================
``repro.simulate``        deterministic discrete-event kernel (S1)
``repro.netmodel``        machine roofline, LogGP network, topology (S2-S4)
``repro.mpi``             simulated MPI: p2p, collectives, launcher (S5)
``repro.replication``     SDR-MPI-style active replication + failures (S6)
``repro.intra``           the paper's contribution: sections/tasks (S7)
``repro.kernels``         waxpby/ddot/spmv/stencil/PIC + cost models (S8)
``repro.apps``            HPCCG, MiniGhost, GTC, AMG2013-like (S9-S12)
``repro.analysis``        efficiency metric, cCR & MNFTI models (S13)
``repro.experiments``     per-figure reproduction harness + CLI (S14)
``repro.scenarios``       declarative scenario layer (S15)
``repro.perf``            parallel sweep driver + result cache (S16)
``repro.api``             the versioned public facade (S17)
``repro.fabric``          distributed sweep fabric: stores, queue,
                          workers, result service (S18)
========================  ====================================================

Stability policy (semantic versioning on ``__version__``):

* **Stable** — everything in ``__all__`` (the facade functions,
  ``RunResult``/``ResultSet``/``Scenario``) and the documented members
  of the subsystem modules listed above.  Breaking changes bump the
  major version; deprecated entry points warn (once per process) for at
  least one minor release before removal.
* **Internal** — underscore-prefixed names and anything not documented
  in ``docs/``; may change without notice.
* **Cache compatibility** — on-disk sweep results are keyed by scenario
  hash and ``repro.perf.CACHE_VERSION``; API-layer releases never
  silently re-key or rewrite cached bytes (model changes bump
  ``CACHE_VERSION`` instead).

The surface is pinned in ``tools/public_api.txt`` and enforced by
``make api-check``.
"""

from __future__ import annotations

import importlib
import typing as _t

__version__ = "1.5.0"

#: lazily-importable subsystem modules
_SUBSYSTEMS = ("analysis", "api", "apps", "experiments", "fabric",
               "intra", "kernels", "mpi", "netmodel", "perf",
               "replication", "results", "scenarios", "simulate")

#: facade callables re-exported from :mod:`repro.api`
_FACADE = ("compare", "iter_sweep", "run", "scenario", "sweep")

#: result/spec types and engine toggles re-exported at the top level
_TYPES = {"RunResult": "results", "ResultSet": "results",
          "Scenario": "scenarios", "RestartPolicy": "scenarios",
          "GridFamily": "scenarios", "register_grid": "scenarios",
          "grid_names": "scenarios",
          "PointFailure": "perf",
          "Fabric": "fabric", "FabricClient": "fabric",
          "get_engine_backend": "simulate",
          "set_engine_backend": "simulate"}

__all__ = sorted(("__version__",) + _SUBSYSTEMS + _FACADE
                 + tuple(_TYPES))

if _t.TYPE_CHECKING:  # pragma: no cover - static import surface
    from . import (analysis, api, apps, experiments, fabric, intra,
                   kernels, mpi, netmodel, perf, replication, results,
                   scenarios, simulate)
    from .api import compare, iter_sweep, run, scenario, sweep
    from .fabric import Fabric, FabricClient
    from .perf import PointFailure
    from .results import ResultSet, RunResult
    from .scenarios import (GridFamily, RestartPolicy, Scenario,
                            grid_names, register_grid)
    from .simulate import get_engine_backend, set_engine_backend


def __getattr__(name: str) -> _t.Any:
    # PEP 562: the facade and the subsystems resolve on first access,
    # so `import repro` stays cheap and cycle-free.
    if name in _FACADE:
        value = getattr(importlib.import_module(".api", __name__), name)
    elif name in _TYPES:
        value = getattr(
            importlib.import_module(f".{_TYPES[name]}", __name__), name)
    elif name in _SUBSYSTEMS:
        value = importlib.import_module(f".{name}", __name__)
    else:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    globals()[name] = value   # cache: __getattr__ runs once per name
    return value


def __dir__() -> _t.List[str]:
    return sorted(set(__all__) | set(globals()))
