"""repro — reproduction of *Efficient Process Replication for MPI
Applications: Sharing Work Between Replicas* (Ropars, Lefray, Kim,
Schiper — IPDPS 2015).

The package implements the paper's contribution, **intra-
parallelization** (work sharing between the replicas of a logical MPI
process), together with every substrate it needs, on a deterministic
discrete-event simulation of the paper's testbed:

========================  ====================================================
``repro.simulate``        deterministic discrete-event kernel (S1)
``repro.netmodel``        machine roofline, LogGP network, topology (S2-S4)
``repro.mpi``             simulated MPI: p2p, collectives, launcher (S5)
``repro.replication``     SDR-MPI-style active replication + failures (S6)
``repro.intra``           the paper's contribution: sections/tasks (S7)
``repro.kernels``         waxpby/ddot/spmv/stencil/PIC + cost models (S8)
``repro.apps``            HPCCG, MiniGhost, GTC, AMG2013-like (S9-S12)
``repro.analysis``        efficiency metric, cCR & MNFTI models (S13)
``repro.experiments``     per-figure reproduction harness (S14)
========================  ====================================================

Quick taste (see ``examples/quickstart.py`` for the full version)::

    from repro.intra import (Intra_Section_begin, Intra_Section_end,
                             Intra_Task_register, Intra_Task_launch,
                             Tag, launch_mode)
    from repro.mpi import MpiWorld
    from repro.netmodel import Cluster, GRID5000_MACHINE, GRID5000_NETWORK

    def program(ctx, comm):
        Intra_Section_begin(ctx)
        tid = Intra_Task_register(ctx, my_kernel, [Tag.IN, Tag.OUT],
                                  cost=my_cost)
        Intra_Task_launch(ctx, tid, [x, w])
        yield from Intra_Section_end(ctx)

    world = MpiWorld(Cluster(4, GRID5000_MACHINE), GRID5000_NETWORK)
    job = launch_mode("intra", world, program, n_logical=4)
    world.run()
"""

__version__ = "1.0.0"

from . import (analysis, apps, experiments, intra, kernels, mpi, netmodel,
               replication, simulate)

__all__ = ["analysis", "apps", "experiments", "intra", "kernels", "mpi",
           "netmodel", "replication", "simulate", "__version__"]
