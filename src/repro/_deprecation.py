"""Warn-once plumbing for the deprecation shims of the v1 API.

Every legacy entry point that the :mod:`repro.api` facade replaces
calls :func:`warn_once` and then delegates; the warning fires exactly
once per process per entry point (not once per call), so a sweep that
loops over a shim does not flood stderr.  ``reset()`` exists for tests
that need to observe the first-call warning again.
"""

from __future__ import annotations

import typing as _t
import warnings

_WARNED: _t.Set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is
    seen in this process; later calls are silent.  Returns True when
    the warning fired."""
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset(key: _t.Optional[str] = None) -> None:
    """Forget warn-once state (all keys, or just ``key``) — test use."""
    if key is None:
        _WARNED.clear()
    else:
        _WARNED.discard(key)
