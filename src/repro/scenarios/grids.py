"""Lazy parametric scenario grids — the registry at catalog scale.

The named registry (:mod:`repro.scenarios.registry`) enumerates every
hand-registered point eagerly, which is right for ~70 curated figure
points and wrong for systematic coverage: a failure-universe sweep over
six schedule kinds, 64 seeds and three detection delays is 1152
scenarios nobody should hand-register (and ``list`` should not pay
for).  A :class:`GridFamily` registers a *generator* instead: an
ordered set of axes (each a small finite value set) plus a ``build``
function mapping one point of the cross product to a
:class:`~repro.scenarios.spec.Scenario`.

Registration and listing stay O(1) in the number of points — nothing
is materialized until a specific point is addressed:

``grid:<family>/<axis>=<value>,<axis>=<value>``

e.g. ``grid:failures/kind=poisson,seed=17,fd=5e-05``.  These names
resolve everywhere registry names do — ``repro.scenario(...)``,
``repro.run(...)``, ``python -m repro.experiments run`` — via the
registry's lookup path, and mistyped families/axes/values raise
:class:`~repro.scenarios.registry.UnknownScenarioError` with
did-you-mean suggestions just like plain names.

Point ordering is deterministic (axes in declaration order, the last
axis varying fastest), so ``point_names()`` is a stable enumeration for
sampling and differential testing (see ``tests/differential/``), and a
point's name is a pure function of its axis values — the same
addressing contract as the registry, so grid points cache under
scenario hashes exactly like named scenarios.
"""

from __future__ import annotations

import dataclasses
import difflib
import itertools
import math
import typing as _t

from .registry import RegisteredScenario, UnknownScenarioError
from .spec import Scenario

#: the registry-namespace prefix of every grid point name
GRID_PREFIX = "grid:"

#: axis values must format to unambiguous name tokens
AxisValue = _t.Union[bool, int, float, str]

#: characters that would break ``axis=value,axis=value`` parsing
_FORBIDDEN = set(",=/ \t\n")


def format_axis_value(value: AxisValue) -> str:
    """The name token of one axis value (exact: ``float`` via ``repr``
    so tokens round-trip bit-exactly; ``bool`` before ``int`` since
    ``True`` IS-An ``int``)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if not value or _FORBIDDEN & set(value):
            raise ValueError(
                f"string axis value {value!r} cannot appear in a grid "
                f"point name (empty, or contains one of , = / or "
                f"whitespace)")
        return value
    raise TypeError(f"grid axis values must be bool/int/float/str, got "
                    f"{type(value).__name__} ({value!r})")


@dataclasses.dataclass(frozen=True)
class GridFamily:
    """One registered lazy grid: axes × build function.

    Attributes
    ----------
    name:
        Family name (the part between ``grid:`` and ``/``).
    axes:
        Ordered ``(axis_name, (value, ...))`` pairs; the point space is
        their cross product, enumerated with the last axis varying
        fastest.
    build:
        ``build(**{axis: value})`` → :class:`Scenario`; called only
        when a point is actually addressed (must be pure — the point
        name is the identity, the scenario hash is the cache key).
    description:
        One-liner for ``list`` output.
    """

    name: str
    axes: _t.Tuple[_t.Tuple[str, _t.Tuple[AxisValue, ...]], ...]
    build: _t.Callable[..., Scenario]
    description: str = ""

    # ------------------------------------------------------ shape (O(1))
    @property
    def size(self) -> int:
        """Number of addressable points (no expansion)."""
        return math.prod(len(vals) for _n, vals in self.axes)

    @property
    def axis_names(self) -> _t.Tuple[str, ...]:
        return tuple(n for n, _v in self.axes)

    def summary(self) -> str:
        """The ``list`` display form: address shape + point count."""
        return (f"{GRID_PREFIX}{self.name}/"
                f"<{','.join(self.axis_names)}>")

    # ------------------------------------------------------- enumeration
    def point_ids(self) -> _t.Iterator[str]:
        """Canonical point ids, lazily, in deterministic order."""
        names = self.axis_names
        for combo in itertools.product(*(v for _n, v in self.axes)):
            yield ",".join(f"{n}={format_axis_value(v)}"
                           for n, v in zip(names, combo))

    def point_names(self) -> _t.Iterator[str]:
        """Full registry-addressable names, lazily, in order."""
        for pid in self.point_ids():
            yield f"{GRID_PREFIX}{self.name}/{pid}"

    def first_point_name(self) -> str:
        """The first addressable point (cheap — used in suggestions)."""
        return next(self.point_names())

    # ------------------------------------------------------- addressing
    def point_name(self, **values: AxisValue) -> str:
        """The canonical full name of the point at ``values`` (every
        axis must be given a declared value)."""
        resolved = self._check_values(values)
        pid = ",".join(f"{n}={format_axis_value(resolved[n])}"
                       for n in self.axis_names)
        return f"{GRID_PREFIX}{self.name}/{pid}"

    def point(self, **values: AxisValue) -> Scenario:
        """Materialize the point at ``values``."""
        return self._build(self._check_values(values))

    def materialize(self, point_id: str) -> Scenario:
        """Materialize the point addressed by ``point_id`` (the part
        after the ``/``); raises :class:`UnknownScenarioError` with a
        corrected-candidate suggestion on any unknown axis or value."""
        return self._build(self._parse_id(point_id))

    # --------------------------------------------------------- internals
    def _tokens(self) -> _t.Dict[str, _t.Dict[str, AxisValue]]:
        """Per-axis ``token -> value`` tables (small; rebuilt on use)."""
        return {n: {format_axis_value(v): v for v in vals}
                for n, vals in self.axes}

    def _check_values(self, values: _t.Mapping[str, AxisValue]
                      ) -> _t.Dict[str, AxisValue]:
        declared = dict(self.axes)
        unknown = set(values) - set(declared)
        if unknown:
            raise UnknownScenarioError(
                f"{GRID_PREFIX}{self.name}/<{sorted(unknown)}>",
                [self.first_point_name()])
        missing = set(declared) - set(values)
        if missing:
            raise ValueError(f"grid {self.name!r} point needs every "
                             f"axis; missing: {sorted(missing)}")
        out: _t.Dict[str, AxisValue] = {}
        for axis, value in values.items():
            token = format_axis_value(value)
            table = {format_axis_value(v): v for v in declared[axis]}
            if token not in table:
                raise ValueError(
                    f"grid {self.name!r} axis {axis!r} has no value "
                    f"{value!r}; declared values: "
                    f"{', '.join(table)}")
            out[axis] = table[token]
        return out

    def _parse_id(self, point_id: str) -> _t.Dict[str, AxisValue]:
        full = f"{GRID_PREFIX}{self.name}/{point_id}"
        tables = self._tokens()
        values: _t.Dict[str, AxisValue] = {}
        for part in point_id.split(","):
            axis, sep, token = part.partition("=")
            if not sep:
                raise UnknownScenarioError(
                    full, [self.first_point_name()])
            if axis not in tables:
                raise UnknownScenarioError(
                    full, self._suggest_corrected(point_id))
            if token not in tables[axis]:
                raise UnknownScenarioError(
                    full, self._suggest_corrected(point_id))
            values[axis] = tables[axis][token]
        if set(values) != set(tables):
            raise UnknownScenarioError(full, self._suggest_corrected(
                point_id))
        return values

    def _suggest_corrected(self, point_id: str) -> _t.List[str]:
        """A did-you-mean candidate: each token fuzzy-corrected against
        the declared axes/values, missing axes filled with their first
        value — always a real, addressable point name."""
        tables = self._tokens()
        corrected: _t.Dict[str, str] = {}
        for part in point_id.split(","):
            axis, _sep, token = part.partition("=")
            if axis not in tables:
                close = difflib.get_close_matches(axis, list(tables),
                                                  n=1, cutoff=0.4)
                if not close:
                    continue
                axis = close[0]
            tokens = list(tables[axis])
            if token in tokens:
                corrected[axis] = token
            else:
                close = difflib.get_close_matches(token, tokens, n=1,
                                                  cutoff=0.3)
                corrected[axis] = close[0] if close else tokens[0]
        pid = ",".join(
            f"{n}={corrected.get(n, format_axis_value(vals[0]))}"
            for n, vals in self.axes)
        return [f"{GRID_PREFIX}{self.name}/{pid}"]

    def _build(self, values: _t.Dict[str, AxisValue]) -> Scenario:
        scenario = self.build(**values)
        if not isinstance(scenario, Scenario):
            raise TypeError(
                f"grid {self.name!r} build returned "
                f"{type(scenario).__name__}, expected a Scenario")
        return scenario


_GRIDS: _t.Dict[str, GridFamily] = {}


def register_grid(name: str,
                  axes: _t.Union[_t.Mapping[str, _t.Sequence[AxisValue]],
                                 _t.Sequence[_t.Tuple[str,
                                                      _t.Sequence[AxisValue]]]],
                  build: _t.Callable[..., Scenario],
                  description: str = "",
                  overwrite: bool = False) -> GridFamily:
    """Register a lazy grid family; O(1) — no point is materialized.

    ``axes`` is an ordered mapping (or sequence of pairs) of axis name
    → finite value sequence; ``build(**values)`` must return a
    :class:`Scenario` and be pure.  Re-registering an identical family
    is a no-op (import-time registration safety); a conflicting
    re-registration requires ``overwrite=True``.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("grid family name must be a non-empty string")
    bad = _FORBIDDEN | {":"}
    if bad & set(name):
        raise ValueError(f"grid family name {name!r} may not contain "
                         f"any of , = / : or whitespace")
    pairs = tuple(axes.items()) if isinstance(axes, _t.Mapping) \
        else tuple(axes)
    if not pairs:
        raise ValueError("a grid family needs at least one axis")
    norm: _t.List[_t.Tuple[str, _t.Tuple[AxisValue, ...]]] = []
    for axis, vals in pairs:
        if not isinstance(axis, str) or not axis or _FORBIDDEN & set(axis):
            raise ValueError(f"bad axis name {axis!r}")
        vals = tuple(vals)
        if not vals:
            raise ValueError(f"axis {axis!r} has no values")
        tokens = [format_axis_value(v) for v in vals]
        if len(set(tokens)) != len(tokens):
            raise ValueError(f"axis {axis!r} values collide after "
                             f"formatting: {tokens}")
        norm.append((axis, vals))
    if len({a for a, _v in norm}) != len(norm):
        raise ValueError("duplicate axis names")
    family = GridFamily(name=name, axes=tuple(norm), build=build,
                        description=description)
    old = _GRIDS.get(name)
    if old is not None and old != family and not overwrite:
        raise ValueError(f"grid family {name!r} is already registered "
                         f"with a different spec")
    _GRIDS[name] = family
    return family


def grid_names() -> _t.List[str]:
    """All registered family names, sorted (O(families))."""
    return sorted(_GRIDS)


def grid_entries() -> _t.List[GridFamily]:
    """All registered families, sorted by name."""
    return [_GRIDS[n] for n in grid_names()]


def get_grid(name: str) -> GridFamily:
    """The family registered under ``name`` (bare, or with the
    ``grid:`` prefix); raises :class:`UnknownScenarioError` with a
    did-you-mean suggestion."""
    bare = name[len(GRID_PREFIX):] if name.startswith(GRID_PREFIX) \
        else name
    bare = bare.split("/", 1)[0]
    family = _GRIDS.get(bare)
    if family is None:
        raise UnknownScenarioError(name, _suggest_families(bare))
    return family


def total_grid_points() -> int:
    """Addressable points across all families (no expansion)."""
    return sum(f.size for f in _GRIDS.values())


def is_grid_name(name: str) -> bool:
    """Whether ``name`` addresses the grid namespace."""
    return name.startswith(GRID_PREFIX)


def resolve_grid(name: str) -> Scenario:
    """Materialize the scenario addressed by a full
    ``grid:family/point`` name."""
    return grid_entry(name).scenario


def grid_entry(name: str) -> RegisteredScenario:
    """The registry-entry view of one grid point (the registry's
    lookup path routes ``grid:*`` names here)."""
    rest = name[len(GRID_PREFIX):]
    family_name, sep, point_id = rest.partition("/")
    family = _GRIDS.get(family_name)
    if family is None:
        raise UnknownScenarioError(name, _suggest_families(family_name))
    if not sep or not point_id:
        # a family without a point: suggest the addressing shape
        raise UnknownScenarioError(
            name, [family.first_point_name()])
    scenario = family.materialize(point_id)
    desc = family.description or family.summary()
    return RegisteredScenario(name, scenario, f"{desc} [generated]")


def suggestion_candidates() -> _t.List[str]:
    """One representative addressable name per family — merged into
    :func:`repro.scenarios.registry.suggest_names` candidates so typos
    near the grid namespace surface real grid addresses."""
    return [f.first_point_name() for f in grid_entries()]


def _suggest_families(bare: str) -> _t.List[str]:
    close = difflib.get_close_matches(bare, list(_GRIDS), n=3,
                                      cutoff=0.4)
    return [_GRIDS[n].first_point_name() for n in close]
