"""Named scenario registry.

Every paper figure point and every example registers its scenario here
(figure modules register at import; examples through
:mod:`repro.scenarios.catalog`), making the full configuration space
discoverable (``python -m repro.experiments --list``) and runnable /
overridable by name (``python -m repro.experiments run
fig5b:p16:intra --set degree=3``).
"""

from __future__ import annotations

import dataclasses
import difflib
import typing as _t

from .spec import Scenario


@dataclasses.dataclass(frozen=True)
class RegisteredScenario:
    """One registry entry."""

    name: str
    scenario: Scenario
    description: str = ""


class UnknownScenarioError(KeyError):
    """Lookup of a name that is not registered; carries suggestions."""

    def __init__(self, name: str, suggestions: _t.Sequence[str] = ()):
        self.name = name
        self.suggestions = list(suggestions)
        msg = f"unknown scenario {name!r}"
        if self.suggestions:
            msg += f"; did you mean: {', '.join(self.suggestions)}?"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError quotes its arg; keep it plain
        return str(self.args[0])


_REGISTRY: _t.Dict[str, RegisteredScenario] = {}


def register_scenario(name: str, scenario: Scenario,
                      description: str = "",
                      overwrite: bool = False) -> RegisteredScenario:
    """Register ``scenario`` under ``name``.

    Re-registering an identical (scenario, description) pair is a no-op
    so modules can register at import time without double-import
    hazards; conflicting re-registration requires ``overwrite=True``.
    """
    if not isinstance(scenario, Scenario):
        raise TypeError("register_scenario expects a Scenario")
    entry = RegisteredScenario(name, scenario, description)
    old = _REGISTRY.get(name)
    if old is not None and old != entry and not overwrite:
        raise ValueError(f"scenario {name!r} is already registered with "
                         f"a different spec")
    _REGISTRY[name] = entry
    return entry


def get_scenario(name: str) -> Scenario:
    """The scenario registered under ``name`` — or lazily materialized
    from a generated grid for ``grid:family/point`` names; raises
    :class:`UnknownScenarioError` (with close-match suggestions)."""
    return get_entry(name).scenario


def get_entry(name: str) -> RegisteredScenario:
    if name.startswith("grid:"):
        # Lazy namespace: grid points materialize on demand and are
        # never stored here, so the registry stays O(1) in grid size.
        from . import grids
        return grids.grid_entry(name)
    entry = _REGISTRY.get(name)
    if entry is None:
        raise UnknownScenarioError(name, suggest_names(name))
    return entry


def scenario_names() -> _t.List[str]:
    """All *eagerly* registered names, sorted.  Generated grid points
    (the ``grid:`` namespace, :mod:`repro.scenarios.grids`) are
    addressable through :func:`get_scenario` but deliberately not
    enumerated here — listing stays O(registered), not O(points)."""
    return sorted(_REGISTRY)


def scenario_entries() -> _t.List[RegisteredScenario]:
    """All entries, sorted by name."""
    return [_REGISTRY[n] for n in scenario_names()]


def find_scenario_name(scenario: Scenario) -> _t.Optional[str]:
    """The name under which an equal scenario is registered, if any."""
    for name in scenario_names():
        if _REGISTRY[name].scenario == scenario:
            return name
    return None


def suggest_names(name: str, limit: int = 3,
                  extra: _t.Iterable[str] = ()) -> _t.List[str]:
    """Close matches for a mistyped name, over the registry, any
    ``extra`` candidate names (e.g. experiment names) and one
    representative point per generated grid family."""
    from . import grids
    candidates = (list(_REGISTRY) + list(extra)
                  + grids.suggestion_candidates())
    return difflib.get_close_matches(name, candidates, n=limit,
                                     cutoff=0.45)
