"""Declarative failure schedules for scenarios.

The paper's evaluation is failure-free; its §VI discussion (and every
workload PR built on this layer) needs *reproducible* failure patterns.
A :class:`FailureSchedule` is a frozen value object a
:class:`~repro.scenarios.spec.Scenario` carries: it declares *when*
replicas crash and *which* ones, without touching a live simulation.
``materialize(n_logical, degree)`` expands it to concrete
:class:`CrashEvent`\\ s — a pure function of the schedule (stochastic
schedules derive everything from their seed), so the same scenario
yields the same crashes in every process, on every host.

Hierarchy:

* :class:`NoFailures` — the failure-free runs of the paper's figures;
* :class:`FixedFailures` — explicit ``(logical_rank, replica_id, time)``
  crash times (the §VI restart/efficiency studies);
* :class:`PoissonFailures` — seeded homogeneous Poisson arrivals, each
  killing a random (or tagged) replica, in the spirit of the
  inhomogeneous-Poisson simulation toolkits of PAPERS.md;
* :class:`WeibullFailures` — seeded Weibull inter-arrival times, the
  standard HPC failure-trace model (infant mortality / wear-out).

Installation is uniform: the scenario runner hands the materialized
events to :meth:`repro.replication.FailureInjector.apply`, which
schedules the crash-stop kills on the
:class:`~repro.replication.manager.ReplicationManager`'s
:class:`~repro.replication.failures.HookBus`-instrumented machinery.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """One materialized crash: replica ``replica_id`` of logical rank
    ``logical_rank`` dies (crash-stop) at virtual ``time``."""

    logical_rank: int
    replica_id: int
    time: float

    def as_tuple(self) -> _t.Tuple[int, int, float]:
        return (self.logical_rank, self.replica_id, self.time)


#: kind tag → schedule class (populated by ``_schedule_kind``)
SCHEDULE_KINDS: _t.Dict[str, type] = {}


def _schedule_kind(kind: str):
    """Class decorator registering a schedule under its ``kind`` tag."""

    def wrap(cls):
        cls.kind = kind
        SCHEDULE_KINDS[kind] = cls
        return cls

    return wrap


@dataclasses.dataclass(frozen=True)
class FailureSchedule:
    """Base class: a declarative, hashable description of crash-stop
    failures to inject into a replicated run."""

    kind: _t.ClassVar[str] = "abstract"

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        """Concrete crash events for a job of ``n_logical`` logical
        ranks with ``degree`` replicas each.  Deterministic: equal
        schedules (same seed) produce equal events."""
        raise NotImplementedError

    # ------------------------------------------------------ round-trip
    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Plain-JSON representation (``{"kind": ..., ...fields}``)."""
        out: _t.Dict[str, _t.Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            out[f.name] = _encode_field(getattr(self, f.name))
        return out

    @staticmethod
    def from_dict(data: _t.Mapping[str, _t.Any]) -> "FailureSchedule":
        """Inverse of :meth:`to_dict`; dispatches on ``kind``."""
        data = dict(data)
        kind = data.pop("kind", None)
        cls = SCHEDULE_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown failure-schedule kind {kind!r}; expected one "
                f"of {sorted(SCHEDULE_KINDS)}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown fields for {kind!r} schedule: "
                             f"{sorted(unknown)}")
        return cls(**{k: _decode_field(cls, k, v) for k, v in data.items()})


def _encode_field(value: _t.Any) -> _t.Any:
    if isinstance(value, CrashEvent):
        return list(value.as_tuple())
    if isinstance(value, tuple):
        return [_encode_field(v) for v in value]
    return value


def _decode_field(cls: type, name: str, value: _t.Any) -> _t.Any:
    if name == "events" and value is not None:
        return tuple(CrashEvent(int(e[0]), int(e[1]), float(e[2]))
                     for e in value)
    if name == "targets" and value is not None:
        return tuple((int(l), int(r)) for l, r in value)
    if isinstance(value, list):
        return tuple(value)
    return value


@_schedule_kind("none")
@dataclasses.dataclass(frozen=True)
class NoFailures(FailureSchedule):
    """The failure-free schedule (the paper's §V evaluation)."""

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        return ()


#: shared default instance (schedules are immutable values)
NO_FAILURES = NoFailures()


@_schedule_kind("fixed")
@dataclasses.dataclass(frozen=True)
class FixedFailures(FailureSchedule):
    """Crashes at explicit virtual times.

    ``events`` is a tuple of :class:`CrashEvent` (or ``(lrank, rid,
    time)`` triples, normalised at construction)."""

    events: _t.Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        norm = tuple(ev if isinstance(ev, CrashEvent)
                     else CrashEvent(int(ev[0]), int(ev[1]), float(ev[2]))
                     for ev in self.events)
        object.__setattr__(self, "events", norm)
        for ev in norm:
            if ev.logical_rank < 0 or ev.replica_id < 0 or ev.time < 0:
                raise ValueError(f"invalid crash event {ev}")

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        for ev in self.events:
            if not (0 <= ev.logical_rank < n_logical):
                raise ValueError(
                    f"crash event {ev} targets logical rank outside "
                    f"[0, {n_logical})")
            if not (0 <= ev.replica_id < degree):
                raise ValueError(
                    f"crash event {ev} targets replica outside "
                    f"[0, {degree})")
        return tuple(sorted(self.events, key=lambda e: e.time))


@dataclasses.dataclass(frozen=True)
class _SeededArrivals(FailureSchedule):
    """Shared machinery for stochastic schedules: seeded arrival process
    + deterministic victim selection.

    ``targets`` restricts victims to tagged ``(logical_rank,
    replica_id)`` replicas; ``None`` targets any replica.  By default at
    least one replica of every logical rank is spared
    (``spare_last=True``), so the job always completes — set it to
    ``False`` to study logical-rank wipe-outs.
    """

    seed: int = 0
    horizon: float = 0.0           #: arrivals strictly before this time
    start: float = 0.0             #: arrivals begin after this time
    max_failures: _t.Optional[int] = None
    targets: _t.Optional[_t.Tuple[_t.Tuple[int, int], ...]] = None
    spare_last: bool = True

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.horizon <= self.start:
            raise ValueError(
                "horizon must be > start (a stochastic schedule with an "
                "empty arrival window would silently inject nothing)")
        if self.targets is not None:
            object.__setattr__(
                self, "targets",
                tuple((int(l), int(r)) for l, r in self.targets))

    def _inter_arrival(self, rng: random.Random) -> float:
        raise NotImplementedError

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        rng = random.Random(self.seed)
        alive = {(l, r) for l in range(n_logical) for r in range(degree)}
        if self.targets is None:
            pool: _t.Set[_t.Tuple[int, int]] = set(alive)
        else:
            pool = set(self.targets)
            stray = pool - alive
            if stray:
                raise ValueError(
                    f"tagged targets {sorted(stray)} outside the job "
                    f"({n_logical} logical ranks x degree {degree})")
        events: _t.List[CrashEvent] = []
        t = self.start
        limit = (len(pool) if self.max_failures is None
                 else min(self.max_failures, len(pool)))
        while len(events) < limit:
            t += self._inter_arrival(rng)
            if t >= self.horizon:
                break
            eligible = sorted(
                p for p in pool & alive
                if not self.spare_last
                or sum(1 for q in alive if q[0] == p[0]) > 1)
            if not eligible:
                break
            victim = eligible[rng.randrange(len(eligible))]
            alive.discard(victim)
            events.append(CrashEvent(victim[0], victim[1], t))
        return tuple(events)


@_schedule_kind("poisson")
@dataclasses.dataclass(frozen=True)
class PoissonFailures(_SeededArrivals):
    """Homogeneous Poisson failure arrivals: exponential inter-arrival
    times with rate ``rate`` (failures per second of virtual time), each
    arrival killing one random (or tagged) replica."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def _inter_arrival(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)


@_schedule_kind("weibull")
@dataclasses.dataclass(frozen=True)
class WeibullFailures(_SeededArrivals):
    """Weibull inter-arrival times (``scale`` in virtual seconds,
    ``shape`` < 1 models the infant-mortality regime of HPC failure
    traces; ``shape`` = 1 degenerates to Poisson)."""

    scale: float = 1.0
    shape: float = 0.7

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scale <= 0 or self.shape <= 0:
            raise ValueError("scale and shape must be positive")

    def _inter_arrival(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)
