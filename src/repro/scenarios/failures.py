"""Declarative failure schedules for scenarios.

The paper's evaluation is failure-free; its §VI discussion (and every
workload PR built on this layer) needs *reproducible* failure patterns.
A :class:`FailureSchedule` is a frozen value object a
:class:`~repro.scenarios.spec.Scenario` carries: it declares *when*
replicas crash and *which* ones, without touching a live simulation.
``materialize(n_logical, degree)`` expands it to concrete
:class:`CrashEvent`\\ s — a pure function of the schedule (stochastic
schedules derive everything from their seed), so the same scenario
yields the same crashes in every process, on every host.

Hierarchy:

* :class:`NoFailures` — the failure-free runs of the paper's figures;
* :class:`FixedFailures` — explicit ``(logical_rank, replica_id, time)``
  crash times (the §VI restart/efficiency studies);
* :class:`PoissonFailures` — seeded homogeneous Poisson arrivals, each
  killing a random (or tagged) replica, in the spirit of the
  inhomogeneous-Poisson simulation toolkits of PAPERS.md;
* :class:`WeibullFailures` — seeded Weibull inter-arrival times, the
  standard HPC failure-trace model (infant mortality / wear-out).

Installation is uniform: the scenario runner hands the materialized
events to :meth:`repro.replication.FailureInjector.apply`, which
schedules the crash-stop kills on the
:class:`~repro.replication.manager.ReplicationManager`'s
:class:`~repro.replication.failures.HookBus`-instrumented machinery.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """One materialized crash: replica ``replica_id`` of logical rank
    ``logical_rank`` dies (crash-stop) at virtual ``time``."""

    logical_rank: int
    replica_id: int
    time: float

    def as_tuple(self) -> _t.Tuple[int, int, float]:
        return (self.logical_rank, self.replica_id, self.time)


#: kind tag → schedule class (populated by ``_schedule_kind``)
SCHEDULE_KINDS: _t.Dict[str, type] = {}


def _schedule_kind(kind: str):
    """Class decorator registering a schedule under its ``kind`` tag."""

    def wrap(cls):
        cls.kind = kind
        SCHEDULE_KINDS[kind] = cls
        return cls

    return wrap


@dataclasses.dataclass(frozen=True)
class FailureSchedule:
    """Base class: a declarative, hashable description of crash-stop
    failures to inject into a replicated run."""

    kind: _t.ClassVar[str] = "abstract"

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        """Concrete crash events for a job of ``n_logical`` logical
        ranks with ``degree`` replicas each.  Deterministic: equal
        schedules (same seed) produce equal events."""
        raise NotImplementedError

    # ------------------------------------------------------ round-trip
    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Plain-JSON representation (``{"kind": ..., ...fields}``)."""
        out: _t.Dict[str, _t.Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            out[f.name] = _encode_field(getattr(self, f.name))
        return out

    @staticmethod
    def from_dict(data: _t.Mapping[str, _t.Any]) -> "FailureSchedule":
        """Inverse of :meth:`to_dict`; dispatches on ``kind``."""
        data = dict(data)
        kind = data.pop("kind", None)
        cls = SCHEDULE_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown failure-schedule kind {kind!r}; expected one "
                f"of {sorted(SCHEDULE_KINDS)}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown fields for {kind!r} schedule: "
                             f"{sorted(unknown)}")
        return cls(**{k: _decode_field(cls, k, v) for k, v in data.items()})


def _encode_field(value: _t.Any) -> _t.Any:
    if isinstance(value, CrashEvent):
        return list(value.as_tuple())
    if isinstance(value, tuple):
        return [_encode_field(v) for v in value]
    return value


def _decode_field(cls: type, name: str, value: _t.Any) -> _t.Any:
    if name == "events" and value is not None:
        return tuple(CrashEvent(int(e[0]), int(e[1]), float(e[2]))
                     for e in value)
    if name == "targets" and value is not None:
        return tuple((int(l), int(r)) for l, r in value)
    if isinstance(value, list):
        return tuple(value)
    return value


@_schedule_kind("none")
@dataclasses.dataclass(frozen=True)
class NoFailures(FailureSchedule):
    """The failure-free schedule (the paper's §V evaluation)."""

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        return ()


#: shared default instance (schedules are immutable values)
NO_FAILURES = NoFailures()


@_schedule_kind("fixed")
@dataclasses.dataclass(frozen=True)
class FixedFailures(FailureSchedule):
    """Crashes at explicit virtual times (the §VI restart/efficiency
    studies, and the exact-moment crashes of the Figure 2 hazards).

    Parameters
    ----------
    events:
        Tuple of :class:`CrashEvent` — or plain ``(logical_rank,
        replica_id, time)`` triples, normalised at construction.
        Validation is two-phase: construction rejects negative ranks,
        replica ids and times; :meth:`materialize` additionally rejects
        events outside the concrete job (rank ≥ ``n_logical`` or
        replica ≥ ``degree``), since the job shape is only known then.

    ``materialize`` returns the events sorted by crash time; two events
    may share a time (both kills land at that instant, in tuple order).
    """

    events: _t.Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        norm = tuple(ev if isinstance(ev, CrashEvent)
                     else CrashEvent(int(ev[0]), int(ev[1]), float(ev[2]))
                     for ev in self.events)
        object.__setattr__(self, "events", norm)
        for ev in norm:
            if ev.logical_rank < 0 or ev.replica_id < 0 or ev.time < 0:
                raise ValueError(f"invalid crash event {ev}")

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        for ev in self.events:
            if not (0 <= ev.logical_rank < n_logical):
                raise ValueError(
                    f"crash event {ev} targets logical rank outside "
                    f"[0, {n_logical})")
            if not (0 <= ev.replica_id < degree):
                raise ValueError(
                    f"crash event {ev} targets replica outside "
                    f"[0, {degree})")
        return tuple(sorted(self.events, key=lambda e: e.time))


@dataclasses.dataclass(frozen=True)
class _SeededArrivals(FailureSchedule):
    """Shared machinery for stochastic schedules: seeded arrival process
    + deterministic victim selection.

    Determinism contract (see ``docs/scenarios.md``): all randomness —
    inter-arrival draws *and* victim picks — flows from one
    ``random.Random(seed)``, victim candidates are sorted before the
    pick, and :meth:`materialize` is a pure function of ``(schedule,
    n_logical, degree)``.  Equal schedules therefore produce equal
    crash events in every process and on every host, which is what
    makes a stochastic scenario a valid sweep-cache key.

    Parameters
    ----------
    seed:
        The RNG seed; vary it (e.g. over a grid) to sample failure
        patterns while keeping each point reproducible.
    start / horizon:
        Arrival window: arrivals accumulate from ``start`` and events
        strictly before ``horizon`` are kept.  ``horizon`` must exceed
        ``start`` — an empty window would silently inject nothing.
    max_failures:
        Hard cap on injected crashes (``None`` = bounded only by the
        victim pool).
    targets:
        Restricts victims to tagged ``(logical_rank, replica_id)``
        replicas; ``None`` targets any replica.  Tags outside the job
        shape are rejected at ``materialize`` time.
    spare_last:
        By default at least one replica of every logical rank is spared
        so the job always completes; set ``False`` to study
        logical-rank wipe-outs (the run then raises
        :class:`~repro.replication.NoLiveReplicaError`).
    """

    seed: int = 0
    horizon: float = 0.0           #: arrivals strictly before this time
    start: float = 0.0             #: arrivals begin after this time
    max_failures: _t.Optional[int] = None
    targets: _t.Optional[_t.Tuple[_t.Tuple[int, int], ...]] = None
    spare_last: bool = True

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.horizon <= self.start:
            raise ValueError(
                "horizon must be > start (a stochastic schedule with an "
                "empty arrival window would silently inject nothing)")
        if self.targets is not None:
            object.__setattr__(
                self, "targets",
                tuple((int(l), int(r)) for l, r in self.targets))

    def _inter_arrival(self, rng: random.Random) -> float:
        raise NotImplementedError

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        rng = random.Random(self.seed)
        alive = {(l, r) for l in range(n_logical) for r in range(degree)}
        if self.targets is None:
            pool: _t.Set[_t.Tuple[int, int]] = set(alive)
        else:
            pool = set(self.targets)
            stray = pool - alive
            if stray:
                raise ValueError(
                    f"tagged targets {sorted(stray)} outside the job "
                    f"({n_logical} logical ranks x degree {degree})")
        events: _t.List[CrashEvent] = []
        t = self.start
        limit = (len(pool) if self.max_failures is None
                 else min(self.max_failures, len(pool)))
        while len(events) < limit:
            t += self._inter_arrival(rng)
            if t >= self.horizon:
                break
            eligible = sorted(
                p for p in pool & alive
                if not self.spare_last
                or sum(1 for q in alive if q[0] == p[0]) > 1)
            if not eligible:
                break
            victim = eligible[rng.randrange(len(eligible))]
            alive.discard(victim)
            events.append(CrashEvent(victim[0], victim[1], t))
        return tuple(events)


@_schedule_kind("poisson")
@dataclasses.dataclass(frozen=True)
class PoissonFailures(_SeededArrivals):
    """Homogeneous Poisson failure arrivals, each killing one random
    (or tagged) replica — the memoryless MTBF model of §II, in the
    spirit of the inhomogeneous-Poisson simulation toolkits of
    PAPERS.md.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    rate:
        Failures per second of *virtual* time; inter-arrival times are
        ``Expovariate(rate)`` draws, so the expected number of
        arrivals in the window is ``rate * (horizon - start)``.  Must
        be positive.

    Example: ``PoissonFailures(rate=400.0, seed=2015, horizon=5e-3)``
    expects ~2 crashes in the first 5 virtual milliseconds, identical
    on every host for a given seed.
    """

    rate: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def _inter_arrival(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)


@_schedule_kind("weibull")
@dataclasses.dataclass(frozen=True)
class WeibullFailures(_SeededArrivals):
    """Weibull inter-arrival times — the standard HPC failure-trace
    model.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    scale:
        The Weibull scale parameter λ, in virtual seconds (the
        characteristic inter-arrival time).  Must be positive.
    shape:
        The Weibull shape parameter k: ``shape < 1`` models the
        infant-mortality regime of HPC failure traces (bursts early,
        long quiet tails), ``shape = 1`` degenerates to a Poisson
        process with rate ``1/scale``, ``shape > 1`` models wear-out
        (failures cluster late).  Must be positive.
    """

    scale: float = 1.0
    shape: float = 0.7

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scale <= 0 or self.shape <= 0:
            raise ValueError("scale and shape must be positive")

    def _inter_arrival(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)
