"""Declarative failure schedules for scenarios.

The paper's evaluation is failure-free; its §VI discussion (and every
workload PR built on this layer) needs *reproducible* failure patterns.
A :class:`FailureSchedule` is a frozen value object a
:class:`~repro.scenarios.spec.Scenario` carries: it declares *when*
replicas crash and *which* ones, without touching a live simulation.
``materialize(n_logical, degree)`` expands it to concrete
:class:`CrashEvent`\\ s — a pure function of the schedule (stochastic
schedules derive everything from their seed), so the same scenario
yields the same crashes in every process, on every host.

Hierarchy:

* :class:`NoFailures` — the failure-free runs of the paper's figures;
* :class:`FixedFailures` — explicit ``(logical_rank, replica_id, time)``
  crash times (the §VI restart/efficiency studies);
* :class:`PoissonFailures` — seeded homogeneous Poisson arrivals, each
  killing a random (or tagged) replica, in the spirit of the
  inhomogeneous-Poisson simulation toolkits of PAPERS.md;
* :class:`WeibullFailures` — seeded Weibull inter-arrival times, the
  standard HPC failure-trace model (infant mortality / wear-out);
* :class:`InhomogeneousPoissonFailures` — time-varying Poisson arrivals
  simulated by seeded *thinning* against the rate function's upper
  bound (the IPPP algorithm of PAPERS.md, arXiv:1901.10754), with the
  rate declared through the small :class:`RateSpec` codec
  (piecewise-constant / sinusoidal / maintenance-window terms);
* :class:`MaintenanceWindowFailures` — periodic elevated-rate windows
  (the "patch Tuesday" shape of production failure traces), a
  pre-packaged inhomogeneous process;
* :class:`CascadingFailures` — correlated failures: every materialized
  crash multiplies the hazard of topology-neighbor logical ranks for a
  decay window, so one crash seeds a burst (exact piecewise-constant
  hazard simulation, deterministic from the seed).

Installation is uniform: the scenario runner hands the materialized
events to :meth:`repro.replication.FailureInjector.apply`, which
schedules the crash-stop kills on the
:class:`~repro.replication.manager.ReplicationManager`'s
:class:`~repro.replication.failures.HookBus`-instrumented machinery.
"""

from __future__ import annotations

import dataclasses
import math
import random
import typing as _t


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """One materialized crash: replica ``replica_id`` of logical rank
    ``logical_rank`` dies (crash-stop) at virtual ``time``."""

    logical_rank: int
    replica_id: int
    time: float

    def as_tuple(self) -> _t.Tuple[int, int, float]:
        return (self.logical_rank, self.replica_id, self.time)


#: kind tag → schedule class (populated by ``_schedule_kind``)
SCHEDULE_KINDS: _t.Dict[str, _t.Type[_t.Any]] = {}

_C = _t.TypeVar("_C")


def _schedule_kind(kind: str) -> _t.Callable[[_C], _C]:
    """Class decorator registering a schedule under its ``kind`` tag."""

    def wrap(cls: _C) -> _C:
        _t.cast(_t.Any, cls).kind = kind
        SCHEDULE_KINDS[kind] = _t.cast(_t.Type[_t.Any], cls)
        return cls

    return wrap


@dataclasses.dataclass(frozen=True)
class FailureSchedule:
    """Base class: a declarative, hashable description of crash-stop
    failures to inject into a replicated run."""

    kind: _t.ClassVar[str] = "abstract"

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        """Concrete crash events for a job of ``n_logical`` logical
        ranks with ``degree`` replicas each.  Deterministic: equal
        schedules (same seed) produce equal events."""
        raise NotImplementedError

    # ------------------------------------------------------ round-trip
    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Plain-JSON representation (``{"kind": ..., ...fields}``)."""
        out: _t.Dict[str, _t.Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            out[f.name] = _encode_field(getattr(self, f.name))
        return out

    @staticmethod
    def from_dict(data: _t.Mapping[str, _t.Any]) -> "FailureSchedule":
        """Inverse of :meth:`to_dict`; dispatches on ``kind``.

        An unknown ``kind`` raises :class:`ValueError` listing every
        *registered* kind (the live :data:`SCHEDULE_KINDS` table, so
        the message always includes schedule kinds added after this
        module was written)."""
        data = dict(data)
        kind = data.pop("kind", None)
        cls = SCHEDULE_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown failure-schedule kind {kind!r}; registered "
                f"kinds: {', '.join(sorted(SCHEDULE_KINDS))}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown fields for {kind!r} schedule: "
                             f"{sorted(unknown)}")
        return _t.cast(FailureSchedule,
                       cls(**{k: _decode_field(cls, k, v)
                              for k, v in data.items()}))


def _encode_field(value: _t.Any) -> _t.Any:
    if isinstance(value, CrashEvent):
        return list(value.as_tuple())
    if isinstance(value, FailureSchedule):
        return value.to_dict()           # nested schedule (cascade base)
    if isinstance(value, RateSpec):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_encode_field(v) for v in value]
    return value


def _decode_field(cls: _t.Type[_t.Any], name: str,
                  value: _t.Any) -> _t.Any:
    if name == "events" and value is not None:
        return tuple(CrashEvent(int(e[0]), int(e[1]), float(e[2]))
                     for e in value)
    if name == "targets" and value is not None:
        return tuple((int(l), int(r)) for l, r in value)
    if name == "base" and isinstance(value, _t.Mapping):
        return FailureSchedule.from_dict(value)
    if name == "rates" and isinstance(value, (_t.Mapping, list, tuple)):
        return RateSpec.from_dict(value)
    if isinstance(value, list):
        return tuple(value)
    return value


def _check_finite(field: str, value: _t.Any, *,
                  positive: bool = False) -> float:
    """Validate one numeric schedule field; the error names the field
    (matching the CLI ``--set`` error style, so a bad
    ``--set failures={...}`` points at exactly the offending key)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"failure-schedule field {field!r} must be a "
                         f"number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"failure-schedule field {field!r} must be "
                         f"finite, got {value!r}")
    if positive and value <= 0:
        raise ValueError(f"failure-schedule field {field!r} must be "
                         f"positive, got {value!r}")
    if not positive and value < 0:
        raise ValueError(f"failure-schedule field {field!r} must be "
                         f"non-negative, got {value!r}")
    return value


@_schedule_kind("none")
@dataclasses.dataclass(frozen=True)
class NoFailures(FailureSchedule):
    """The failure-free schedule (the paper's §V evaluation)."""

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        return ()


#: shared default instance (schedules are immutable values)
NO_FAILURES = NoFailures()


@_schedule_kind("fixed")
@dataclasses.dataclass(frozen=True)
class FixedFailures(FailureSchedule):
    """Crashes at explicit virtual times (the §VI restart/efficiency
    studies, and the exact-moment crashes of the Figure 2 hazards).

    Parameters
    ----------
    events:
        Tuple of :class:`CrashEvent` — or plain ``(logical_rank,
        replica_id, time)`` triples, normalised at construction.
        Validation is two-phase: construction rejects negative ranks,
        replica ids and times; :meth:`materialize` additionally rejects
        events outside the concrete job (rank ≥ ``n_logical`` or
        replica ≥ ``degree``), since the job shape is only known then.

    ``materialize`` returns the events sorted by crash time; two events
    may share a time (both kills land at that instant, in tuple order).
    """

    events: _t.Tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        norm = tuple(ev if isinstance(ev, CrashEvent)
                     else CrashEvent(int(ev[0]), int(ev[1]), float(ev[2]))
                     for ev in self.events)
        object.__setattr__(self, "events", norm)
        for ev in norm:
            if ev.logical_rank < 0 or ev.replica_id < 0 or ev.time < 0:
                raise ValueError(f"invalid crash event {ev}")

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        for ev in self.events:
            if not (0 <= ev.logical_rank < n_logical):
                raise ValueError(
                    f"crash event {ev} targets logical rank outside "
                    f"[0, {n_logical})")
            if not (0 <= ev.replica_id < degree):
                raise ValueError(
                    f"crash event {ev} targets replica outside "
                    f"[0, {degree})")
        return tuple(sorted(self.events, key=lambda e: e.time))


@dataclasses.dataclass(frozen=True)
class _SeededArrivals(FailureSchedule):
    """Shared machinery for stochastic schedules: seeded arrival process
    + deterministic victim selection.

    Determinism contract (see ``docs/scenarios.md``): all randomness —
    inter-arrival draws *and* victim picks — flows from one
    ``random.Random(seed)``, victim candidates are sorted before the
    pick, and :meth:`materialize` is a pure function of ``(schedule,
    n_logical, degree)``.  Equal schedules therefore produce equal
    crash events in every process and on every host, which is what
    makes a stochastic scenario a valid sweep-cache key.

    Parameters
    ----------
    seed:
        The RNG seed; vary it (e.g. over a grid) to sample failure
        patterns while keeping each point reproducible.
    start / horizon:
        Arrival window: arrivals accumulate from ``start`` and events
        strictly before ``horizon`` are kept.  ``horizon`` must exceed
        ``start`` — an empty window would silently inject nothing.
    max_failures:
        Hard cap on injected crashes (``None`` = bounded only by the
        victim pool).
    targets:
        Restricts victims to tagged ``(logical_rank, replica_id)``
        replicas; ``None`` targets any replica.  Tags outside the job
        shape are rejected at ``materialize`` time.
    spare_last:
        By default at least one replica of every logical rank is spared
        so the job always completes; set ``False`` to study
        logical-rank wipe-outs (the run then raises
        :class:`~repro.replication.NoLiveReplicaError`).
    """

    seed: int = 0
    horizon: float = 0.0           #: arrivals strictly before this time
    start: float = 0.0             #: arrivals begin after this time
    max_failures: _t.Optional[int] = None
    targets: _t.Optional[_t.Tuple[_t.Tuple[int, int], ...]] = None
    spare_last: bool = True

    def __post_init__(self) -> None:
        _check_finite("start", self.start)
        _check_finite("horizon", self.horizon)
        if self.horizon <= self.start:
            raise ValueError(
                "horizon must be > start (a stochastic schedule with an "
                "empty arrival window would silently inject nothing)")
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError("failure-schedule field 'max_failures' "
                             "must be non-negative or None, got "
                             f"{self.max_failures!r}")
        if self.targets is not None:
            object.__setattr__(
                self, "targets",
                tuple((int(l), int(r)) for l, r in self.targets))

    def _inter_arrival(self, rng: random.Random) -> float:
        raise NotImplementedError

    def _next_arrival(self, rng: random.Random, t: float) -> float:
        """The next arrival strictly after ``t`` (homogeneous default:
        one inter-arrival draw; thinned schedules override this)."""
        return t + self._inter_arrival(rng)

    def _victim_pool(self, n_logical: int, degree: int
                     ) -> _t.Tuple[_t.Set[_t.Tuple[int, int]],
                                   _t.Set[_t.Tuple[int, int]]]:
        """(alive, pool) sets for a concrete job shape, with tagged
        targets validated against it."""
        alive = {(l, r) for l in range(n_logical) for r in range(degree)}
        if self.targets is None:
            pool: _t.Set[_t.Tuple[int, int]] = set(alive)
        else:
            pool = set(self.targets)
            stray = pool - alive
            if stray:
                raise ValueError(
                    f"tagged targets {sorted(stray)} outside the job "
                    f"({n_logical} logical ranks x degree {degree})")
        return alive, pool

    def _eligible(self, alive: _t.Set[_t.Tuple[int, int]],
                  pool: _t.Set[_t.Tuple[int, int]]
                  ) -> _t.List[_t.Tuple[int, int]]:
        """Sorted killable victims (the sort is part of the determinism
        contract: the rng picks an index into a canonical order)."""
        return sorted(
            p for p in pool & alive
            if not self.spare_last
            # detlint: ignore[DET001] -- counting: a sum of 1s over a
            # set is order-free
            or sum(1 for q in alive if q[0] == p[0]) > 1)

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        rng = random.Random(self.seed)
        alive, pool = self._victim_pool(n_logical, degree)
        events: _t.List[CrashEvent] = []
        t = self.start
        limit = (len(pool) if self.max_failures is None
                 else min(self.max_failures, len(pool)))
        while len(events) < limit:
            t = self._next_arrival(rng, t)
            if t >= self.horizon:
                break
            eligible = self._eligible(alive, pool)
            if not eligible:
                break
            victim = eligible[rng.randrange(len(eligible))]
            alive.discard(victim)
            events.append(CrashEvent(victim[0], victim[1], t))
        return tuple(events)


@_schedule_kind("poisson")
@dataclasses.dataclass(frozen=True)
class PoissonFailures(_SeededArrivals):
    """Homogeneous Poisson failure arrivals, each killing one random
    (or tagged) replica — the memoryless MTBF model of §II, in the
    spirit of the inhomogeneous-Poisson simulation toolkits of
    PAPERS.md.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    rate:
        Failures per second of *virtual* time; inter-arrival times are
        ``Expovariate(rate)`` draws, so the expected number of
        arrivals in the window is ``rate * (horizon - start)``.  Must
        be positive.

    Example: ``PoissonFailures(rate=400.0, seed=2015, horizon=5e-3)``
    expects ~2 crashes in the first 5 virtual milliseconds, identical
    on every host for a given seed.
    """

    rate: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_finite("rate", self.rate, positive=True)

    def _inter_arrival(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)


@_schedule_kind("weibull")
@dataclasses.dataclass(frozen=True)
class WeibullFailures(_SeededArrivals):
    """Weibull inter-arrival times — the standard HPC failure-trace
    model.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    scale:
        The Weibull scale parameter λ, in virtual seconds (the
        characteristic inter-arrival time).  Must be positive.
    shape:
        The Weibull shape parameter k: ``shape < 1`` models the
        infant-mortality regime of HPC failure traces (bursts early,
        long quiet tails), ``shape = 1`` degenerates to a Poisson
        process with rate ``1/scale``, ``shape > 1`` models wear-out
        (failures cluster late).  Must be positive.
    """

    scale: float = 1.0
    shape: float = 0.7

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_finite("scale", self.scale, positive=True)
        _check_finite("shape", self.shape, positive=True)

    def _inter_arrival(self, rng: random.Random) -> float:
        return rng.weibullvariate(self.scale, self.shape)


# ---------------------------------------------------------------------
# Rate-spec codec: a tiny declarative language for time-varying failure
# rates.  A RateSpec is a sum of terms; every term is frozen, hashable
# and JSON-round-trippable exactly like the schedules that carry it.
# ---------------------------------------------------------------------

#: kind tag → rate-term class (populated by ``_rate_term``)
RATE_TERM_KINDS: _t.Dict[str, _t.Type[_t.Any]] = {}


def _rate_term(kind: str) -> _t.Callable[[_C], _C]:
    """Class decorator registering a rate term under its ``kind`` tag."""

    def wrap(cls: _C) -> _C:
        _t.cast(_t.Any, cls).kind = kind
        RATE_TERM_KINDS[kind] = _t.cast(_t.Type[_t.Any], cls)
        return cls

    return wrap


@dataclasses.dataclass(frozen=True)
class RateTerm:
    """One additive component of a time-varying failure rate λ(t)."""

    kind: _t.ClassVar[str] = "abstract"

    def rate_at(self, t: float) -> float:
        """This term's contribution to λ(t), in failures per virtual
        second.  Always ≥ 0."""
        raise NotImplementedError

    def upper_bound(self) -> float:
        """A finite bound ≥ ``max_t rate_at(t)`` (the thinning
        majorant)."""
        raise NotImplementedError

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        out: _t.Dict[str, _t.Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):
            out[f.name] = _encode_field(getattr(self, f.name))
        return out

    @staticmethod
    def from_dict(data: _t.Mapping[str, _t.Any]) -> "RateTerm":
        data = dict(data)
        kind = data.pop("kind", None)
        cls = RATE_TERM_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown rate-term kind {kind!r}; registered kinds: "
                f"{', '.join(sorted(RATE_TERM_KINDS))}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown fields for {kind!r} rate term: "
                             f"{sorted(unknown)}")
        return _t.cast(RateTerm,
                       cls(**{k: (tuple(v) if isinstance(v, list) else v)
                              for k, v in data.items()}))


@_rate_term("const")
@dataclasses.dataclass(frozen=True)
class ConstantRate(RateTerm):
    """A flat baseline rate (the homogeneous-Poisson floor)."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        _check_finite("rate", self.rate)

    def rate_at(self, t: float) -> float:
        return self.rate

    def upper_bound(self) -> float:
        return self.rate


@_rate_term("steps")
@dataclasses.dataclass(frozen=True)
class PiecewiseRate(RateTerm):
    """Piecewise-constant rate: ``steps`` is a tuple of ``(time,
    rate)`` pairs with strictly increasing times; the rate from the
    last step at or before ``t`` applies (0 before the first step)."""

    steps: _t.Tuple[_t.Tuple[float, float], ...] = ((0.0, 1.0),)

    def __post_init__(self) -> None:
        norm = tuple((_check_finite("steps[].time", s[0]),
                      _check_finite("steps[].rate", s[1]))
                     for s in self.steps)
        if not norm:
            raise ValueError("failure-schedule field 'steps' must hold "
                             "at least one (time, rate) pair")
        for (t0, _), (t1, _) in zip(norm, norm[1:]):
            if t1 <= t0:
                raise ValueError(
                    "failure-schedule field 'steps' must have strictly "
                    f"increasing times, got {t0!r} then {t1!r}")
        object.__setattr__(self, "steps", norm)

    def rate_at(self, t: float) -> float:
        current = 0.0
        for when, rate in self.steps:
            if when > t:
                break
            current = rate
        return current

    def upper_bound(self) -> float:
        return max(rate for _, rate in self.steps)


@_rate_term("sine")
@dataclasses.dataclass(frozen=True)
class SinusoidRate(RateTerm):
    """Diurnal-style sinusoidal rate ``mean + amplitude *
    sin(2π·t/period + phase)``.  ``amplitude ≤ mean`` keeps λ(t) ≥ 0."""

    mean: float = 1.0
    amplitude: float = 0.5
    period: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        _check_finite("mean", self.mean)
        _check_finite("amplitude", self.amplitude)
        _check_finite("period", self.period, positive=True)
        _check_finite("phase", abs(self.phase))
        if self.amplitude > self.mean:
            raise ValueError(
                "failure-schedule field 'amplitude' must be <= 'mean' "
                "(a sinusoidal rate must stay non-negative), got "
                f"amplitude={self.amplitude!r} mean={self.mean!r}")

    def rate_at(self, t: float) -> float:
        return self.mean + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period + self.phase)

    def upper_bound(self) -> float:
        return self.mean + self.amplitude


@_rate_term("window")
@dataclasses.dataclass(frozen=True)
class WindowRate(RateTerm):
    """Periodic maintenance window: ``rate`` is added while ``(t -
    offset) mod period < duration`` and 0 otherwise (the "patch
    Tuesday" shape of production failure traces)."""

    rate: float = 1.0
    period: float = 1.0
    duration: float = 0.1
    offset: float = 0.0

    def __post_init__(self) -> None:
        _check_finite("rate", self.rate)
        _check_finite("period", self.period, positive=True)
        _check_finite("duration", self.duration, positive=True)
        _check_finite("offset", self.offset)
        if self.duration > self.period:
            raise ValueError(
                "failure-schedule field 'duration' must be <= 'period', "
                f"got duration={self.duration!r} period={self.period!r}")

    def rate_at(self, t: float) -> float:
        return self.rate if (t - self.offset) % self.period \
            < self.duration else 0.0

    def upper_bound(self) -> float:
        return self.rate


@dataclasses.dataclass(frozen=True)
class RateSpec:
    """A declarative failure-rate function: the sum of its terms.

    Frozen and hashable like the schedules that embed it, with the same
    exact ``to_dict``/``from_dict`` round-trip.  ``upper_bound()`` is
    the thinning majorant: a constant ≥ λ(t) for all t, which is what
    lets :class:`InhomogeneousPoissonFailures` simulate exactly by
    seeded thinning (PAPERS.md, arXiv:1901.10754)."""

    terms: _t.Tuple[RateTerm, ...] = (ConstantRate(1.0),)

    def __post_init__(self) -> None:
        norm = tuple(term if isinstance(term, RateTerm)
                     else RateTerm.from_dict(term)
                     for term in self.terms)
        if not norm:
            raise ValueError("failure-schedule field 'terms' must hold "
                             "at least one rate term")
        object.__setattr__(self, "terms", norm)

    def rate_at(self, t: float) -> float:
        return sum(term.rate_at(t) for term in self.terms)

    def upper_bound(self) -> float:
        return sum(term.upper_bound() for term in self.terms)

    def to_dict(self) -> _t.Dict[str, _t.Any]:
        return {"terms": [term.to_dict() for term in self.terms]}

    @staticmethod
    def from_dict(data: _t.Union[_t.Mapping[str, _t.Any],
                                 _t.Sequence[_t.Any]]) -> "RateSpec":
        """Inverse of :meth:`to_dict`; also accepts a bare list of
        term dicts for hand-written ``--set`` overrides."""
        if isinstance(data, RateSpec):
            return data
        if isinstance(data, _t.Mapping):
            terms = data.get("terms", ())
        else:
            terms = data
        return RateSpec(tuple(
            term if isinstance(term, RateTerm) else RateTerm.from_dict(term)
            for term in terms))


@dataclasses.dataclass(frozen=True)
class _ThinnedArrivals(_SeededArrivals):
    """Inhomogeneous arrivals by seeded thinning (Lewis–Shedler): draw
    homogeneous candidates at the rate function's upper bound λ*, keep
    each candidate at time t with probability λ(t)/λ*.  Exact, and —
    because every draw flows from the one seeded rng in a fixed order
    (one expovariate + one uniform per candidate) — bit-deterministic
    like every other schedule here."""

    def _rate_spec(self) -> RateSpec:
        raise NotImplementedError

    def _next_arrival(self, rng: random.Random, t: float) -> float:
        spec = self._rate_spec()
        bound = spec.upper_bound()
        while True:
            t += rng.expovariate(bound)
            if t >= self.horizon:
                return t            # caller discards past-horizon times
            if rng.random() * bound <= spec.rate_at(t):
                return t


@_schedule_kind("ipoisson")
@dataclasses.dataclass(frozen=True)
class InhomogeneousPoissonFailures(_ThinnedArrivals):
    """Time-varying Poisson failure arrivals — bursty and diurnal
    production failure patterns the homogeneous kinds cannot express.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    rates:
        A :class:`RateSpec` (or its ``to_dict()`` form) declaring λ(t)
        as a sum of constant / piecewise-step / sinusoidal /
        maintenance-window terms.  Its ``upper_bound()`` must be
        positive — that is the thinning majorant.

    Example::

        InhomogeneousPoissonFailures(
            rates=RateSpec((ConstantRate(50.0),
                            WindowRate(rate=2e3, period=2e-3,
                                       duration=2e-4))),
            seed=2015, horizon=8e-3)
    """

    rates: RateSpec = RateSpec((ConstantRate(1.0),))

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.rates, RateSpec):
            object.__setattr__(self, "rates",
                               RateSpec.from_dict(self.rates))
        _check_finite("rates.upper_bound", self.rates.upper_bound(),
                      positive=True)

    def _rate_spec(self) -> RateSpec:
        return self.rates


@_schedule_kind("maintenance")
@dataclasses.dataclass(frozen=True)
class MaintenanceWindowFailures(_ThinnedArrivals):
    """Periodic elevated-rate windows: a quiet ``base_rate`` floor with
    the rate raised to ``window_rate`` for ``window`` virtual seconds
    every ``period`` (starting at ``offset``).  A pre-packaged
    inhomogeneous process — sugar over the :class:`RateSpec` codec.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    base_rate:
        Failures/second outside maintenance windows (≥ 0; 0 means
        failures *only* inside windows).
    window_rate:
        Failures/second inside a window; must be ≥ ``base_rate``.
    period / window / offset:
        Window cadence: one ``window``-long window per ``period``,
        first window opening at ``offset``.
    """

    base_rate: float = 1.0
    window_rate: float = 10.0
    period: float = 1.0
    window: float = 0.1
    offset: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_finite("base_rate", self.base_rate)
        _check_finite("window_rate", self.window_rate, positive=True)
        _check_finite("period", self.period, positive=True)
        _check_finite("window", self.window, positive=True)
        _check_finite("offset", self.offset)
        if self.window_rate < self.base_rate:
            raise ValueError(
                "failure-schedule field 'window_rate' must be >= "
                f"'base_rate', got window_rate={self.window_rate!r} "
                f"base_rate={self.base_rate!r}")
        if self.window > self.period:
            raise ValueError(
                "failure-schedule field 'window' must be <= 'period', "
                f"got window={self.window!r} period={self.period!r}")

    def _rate_spec(self) -> RateSpec:
        terms: _t.List[RateTerm] = []
        if self.base_rate > 0:
            terms.append(ConstantRate(self.base_rate))
        terms.append(WindowRate(rate=self.window_rate - self.base_rate
                                if self.window_rate > self.base_rate
                                else 0.0,
                                period=self.period, duration=self.window,
                                offset=self.offset))
        return RateSpec(tuple(terms))


@_schedule_kind("cascade")
@dataclasses.dataclass(frozen=True)
class CascadingFailures(_SeededArrivals):
    """Correlated failures: every materialized crash multiplies the
    hazard of topology-neighbor logical ranks for a decay ``window``,
    so one crash seeds a burst (the failure *waves* of production
    traces, which independent-arrival models cannot produce).

    The process is an exact piecewise-constant-hazard simulation: every
    alive replica carries a baseline hazard ``rate``; a crash of
    logical rank *l* multiplies the hazard of all replicas whose
    logical rank is within ``neighbor_distance`` of *l* (including
    *l*'s own survivors) by ``multiplier`` until the boost expires
    ``window`` later.  Boosts stack multiplicatively.  Between change
    points (a crash, a boost expiry, the window ``start``, a ``base``
    event) the total hazard is constant, so one exponential draw per
    segment is exact — and, with victim selection by a deterministic
    weighted walk over the sorted candidates, bit-deterministic from
    the seed.

    Parameters (on top of the seeded-arrival fields above)
    ------------------------------------------------------
    rate:
        Baseline per-replica hazard (failures/second); must be
        positive.
    multiplier:
        Hazard multiplier a crash applies to its neighborhood (≥ 1;
        boosts from overlapping crashes stack multiplicatively).
    window:
        How long each boost lasts, in virtual seconds.
    neighbor_distance:
        Crash of logical rank *l* boosts logical ranks in
        ``[l - d, l + d]`` (a 1-D topology; distance 0 boosts only the
        crashed rank's surviving replicas).
    base:
        A nested :class:`FailureSchedule` of *definite* trigger crashes
        (e.g. :class:`FixedFailures`) seeding cascades on top of the
        spontaneous baseline.  Base events past ``horizon`` are
        dropped; ones targeting dead replicas are skipped; ones that
        would violate ``spare_last`` are skipped when it is set.
        ``targets`` restricts only the *stochastic* victims.

    ``max_failures`` caps the total (base + cascade) event count.
    """

    rate: float = 1.0
    multiplier: float = 8.0
    window: float = 1e-3
    neighbor_distance: int = 1
    base: FailureSchedule = NO_FAILURES

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.base, _t.Mapping):
            object.__setattr__(self, "base",
                               FailureSchedule.from_dict(self.base))
        if not isinstance(self.base, FailureSchedule):
            raise ValueError(
                "failure-schedule field 'base' must be a "
                f"FailureSchedule (or its to_dict() mapping), got "
                f"{self.base!r}")
        _check_finite("rate", self.rate, positive=True)
        if _check_finite("multiplier", self.multiplier,
                         positive=True) < 1.0:
            raise ValueError(
                "failure-schedule field 'multiplier' must be >= 1, got "
                f"{self.multiplier!r}")
        _check_finite("window", self.window, positive=True)
        if isinstance(self.neighbor_distance, bool) \
                or not isinstance(self.neighbor_distance, int) \
                or self.neighbor_distance < 0:
            raise ValueError(
                "failure-schedule field 'neighbor_distance' must be a "
                f"non-negative integer, got {self.neighbor_distance!r}")

    def materialize(self, n_logical: int,
                    degree: int) -> _t.Tuple[CrashEvent, ...]:
        rng = random.Random(self.seed)
        alive, pool = self._victim_pool(n_logical, degree)
        base_events = sorted(
            (ev for ev in self.base.materialize(n_logical, degree)
             if ev.time < self.horizon),
            key=lambda e: (e.time, e.logical_rank, e.replica_id))
        limit = (len(alive) if self.max_failures is None
                 else self.max_failures)
        events: _t.List[CrashEvent] = []
        boosts: _t.List[_t.Tuple[float, _t.FrozenSet[int]]] = []

        def hazard(p: _t.Tuple[int, int]) -> float:
            h = self.rate
            for _, ranks in boosts:
                if p[0] in ranks:
                    h *= self.multiplier
            return h

        def kill(lrank: int, rid: int, at: float) -> None:
            alive.discard((lrank, rid))
            events.append(CrashEvent(lrank, rid, at))
            lo = max(0, lrank - self.neighbor_distance)
            hi = min(n_logical, lrank + self.neighbor_distance + 1)
            boosts.append((at + self.window, frozenset(range(lo, hi))))

        t = 0.0
        bi = 0
        while len(events) < limit:
            boosts[:] = [b for b in boosts if b[0] > t]
            next_base = (base_events[bi].time if bi < len(base_events)
                         else math.inf)
            next_expire = min((b[0] for b in boosts), default=math.inf)
            next_start = self.start if t < self.start else math.inf
            eligible = (self._eligible(alive, pool)
                        if t >= self.start else [])
            total = sum(hazard(p) for p in eligible)
            t_arr = t + rng.expovariate(total) if total > 0 else math.inf
            t_change = min(next_base, next_expire, next_start)
            if t_arr < min(t_change, self.horizon):
                # a spontaneous/cascade crash fires inside this segment
                t = t_arr
                pick = rng.random() * total
                acc = 0.0
                victim = eligible[-1]
                for p in eligible:
                    acc += hazard(p)
                    if pick <= acc:
                        victim = p
                        break
                kill(victim[0], victim[1], t)
                continue
            if t_change >= self.horizon:
                break
            # advance to the change point; the discarded exponential
            # draw is safe to redraw (memorylessness), and the fresh
            # draw next iteration uses the segment's new total hazard
            t = t_change
            while bi < len(base_events) and base_events[bi].time <= t:
                ev = base_events[bi]
                bi += 1
                victim = (ev.logical_rank, ev.replica_id)
                if victim not in alive:
                    continue        # crashes don't stack on the dead
                if self.spare_last and sum(
                        1 for q in alive
                        if q[0] == ev.logical_rank) <= 1:
                    continue        # the composite honours spare_last
                if len(events) >= limit:
                    break
                kill(ev.logical_rank, ev.replica_id, ev.time)
        return tuple(sorted(events,
                            key=lambda e: (e.time, e.logical_rank,
                                           e.replica_id)))
