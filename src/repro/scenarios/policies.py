"""The :class:`RestartPolicy` value object — scenario-expressible
replica restart.

PR 2 made *failures* declarative data on the scenario; this makes the
*response* to failures declarative too.  A policy describes when and
how dead replicas respawn — trigger condition, delay model, restart
budget, handover cadence — without naming any live object, so a
scenario carrying one stays pure data: frozen, hashable,
JSON-round-trippable, and a valid sweep-cache key.

The scenario runner (:mod:`repro.scenarios.run`) installs the policy on
a :class:`~repro.replication.restart.RestartCoordinator`, which reads
it duck-typed — the replication layer never imports the scenarios
layer.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

#: the restart trigger conditions a policy may declare
RESTART_TRIGGERS = ("on-crash", "on-degree-loss")


@dataclasses.dataclass(frozen=True)
class RestartPolicy:
    """Declarative replica-restart behaviour for one scenario.

    Attributes
    ----------
    trigger:
        ``"on-crash"`` respawns after every replica death;
        ``"on-degree-loss"`` respawns only while the logical rank's
        alive count is below the scenario degree when the death lands
        (at the paper's degree 2 the two differ only when a respawned
        replacement has already re-covered the rank).
    delay:
        Respawn delay of the first restart, in virtual seconds (the
        job-launch/binary-load cost the paper's [19] reports is low).
    backoff:
        Delay multiplier per *subsequent* restart: the k-th restart
        (0-based) waits ``delay * backoff**k``.  ``1.0`` = fixed delay.
    max_restarts:
        Total restart budget across the job (``None`` = unbounded).
    checkpoint_interval:
        Handovers are served every this-many step boundaries (the
        snapshot cadence): ``1`` hands over at the next boundary,
        ``k`` only at boundaries divisible by ``k`` — cheaper
        checkpoints, longer solo stretches for the survivor.
    """

    trigger: str = "on-crash"
    delay: float = 1e-3
    backoff: float = 1.0
    max_restarts: _t.Optional[int] = None
    checkpoint_interval: int = 1

    def __post_init__(self) -> None:
        if self.trigger not in RESTART_TRIGGERS:
            raise ValueError(
                f"restart-policy field 'trigger' must be one of "
                f"{RESTART_TRIGGERS}, got {self.trigger!r}")
        for name, value, positive in (("delay", self.delay, True),
                                      ("backoff", self.backoff, True)):
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise ValueError(f"restart-policy field {name!r} must "
                                 f"be a number, got {value!r}")
            if not math.isfinite(value) or (positive and value <= 0):
                raise ValueError(f"restart-policy field {name!r} must "
                                 f"be positive and finite, got "
                                 f"{value!r}")
        if self.backoff < 1.0:
            raise ValueError(
                "restart-policy field 'backoff' must be >= 1 (delays "
                f"may not shrink), got {self.backoff!r}")
        if self.max_restarts is not None and (
                isinstance(self.max_restarts, bool)
                or not isinstance(self.max_restarts, int)
                or self.max_restarts < 0):
            raise ValueError(
                "restart-policy field 'max_restarts' must be a "
                f"non-negative integer or None, got "
                f"{self.max_restarts!r}")
        if isinstance(self.checkpoint_interval, bool) \
                or not isinstance(self.checkpoint_interval, int) \
                or self.checkpoint_interval < 1:
            raise ValueError(
                "restart-policy field 'checkpoint_interval' must be a "
                f"positive integer, got {self.checkpoint_interval!r}")

    # ------------------------------------------------------ round-trip
    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Plain-JSON representation; :meth:`from_dict` is its exact
        inverse."""
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: _t.Mapping[str, _t.Any]) -> "RestartPolicy":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown restart-policy fields: "
                             f"{sorted(unknown)}; valid fields: "
                             f"{', '.join(sorted(known))}")
        return cls(**dict(data))
