"""Run scenarios: build the world, launch the mode, install failures,
aggregate — the single execution path behind every experiment, example
and sweep.

:func:`_run_scenario` is a *pure function of the scenario* (the
simulation is deterministic), which is what makes
:func:`sweep_scenarios` safe to memoize on scenario hashes: any two
callers — different figures, an example, a CLI invocation — that
evaluate an equal scenario share one cached simulation.  The engine
backend (``REPRO_ENGINE`` / :func:`repro.simulate.set_engine_backend`)
is deliberately *not* part of the scenario: both backends produce
bit-identical :class:`ModeRun` payloads, so it stays out of the cache
key and cached bytes are backend-interchangeable.

This module is the *execution* layer; the public entry points live in
:mod:`repro.api` (``repro.run`` / ``repro.sweep`` / ``repro.compare``),
which wrap the :class:`ModeRun` payload in a provenance-carrying
:class:`repro.results.RunResult`.  ``ModeRun`` itself stays the type
stored in the sweep cache, so cached bytes are unchanged by the facade.
:func:`run_scenario` remains as a deprecated shim.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .._deprecation import warn_once
from ..analysis import mean
from ..intra import launch_mode
from ..mpi import MpiWorld
from ..netmodel import Cluster, MachineSpec
from ..perf import point_cache_key, run_sweep
from ..replication import FailureInjector, NoLiveReplicaError
from .apps import resolve_program
from .failures import CrashEvent
from .spec import Scenario

#: cache namespace shared by every scenario sweep (cross-figure dedupe)
SCENARIO_SWEEP_TAG = "scenario"


@dataclasses.dataclass
class ModeRun:
    """Aggregated outcome of one scenario (one program in one mode)."""

    mode: str
    #: max over ranks of the 'solve' region (app wall time)
    wall_time: float
    #: per-region wall time, averaged over ranks (lowest-id surviving
    #: replica under replication, matching the paper's per-process
    #: averages; replicas are symmetric while all are alive)
    timers: _t.Dict[str, float]
    #: averaged intra-runtime statistics
    intra: _t.Dict[str, float]
    #: rank-0 application value (correctness payload)
    value: _t.Any
    #: the crash events the scenario's failure schedule materialized
    crashes: _t.Tuple[CrashEvent, ...] = ()


def nodes_for(mode: str, n_logical: int, machine: MachineSpec,
              degree: int = 2, spread: int = 1) -> int:
    """Cluster size needed by each mode's placement."""
    cores = machine.cores_per_node
    group = -(-n_logical // cores)
    if mode == "native":
        return group
    return group * (1 + (degree - 1) * spread)


def make_world(scenario: Scenario) -> MpiWorld:
    """A fresh simulated cluster sized for the scenario's placement."""
    machine = scenario.resolved_machine()
    cluster = Cluster(
        nodes_for(scenario.mode, scenario.n_logical, machine,
                  scenario.degree, scenario.spread),
        machine, distance_model=scenario.distance_model)
    return MpiWorld(cluster, scenario.resolved_network())


def _run_scenario(scenario: Scenario, *,
                  before_run: _t.Optional[_t.Callable[[MpiWorld, _t.Any],
                                                      None]] = None
                  ) -> ModeRun:
    """Execute one scenario end to end and aggregate its results.

    ``before_run(world, job)`` is an advanced hook for callers that need
    to instrument the live job before virtual time starts (e.g. the
    protocol-precise hook-triggered crashes of
    ``examples/failure_injection.py``); scenarios carrying such a hook
    are no longer pure data, so cached sweeps must not use it.
    """
    world = make_world(scenario)
    coord = None
    if scenario.restart is not None:
        # Scenario-expressible restart (§VI): launch the app's
        # Restartable shape under a policy-driven coordinator instead
        # of the flat program.  Scenario validation already pinned
        # mode="intra" and degree=2.
        from ..replication.restart import launch_restartable_job
        from .apps import get_app
        try:
            entry = get_app(scenario.app)
        except KeyError:
            entry = None
        if entry is None or entry.restartable is None:
            raise ValueError(
                f"scenario carries a restart policy but app "
                f"{scenario.app!r} has no registered restartable "
                f"factory; register_app(..., restartable=...) one "
                f"(e.g. app 'stepsum')")
        app = entry.restartable(scenario.config)
        job, coord = launch_restartable_job(
            world, app, scenario.n_logical, fd_delay=scenario.fd_delay,
            spread=scenario.spread, scheduler=scenario.make_scheduler(),
            policy=scenario.restart)
    else:
        program = resolve_program(scenario.app)
        kw: _t.Dict[str, _t.Any] = dict(
            args=() if scenario.config is None else (scenario.config,))
        if scenario.mode != "native":
            kw.update(degree=scenario.degree, spread=scenario.spread,
                      fd_delay=scenario.fd_delay)
        if scenario.mode == "intra":
            kw.update(scheduler=scenario.make_scheduler(),
                      copy_strategy=scenario.copy_strategy)
        job = launch_mode(scenario.mode, world, program,
                          scenario.n_logical, **kw)

    crashes: _t.Tuple[CrashEvent, ...] = ()
    if scenario.mode != "native":
        # Native jobs have no replicas to kill: a crash-stop failure of
        # an unreplicated rank is fatal, which is the paper's point.
        crashes = scenario.failures.materialize(scenario.n_logical,
                                                scenario.degree)
        if crashes:
            FailureInjector(job.manager).apply(crashes)
    if before_run is not None:
        before_run(world, job)
    world.run()

    if scenario.mode == "native":
        results = job.results()
    else:
        results = []
        for lrank in range(job.manager.n_logical):
            live = job.manager.alive_replicas(lrank)
            if not live:
                raise NoLiveReplicaError(lrank)
            results.append(live[0].app_process.value)

    if all(hasattr(r, "timers") and hasattr(r, "intra") for r in results):
        wall = max(r.timers.get("solve", r.end_time) for r in results)
        # sorted(): the aggregated dicts land in the pickled sweep
        # cache, where insertion order is part of the stored bytes —
        # set order would make those bytes hash-seed dependent
        timer_keys = set().union(*(r.timers.keys() for r in results))
        timers = {k: mean([r.timers.get(k, 0.0) for r in results])
                  for k in sorted(timer_keys)}
        intra_keys = set().union(*(r.intra.keys() for r in results))
        intra = {k: mean([float(r.intra.get(k, 0) or 0) for r in results])
                 for k in sorted(intra_keys)}
        value = results[0].value
    else:
        # program did not return an AppResult (e.g. a didactic example
        # returning raw arrays): report the end of virtual time
        wall, timers, intra, value = world.sim.now, {}, {}, results[0]
    if coord is not None:
        # surface restart activity through the intra stats channel so
        # the cached ModeRun layout (and old cached bytes) stay intact
        intra = dict(intra)
        intra["restarts_completed"] = float(coord.restarts_completed)
        intra["restarts_started"] = float(coord.restarts_started)
    return ModeRun(mode=scenario.mode, wall_time=wall, timers=timers,
                   intra=intra, value=value, crashes=crashes)


def run_scenario(scenario: Scenario, *,
                 before_run: _t.Optional[_t.Callable[[MpiWorld, _t.Any],
                                                     None]] = None
                 ) -> ModeRun:
    """Deprecated: use :func:`repro.run` (the :mod:`repro.api` facade).

    Warns :class:`DeprecationWarning` once per process and delegates to
    the same execution path the facade uses; the returned
    :class:`ModeRun` carries the identical payload (the facade adds
    scenario + cache provenance on top).
    """
    warn_once("repro.scenarios.run_scenario",
              "repro.scenarios.run_scenario is deprecated; use "
              "repro.run(scenario) — the repro.api facade — instead")
    return _run_scenario(scenario, before_run=before_run)


def sweep_scenarios(scenarios: _t.Sequence[Scenario],
                    **sweep_kw: _t.Any) -> _t.List[ModeRun]:
    """Evaluate a batch of scenarios through the sweep driver
    (process-pool parallelism + on-disk caching per the perf config).

    All scenario sweeps share one cache namespace keyed by the scenario
    itself, so equal scenarios dedupe across figures, examples and CLI
    runs.
    """
    scenarios = list(scenarios)
    for s in scenarios:
        if not isinstance(s, Scenario):
            raise TypeError(f"sweep_scenarios expects Scenario points, "
                            f"got {type(s).__name__}")
    return run_sweep(scenarios, _run_scenario, tag=SCENARIO_SWEEP_TAG,
                     **sweep_kw)


def scenario_cache_key(scenario: Scenario) -> str:
    """The sweep-cache key under which this scenario's result is
    memoized: a SHA-256 hex digest of the scenario's stable
    serialization, the cache namespace tag (:data:`SCENARIO_SWEEP_TAG`,
    shared by *all* scenario sweeps so equal scenarios dedupe across
    figures, examples and CLI runs) and
    :data:`repro.perf.CACHE_VERSION`.

    The key is identical across processes and hosts — it depends only
    on the spec's field values, never on object identity or hash
    seeds — so two runs anywhere that evaluate an equal scenario share
    one on-disk result (``.perf_cache/<k[:2]>/<k>.pkl``).  Equal
    scenarios (e.g. a JSON round-trip twin) always map to the same key;
    any field change, including inside ``config`` or ``failures``,
    re-keys.  Bumping ``CACHE_VERSION`` invalidates every stored
    result after a model change; performance-only work (e.g. the PR 3
    batched dispatch) is bit-result-identical by construction and
    deliberately does *not* re-key.  See ``docs/scenarios.md``.
    """
    return point_cache_key(_run_scenario, scenario,
                           tag=SCENARIO_SWEEP_TAG)
