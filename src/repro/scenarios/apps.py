"""Application registry: the programs a scenario can name.

Each entry binds a short app name to a program generator (``program(ctx,
comm[, config])``) and its config dataclass, and registers the config
class with the scenario codec so specs round-trip through JSON.

A scenario may also reference *any* module-level program directly as
``"module:qualname"`` (e.g. a custom program in an example script);
:func:`app_ref` builds such references and :func:`resolve_program`
resolves both forms.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys
import typing as _t

from ..apps.amg import AmgConfig, amg_gmres_program, amg_pcg_program
from ..apps.gtc import GtcConfig, gtc_program
from ..apps.hpccg import (HpccgConfig, KernelBenchConfig,
                          hpccg_kernel_bench, hpccg_program)
from ..apps.minighost import MiniGhostConfig, minighost_program
from ..apps.steploop import StepSumConfig, make_stepsum, stepsum_program
from .spec import register_codec_type

#: a scenario program: a callable building the process-body generator
ProgramFn = _t.Callable[..., _t.Generator[_t.Any, _t.Any, _t.Any]]


@dataclasses.dataclass(frozen=True)
class AppEntry:
    """One registered application."""

    name: str
    program: ProgramFn
    config_cls: _t.Optional[_t.Type[_t.Any]]
    description: str = ""
    #: optional factory ``restartable(config) -> Restartable`` — the
    #: step-loop shape the restart coordinator drives; required for
    #: scenarios carrying a :class:`~repro.scenarios.policies.
    #: RestartPolicy`
    restartable: _t.Optional[_t.Callable[..., _t.Any]] = None


_APPS: _t.Dict[str, AppEntry] = {}
#: program object → registered name (for app_ref reverse lookup)
_BY_PROGRAM: _t.Dict[_t.Any, str] = {}


def register_app(name: str, program: ProgramFn,
                 config_cls: _t.Optional[_t.Type[_t.Any]] = None,
                 description: str = "", overwrite: bool = False,
                 restartable: _t.Optional[_t.Callable[..., _t.Any]] = None
                 ) -> AppEntry:
    """Register a program under a short scenario app name."""
    if not overwrite and name in _APPS:
        raise ValueError(f"app {name!r} is already registered")
    entry = AppEntry(name, program, config_cls, description, restartable)
    _APPS[name] = entry
    _BY_PROGRAM.setdefault(program, name)
    if config_cls is not None:
        register_codec_type(config_cls)
    return entry


def app_names() -> _t.List[str]:
    """Registered app names, sorted."""
    return sorted(_APPS)


def get_app(name: str) -> AppEntry:
    if name not in _APPS:
        raise KeyError(f"unknown app {name!r}; registered apps: "
                       f"{app_names()}")
    return _APPS[name]


def app_ref(program: _t.Callable[..., _t.Any]) -> str:
    """The scenario ``app`` string for ``program``: its registered name
    when it has one, else an importable ``module:qualname`` reference."""
    name = _BY_PROGRAM.get(program)
    if name is not None:
        return name
    module = getattr(program, "__module__", None)
    qualname = getattr(program, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ValueError(
            f"cannot build an app reference for {program!r}: it must be "
            f"a module-level callable (or a registered app)")
    return f"{module}:{qualname}"


def resolve_program(app: str) -> ProgramFn:
    """The program generator behind an ``app`` string (registered name
    or ``module:qualname``)."""
    if app in _APPS:
        return _APPS[app].program
    if ":" in app:
        module_name, _, qualname = app.partition(":")
        module = sys.modules.get(module_name)
        if module is None:
            module = importlib.import_module(module_name)
        obj: _t.Any = module
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return _t.cast(ProgramFn, obj)
    raise KeyError(
        f"unknown app {app!r}; registered apps: {app_names()} "
        f"(or use an importable 'module:qualname' reference)")


# ------------------------------------------------- the paper's programs
register_app("hpccg", hpccg_program, HpccgConfig,
             "HPCCG conjugate-gradient mini-app (Figures 5b, extensions)")
register_app("hpccg_kernels", hpccg_kernel_bench, KernelBenchConfig,
             "HPCCG per-kernel microbenchmark (Figure 5a, ablations)")
register_app("amg_pcg", amg_pcg_program, AmgConfig,
             "AMG2013 27pt PCG solver (Figure 6a)")
register_app("amg_gmres", amg_gmres_program, AmgConfig,
             "AMG2013 7pt GMRES solver (Figure 6b)")
register_app("gtc", gtc_program, GtcConfig,
             "GTC-like particle-in-cell stepper (Figure 6c)")
register_app("minighost", minighost_program, MiniGhostConfig,
             "MiniGhost 27pt stencil stepper (Figure 6d)")
register_app("stepsum", stepsum_program, StepSumConfig,
             "StepSum step-loop partial sums (§VI restart extension)",
             restartable=make_stepsum)
