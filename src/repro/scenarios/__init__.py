"""Declarative scenario layer (system S15).

One :class:`Scenario` = one program in one configuration: app + problem
size, logical rank count, execution mode, replication degree/spread,
scheduler and copy strategy, machine/network model, failure schedule.
Scenarios are frozen, hashable, JSON-round-trippable values; the named
registry makes every paper figure point and example discoverable and
overridable from the CLI, and the sweep driver memoizes results on
scenario hashes so equal scenarios dedupe across figures, examples and
sweeps.

Quickstart (through the :mod:`repro.api` facade)::

    import repro
    from repro.scenarios import Scenario, PoissonFailures

    s = Scenario(app="hpccg", n_logical=8, mode="intra",
                 failures=PoissonFailures(rate=2e3, seed=7,
                                          horizon=5e-3))
    result = repro.run(s)              # RunResult(..., crashes=(...))
    twin = Scenario.from_json(s.to_json())   # == s, same cache key
"""

from .apps import (AppEntry, app_names, app_ref, get_app, register_app,
                   resolve_program)
from .failures import (NO_FAILURES, CascadingFailures, ConstantRate,
                       CrashEvent, FailureSchedule, FixedFailures,
                       InhomogeneousPoissonFailures,
                       MaintenanceWindowFailures, NoFailures,
                       PiecewiseRate, PoissonFailures, RATE_TERM_KINDS,
                       RateSpec, RateTerm, SCHEDULE_KINDS, SinusoidRate,
                       WeibullFailures, WindowRate)
from .grids import (GRID_PREFIX, GridFamily, get_grid, grid_entries,
                    grid_names, is_grid_name, register_grid,
                    total_grid_points)
from .policies import RESTART_TRIGGERS, RestartPolicy
from .registry import (RegisteredScenario, UnknownScenarioError,
                       find_scenario_name, get_entry, get_scenario,
                       register_scenario, scenario_entries,
                       scenario_names, suggest_names)
from .run import (ModeRun, SCENARIO_SWEEP_TAG, make_world, nodes_for,
                  run_scenario, scenario_cache_key, sweep_scenarios)
from .spec import (MACHINES, NETWORKS, Scenario, baseline_overrides,
                   decode_value, encode_value, machine_name_for,
                   network_name_for, parse_override, register_codec_type)
from . import catalog  # registers the example scenarios  # noqa: F401

__all__ = [
    "AppEntry", "CascadingFailures", "ConstantRate", "CrashEvent",
    "FailureSchedule", "FixedFailures", "GRID_PREFIX", "GridFamily",
    "InhomogeneousPoissonFailures",
    "MACHINES", "MaintenanceWindowFailures", "ModeRun", "NETWORKS",
    "NO_FAILURES", "NoFailures", "PiecewiseRate", "PoissonFailures",
    "RATE_TERM_KINDS", "RESTART_TRIGGERS", "RateSpec", "RateTerm",
    "RegisteredScenario", "RestartPolicy",
    "SCENARIO_SWEEP_TAG", "SCHEDULE_KINDS", "Scenario", "SinusoidRate",
    "UnknownScenarioError", "WeibullFailures", "WindowRate",
    "app_names", "app_ref", "baseline_overrides",
    "decode_value", "encode_value", "find_scenario_name", "get_app",
    "get_entry", "get_grid", "get_scenario", "grid_entries",
    "grid_names", "is_grid_name", "machine_name_for", "make_world",
    "network_name_for", "nodes_for", "parse_override",
    "register_app", "register_codec_type", "register_grid",
    "register_scenario", "resolve_program", "run_scenario",
    "scenario_cache_key", "scenario_entries", "scenario_names",
    "suggest_names", "sweep_scenarios", "total_grid_points",
]
