"""Registered scenarios for the ``examples/`` scripts.

Figure-point scenarios register where they are defined (the
``repro.experiments`` figure modules, at import).  The example scripts
are not importable library code, so their scenarios — or, for the
examples built around custom didactic programs, their closest library
twins — register here and the scripts fetch them by name.  This keeps
``--list`` exhaustive and lets example runs share the sweep cache with
the figures.
"""

from __future__ import annotations

from ..apps.gtc import GtcConfig
from ..apps.hpccg import HpccgConfig, KernelBenchConfig
from ..apps.steploop import StepSumConfig
from .failures import (CascadingFailures, FixedFailures,
                       MaintenanceWindowFailures)
from .policies import RestartPolicy
from .registry import register_scenario
from .spec import Scenario

#: examples/hpccg_modes.py — fixed physical resources (16 processes)
EXAMPLE_HPCCG_BASE = HpccgConfig(nx=16, ny=16, nz=16, max_iter=8,
                                 intra_kernels=frozenset({"ddot", "spmv"}))

#: examples/gtc_pic.py — constant problem, doubled resources
EXAMPLE_GTC_CFG = GtcConfig(particles_per_rank=65536, cells_per_rank=64,
                            steps=3)


def tiny_overrides(app: str, mode: str) -> dict:
    """``--tiny`` overrides for the ``example:*`` scenarios (shared by
    the example scripts and their smoke tests) — scaled down while
    preserving each figure's resource convention.

    HPCCG follows the fixed-resource convention (Fig. 5b): the native
    run keeps twice the ranks and the replicated runs keep the
    *doubled* per-logical problem, so total work stays matched.  GTC
    follows the doubled-resource convention (Fig. 6c): one config for
    all modes.
    """
    if app == "hpccg":
        base = {"config.nx": 8, "config.ny": 8, "config.max_iter": 2}
        if mode == "native":
            return dict(base, **{"config.nz": 8, "n_logical": 8})
        return dict(base, **{"config.nz": 16, "n_logical": 4})
    if app == "gtc":
        return {"config.particles_per_rank": 2048, "config.steps": 2,
                "n_logical": 2}
    if app == "stepsum":
        return {"config.n": 20_000, "config.n_steps": 8}
    raise KeyError(f"no tiny overrides defined for app {app!r}")


# ------------------------------------------- the restart:* storm grid
#: failure storms of the ``restart:*`` grid (full-size stepsum runs
#: ~4.4 ms of virtual time, so a 3.5 ms storm horizon sits inside it)
RESTART_STORMS = {
    "cascade": CascadingFailures(
        rate=120.0, multiplier=25.0, window=8e-4, neighbor_distance=1,
        base=FixedFailures(((0, 1, 1e-3),)), seed=2015, horizon=3.5e-3),
    "maintenance": MaintenanceWindowFailures(
        base_rate=40.0, window_rate=1.5e3, period=1.5e-3, window=2.5e-4,
        offset=8e-4, seed=2015, horizon=3.5e-3),
}

#: restart policies of the grid (``None`` = crashes stay permanent)
RESTART_POLICIES = {
    "eager": RestartPolicy(delay=2e-4),
    "checkpointed": RestartPolicy(trigger="on-degree-loss", delay=4e-4,
                                  backoff=2.0, max_restarts=4,
                                  checkpoint_interval=2),
    "none": None,
}


def restart_grid_names() -> list:
    """The registered names of the ``restart:*`` grid, sorted — the
    storm × policy cross the docs snippet and the robustness tests
    sweep."""
    return sorted(f"restart:{storm}:{policy}"
                  for storm in RESTART_STORMS
                  for policy in RESTART_POLICIES)


def _register_restart_grid() -> None:
    base = Scenario(app="stepsum", config=StepSumConfig(), n_logical=2,
                    mode="intra")
    for storm_name, storm in RESTART_STORMS.items():
        for policy_name, policy in RESTART_POLICIES.items():
            register_scenario(
                f"restart:{storm_name}:{policy_name}",
                base.replace(failures=storm, restart=policy),
                f"§VI restart extension — {storm_name} failure storm "
                + (f"under the {policy_name!r} restart policy"
                   if policy is not None else "without restart "
                   "(crashes permanent; the survivor computes alone)"))


def _register_examples() -> None:
    hpccg_doubled = EXAMPLE_HPCCG_BASE.with_doubled_z()
    for mode in ("native", "sdr", "intra"):
        register_scenario(
            f"example:hpccg:{mode}",
            Scenario(app="hpccg",
                     config=(EXAMPLE_HPCCG_BASE if mode == "native"
                             else hpccg_doubled),
                     n_logical=16 if mode == "native" else 8, mode=mode),
            f"examples/hpccg_modes.py — HPCCG CG solve, {mode} mode "
            f"(16 physical processes, Fig. 5b methodology)")
        register_scenario(
            f"example:gtc:{mode}",
            Scenario(app="gtc", config=EXAMPLE_GTC_CFG, n_logical=8,
                     mode=mode),
            f"examples/gtc_pic.py — GTC-like PIC stepper, {mode} mode "
            f"(Fig. 6c methodology)")
        register_scenario(
            f"example:waxpby:{mode}",
            Scenario(app="hpccg_kernels",
                     config=KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                                              kernels=("waxpby",)),
                     n_logical=4, mode=mode),
            f"examples/quickstart.py library twin — waxpby kernel, "
            f"{mode} mode (update transfer outweighs recomputation)")
    register_scenario(
        "example:failure-injection",
        Scenario(app="gtc",
                 config=GtcConfig(particles_per_rank=4096,
                                  cells_per_rank=64, steps=3),
                 n_logical=2, mode="intra", fd_delay=10e-6,
                 failures=FixedFailures(((0, 1, 5e-5),))),
        "examples/failure_injection.py library twin — GTC inout section "
        "with an early replica crash (the script adds the "
        "protocol-precise hook kill)")
    register_scenario(
        "example:replica-restart",
        Scenario(app="stepsum", config=StepSumConfig(), n_logical=1,
                 mode="intra", failures=FixedFailures(((0, 1, 1e-3),)),
                 restart=RestartPolicy(delay=2e-4)),
        "examples/replica_restart.py — StepSum with an early replica "
        "crash healed by a declarative restart policy (the script "
        "contrasts no-crash / no-restart / restart)")


_register_examples()
_register_restart_grid()
