"""Registered scenarios for the ``examples/`` scripts.

Figure-point scenarios register where they are defined (the
``repro.experiments`` figure modules, at import).  The example scripts
are not importable library code, so their scenarios — or, for the
examples built around custom didactic programs, their closest library
twins — register here and the scripts fetch them by name.  This keeps
``--list`` exhaustive and lets example runs share the sweep cache with
the figures.
"""

from __future__ import annotations

from ..apps.gtc import GtcConfig
from ..apps.hpccg import HpccgConfig, KernelBenchConfig
from .failures import FixedFailures
from .registry import register_scenario
from .spec import Scenario

#: examples/hpccg_modes.py — fixed physical resources (16 processes)
EXAMPLE_HPCCG_BASE = HpccgConfig(nx=16, ny=16, nz=16, max_iter=8,
                                 intra_kernels=frozenset({"ddot", "spmv"}))

#: examples/gtc_pic.py — constant problem, doubled resources
EXAMPLE_GTC_CFG = GtcConfig(particles_per_rank=65536, cells_per_rank=64,
                            steps=3)


def tiny_overrides(app: str, mode: str) -> dict:
    """``--tiny`` overrides for the ``example:*`` scenarios (shared by
    the example scripts and their smoke tests) — scaled down while
    preserving each figure's resource convention.

    HPCCG follows the fixed-resource convention (Fig. 5b): the native
    run keeps twice the ranks and the replicated runs keep the
    *doubled* per-logical problem, so total work stays matched.  GTC
    follows the doubled-resource convention (Fig. 6c): one config for
    all modes.
    """
    if app == "hpccg":
        base = {"config.nx": 8, "config.ny": 8, "config.max_iter": 2}
        if mode == "native":
            return dict(base, **{"config.nz": 8, "n_logical": 8})
        return dict(base, **{"config.nz": 16, "n_logical": 4})
    if app == "gtc":
        return {"config.particles_per_rank": 2048, "config.steps": 2,
                "n_logical": 2}
    raise KeyError(f"no tiny overrides defined for app {app!r}")


def _register_examples() -> None:
    hpccg_doubled = EXAMPLE_HPCCG_BASE.with_doubled_z()
    for mode in ("native", "sdr", "intra"):
        register_scenario(
            f"example:hpccg:{mode}",
            Scenario(app="hpccg",
                     config=(EXAMPLE_HPCCG_BASE if mode == "native"
                             else hpccg_doubled),
                     n_logical=16 if mode == "native" else 8, mode=mode),
            f"examples/hpccg_modes.py — HPCCG CG solve, {mode} mode "
            f"(16 physical processes, Fig. 5b methodology)")
        register_scenario(
            f"example:gtc:{mode}",
            Scenario(app="gtc", config=EXAMPLE_GTC_CFG, n_logical=8,
                     mode=mode),
            f"examples/gtc_pic.py — GTC-like PIC stepper, {mode} mode "
            f"(Fig. 6c methodology)")
        register_scenario(
            f"example:waxpby:{mode}",
            Scenario(app="hpccg_kernels",
                     config=KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                                              kernels=("waxpby",)),
                     n_logical=4, mode=mode),
            f"examples/quickstart.py library twin — waxpby kernel, "
            f"{mode} mode (update transfer outweighs recomputation)")
    register_scenario(
        "example:failure-injection",
        Scenario(app="gtc",
                 config=GtcConfig(particles_per_rank=4096,
                                  cells_per_rank=64, steps=3),
                 n_logical=2, mode="intra", fd_delay=10e-6,
                 failures=FixedFailures(((0, 1, 5e-5),))),
        "examples/failure_injection.py library twin — GTC inout section "
        "with an early replica crash (the script adds the "
        "protocol-precise hook kill)")
    register_scenario(
        "example:replica-restart",
        Scenario(app="hpccg",
                 config=HpccgConfig(nx=16, ny=16, nz=16, max_iter=8,
                                    intra_kernels=frozenset({"ddot",
                                                             "spmv"})),
                 n_logical=1, mode="intra",
                 failures=FixedFailures(((0, 1, 1e-3),))),
        "examples/replica_restart.py library twin — crash without "
        "restart; the script contrasts the restartable-job path")


_register_examples()
