"""Registered scenarios for the ``examples/`` scripts.

Figure-point scenarios register where they are defined (the
``repro.experiments`` figure modules, at import).  The example scripts
are not importable library code, so their scenarios — or, for the
examples built around custom didactic programs, their closest library
twins — register here and the scripts fetch them by name.  This keeps
``--list`` exhaustive and lets example runs share the sweep cache with
the figures.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..apps.gtc import GtcConfig
from ..apps.hpccg import HpccgConfig, KernelBenchConfig
from ..apps.steploop import StepSumConfig
from .failures import (CascadingFailures, ConstantRate, FailureSchedule,
                       FixedFailures, InhomogeneousPoissonFailures,
                       MaintenanceWindowFailures, PoissonFailures,
                       RateSpec, SinusoidRate, WeibullFailures)
from .grids import register_grid
from .policies import RestartPolicy
from .registry import register_scenario
from .spec import Scenario

#: examples/hpccg_modes.py — fixed physical resources (16 processes)
EXAMPLE_HPCCG_BASE = HpccgConfig(nx=16, ny=16, nz=16, max_iter=8,
                                 intra_kernels=frozenset({"ddot", "spmv"}))

#: examples/gtc_pic.py — constant problem, doubled resources
EXAMPLE_GTC_CFG = GtcConfig(particles_per_rank=65536, cells_per_rank=64,
                            steps=3)


def tiny_overrides(app: str, mode: str) -> _t.Dict[str, _t.Any]:
    """``--tiny`` overrides for the ``example:*`` scenarios (shared by
    the example scripts and their smoke tests) — scaled down while
    preserving each figure's resource convention.

    HPCCG follows the fixed-resource convention (Fig. 5b): the native
    run keeps twice the ranks and the replicated runs keep the
    *doubled* per-logical problem, so total work stays matched.  GTC
    follows the doubled-resource convention (Fig. 6c): one config for
    all modes.
    """
    if app == "hpccg":
        base = {"config.nx": 8, "config.ny": 8, "config.max_iter": 2}
        if mode == "native":
            return dict(base, **{"config.nz": 8, "n_logical": 8})
        return dict(base, **{"config.nz": 16, "n_logical": 4})
    if app == "gtc":
        return {"config.particles_per_rank": 2048, "config.steps": 2,
                "n_logical": 2}
    if app == "stepsum":
        return {"config.n": 20_000, "config.n_steps": 8}
    raise KeyError(f"no tiny overrides defined for app {app!r}")


# ------------------------------------------- the restart:* storm grid
#: failure storms of the ``restart:*`` grid (full-size stepsum runs
#: ~4.4 ms of virtual time, so a 3.5 ms storm horizon sits inside it)
RESTART_STORMS = {
    "cascade": CascadingFailures(
        rate=120.0, multiplier=25.0, window=8e-4, neighbor_distance=1,
        base=FixedFailures(((0, 1, 1e-3),)), seed=2015, horizon=3.5e-3),
    "maintenance": MaintenanceWindowFailures(
        base_rate=40.0, window_rate=1.5e3, period=1.5e-3, window=2.5e-4,
        offset=8e-4, seed=2015, horizon=3.5e-3),
}

#: restart policies of the grid (``None`` = crashes stay permanent)
RESTART_POLICIES = {
    "eager": RestartPolicy(delay=2e-4),
    "checkpointed": RestartPolicy(trigger="on-degree-loss", delay=4e-4,
                                  backoff=2.0, max_restarts=4,
                                  checkpoint_interval=2),
    "none": None,
}


def restart_grid_names() -> _t.List[str]:
    """The registered names of the ``restart:*`` grid, sorted — the
    storm × policy cross the docs snippet and the robustness tests
    sweep."""
    return sorted(f"restart:{storm}:{policy}"
                  for storm in RESTART_STORMS
                  for policy in RESTART_POLICIES)


def _register_restart_grid() -> None:
    base = Scenario(app="stepsum", config=StepSumConfig(), n_logical=2,
                    mode="intra")
    for storm_name, storm in RESTART_STORMS.items():
        for policy_name, policy in RESTART_POLICIES.items():
            register_scenario(
                f"restart:{storm_name}:{policy_name}",
                base.replace(failures=storm, restart=policy),
                f"§VI restart extension — {storm_name} failure storm "
                + (f"under the {policy_name!r} restart policy"
                   if policy is not None else "without restart "
                   "(crashes permanent; the survivor computes alone)"))


def _register_examples() -> None:
    hpccg_doubled = EXAMPLE_HPCCG_BASE.with_doubled_z()
    for mode in ("native", "sdr", "intra"):
        register_scenario(
            f"example:hpccg:{mode}",
            Scenario(app="hpccg",
                     config=(EXAMPLE_HPCCG_BASE if mode == "native"
                             else hpccg_doubled),
                     n_logical=16 if mode == "native" else 8, mode=mode),
            f"examples/hpccg_modes.py — HPCCG CG solve, {mode} mode "
            f"(16 physical processes, Fig. 5b methodology)")
        register_scenario(
            f"example:gtc:{mode}",
            Scenario(app="gtc", config=EXAMPLE_GTC_CFG, n_logical=8,
                     mode=mode),
            f"examples/gtc_pic.py — GTC-like PIC stepper, {mode} mode "
            f"(Fig. 6c methodology)")
        register_scenario(
            f"example:waxpby:{mode}",
            Scenario(app="hpccg_kernels",
                     config=KernelBenchConfig(nx=32, ny=32, nz=16, reps=3,
                                              kernels=("waxpby",)),
                     n_logical=4, mode=mode),
            f"examples/quickstart.py library twin — waxpby kernel, "
            f"{mode} mode (update transfer outweighs recomputation)")
    register_scenario(
        "example:failure-injection",
        Scenario(app="gtc",
                 config=GtcConfig(particles_per_rank=4096,
                                  cells_per_rank=64, steps=3),
                 n_logical=2, mode="intra", fd_delay=10e-6,
                 failures=FixedFailures(((0, 1, 5e-5),))),
        "examples/failure_injection.py library twin — GTC inout section "
        "with an early replica crash (the script adds the "
        "protocol-precise hook kill)")
    register_scenario(
        "example:replica-restart",
        Scenario(app="stepsum", config=StepSumConfig(), n_logical=1,
                 mode="intra", failures=FixedFailures(((0, 1, 1e-3),)),
                 restart=RestartPolicy(delay=2e-4)),
        "examples/replica_restart.py — StepSum with an early replica "
        "crash healed by a declarative restart policy (the script "
        "contrasts no-crash / no-restart / restart)")


# ------------------------------------------ generated grids (grid:*)
#: one tiny problem per generated-grid point: the grids explore
#: *schedules and toggles*, not problem sizes, so points stay cheap
GRID_KB = KernelBenchConfig(nx=8, ny=8, nz=8, reps=1)

#: failure-storm horizon of the ``grid:failures`` family (well inside
#: the tiny kernel-bench run's virtual time)
GRID_HORIZON = 2e-3

#: ``grid:failures`` schedule builders, one per registered kind —
#: every :data:`repro.scenarios.SCHEDULE_KINDS` member with events
def _grid_schedule(kind: str, seed: int) -> FailureSchedule:
    if kind == "fixed":
        # deterministic "seeded" fixed schedule: one early crash whose
        # time walks with the seed
        return FixedFailures(((0, seed % 2,
                               (seed % 13 + 1) * GRID_HORIZON / 16),))
    if kind == "poisson":
        return PoissonFailures(rate=3e4, seed=seed, horizon=GRID_HORIZON)
    if kind == "weibull":
        return WeibullFailures(scale=1e-4, shape=0.7, seed=seed,
                               horizon=GRID_HORIZON)
    if kind == "ipoisson":
        return InhomogeneousPoissonFailures(
            rates=RateSpec((ConstantRate(2e4),
                            SinusoidRate(mean=2e4, amplitude=1e4,
                                         period=1e-3))),
            seed=seed, horizon=GRID_HORIZON)
    if kind == "maintenance":
        return MaintenanceWindowFailures(
            base_rate=1e4, window_rate=8e4, period=1e-3, window=2e-4,
            offset=1e-4, seed=seed, horizon=GRID_HORIZON)
    if kind == "cascade":
        return CascadingFailures(rate=3e4, multiplier=10.0, window=5e-4,
                                 neighbor_distance=1, seed=seed,
                                 horizon=GRID_HORIZON)
    raise KeyError(kind)


#: every registered schedule kind with events (all of
#: :data:`repro.scenarios.SCHEDULE_KINDS` except the vacuous "none")
_GRID_FAILURE_KINDS = ("fixed", "poisson", "weibull", "ipoisson",
                       "maintenance", "cascade")


def _build_failures_point(kind: str, seed: int, fd: float) -> Scenario:
    return Scenario(app="hpccg_kernels", config=GRID_KB, n_logical=2,
                    mode="intra", fd_delay=fd,
                    failures=_grid_schedule(kind, seed))


def _build_hpccg_point(mode: str, n: int, nx: int) -> Scenario:
    return Scenario(app="hpccg_kernels",
                    config=dataclasses.replace(GRID_KB, nx=nx),
                    n_logical=n, mode=mode)


def _build_restart_point(storm: str, policy: str, seed: int) -> Scenario:
    schedule = dataclasses.replace(RESTART_STORMS[storm], seed=seed)
    return Scenario(app="stepsum", config=StepSumConfig(), n_logical=2,
                    mode="intra", failures=schedule,
                    restart=RESTART_POLICIES[policy])


def _register_grids() -> None:
    register_grid(
        "failures",
        axes={"kind": _GRID_FAILURE_KINDS,
              "seed": tuple(range(64)),
              "fd": (25e-6, 50e-6, 100e-6)},
        build=_build_failures_point,
        description="failure-universe sweep: every schedule kind x 64 "
                    "seeds x 3 detection delays on a tiny intra "
                    "kernel-bench run")
    register_grid(
        "hpccg",
        axes={"mode": ("native", "sdr", "intra"),
              "n": (2, 4, 8),
              "nx": (8, 16)},
        build=_build_hpccg_point,
        description="kernel-bench shape sweep: mode x logical ranks x "
                    "problem width (Fig. 5 methodology, tiny sizes)")
    register_grid(
        "restart",
        axes={"storm": tuple(sorted(RESTART_STORMS)),
              "policy": tuple(sorted(RESTART_POLICIES)),
              "seed": tuple(range(8))},
        build=_build_restart_point,
        description="restart extension at scale: failure storm x "
                    "restart policy x storm seed on StepSum")


_register_examples()
_register_restart_grid()
_register_grids()
