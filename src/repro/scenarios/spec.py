"""The frozen :class:`Scenario` spec and its dict/JSON codec.

A scenario is *first-class data*: everything that distinguishes one run
of one program in the paper's methodology — application + problem
configuration, logical rank count, execution mode, replication degree
and placement spread, scheduler and inout-copy strategy, the machine and
network models, and the failure schedule — packed into one frozen,
hashable, picklable value with an exact dict/JSON round-trip.

Because a scenario is pure data, it is also a *cache key*: the sweep
driver memoizes results on the scenario's stable serialization, so two
figures (or a figure and an example) that evaluate the same scenario
share one simulation (see :func:`repro.scenarios.run.sweep_scenarios`).

Construct them directly, derive variants with :meth:`Scenario.replace`
or :meth:`Scenario.with_overrides` (the CLI's ``--set key=value``
path), and run them with :func:`repro.scenarios.run.run_scenario`.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import json
import sys
import typing as _t

from ..intra import MODES, SCHEDULERS, CopyStrategy, Scheduler, make_scheduler
from ..netmodel import (GRID5000_MACHINE, GRID5000_NETWORK, MachineSpec,
                        NetworkSpec, TESTBENCH_MACHINE, TESTBENCH_NETWORK)
from .failures import NO_FAILURES, FailureSchedule
from .policies import RESTART_TRIGGERS, RestartPolicy

#: named machine models a scenario can reference (extensible)
MACHINES: _t.Dict[str, MachineSpec] = {
    "grid5000": GRID5000_MACHINE,
    "grid5000-2015": GRID5000_MACHINE,
    "testbench": TESTBENCH_MACHINE,
}

#: named network models a scenario can reference (extensible)
NETWORKS: _t.Dict[str, NetworkSpec] = {
    "grid5000": GRID5000_NETWORK,
    "grid5000-2015": GRID5000_NETWORK,
    "testbench": TESTBENCH_NETWORK,
}

#: scenario fields that make no sense on the native baseline; stripped
#: by :func:`baseline_overrides` so a figure-wide ``--set mode=intra``
#: does not destroy the figure's reference run
_REPLICATION_ONLY = frozenset({"mode", "degree", "spread", "scheduler",
                               "copy_strategy", "failures", "fd_delay",
                               "restart"})


# --------------------------------------------------------------- codec
#: class name → class, for every type the codec may need to rebuild
_CODEC_TYPES: _t.Dict[str, _t.Type[_t.Any]] = {}


def register_codec_type(cls: _t.Type[_t.Any]) -> _t.Type[_t.Any]:
    """Register a dataclass or enum so scenario (de)serialization can
    rebuild instances of it.  App config classes are registered
    automatically by :func:`repro.scenarios.apps.register_app`."""
    _CODEC_TYPES[cls.__name__] = cls
    return cls


for _cls in (MachineSpec, NetworkSpec, CopyStrategy, RestartPolicy):
    register_codec_type(_cls)


#: an extension hook for the codec: ``hook(obj, recurse)`` returns the
#: encoding/decoding of a type the base codec does not know, or
#: ``NotImplemented`` to fall through (``recurse`` re-enters the full
#: codec, extension included).  :mod:`repro.results` layers its numpy
#: payload support on this — one marker vocabulary, one implementation.
CodecExtension = _t.Callable[[_t.Any, _t.Callable[[_t.Any], _t.Any]],
                             _t.Any]


def _intern_if_namelike(value: _t.Any) -> _t.Any:
    """Intern identifier-like decoded strings (``"intra"``, app names).

    Mirrors the auto-interning registry-literal scenarios get from the
    compiler, so a scenario decoded from JSON (a fabric worker, a
    service request) produces *pickle-byte-identical* results: pickle
    memoizes by object identity, and without interning the decoded
    ``mode`` string would serialize as a fresh string where the
    literal-built scenario's shares a memo slot (``repro.fabric``'s
    differential tests pin this parity).  Non-identifier strings are
    left alone — the compiler would not have interned those either.
    """
    if isinstance(value, str) and value.isidentifier():
        return sys.intern(value)
    return value


def encode_value(obj: _t.Any, *,
                 extension: _t.Optional[CodecExtension] = None) -> _t.Any:
    """Lower ``obj`` to plain JSON types, reversibly.

    Tuples, frozensets, enums and (registered) dataclasses are wrapped
    in single-key ``{"$kind": ...}`` markers so :func:`decode_value`
    restores the exact Python value — the round-trip is an identity.
    """
    def rec(v: _t.Any) -> _t.Any:
        return encode_value(v, extension=extension)

    if extension is not None:
        out = extension(obj, rec)
        if out is not NotImplemented:
            return out
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"$enum": [type(obj).__name__, obj.name]}
    if isinstance(obj, FailureSchedule):
        return {"$failures": obj.to_dict()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _CODEC_TYPES:
            raise TypeError(
                f"cannot serialize {name}: call "
                f"repro.scenarios.register_codec_type({name}) first")
        fields = {f.name: rec(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"$dc": [name, fields]}
    if isinstance(obj, tuple):
        return {"$tuple": [rec(v) for v in obj]}
    if isinstance(obj, (set, frozenset)):
        items = sorted(obj, key=lambda v: (type(v).__name__, repr(v)))
        return {"$frozenset": [rec(v) for v in items]}
    if isinstance(obj, list):
        return [rec(v) for v in obj]
    if isinstance(obj, dict):
        bad = [k for k in obj if not isinstance(k, str)]
        if bad:
            raise TypeError(f"only str dict keys serialize; got {bad!r}")
        return {k: rec(v) for k, v in obj.items()}
    raise TypeError(f"cannot serialize {type(obj).__name__} "
                    f"({obj!r}) into a scenario")


def decode_value(obj: _t.Any, *,
                 extension: _t.Optional[CodecExtension] = None) -> _t.Any:
    """Inverse of :func:`encode_value` (pass the matching
    ``extension``)."""
    def rec(v: _t.Any) -> _t.Any:
        return decode_value(v, extension=extension)

    if extension is not None:
        out = extension(obj, rec)
        if out is not NotImplemented:
            return out
    if isinstance(obj, list):
        return [rec(v) for v in obj]
    if not isinstance(obj, dict):
        return obj
    if set(obj) == {"$enum"}:
        name, member = obj["$enum"]
        return getattr(_codec_type(name), member)
    if set(obj) == {"$failures"}:
        return FailureSchedule.from_dict(obj["$failures"])
    if set(obj) == {"$dc"}:
        name, fields = obj["$dc"]
        return _codec_type(name)(**{k: rec(v)
                                    for k, v in fields.items()})
    if set(obj) == {"$tuple"}:
        return tuple(rec(v) for v in obj["$tuple"])
    if set(obj) == {"$frozenset"}:
        return frozenset(rec(v) for v in obj["$frozenset"])
    return {k: rec(v) for k, v in obj.items()}


def _codec_type(name: str) -> _t.Type[_t.Any]:
    cls = _CODEC_TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown serialized type {name!r}; register it "
                         f"with repro.scenarios.register_codec_type")
    return cls


# ------------------------------------------------------------ the spec
@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified run of one program in one configuration.

    Attributes
    ----------
    app:
        Registered application name (see
        :mod:`repro.scenarios.apps`) or an importable
        ``"module:qualname"`` reference to a program generator.
    config:
        The app's problem configuration (a registered frozen dataclass),
        or ``None`` for programs taking no config argument.
    n_logical:
        Logical (application-visible) rank count.  Physical process
        count follows from mode/degree/spread via ``nodes_for``.
    mode:
        ``"native"`` | ``"sdr"`` | ``"intra"`` (the paper's three
        configurations).
    degree / spread:
        Replication degree and replica placement spread (replicated
        modes only).
    machine / network:
        A name from :data:`MACHINES` / :data:`NETWORKS` or an inline
        :class:`~repro.netmodel.MachineSpec` /
        :class:`~repro.netmodel.NetworkSpec`.
    distance_model:
        Cluster distance model (``"switch"`` or ``"linear"``).
    scheduler:
        Task scheduler name from :data:`repro.intra.SCHEDULERS`, or
        ``None`` for the launcher default (static block).
    copy_strategy:
        inout-protection strategy (intra mode).
    fd_delay:
        Failure-detection delay of the replicated runtime, seconds.
    failures:
        Declarative :class:`~repro.scenarios.failures.FailureSchedule`.
        Installed on replicated runs; native runs have no replicas to
        kill, so the schedule is vacuous there.
    restart:
        Optional :class:`~repro.scenarios.policies.RestartPolicy`: dead
        replicas respawn and rejoin work sharing per the policy (§VI
        restart extension; requires ``mode="intra"``, ``degree=2`` and
        an app registered with a ``restartable`` factory).  ``None``
        (the default) leaves crashes permanent.  The field is omitted
        from serialization and cache keys while at its default, so
        every pre-existing scenario keeps its exact cache key.
    """

    app: str
    config: _t.Any = None
    n_logical: int = 4
    mode: str = "native"
    degree: int = 2
    spread: int = 1
    machine: _t.Union[str, MachineSpec] = "grid5000"
    network: _t.Union[str, NetworkSpec] = "grid5000"
    distance_model: str = "switch"
    scheduler: _t.Optional[str] = None
    copy_strategy: CopyStrategy = CopyStrategy.LAZY
    fd_delay: float = 50e-6
    failures: FailureSchedule = NO_FAILURES
    restart: _t.Optional[RestartPolicy] = dataclasses.field(
        default=None, metadata={"omit_if_default": True})

    def __post_init__(self) -> None:
        if not isinstance(self.app, str) or not self.app:
            raise ValueError("app must be a non-empty string")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one "
                             f"of {MODES}")
        if self.n_logical < 1:
            raise ValueError("n_logical must be >= 1")
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.spread < 1:
            raise ValueError("spread must be >= 1")
        if self.fd_delay < 0:
            raise ValueError("fd_delay must be non-negative")
        if isinstance(self.copy_strategy, str):
            object.__setattr__(self, "copy_strategy",
                               _parse_copy_strategy(self.copy_strategy))
        if isinstance(self.scheduler, Scheduler):
            object.__setattr__(self, "scheduler", self.scheduler.name)
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}; "
                             f"expected one of {sorted(SCHEDULERS)}")
        if isinstance(self.failures, dict):
            object.__setattr__(self, "failures",
                               FailureSchedule.from_dict(self.failures))
        if not isinstance(self.failures, FailureSchedule):
            raise ValueError("failures must be a FailureSchedule")
        if isinstance(self.restart, dict):
            object.__setattr__(self, "restart",
                               RestartPolicy.from_dict(self.restart))
        if self.restart is not None:
            if not isinstance(self.restart, RestartPolicy):
                raise ValueError("restart must be a RestartPolicy, its "
                                 "to_dict() mapping, or None")
            if self.mode != "intra":
                raise ValueError(
                    f"restart policies require mode='intra' (work "
                    f"sharing is what a restart recovers), got mode="
                    f"{self.mode!r}")
            if self.degree != 2:
                raise ValueError(
                    "restart policies require degree=2 (the paper's "
                    "configuration; with a single survivor there is no "
                    f"schedule-agreement race), got degree={self.degree}")
        self.resolved_machine()   # validates names / types
        self.resolved_network()

    # ------------------------------------------------------- resolution
    def resolved_machine(self) -> MachineSpec:
        """The concrete machine model."""
        return _resolve_named(self.machine, MACHINES, MachineSpec,
                              "machine")

    def resolved_network(self) -> NetworkSpec:
        """The concrete network model."""
        return _resolve_named(self.network, NETWORKS, NetworkSpec,
                              "network")

    def make_scheduler(self) -> _t.Optional[Scheduler]:
        """A fresh scheduler instance, or ``None`` for the default."""
        return None if self.scheduler is None \
            else make_scheduler(self.scheduler)

    # -------------------------------------------------------- deriving
    def replace(self, **changes: _t.Any) -> "Scenario":
        """A copy with the given fields replaced (validated anew)."""
        return dataclasses.replace(self, **changes)

    def with_failures(self, schedule: FailureSchedule) -> "Scenario":
        """A copy carrying ``schedule`` as its failure workload."""
        return self.replace(failures=schedule)

    def with_restart(self, policy: _t.Optional[RestartPolicy]
                     ) -> "Scenario":
        """A copy carrying ``policy`` as its restart behaviour
        (``None`` makes crashes permanent again)."""
        return self.replace(restart=policy)

    def with_overrides(self, overrides: _t.Mapping[str, _t.Any]
                       ) -> "Scenario":
        """Apply ``--set``-style overrides; returns a new, re-validated
        scenario (``self`` is never mutated — scenarios are frozen).

        Parameters
        ----------
        overrides:
            Mapping of override keys to values, as produced by
            :func:`parse_override` from CLI ``--set key=value``
            expressions.  Keys are:

            * scenario field names — ``degree``, ``mode``,
              ``n_logical``, ``scheduler``, ... (see the class
              docstring for the full list);
            * dotted config fields — ``config.nx`` replaces one field
              of the app's config dataclass;
            * ``config`` — replaces the whole config (a codec dict from
              :func:`encode_value` or a config instance);
            * ``failures`` — a :class:`~repro.scenarios.failures.
              FailureSchedule` or its ``to_dict`` form, e.g.
              ``{"kind": "poisson", "rate": 400, "seed": 1,
              "horizon": 0.005}``.

        Values are coerced toward the type of the value they replace
        (ints promote to floats, lists become tuples or frozensets,
        ``"true"``/``"false"`` strings become bools, copy-strategy and
        failure-schedule dicts are decoded), so CLI string literals land
        correctly.

        Raises
        ------
        ValueError
            On an unknown scenario or config field — the message lists
            the valid field names — and on values the target field's
            validation rejects.
        """
        if not overrides:
            return self
        scalar: _t.Dict[str, _t.Any] = {}
        cfg = self.config
        for key, raw in overrides.items():
            if key.startswith("config."):
                fname = key[len("config."):]
                if not (dataclasses.is_dataclass(cfg)
                        and not isinstance(cfg, type)):
                    raise ValueError(
                        f"cannot set {key!r}: scenario has no structured "
                        f"config (config={cfg!r})")
                cfg_fields = [f.name for f in dataclasses.fields(cfg)]
                if fname not in cfg_fields:
                    raise ValueError(
                        f"unknown config field {fname!r} for "
                        f"{type(cfg).__name__}; valid config fields: "
                        f"{', '.join(sorted(cfg_fields))}")
                cur = getattr(cfg, fname)
                cfg = dataclasses.replace(
                    cfg, **{fname: _coerce_like(cur, raw)})
            elif key == "config":
                cfg = decode_value(raw) if isinstance(raw, dict) else raw
            elif key == "failures":
                scalar[key] = (FailureSchedule.from_dict(raw)
                               if isinstance(raw, dict) else raw)
            elif key == "restart":
                scalar[key] = (RestartPolicy.from_dict(raw)
                               if isinstance(raw, dict) else raw)
            else:
                fields = [f.name for f in dataclasses.fields(self)]
                if key not in fields:
                    raise ValueError(
                        f"unknown scenario field {key!r}; valid fields: "
                        f"{', '.join(sorted(fields))} (config fields via "
                        f"config.<name>)")
                scalar[key] = _coerce_like(getattr(self, key), raw)
        return dataclasses.replace(self, config=cfg, **scalar)

    # ------------------------------------------------------ round-trip
    def to_dict(self) -> _t.Dict[str, _t.Any]:
        """Plain-JSON-types dict; ``Scenario.from_dict`` is its exact
        inverse.

        Fields flagged ``omit_if_default`` (e.g. ``restart``) are
        skipped while at their default, so dicts — and the cache keys
        hashed from them — written before such a field existed stay
        byte-identical."""
        return {f.name: encode_value(getattr(self, f.name))
                for f in dataclasses.fields(self)
                if not (f.metadata.get("omit_if_default")
                        and getattr(self, f.name) == f.default)}

    @classmethod
    def from_dict(cls, data: _t.Mapping[str, _t.Any]) -> "Scenario":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**{k: _intern_if_namelike(decode_value(v))
                      for k, v in data.items()})

    def to_json(self, **dumps_kw: _t.Any) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kw)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One-line human description (used by ``--list``)."""
        bits = [self.app, f"n={self.n_logical}", self.mode]
        if self.mode != "native":
            bits.append(f"d={self.degree}")
            if self.spread != 1:
                bits.append(f"spread={self.spread}")
        if self.scheduler:
            bits.append(self.scheduler)
        if self.failures != NO_FAILURES:
            bits.append(f"failures={self.failures.kind}")
        if self.restart is not None:
            bits.append(f"restart={self.restart.trigger}")
        return " ".join(bits)


def _resolve_named(value: _t.Any, table: _t.Mapping[str, _t.Any],
                   spec_cls: _t.Type[_t.Any], what: str) -> _t.Any:
    if isinstance(value, spec_cls):
        return value
    if isinstance(value, str):
        if value in table:
            return table[value]
        raise ValueError(f"unknown {what} {value!r}; expected one of "
                         f"{sorted(set(table))} or an inline "
                         f"{spec_cls.__name__}")
    raise ValueError(f"{what} must be a name or a {spec_cls.__name__}, "
                     f"got {type(value).__name__}")


def machine_name_for(spec: MachineSpec) -> _t.Union[str, MachineSpec]:
    """The registry name of ``spec`` if it is a named machine (so
    scenarios built from the singletons serialize — and cache — by
    name), else ``spec`` itself."""
    for name, known in MACHINES.items():
        if known == spec:
            return name
    return spec


def network_name_for(spec: NetworkSpec) -> _t.Union[str, NetworkSpec]:
    """Like :func:`machine_name_for`, for network models."""
    for name, known in NETWORKS.items():
        if known == spec:
            return name
    return spec


def _parse_copy_strategy(value: str) -> CopyStrategy:
    try:
        return CopyStrategy(value)
    except ValueError:
        try:
            return CopyStrategy[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown copy strategy {value!r}; expected one of "
                f"{[s.value for s in CopyStrategy]}") from None


def _coerce_like(current: _t.Any, raw: _t.Any) -> _t.Any:
    """Nudge an override value toward the type it replaces."""
    if isinstance(current, CopyStrategy) and isinstance(raw, str):
        return _parse_copy_strategy(raw)
    if isinstance(current, frozenset) and isinstance(raw, (list, tuple,
                                                           set)):
        return frozenset(raw)
    if isinstance(current, tuple) and isinstance(raw, (list, tuple)):
        return tuple(raw)
    if isinstance(current, bool) and isinstance(raw, str):
        if raw.lower() in ("true", "1", "yes", "on"):
            return True
        if raw.lower() in ("false", "0", "no", "off"):
            return False
    if isinstance(current, float) and isinstance(raw, int) \
            and not isinstance(raw, bool):
        return float(raw)
    return raw


def parse_override(expr: str) -> _t.Tuple[str, _t.Any]:
    """Parse one CLI ``--set key=value`` expression.

    The value is read as a Python literal when possible (``3``,
    ``2.5``, ``(8, 16)``, ``{"kind": "poisson", ...}``) and kept as a
    plain string otherwise (``mode=intra``).
    """
    key, sep, value = expr.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ValueError(f"override {expr!r} is not of the form "
                         f"key=value")
    value = value.strip()
    try:
        return key, ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return key, value


def baseline_overrides(overrides: _t.Mapping[str, _t.Any]
                       ) -> _t.Dict[str, _t.Any]:
    """The subset of ``overrides`` safe to apply to a figure's native
    baseline point (drops replication-only knobs such as ``mode`` and
    ``degree``, so ``--set mode=intra`` reconfigures the replicated
    points without destroying the reference run)."""
    return {k: v for k, v in overrides.items()
            if k not in _REPLICATION_ONLY}
