"""Communicators: membership, context isolation, bound endpoints.

A :class:`Communicator` is an ordered group of endpoints plus a context
id that isolates its traffic (MPI semantics).  Rank programs use a
:class:`BoundComm` — a communicator bound to the calling process — whose
blocking operations are generator sub-routines::

    data = yield from comm.recv(source=0, tag=7)
    yield from comm.send(data, dest=1)
    total = yield from comm.allreduce(local, op="sum")

Nonblocking operations (:meth:`BoundComm.isend`, :meth:`BoundComm.irecv`)
return :class:`~repro.mpi.request.Request` handles immediately; complete
them with ``wait``/``waitall``/``waitany``.

Collective algorithms live in :class:`~repro.mpi.collectives.CollectiveOps`
and are shared with the replicated communicator.
"""

from __future__ import annotations

import typing as _t

from .collectives import CollectiveOps
from .datatypes import copy_payload, payload_nbytes
from .errors import CommunicatorError
from .message import ANY_SOURCE, ANY_TAG
from .request import Request

if _t.TYPE_CHECKING:  # pragma: no cover
    from .world import MpiWorld, ProcContext


class Communicator:
    """An ordered group of endpoint ids with a private context."""

    def __init__(self, world: "MpiWorld", endpoint_ids: _t.Sequence[int],
                 name: str = ""):
        if len(endpoint_ids) == 0:
            raise CommunicatorError("communicator needs at least one member")
        if len(set(endpoint_ids)) != len(endpoint_ids):
            raise CommunicatorError("duplicate endpoint in communicator")
        self.world = world
        self.endpoint_ids = list(endpoint_ids)
        self.context = world.new_context()
        self.name = name or f"comm{self.context}"
        self._rank_of = {ep: r for r, ep in enumerate(self.endpoint_ids)}

    @property
    def size(self) -> int:
        return len(self.endpoint_ids)

    def rank_of_endpoint(self, endpoint_id: int) -> int:
        try:
            return self._rank_of[endpoint_id]
        except KeyError:
            raise CommunicatorError(
                f"endpoint {endpoint_id} is not a member of {self.name}"
            ) from None

    def endpoint_of_rank(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"rank {rank} outside [0, {self.size}) in {self.name}")
        return self.endpoint_ids[rank]

    def replace_endpoint(self, old_endpoint: int, new_endpoint: int) -> None:
        """Swap a member endpoint in place (same rank), used when a
        crashed replica is restarted on a fresh endpoint.  Operations
        resolve ranks to endpoints per call, so live BoundComm handles
        observe the change immediately."""
        rank = self.rank_of_endpoint(old_endpoint)
        if new_endpoint in self._rank_of:
            raise CommunicatorError(
                f"endpoint {new_endpoint} already a member of {self.name}")
        self.endpoint_ids[rank] = new_endpoint
        del self._rank_of[old_endpoint]
        self._rank_of[new_endpoint] = rank

    def bind(self, ctx: "ProcContext") -> "BoundComm":
        """Bind this communicator to a calling process."""
        return BoundComm(self, ctx)


class BoundComm(CollectiveOps):
    """A communicator as seen from one member process."""

    def __init__(self, comm: Communicator, ctx: "ProcContext"):
        self.comm = comm
        self.ctx = ctx
        self.rank = comm.rank_of_endpoint(ctx.endpoint.id)

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def sim(self):
        return self.ctx.sim

    # ---------------------------------------------------------------- p2p
    def isend(self, data: _t.Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send.  The payload is copied at post time (the
        caller may immediately reuse its buffer)."""
        self.check_tag(tag)
        dst_ep = self.comm.endpoint_of_rank(dest)
        return self.ctx.world.post_send(
            src=self.ctx.endpoint, dst_endpoint=dst_ep,
            src_rank=self.rank, tag=tag, context=self.comm.context,
            payload=copy_payload(data), nbytes=payload_nbytes(data))

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive."""
        self.check_tag(tag, allow_any=True)
        if source == ANY_SOURCE:
            src_ep = ANY_SOURCE
        else:
            src_ep = self.comm.endpoint_of_rank(source)
        return self.ctx.endpoint.post_recv(
            source_endpoint=src_ep, source_rank=source, tag=tag,
            context=self.comm.context)
