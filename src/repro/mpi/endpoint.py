"""Per-physical-process message engine: mailbox, matching, failure hooks.

Every simulated physical process owns exactly one :class:`Endpoint`.  The
endpoint implements MPI's two-queue matching discipline:

* the **unexpected queue** holds envelopes that arrived before a matching
  receive was posted,
* the **posted queue** holds receives waiting for a matching envelope.

Matching is FIFO on both sides, which (together with the FIFO network
path) preserves MPI's non-overtaking guarantee.

Failure integration: when a peer endpoint is declared dead (by the
failure detector in :mod:`repro.replication`), posted receives that name
that peer as their *only* possible source fail with
:class:`~repro.mpi.errors.RankFailure`, and new receives towards it fail
at post time — unless a matching message already arrived, which is the
"replica died after sending the full update" case of §III-B2.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from ..simulate import Event, Simulator
from .errors import RankFailure
from .message import ANY_SOURCE, Envelope, Status
from .request import Request


@dataclasses.dataclass
class _PostedRecv:
    source_endpoint: int  # resolved world endpoint id, or ANY_SOURCE
    source_rank: int      # comm-local rank (for Status), or ANY_SOURCE
    tag: int
    context: int
    request: Request


class Endpoint:
    """Message engine of one physical process."""

    def __init__(self, sim: Simulator, endpoint_id: int, node: int,
                 name: str = ""):
        self.sim = sim
        self.id = endpoint_id
        self.node = node
        self.name = name or f"ep{endpoint_id}"
        self.alive = True
        self.unexpected: _t.Deque[Envelope] = collections.deque()
        self.posted: _t.List[_PostedRecv] = []
        #: FIFO enforcement: next expected seq and a reorder buffer per
        #: (src_endpoint, context).  The network path is FIFO for
        #: inter-node traffic, but intra-node transfers have
        #: size-dependent delay and could overtake; MPI's non-overtaking
        #: guarantee requires in-order matching per channel.
        self._expected_seq: _t.Dict[_t.Tuple[int, int], int] = {}
        self._reorder: _t.Dict[_t.Tuple[int, int],
                               _t.Dict[int, Envelope]] = {}
        #: endpoints this process has learnt are dead (fed by the FD)
        self.known_dead: _t.Set[int] = set()
        #: per-destination send sequence numbers (non-overtaking checks)
        self._send_seq: _t.DefaultDict[_t.Tuple[int, int], int] = \
            collections.defaultdict(int)
        #: statistics
        self.delivered_count = 0

    # -- sending -----------------------------------------------------------
    def next_seq(self, dst_endpoint: int, context: int) -> int:
        key = (dst_endpoint, context)
        self._send_seq[key] += 1
        return self._send_seq[key]

    # -- delivery (called by the transport when the last byte arrives) ----
    def deliver(self, env: Envelope) -> None:
        """Deposit an arrived envelope; matches a posted receive or queues
        as unexpected.  Delivery to a dead endpoint is dropped (the crash
        already happened; nobody will ever read the mailbox).

        Envelopes arriving out of order on one (source, context) channel
        are held back until their predecessors arrive, preserving MPI's
        non-overtaking guarantee.  A crashed sender can only create a
        *suffix* gap (messages are injected in post order), so held-back
        envelopes never get stuck behind a retracted one.
        """
        if not self.alive:
            return
        key = (env.src_endpoint, env.context)
        expected = self._expected_seq.get(key, 1)
        if env.seq != expected:
            self._reorder.setdefault(key, {})[env.seq] = env
            return
        self._deliver_in_order(env)
        expected = env.seq + 1
        buffered = self._reorder.get(key)
        while buffered and expected in buffered:
            self._deliver_in_order(buffered.pop(expected))
            expected += 1
        self._expected_seq[key] = expected

    def _deliver_in_order(self, env: Envelope) -> None:
        self.delivered_count += 1
        for i, pr in enumerate(self.posted):
            if env.matches(pr.source_endpoint, pr.tag, pr.context,
                           source_rank=pr.source_rank):
                del self.posted[i]
                status = Status(source=env.src_rank, tag=env.tag,
                                nbytes=env.nbytes)
                pr.request.event.succeed((env.payload, status))
                return
        self.unexpected.append(env)

    # -- receiving ---------------------------------------------------------
    def post_recv(self, source_endpoint: int, source_rank: int, tag: int,
                  context: int) -> Request:
        """Post a receive; returns its :class:`Request`.

        If a matching envelope is already queued, the request completes
        immediately.  If the (explicit) source is known dead and nothing
        matching is queued, the request fails immediately.
        """
        ev = Event(self.sim, label=f"recv@{self.name}")
        req = Request(ev, kind="recv")
        for i, env in enumerate(self.unexpected):
            if env.matches(source_endpoint, tag, context,
                           source_rank=source_rank):
                del self.unexpected[i]
                status = Status(source=env.src_rank, tag=env.tag,
                                nbytes=env.nbytes)
                ev.succeed((env.payload, status))
                return req
        if (source_endpoint != ANY_SOURCE
                and source_endpoint in self.known_dead):
            ev.defused = True  # the poster is handed the failure directly
            ev.fail(RankFailure(source_endpoint, "known dead at post time"))
            return req
        self.posted.append(_PostedRecv(source_endpoint, source_rank, tag,
                                       context, req))
        return req

    # -- failure hooks -------------------------------------------------------
    def peer_died(self, dead_endpoint: int) -> None:
        """The failure detector tells this endpoint that a peer crashed.

        Pending receives whose only possible source is the dead peer fail
        (no message from it can arrive anymore — in-flight messages from
        the crashed process were killed with it)."""
        self.known_dead.add(dead_endpoint)
        still_posted: _t.List[_PostedRecv] = []
        for pr in self.posted:
            if pr.source_endpoint == dead_endpoint:
                pr.request.event.defused = True
                pr.request.event.fail(
                    RankFailure(dead_endpoint, "peer crashed"))
            else:
                still_posted.append(pr)
        self.posted = still_posted

    def fail_posted(self, match_fn, exc_factory) -> int:
        """Fail every posted receive for which ``match_fn(posted)`` is
        true with ``exc_factory()``; returns the count.  Used by the
        replication manager to wake rank-matched receives when a whole
        logical rank is wiped out."""
        still = []
        failed = 0
        for pr in self.posted:
            if match_fn(pr):
                pr.request.event.defused = True
                pr.request.event.fail(exc_factory())
                failed += 1
            else:
                still.append(pr)
        self.posted = still
        return failed

    def kill(self) -> None:
        """Mark this endpoint dead (its owner process crashed)."""
        self.alive = False
        self.unexpected.clear()
        self.posted.clear()
