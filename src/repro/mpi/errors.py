"""MPI-layer exceptions."""

from __future__ import annotations


class MpiError(RuntimeError):
    """Base class for simulated-MPI errors."""


class CommunicatorError(MpiError):
    """Misuse of a communicator (bad rank, wrong membership, ...)."""


class TruncationError(MpiError):
    """A receive matched a message it cannot represent (reserved for
    future buffer-size checking; kept for API completeness)."""


class RankFailure(MpiError):
    """A receive was posted towards (or was pending on) a crashed rank.

    This is the error that Algorithm 1 (line 41: "if no recv failed")
    observes: the intra-parallelization runtime catches it and reassigns
    the dead replica's tasks.
    """

    def __init__(self, endpoint_id: int, detail: str = ""):
        msg = f"peer endpoint {endpoint_id} has failed"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.endpoint_id = endpoint_id
