"""Collective algorithms as a mixin over abstract point-to-point primitives.

:class:`CollectiveOps` implements the standard tree/ring collective
algorithms (binomial bcast/reduce/gather, dissemination barrier, ring
allgather, pairwise alltoall) in terms of five primitives a subclass must
provide:

* ``rank`` / ``size`` properties,
* ``isend(data, dest, tag) -> Request``,
* ``irecv(source, tag) -> Request``,
* ``sim`` property (for wait conditions).

Two subclasses use it: :class:`repro.mpi.communicator.BoundComm` (plain
MPI) and :class:`repro.replication.comm.ReplicatedComm` (each logical
message mirrored across replica planes).  Because the replicated
communicator's p2p primitives already tolerate replica failures, the
collectives inherit fault tolerance for free — which is exactly the
layering the paper assumes ("we assume that a state-machine replication
protocol for MPI processes is available").
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .errors import CommunicatorError
from .message import ANY_TAG
from .request import Request

# Internal tags for collective phases.  User tags must be >= 0; -1 is
# ANY_TAG; internal traffic uses <= -2 so it can never match user recvs.
TAG_BCAST = -2
TAG_REDUCE = -3
TAG_BARRIER = -4
TAG_ALLGATHER = -5
TAG_GATHER = -6
TAG_SCATTER = -7
TAG_ALLTOALL = -8

#: Reduction operators accepted by name.
REDUCE_OPS: _t.Dict[str, _t.Callable[[_t.Any, _t.Any], _t.Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}


def resolve_op(op: _t.Union[str, _t.Callable]) -> _t.Callable:
    """Turn an operator name (or callable) into a binary callable."""
    if callable(op):
        return op
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise CommunicatorError(
            f"unknown reduction op {op!r}; expected one of "
            f"{sorted(REDUCE_OPS)} or a callable") from None


class CollectiveOps:
    """Mixin: collectives + blocking p2p sugar over isend/irecv."""

    # -- abstract interface (provided by subclasses) ----------------------
    rank: int

    @property
    def size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def sim(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def isend(self, data: _t.Any, dest: int, tag: int = 0) -> Request:
        raise NotImplementedError  # pragma: no cover

    def irecv(self, source: int = -1, tag: int = ANY_TAG) -> Request:
        raise NotImplementedError  # pragma: no cover

    # ---------------------------------------------------- blocking sugar
    def send(self, data: _t.Any, dest: int, tag: int = 0):
        """Blocking send; returns when the message is injected (buffer
        reusable — eager-protocol semantics)."""
        req = self.isend(data, dest, tag)
        yield req.event

    def recv(self, source: int = -1, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        req = self.irecv(source, tag)
        payload, _status = yield req.event
        return payload

    def recv_with_status(self, source: int = -1, tag: int = ANY_TAG):
        """Blocking receive; returns ``(payload, Status)``."""
        req = self.irecv(source, tag)
        payload, status = yield req.event
        return payload, status

    def sendrecv(self, senddata: _t.Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Simultaneous send and receive (halo-exchange workhorse)."""
        rreq = self.irecv(source, recvtag)
        sreq = self.isend(senddata, dest, sendtag)
        payload, _status = yield rreq.event
        if not sreq.complete:
            yield sreq.event
        return payload

    # ------------------------------------------------------- completion
    def wait(self, req: Request):
        """Wait for one request; returns payload for receives."""
        value = yield req.event
        if req.kind == "recv":
            payload, _status = value
            return payload
        return None

    def waitall(self, reqs: _t.Sequence[Request]):
        """Wait for all requests; returns receive payloads (None for
        sends) in request order.

        If any request fails (peer crash), the first failure is raised
        after the *other* requests are defused — mirroring how
        ``MPI_Waitall`` reports errors without leaking pending handles.
        """
        ev = self.sim.all_of([r.event for r in reqs])
        try:
            values = yield ev
        except Exception:
            for r in reqs:
                r.defuse()
            raise
        out = []
        for req, value in zip(reqs, values):
            if req.kind == "recv":
                payload, _status = value
                out.append(payload)
            else:
                out.append(None)
        return out

    def waitany(self, reqs: _t.Sequence[Request]):
        """Wait for the first completed request; returns
        ``(index, payload-or-None)``."""
        idx, value = yield self.sim.any_of([r.event for r in reqs])
        if reqs[idx].kind == "recv":
            payload, _status = value
            return idx, payload
        return idx, None

    # ------------------------------------------------------- collectives
    def barrier(self):
        """Dissemination barrier: ⌈log₂p⌉ rounds."""
        size, rank = self.size, self.rank
        if size == 1:
            return
        k = 1
        while k < size:
            dest = (rank + k) % size
            src = (rank - k) % size
            yield from self.sendrecv(None, dest=dest, source=src,
                                     sendtag=TAG_BARRIER,
                                     recvtag=TAG_BARRIER)
            k *= 2

    def bcast(self, data: _t.Any, root: int = 0):
        """Binomial-tree broadcast; returns the broadcast value on every
        rank (root's ``data`` argument is ignored elsewhere)."""
        size, rank = self.size, self.rank
        if size == 1:
            return data
        rel = (rank - root) % size
        # Receive phase: a non-root rank's parent clears its lowest set
        # bit; it then owns the subtree spanned by the bits below it.
        if rel != 0:
            mask = 1
            while not rel & mask:
                mask *= 2
            parent = (rel - mask + root) % size
            data = yield from self.recv(source=parent, tag=TAG_BCAST)
            mask //= 2
        else:
            mask = 1
            while mask * 2 < size:
                mask *= 2
        # Forward phase: relay down the subtree, highest child first.
        while mask > 0:
            if rel + mask < size:
                child = (rel + mask + root) % size
                yield from self.send(data, dest=child, tag=TAG_BCAST)
            mask //= 2
        return data

    def reduce(self, data: _t.Any, op: _t.Union[str, _t.Callable] = "sum",
               root: int = 0):
        """Binomial-tree reduction; returns the result on ``root`` and
        ``None`` elsewhere."""
        fn = resolve_op(op)
        size, rank = self.size, self.rank
        acc = data
        if size == 1:
            return acc
        rel = (rank - root) % size
        mask = 1
        while mask < size:
            if rel & mask:
                parent = (rel - mask + root) % size
                yield from self.send(acc, dest=parent, tag=TAG_REDUCE)
                return None
            partner = rel + mask
            if partner < size:
                child_val = yield from self.recv(
                    source=(partner + root) % size, tag=TAG_REDUCE)
                acc = fn(acc, child_val)
            mask *= 2
        return acc

    def allreduce(self, data: _t.Any,
                  op: _t.Union[str, _t.Callable] = "sum"):
        """Reduce-to-rank-0 followed by broadcast (result on all ranks)."""
        root = 0
        reduced = yield from self.reduce(data, op=op, root=root)
        result = yield from self.bcast(reduced, root=root)
        return result

    def gather(self, data: _t.Any, root: int = 0):
        """Binomial-tree gather; returns the rank-ordered list on ``root``
        and ``None`` elsewhere."""
        size, rank = self.size, self.rank
        rel = (rank - root) % size
        bundle: _t.Dict[int, _t.Any] = {rank: data}
        mask = 1
        while mask < size:
            if rel & mask:
                parent = (rel - mask + root) % size
                yield from self.send(bundle, dest=parent, tag=TAG_GATHER)
                return None
            partner = rel + mask
            if partner < size:
                sub = yield from self.recv(
                    source=(partner + root) % size, tag=TAG_GATHER)
                bundle.update(sub)
            mask *= 2
        return [bundle[r] for r in range(size)]

    def allgather(self, data: _t.Any):
        """Ring allgather (p−1 steps, bandwidth-optimal); returns the
        rank-ordered list on every rank."""
        from .datatypes import copy_payload
        size, rank = self.size, self.rank
        out: _t.List[_t.Any] = [None] * size
        out[rank] = copy_payload(data)
        if size == 1:
            return out
        right = (rank + 1) % size
        left = (rank - 1) % size
        carry_rank, carry = rank, data
        for _ in range(size - 1):
            got = yield from self.sendrecv(
                (carry_rank, carry), dest=right, source=left,
                sendtag=TAG_ALLGATHER, recvtag=TAG_ALLGATHER)
            carry_rank, carry = got
            out[carry_rank] = carry
        return out

    def scatter(self, chunks: _t.Optional[_t.Sequence[_t.Any]],
                root: int = 0):
        """Root sends ``chunks[i]`` to rank *i*; returns the local chunk.

        Linear implementation (root posts p−1 isends) — fine for the
        setup phases where the apps use it.
        """
        from .datatypes import copy_payload
        size, rank = self.size, self.rank
        if rank == root:
            if chunks is None or len(chunks) != size:
                raise CommunicatorError(
                    f"scatter root needs exactly {size} chunks")
            reqs = [self.isend(chunks[r], dest=r, tag=TAG_SCATTER)
                    for r in range(size) if r != root]
            yield from self.waitall(reqs)
            return copy_payload(chunks[root])
        got = yield from self.recv(source=root, tag=TAG_SCATTER)
        return got

    def alltoall(self, chunks: _t.Sequence[_t.Any]):
        """Each rank sends ``chunks[i]`` to rank *i*; returns the received
        list indexed by source rank (pairwise-exchange algorithm)."""
        from .datatypes import copy_payload
        size, rank = self.size, self.rank
        if len(chunks) != size:
            raise CommunicatorError(f"alltoall needs exactly {size} chunks")
        out: _t.List[_t.Any] = [None] * size
        out[rank] = copy_payload(chunks[rank])
        reqs = [self.irecv(source=src, tag=TAG_ALLTOALL)
                for src in range(size) if src != rank]
        sends = [self.isend(chunks[dst], dest=dst, tag=TAG_ALLTOALL)
                 for dst in range(size) if dst != rank]
        got = yield from self.waitall(list(reqs) + list(sends))
        idx = 0
        for src in range(size):
            if src != rank:
                out[src] = got[idx]
                idx += 1
        return out

    # ------------------------------------------------------------ helpers
    @staticmethod
    def check_tag(tag: int, allow_any: bool = False) -> None:
        """User tags are >= 0; internal collective tags (<= -2) pass."""
        if tag >= 0:
            return
        if allow_any and tag == ANY_TAG:
            return
        if tag <= TAG_BCAST:
            return
        raise CommunicatorError(f"invalid tag {tag}")
