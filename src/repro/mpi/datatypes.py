"""Payload handling: sizes and copy semantics.

The simulated MPI passes Python objects between processes.  To keep the
simulation honest two properties must hold:

* **value semantics** — the receiver obtains an independent copy, so a
  sender mutating its buffer after the send cannot retroactively change
  a delivered message (this matters for replica-consistency checks);
* **size accounting** — the network model charges time proportional to
  the wire size of the payload.

Numpy arrays are the fast path (``nbytes``, ``np.copy``); scalars, bytes
and (nested) tuples/lists/dicts of those are also supported.
"""

from __future__ import annotations

import numbers
import typing as _t

import numpy as np

#: Wire size charged for a Python scalar (C double / int64 equivalent).
SCALAR_NBYTES = 8


def payload_nbytes(payload: _t.Any) -> int:
    """Wire size of ``payload`` in bytes.

    Sizes are deterministic (no pickling): numpy arrays report ``nbytes``,
    scalars count as 8 bytes, containers sum their elements.  ``None`` is
    a zero-byte control message.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, np.generic):
        return int(payload.nbytes)
    if isinstance(payload, (bool, numbers.Number)):
        return SCALAR_NBYTES
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v)
                   for k, v in payload.items())
    raise TypeError(
        f"cannot size payload of type {type(payload).__name__}; send numpy "
        f"arrays, scalars, bytes, or containers thereof")


def copy_payload(payload: _t.Any) -> _t.Any:
    """Deep-enough copy of ``payload`` to give the receiver value
    semantics.  Immutable objects are returned as-is."""
    if payload is None or isinstance(payload, (bool, numbers.Number, str,
                                               bytes)):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, np.generic):
        return payload  # immutable numpy scalar
    if isinstance(payload, (bytearray, memoryview)):
        return bytes(payload)
    if isinstance(payload, tuple):
        return tuple(copy_payload(x) for x in payload)
    if isinstance(payload, list):
        return [copy_payload(x) for x in payload]
    if isinstance(payload, dict):
        return {k: copy_payload(v) for k, v in payload.items()}
    raise TypeError(f"cannot copy payload of type {type(payload).__name__}")
