"""The simulated MPI "machine": processes, transport, job launcher.

:class:`MpiWorld` owns the simulator, the cluster/network models and all
endpoints.  A physical process is created with :meth:`MpiWorld.spawn`,
which returns a :class:`ProcContext` — the handle a rank program uses to
compute (charging virtual time through the roofline model) and to
communicate (through :class:`~repro.mpi.communicator.BoundComm`).

The convenience :func:`run_mpi_job` covers the common non-replicated
case: launch ``n`` ranks of one program over ``MPI_COMM_WORLD``, run to
completion, return each rank's result.
"""

from __future__ import annotations

import typing as _t

from ..netmodel import Cluster, Network, NetworkSpec, Slot, block_placement
from ..simulate import Event, Process, Simulator
from .communicator import BoundComm, Communicator
from .endpoint import Endpoint
from .errors import MpiError
from .message import Envelope
from .request import Request

#: segment kinds for :meth:`ProcContext.charge_batch` descriptors
SEG_COMPUTE = 0
SEG_MEMCPY = 1


class ProcContext:
    """Execution context of one simulated physical process.

    Rank programs are generator functions taking the context as first
    argument::

        def program(ctx, comm):
            yield ctx.compute(flops=1e6, bytes_moved=8e6)
            yield from comm.send(data, dest=1)

    Attributes
    ----------
    endpoint:
        The process's message engine.
    slot:
        Where the process runs (node, core).
    timers:
        Wall-clock time accumulated per named region via :meth:`region`
        (used to produce the "sections vs others" split of Figure 6).
    """

    def __init__(self, world: "MpiWorld", endpoint: Endpoint, slot: Slot,
                 name: str):
        self.world = world
        self.sim: Simulator = world.sim
        self.endpoint = endpoint
        self.slot = slot
        self.name = name
        self.process: _t.Optional[Process] = None
        self.timers: _t.Dict[str, float] = {}
        self.compute_time = 0.0
        #: intra-parallelization runtime, attached by the job launchers
        #: in :mod:`repro.intra.api` (None for raw MPI jobs)
        self.intra: _t.Optional[_t.Any] = None

    # ------------------------------------------------------------ compute
    def compute(self, flops: float = 0.0, bytes_moved: float = 0.0,
                active_cores: _t.Optional[int] = None) -> Event:
        """Charge roofline time for a kernel; ``yield`` the result.

        The descriptive label is only attached when a trace hook is
        installed — labelling is for trace assertions, and the f-string
        plus unpooled allocation are measurable on the compute-heavy
        hot path.
        """
        dt = self.world.cluster.machine.kernel_time(flops, bytes_moved,
                                                    active_cores)
        self.compute_time += dt
        if self.sim._trace is None:
            return self.sim.sleep(dt)
        return self.sim.timeout(dt, label=f"compute:{self.name}")

    def compute_batch(self, costs: _t.Sequence[_t.Tuple[float, float]],
                      active_cores: _t.Optional[int] = None
                      ) -> _t.Tuple[_t.Optional[Event], _t.List[float]]:
        """Charge a *sequence* of roofline kernel segments as ONE wake.

        ``costs`` is the multi-segment compute descriptor: one
        ``(flops, bytes_moved)`` pair per uninterrupted kernel segment.
        Instead of sleeping once per segment (N engine events, N
        generator resumes), the per-segment roofline times are
        accumulated with *exactly* the float arithmetic a chain of
        :meth:`compute` calls would have performed — ``t = t + dt`` per
        segment, ``compute_time += dt`` in the same order — and a single
        :meth:`~repro.simulate.Simulator.sleep_until` wake is scheduled
        for the final timestamp.  End times, accumulated timers and
        therefore all simulation results are bit-identical to the
        segment-by-segment path.

        Returns ``(event, stamps)``: ``event`` is the single wake to
        ``yield`` (``None`` when every segment is zero-cost — the
        sequential path would not have slept either), and ``stamps[i]``
        is the virtual time at which segment ``i`` completes, so callers
        can replay per-segment accounting (e.g.
        ``IntraStats.task_compute_time``) with unchanged arithmetic.

        Crash injection composes ("split on interrupt"): a kill
        scheduled mid-batch terminates the process at the exact
        scheduled virtual time — the single wake is simply abandoned.
        The equivalence guarantee covers everything *observable from
        surviving processes* (their clocks, results, timers, stats).
        The dead process's own context is NOT replayed segment by
        segment: its ``compute_time`` was charged for the whole batch
        up front and none of the batch's side effects ran, whereas the
        segment-by-segment path would have stopped partway.  Nothing in
        the repo aggregates a dead replica's context (the scenario
        runner reads surviving replicas only) — callers that want to
        must not batch.  Callers must also only batch stretches with no
        observable effects *between* segments (no sends, no hooks); see
        :class:`repro.intra.runtime.LocalIntraRuntime`.
        """
        machine = self.world.cluster.machine
        kernel_time = machine.kernel_time
        sim = self.sim
        t = sim.now
        compute_time = self.compute_time
        stamps: _t.List[float] = []
        append = stamps.append
        for flops, bytes_moved in costs:
            if flops or bytes_moved:
                dt = kernel_time(flops, bytes_moved, active_cores)
                compute_time += dt
                t = t + dt
            append(t)
        self.compute_time = compute_time
        if t > sim.now:
            return sim.sleep_until(t), stamps
        return None, stamps

    def charge_batch(self, segments: _t.Sequence[_t.Tuple[int, float, float]],
                     active_cores: _t.Optional[int] = None
                     ) -> _t.Tuple[_t.Optional[Event], _t.List[float]]:
        """:meth:`compute_batch` generalized to mixed segment kinds.

        ``segments`` is a sequence of ``(kind, a, b)`` descriptors:
        ``(SEG_COMPUTE, flops, bytes_moved)`` charges what one
        :meth:`compute` call would, ``(SEG_MEMCPY, nbytes, 0.0)`` what
        one :meth:`memcpy` call would.  The work-sharing runtime needs
        the mix because a local task may restore an `inout` protection
        copy (a memcpy) immediately before its kernel segment; batching
        the stretch as one wake must accumulate both with the exact
        float arithmetic of the interleaved call chain (``t = t + dt``
        per segment, ``compute_time += dt`` in the same order).

        Same return contract and same "split on interrupt" /
        observability caveats as :meth:`compute_batch` — and one more
        for callers: anything observable *between* segments (an update
        send, a subscribed protocol hook) must terminate the batch so
        it happens at its exact segment timestamp.  That split-on-send
        protocol lives in
        :meth:`repro.intra.runtime.IntraRuntime._execute_tasks_batched`.
        """
        machine = self.world.cluster.machine
        kernel_time = machine.kernel_time
        copy_time = machine.copy_time
        sim = self.sim
        t = sim.now
        compute_time = self.compute_time
        stamps: _t.List[float] = []
        append = stamps.append
        for kind, a, b in segments:
            if kind == SEG_COMPUTE:
                if a or b:
                    dt = kernel_time(a, b, active_cores)
                    compute_time += dt
                    t = t + dt
            else:
                dt = copy_time(a)
                compute_time += dt
                t = t + dt
            append(t)
        self.compute_time = compute_time
        if t > sim.now:
            return sim.sleep_until(t), stamps
        return None, stamps

    def memcpy(self, nbytes: float) -> Event:
        """Charge an in-memory copy (extra-copy of `inout` variables,
        application of received updates)."""
        dt = self.world.cluster.machine.copy_time(nbytes)
        self.compute_time += dt
        if self.sim._trace is None:
            return self.sim.sleep(dt)
        return self.sim.timeout(dt, label=f"memcpy:{self.name}")

    def sleep(self, duration: float) -> Event:
        """Idle for ``duration`` virtual seconds."""
        return self.sim.sleep(duration)

    # ------------------------------------------------------------ timing
    def region(self, name: str) -> "_Region":
        """Context manager accumulating wall-clock time into
        ``timers[name]``::

            with ctx.region("sections"):
                yield ctx.compute(...)
        """
        return _Region(self, name)

    @property
    def now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------ control
    @property
    def alive(self) -> bool:
        return self.endpoint.alive

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ProcContext {self.name} ep={self.endpoint.id} {self.slot}>"


class _Region:
    def __init__(self, ctx: ProcContext, name: str):
        self.ctx = ctx
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Region":
        self._t0 = self.ctx.sim.now
        return self

    def __exit__(self, *exc) -> None:
        self.ctx.timers[self.name] = (self.ctx.timers.get(self.name, 0.0)
                                      + self.ctx.sim.now - self._t0)


class MpiWorld:
    """Simulator + cluster + endpoints + transport."""

    def __init__(self, cluster: Cluster, network_spec: NetworkSpec,
                 trace: _t.Optional[_t.Callable] = None):
        self.sim = Simulator(trace=trace)
        self.cluster = cluster
        self.network = Network(self.sim, network_spec, cluster.n_nodes,
                               hop_fn=cluster.hops)
        self.endpoints: _t.List[Endpoint] = []
        self.contexts: _t.List[ProcContext] = []
        self._next_context_id = 0
        #: transfer processes that have not yet injected their message,
        #: keyed by source endpoint id (killed if the sender crashes).
        #: Insertion-ordered on purpose: kill_endpoint iterates these to
        #: kill them, and a set of Process objects would iterate in
        #: id()-derived (allocation-address) order — nondeterministic
        #: run to run, which diverges otherwise identical simulations.
        self._uninjected: _t.Dict[int, _t.Dict[Process, None]] = {}

    # -------------------------------------------------------- membership
    def new_context(self) -> int:
        self._next_context_id += 1
        return self._next_context_id

    def spawn(self, slot: Slot, name: str = "") -> ProcContext:
        """Create a physical process slot (endpoint + context)."""
        self.cluster._check_node(slot.node)
        ep = Endpoint(self.sim, len(self.endpoints), slot.node,
                      name=name or f"p{len(self.endpoints)}")
        self.endpoints.append(ep)
        ctx = ProcContext(self, ep, slot, ep.name)
        self.contexts.append(ctx)
        self._uninjected[ep.id] = {}
        return ctx

    def start(self, ctx: ProcContext, program: _t.Generator) -> Process:
        """Begin executing a rank program on ``ctx``."""
        if ctx.process is not None:
            raise MpiError(f"{ctx.name} already has a running program")
        ctx.process = self.sim.process(program, name=ctx.name)
        return ctx.process

    # ---------------------------------------------------------- transport
    def post_send(self, src: Endpoint, dst_endpoint: int, src_rank: int,
                  tag: int, context: int, payload: _t.Any,
                  nbytes: int) -> Request:
        """Start a message transfer; returns the send request, which
        completes at *injection* (sender buffer reusable)."""
        if not 0 <= dst_endpoint < len(self.endpoints):
            raise MpiError(f"destination endpoint {dst_endpoint} unknown")
        if not src.alive:
            raise MpiError(f"send from dead endpoint {src.id}")
        env = Envelope(context=context, src_endpoint=src.id,
                       src_rank=src_rank, tag=tag, payload=payload,
                       nbytes=nbytes,
                       seq=src.next_seq(dst_endpoint, context))
        injected = Event(self.sim, label=f"inject:{src.name}")
        req = Request(injected, kind="send")
        # The transfer generator needs its own Process handle to deregister
        # itself at injection time; the handle only exists after
        # sim.process() returns, so pass it through a one-slot cell (the
        # body does not start executing until the next simulator step).
        cell: _t.Dict[str, Process] = {}
        proc = self.sim.process(
            self._transfer(src, dst_endpoint, env, injected, cell),
            name=f"xfer:{src.id}->{dst_endpoint}")
        cell["proc"] = proc
        self._uninjected[src.id][proc] = None
        return req

    def _transfer(self, src: Endpoint, dst_endpoint: int, env: Envelope,
                  injected: Event, cell: _t.Dict[str, "Process"]):
        dst = self.endpoints[dst_endpoint]

        def on_injected() -> None:
            injected.succeed()
            self._uninjected[src.id].pop(cell["proc"], None)

        # o_send: CPU-side injection overhead, paid before the DMA queue.
        if self.network.spec.o_send:
            yield self.sim.timeout(self.network.spec.o_send)
        yield from self.network.transfer(src.node, dst.node, env.nbytes,
                                         on_injected=on_injected)
        # o_recv: receiver-side extraction overhead.
        if self.network.spec.o_recv:
            yield self.sim.timeout(self.network.spec.o_recv)
        dst.deliver(env)

    # ------------------------------------------------------------ failures
    def kill_endpoint(self, endpoint_id: int) -> None:
        """Crash the physical process owning ``endpoint_id``.

        Kills the rank program, drops its mailbox, and retracts messages
        it had posted but not yet injected onto the wire (messages past
        injection still arrive — the paper's "update fully sent to some
        replicas" scenario).
        """
        ep = self.endpoints[endpoint_id]
        if not ep.alive:
            return
        ep.kill()
        for proc in list(self._uninjected[endpoint_id]):
            proc.kill("sender crashed before injection")
        self._uninjected[endpoint_id].clear()
        ctx = self.contexts[endpoint_id]
        if ctx.process is not None:
            # Last: if this is a self-kill (crash triggered from within
            # the victim's own stack), ProcessKilled propagates out of
            # this call — all other bookkeeping is already done.
            ctx.process.kill(f"crash of {ep.name}")

    def notify_death(self, dead_endpoint: int,
                     observers: _t.Optional[_t.Iterable[int]] = None) -> None:
        """Propagate a failure-detector verdict to ``observers`` (all
        endpoints by default): their pending receives from the dead peer
        fail and future ones fail fast."""
        targets = (self.endpoints if observers is None
                   else [self.endpoints[i] for i in observers])
        for ep in targets:
            if ep.alive:
                ep.peer_died(dead_endpoint)

    # ------------------------------------------------------------ running
    def run(self, until: _t.Optional[float] = None,
            detect_deadlock: bool = True) -> None:
        """Run the simulation to completion (or ``until``).

        Dispatches to the batched event loop
        (:meth:`~repro.simulate.Simulator.run_batched`) unless the
        simulator was built with ``batched=False`` — the two are
        order-exact equivalents, so this is purely a dispatch-speed
        choice (see ``benchmarks/test_perf_batch.py``).
        """
        if self.sim.batched:
            self.sim.run_batched(until=until,
                                 detect_deadlock=detect_deadlock)
        else:
            self.sim.run(until=until, detect_deadlock=detect_deadlock)


class MpiJob:
    """A launched set of ranks over a fresh ``MPI_COMM_WORLD``."""

    def __init__(self, world: MpiWorld, comm: Communicator,
                 contexts: _t.List[ProcContext],
                 processes: _t.List[Process]):
        self.world = world
        self.comm = comm
        self.contexts = contexts
        self.processes = processes

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock time at the end of the run."""
        return self.world.sim.now

    def results(self) -> _t.List[_t.Any]:
        """Per-rank return values (call after ``world.run()``)."""
        return [p.value for p in self.processes]


ProgramFn = _t.Callable[..., _t.Generator]


def launch_job(world: MpiWorld, program: ProgramFn, n_ranks: int,
               placement: _t.Optional[_t.Sequence[Slot]] = None,
               args: _t.Tuple = (), kwargs: _t.Optional[dict] = None,
               name: str = "world") -> MpiJob:
    """Create ``n_ranks`` processes running ``program(ctx, comm, *args)``
    over a new communicator.

    ``program`` must be a generator function with signature
    ``program(ctx, comm, *args, **kwargs)``.
    """
    kwargs = kwargs or {}
    slots = placement or block_placement(world.cluster, n_ranks)
    if len(slots) < n_ranks:
        raise MpiError(f"placement provides {len(slots)} slots for "
                       f"{n_ranks} ranks")
    contexts = [world.spawn(slots[r], name=f"{name}.r{r}")
                for r in range(n_ranks)]
    comm = Communicator(world, [c.endpoint.id for c in contexts], name=name)
    processes = []
    for ctx in contexts:
        bound = comm.bind(ctx)
        processes.append(world.start(ctx, program(ctx, bound, *args,
                                                  **kwargs)))
    return MpiJob(world, comm, contexts, processes)


def run_mpi_job(cluster: Cluster, network_spec: NetworkSpec,
                program: ProgramFn, n_ranks: int,
                placement: _t.Optional[_t.Sequence[Slot]] = None,
                args: _t.Tuple = (), kwargs: _t.Optional[dict] = None,
                ) -> MpiJob:
    """One-shot: build a world, launch, run to completion."""
    world = MpiWorld(cluster, network_spec)
    job = launch_job(world, program, n_ranks, placement=placement,
                     args=args, kwargs=kwargs)
    world.run()
    return job
