"""Nonblocking-operation handles (``MPI_Request`` analogue)."""

from __future__ import annotations

import typing as _t

from ..simulate import Event
from .message import Status


class Request:
    """Handle for a nonblocking send or receive.

    ``yield req.event`` waits for completion (``MPI_Wait``); on a
    completed receive, :attr:`data` and :attr:`status` are populated.
    A request posted towards a crashed peer *fails*: the ``yield``
    raises :class:`~repro.mpi.errors.RankFailure` — this is the error
    return Algorithm 1 relies on.
    """

    __slots__ = ("event", "kind", "_cancelled")

    def __init__(self, event: Event, kind: str):
        self.event = event
        self.kind = kind  # "send" | "recv"
        self._cancelled = False

    @property
    def complete(self) -> bool:
        """True once the operation finished (successfully or not)."""
        return self.event.triggered

    @property
    def failed(self) -> bool:
        """True if the operation failed (e.g. peer crash)."""
        return self.event.triggered and self.event.exception is not None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def data(self) -> _t.Any:
        """Received payload (receives only, after completion)."""
        if not self.complete or self.failed:
            raise RuntimeError("request not successfully completed")
        payload, _status = self.event.value
        return payload

    @property
    def status(self) -> Status:
        """Receive status (receives only, after completion)."""
        if not self.complete or self.failed:
            raise RuntimeError("request not successfully completed")
        _payload, status = self.event.value
        return status

    def defuse(self) -> None:
        """Mark an expected failure as handled without waiting on it
        (used when a waitall already reported the first failure)."""
        self.event.defused = True
