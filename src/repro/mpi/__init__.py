"""Simulated MPI (system S5): communicators, p2p, collectives, launcher."""

from .collectives import REDUCE_OPS, CollectiveOps, resolve_op
from .communicator import BoundComm, Communicator
from .datatypes import SCALAR_NBYTES, copy_payload, payload_nbytes
from .endpoint import Endpoint
from .errors import CommunicatorError, MpiError, RankFailure
from .message import ANY_SOURCE, ANY_TAG, Envelope, Status
from .request import Request
from .world import (MpiJob, MpiWorld, ProcContext, SEG_COMPUTE, SEG_MEMCPY,
                    launch_job, run_mpi_job)

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "BoundComm", "CollectiveOps", "Communicator",
    "CommunicatorError", "Endpoint", "Envelope", "MpiError", "MpiJob",
    "MpiWorld", "ProcContext", "RankFailure", "REDUCE_OPS", "Request",
    "SCALAR_NBYTES", "SEG_COMPUTE", "SEG_MEMCPY", "Status", "copy_payload",
    "launch_job", "payload_nbytes", "resolve_op", "run_mpi_job",
]
