"""Message envelope and matching constants."""

from __future__ import annotations

import dataclasses
import typing as _t

#: Wildcards, same semantics as MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclasses.dataclass
class Envelope:
    """A message as it sits in a mailbox.

    Attributes
    ----------
    context:
        Communicator context id — isolates traffic of different
        communicators, like MPI's hidden context id.
    src_endpoint:
        World-unique endpoint id of the sending physical process
        (used for matching and failure handling).
    src_rank:
        Sender's rank *within the sending communicator* (what the
        receiver observes in ``Status.source``).
    tag:
        User tag.
    payload:
        The (already copied) data.
    nbytes:
        Wire size that was charged for the transfer.
    seq:
        Per-(src_endpoint, dst_endpoint, context) sequence number;
        lets tests assert MPI's non-overtaking guarantee.
    """

    context: int
    src_endpoint: int
    src_rank: int
    tag: int
    payload: _t.Any
    nbytes: int
    seq: int

    def matches(self, source_endpoint: int, tag: int, context: int,
                source_rank: int = ANY_SOURCE) -> bool:
        """Does this envelope satisfy a receive posted with the given
        constraints?

        ``source_endpoint`` pins the physical sender; ``source_rank``
        pins the *logical* sender (communicator rank) — the replicated
        communicator uses rank-based matching so a message is accepted
        from whichever replica of the logical sender currently covers
        the receiver's plane (mirror, cover, or restarted replacement).
        """
        if context != self.context:
            return False
        if source_endpoint != ANY_SOURCE and source_endpoint != self.src_endpoint:
            return False
        if source_rank != ANY_SOURCE and source_rank != self.src_rank:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True


@dataclasses.dataclass(frozen=True)
class Status:
    """Receive status, modelled after ``MPI_Status``."""

    source: int  #: sender's rank in the receiver's communicator
    tag: int
    nbytes: int
