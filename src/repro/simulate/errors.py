"""Exception hierarchy for the discrete-event simulation kernel.

The simulator distinguishes three failure categories:

* programming errors in simulation scripts (:class:`SimulationError`),
* intentional process termination injected by fault-tolerance experiments
  (:class:`ProcessKilled`), and
* failed events that nobody handled (:class:`UnhandledFailure`), which
  usually indicate a missing ``try/except`` around a ``yield``.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel itself."""


class StaleEventError(SimulationError):
    """An event was triggered (succeeded or failed) more than once."""


class NotProcessError(SimulationError):
    """A plain function (not a generator) was passed where a process body
    was expected."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    In a correct simulation every suspended process eventually has its
    event triggered; running out of events first means the model
    deadlocked (e.g. a ``recv`` whose matching ``send`` never happens).
    """


class ProcessKilled(Exception):
    """Raised inside (or recorded for) a process that was killed.

    Fault-injection experiments kill replica processes with
    :meth:`repro.simulate.engine.Process.kill`; the process's completion
    event fails with this exception so that observers (e.g. a failure
    detector) can distinguish a crash from a normal exit.
    """

    def __init__(self, reason: str = "killed"):
        super().__init__(reason)
        self.reason = reason


class UnhandledFailure(SimulationError):
    """An event failed and no callback consumed the failure.

    Mirrors SimPy semantics: a failed event must either be defused
    (expected failure, e.g. an injected crash) or be observed by at least
    one waiting process, otherwise the simulation aborts loudly instead of
    silently dropping an error.
    """

    def __init__(self, cause: BaseException):
        super().__init__(f"unhandled event failure: {cause!r}")
        self.cause = cause
