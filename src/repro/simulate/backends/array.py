"""The ``array`` engine backend: a staged event table with batched,
heap-free firing and direct generator resumption.

Design
------
The python oracle keeps a ``heapq`` of ``(time, seq, event)`` tuples and
routes every wake through ``Event._process`` → a bound-method callback →
``Process._resume``.  This backend replaces both halves on the hot path:

* **Event table instead of a heap.**  Every schedule — a ``sleep`` wake,
  an ``_enqueue``'d protocol event — *appends* to a staged table (a
  parallel pair of time/payload columns).  Append order **is** the
  oracle's sequence-number order, so ordering ties are exact for free.
  When the loop needs the next batch it *consolidates*: the staged
  columns are merged with the sorted pending remainder by a stable sort
  on time (vectorized through ``numpy.argsort`` above
  :data:`_VEC_MIN` rows, plain ``sorted`` below it — numpy's per-call
  overhead loses on small merges), and the batch is every leading row
  sharing the head timestamp.  The dominant shape — lockstep processes
  whose staged wakes all share one timestamp while nothing is pending —
  skips the sort entirely (one ``min``/``max`` scan proves uniformity).

* **Pooled wake rows instead of Timeout callbacks.**  ``sleep`` /
  ``sleep_until`` return a :class:`_Wake` — a pooled
  :class:`~repro.simulate.events.Timeout` subclass whose ``_waiter``
  slot stores the waiting :class:`~repro.simulate.engine.Process`
  *object* (not a bound callback).  The fire loop resumes the generator
  directly — no ``_process``, no bound-method call, no heap push for
  the next wake — and recycles the row through a free list when the
  CPython refcount proves nothing else observes it.  Real ``Event``
  machinery (conditions, protocol hooks, extra callbacks, failed
  events) is detected per row and falls back to the oracle-equivalent
  generic path, so semantics never change — only the common case gets
  cheaper.

Equivalence with the oracle is pinned three ways: golden-trace replay
(``tests/simulate/test_determinism.py`` fingerprints survive backend
swap), differential scenario runs (``tests/simulate/
test_backend_differential.py``, ``tests/scenarios/test_backend_fuzz.py``)
and the unit suite run under ``REPRO_ENGINE=array`` in CI.

One acknowledged introspection divergence: a wake row handed straight
back through the *sticky* fast path (fire → ``sleep()`` in the same
resume) keeps its ``_waiter`` binding, so ``Timeout.has_waiters`` can
read True between the ``sleep()`` call and the ``yield`` where the
oracle would read False.  The binding is only presumptuous for that
instant — it is corrected after the send if the process yields anything
else — and no model in the repo inspects an unyielded token.  Event
*semantics* (who wakes, when, in what order) are unaffected.  When a
``trace`` hook is installed the backend stages real ``Timeout`` objects
and fires everything through the generic path, so traces are
byte-identical to the oracle's (same event types, labels and order).

Keep :func:`_bind_slow` and the generic fire path in sync with
``Process._resume`` / ``Event._process`` in :mod:`repro.simulate.engine`
— the differential tests exist to catch drift.
"""

from __future__ import annotations

import typing as _t
from bisect import bisect_right as _bisect_right
from types import MethodType

import numpy as np

from ..engine import Process
from ..errors import (DeadlockError, ProcessKilled, SimulationError,
                      UnhandledFailure)
from ..events import (_PENDING, _PROCESSED, _TRIGGERED, Event, Timeout)

_getrefcount: _t.Optional[_t.Callable[[_t.Any], int]]
try:  # CPython: enables wake-row recycling in the fire loop
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - non-refcounting interpreters
    _getrefcount = None

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..engine import Simulator

_INF = float("inf")

#: cap on the wake-row free list (a handful per live process is plenty)
_POOL_MAX = 256

#: consolidations at or above this many rows use ``numpy.argsort``;
#: below it, numpy's fixed per-call cost (~µs) loses to ``sorted``
_VEC_MIN = 64

#: staged sets at or below this size merge into a live pending table by
#: binary insertion instead of a full rebuild
_INSORT_MAX = 8

#: the resume function, for recognizing ``Process._resume`` bound
#: methods handed to :meth:`_Wake.add_callback`
_RESUME = Process._resume


class _Wake(Timeout):
    """A pooled wake row of the array backend.

    A :class:`Timeout` in every observable way (state, ``delay``,
    ``value``, condition membership), with one twist: when the *first*
    waiter registered is a ``Process._resume`` bound method — the way
    ``Process`` binds to any yielded event — the row stores the process
    object itself in the ``_waiter`` slot.  The fire loop recognizes
    that shape and resumes the generator directly instead of paying the
    ``_process`` → callback → ``_resume`` chain.  Any other registration
    (conditions, protocol hooks, a second waiter) goes through the
    stock :class:`Event` machinery and the row fires on the oracle-
    equivalent generic path.
    """

    __slots__ = ()

    # ``cb`` stays Any: the shape tests below read ``__func__`` /
    # ``__self__``, which exist only on the MethodType branch
    def add_callback(self, cb: _t.Any) -> None:
        if (self._state != _PROCESSED and self._waiter is None
                and self.callbacks is None and cb.__class__ is MethodType
                and cb.__func__ is _RESUME):
            self._waiter = cb.__self__
            return
        Event.add_callback(self, cb)  # raises StaleEventError when stale

    def remove_callback(self, cb: _t.Any) -> bool:
        # the kill path cancels a pending wake by its resume callback;
        # translate that to the directly-bound process object so a
        # killed sleeper leaves an orphan row, exactly like the oracle
        # leaves a waiterless timeout in the heap
        w = self._waiter
        if (w is not None and cb.__class__ is MethodType
                and cb.__func__ is _RESUME and cb.__self__ is w):
            cbs = self.callbacks
            self._waiter = cbs.pop(0) if cbs else None
            return True
        return Event.remove_callback(self, cb)


def _bind_slow(proc: Process, target: _t.Any) -> None:
    """Suspend ``proc`` on a non-wake yield target.

    Mirror of the post-``send`` dispatch in ``Process._resume``
    (``engine.py``) — keep the two in sync; the golden-trace and
    differential tests pin their equivalence.
    """
    if (type(target) is Timeout and target._state == _TRIGGERED
            and target._waiter is None):
        target._waiter = proc._resume_cb
        proc._waiting_on = target
        return
    if not isinstance(target, Event):
        raise SimulationError(
            f"process {proc.name!r} yielded {target!r}; processes must "
            f"yield Event objects (did you forget a .request()/.recv()?)")
    if target._state == _PROCESSED:
        bounce = Event(proc.sim, label=f"bounce:{proc.name}")
        bounce._waiter = proc._resume_cb
        if target._exc is not None:
            target.defused = True
            bounce.defused = True
            bounce.fail(target._exc)
        else:
            bounce.succeed(target._value)
        proc._waiting_on = bounce
    else:
        target.add_callback(proc._resume_cb)
        proc._waiting_on = target


class ArrayEngine:
    """The vectorized event-loop core behind ``Simulator(backend="array")``.

    Holds the staged/pending event table and shadows the simulator's
    queue entry points with its own bound methods (see :meth:`install`).
    The simulator object stays the public handle — ``sim.now``,
    ``sim.peek()``, ``sim.run()`` etc. all keep their contracts.
    """

    __slots__ = ("sim", "_trace", "_tok_cls", "_stage_d", "_stage_o",
                 "_pend_t", "_pend_o", "_pend_head", "_pool", "_fire")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._trace = sim._trace
        # with a trace hook installed, stage real Timeouts and fire
        # everything generically: traces then match the oracle's
        # byte-for-byte (including event type names)
        self._tok_cls = Timeout if sim._trace is not None else _Wake
        #: staged schedule, in scheduling order (== oracle seq order).
        #: Times are stored as *delays relative to ``sim.now``* — the
        #: loop consolidates before the clock ever advances while rows
        #: are staged, so all staged rows share one ``now`` epoch and
        #: the hot path never pays the absolute-time float add
        self._stage_d: _t.List[float] = []
        self._stage_o: _t.List[Event] = []
        #: consolidated pending table, absolute-time-sorted, already-
        #: fired prefix cleared to None up to ``_pend_head`` (hence the
        #: ``Any`` element type: consumed slots hold ``None`` sentinels)
        self._pend_t: _t.List[float] = []
        self._pend_o: _t.List[_t.Any] = []
        self._pend_head = 0
        #: free list of recycled wake rows
        self._pool: _t.List[_Wake] = []

    def install(self) -> None:
        """Shadow the simulator's queue entry points (instance
        attributes win over class methods, so dispatch costs nothing
        per call).  The scheduling entry points and the batch-fire loop
        are *closures* built together by :meth:`_make_runtime` — they
        share a one-row hand-off cell and pre-bound locals, because
        ``sleep`` and the fire loop are the two hottest code paths of a
        simulation and every saved attribute lookup or C call counts."""
        # the cast acknowledges the method shadowing: instance
        # attributes deliberately override Simulator's class methods
        sim = _t.cast(_t.Any, self.sim)
        sim._engine = self
        sleep, sleep_until, enqueue, fire = self._make_runtime()
        self._fire = fire
        sim.sleep = sleep
        sim.sleep_until = sleep_until
        sim._enqueue = enqueue
        sim.peek = self.peek
        sim.step = self.step
        sim.run = self.run
        # batching is inherent here: run IS the batched loop, and the
        # defer-cell machinery of the oracle's run_batched is subsumed
        # by staged-table consolidation
        sim.run_batched = self.run

    # -- the hot closures ----------------------------------------------
    def _make_runtime(self) -> _t.Tuple[
            _t.Callable[[float], Timeout],
            _t.Callable[[float], Timeout],
            _t.Callable[[Event, float], None],
            _t.Callable[[_t.List[_t.Any]], None]]:
        """Build ``sleep`` / ``sleep_until`` / ``_enqueue`` and the
        batch-fire loop as closures over shared cells.

        Two things make this worth the indirection:

        * the staged columns, free list and simulator are captured as
          cells (mutated in place, never rebound), so each call costs a
          handful of cell loads instead of attribute chains;
        * ``free`` — a one-row hand-off register shared between the
          fire loop and ``sleep``.  In the dominant steady state each
          fired wake row is immediately re-slept by the process it just
          resumed, so the row alternates fire → ``free`` → next
          ``sleep`` with *zero* list traffic; ``pool.pop``/``append``
          and the ``len`` cap check only run on the rare spill.
        """
        self_ = self
        sim = self.sim
        pool = self._pool
        pool_pop = pool.pop
        pool_append = pool.append
        stage_delay = self._stage_d.append
        stage_obj = self._stage_o.append
        fresh = self._tok_cls._fresh
        getrefcount = _getrefcount or (lambda _o: 0)  # no recycling off-CPython
        wake_cls = _Wake
        proc_cls = Process
        discard = sim._active_processes.discard
        # state constants as cells — marginally cheaper than cached
        # global loads in the per-event loop
        PENDING = _PENDING
        TRIGGERED = _TRIGGERED
        PROCESSED = _PROCESSED
        free: _t.Any = None  # the spill hand-off row
        # ``cur`` is the *sticky* hand-off: the wake row being fired
        # right now, offered to the sleep() call the resumed process is
        # about to make.  A sticky reuse keeps the row's ``_waiter``
        # binding intact — when the process yields the row back
        # (``yield sim.sleep(dt)``, the dominant pattern), the fire loop
        # recognizes it by identity and has NOTHING left to do: no
        # unbind, no rebind, no recycle bookkeeping.  If the process
        # does anything else, the fire loop repairs the presumptuous
        # binding after the send (see the ``cur is None`` branch).
        cur: _t.Any = None

        def sleep(delay: float) -> Timeout:
            """A pooled wake row ``delay`` from now (the
            ``Simulator.sleep`` contract)."""
            nonlocal cur, free
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            tok = cur
            if tok is not None:
                # sticky reuse: the row we were just woken by, still
                # bound to the calling process
                cur = None
                tok.delay = delay
            else:
                tok = free
                if tok is not None:
                    free = None
                    tok.delay = delay
                elif pool:
                    tok = pool_pop()
                    tok.delay = delay
                else:
                    tok = fresh(sim, delay)
            stage_delay(delay)
            stage_obj(tok)
            return tok

        def sleep_until(time: float) -> Timeout:
            """A pooled wake row at absolute ``time`` (the
            ``Simulator.sleep_until`` contract); the descriptor-charging
            entry point of ``ProcContext.compute_batch``/``charge_batch``.

            The oracle stores the absolute ``time`` verbatim — it must
            NOT be round-tripped through ``now + (time - now)``, which
            is not the same float.  Queue times are never negative, so
            the staged column smuggles the exact absolute time through
            as ``-time`` (negation is lossless for floats and ints);
            consolidation undoes the tag.
            """
            nonlocal cur, free
            now = sim.now
            if time < now:
                raise SimulationError(
                    f"cannot sleep until {time} (now={now})")
            delay = time - now
            tok = cur
            if tok is not None:
                cur = None
                tok.delay = delay
            else:
                tok = free
                if tok is not None:
                    free = None
                    tok.delay = delay
                elif pool:
                    tok = pool_pop()
                    tok.delay = delay
                else:
                    tok = fresh(sim, delay)
            stage_delay(-time if time > 0 else time)
            stage_obj(tok)
            return tok

        def enqueue(event: Event, delay: float) -> None:
            """Schedule a triggered event (``Event.succeed``/``fail``,
            ``Timeout.__init__``) — the generic row kind."""
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past: {delay}")
            stage_delay(delay)
            stage_obj(event)

        # rows stay Any: the loop duck-types across _Wake rows (whose
        # ``_waiter`` slot holds a Process, not a callback), orphan rows
        # and generic events
        def fire(batch: _t.List[_t.Any]) -> None:
            """Fire one same-timestamp batch, in scheduling order.

            Inlines the wake-row hot path (direct generator resume, row
            recycling through ``free``/``pool``); everything else goes
            through ``ArrayEngine._fire_generic``.  On an exception the
            unfired remainder is pushed back to the front of the staged
            columns, so a caught failure leaves the queue exactly as
            the oracle's one-pop-at-a-time loop would.
            """
            nonlocal cur, free
            ev = None
            try:
                # plain iteration, no enumerate: its tuple-reuse cache
                # would hold a stale reference to ev and defeat the
                # refcount probe
                for ev in batch:
                    if ev.__class__ is wake_cls:
                        # None.__class__ is NoneType, so this single
                        # check also rejects orphan rows
                        w = ev._waiter
                        if w.__class__ is proc_cls:
                            if w._state != PENDING:
                                # killed while the wake was in flight
                                ev._waiter = None
                                ev._state = PROCESSED
                                continue
                            if (ev.callbacks is None
                                    and getrefcount(ev) == 4):
                                # refcount 4 == batch list + loop var +
                                # probe arg + w's generator frame (a
                                # _resume-bound waiter always *yielded*
                                # this row, so the frame holds the final
                                # reference — and drops it the moment
                                # send() resumes past the yield).
                                # Nothing can observe the row during or
                                # after the send: skip the
                                # triggered→processed→triggered state
                                # round-trip and offer the row, binding
                                # intact, to the sleep() the process is
                                # about to make (the sticky hand-off)
                                cur = ev
                                try:
                                    target = w._send(None)
                                except StopIteration as stop:
                                    discard(w)
                                    ev._waiter = None
                                    if cur is None:
                                        # consumed by a final sleep()
                                        # and re-staged: now a waiter-
                                        # less orphan, fires as a no-op
                                        pass
                                    else:
                                        cur = None
                                        if free is None:
                                            free = ev
                                        elif len(pool) < _POOL_MAX:
                                            pool_append(ev)
                                    w.succeed(stop.value)
                                except ProcessKilled:
                                    discard(w)
                                    ev._waiter = None
                                    if cur is not None:
                                        cur = None
                                        if free is None:
                                            free = ev
                                        elif len(pool) < _POOL_MAX:
                                            pool_append(ev)
                                    w._killed = True
                                    w.defused = True
                                    w.fail(ProcessKilled(
                                        f"{w.name}: propagated kill"))
                                else:
                                    if target is ev:
                                        # sticky hit (the dominant
                                        # ``yield sim.sleep(dt)``):
                                        # sleep() handed the row back
                                        # and the process yielded it —
                                        # ``_waiter``, ``_waiting_on``
                                        # and the TRIGGERED state are
                                        # all still correct from the
                                        # previous cycle.  Zero work.
                                        continue
                                    if cur is None:
                                        # consumed by sleep() but the
                                        # process yielded something
                                        # else: strip the presumptuous
                                        # binding or the staged row
                                        # would wake w spuriously (it
                                        # rebinds if yielded later)
                                        ev._waiter = None
                                    else:
                                        cur = None
                                        ev._waiter = None
                                        if free is None:
                                            free = ev
                                        elif len(pool) < _POOL_MAX:
                                            pool_append(ev)
                                    if (target.__class__ is wake_cls
                                            and target._waiter is None
                                            and target._state
                                            == TRIGGERED):
                                        target._waiter = w
                                        w._waiting_on = target
                                    else:
                                        _bind_slow(w, target)
                                continue
                            # held row: full oracle-shaped fire (state
                            # stores first — a holder may inspect the
                            # row from inside the resumed generator)
                            ev._waiter = None
                            ev._state = PROCESSED
                            try:
                                target = w._send(None)
                            except StopIteration as stop:
                                discard(w)
                                w.succeed(stop.value)
                            except ProcessKilled:
                                discard(w)
                                w._killed = True
                                w.defused = True
                                w.fail(ProcessKilled(
                                    f"{w.name}: propagated kill"))
                            else:
                                if (target.__class__ is wake_cls
                                        and target._waiter is None
                                        and target._state == TRIGGERED):
                                    target._waiter = w
                                    w._waiting_on = target
                                else:
                                    _bind_slow(w, target)
                            if ev.callbacks is None:
                                # a holder may have dropped its
                                # reference during the send (e.g.
                                # `t = sim.sleep(..)` rebinding t):
                                # refcount 3 proves the row is
                                # unobservable again
                                if getrefcount(ev) == 3:
                                    ev._state = _TRIGGERED
                                    if free is None:
                                        free = ev
                                    elif len(pool) < _POOL_MAX:
                                        pool_append(ev)
                            else:
                                cbs = ev.callbacks
                                ev.callbacks = None
                                for cb in cbs:
                                    cb(ev)
                            continue
                        if w is None and ev.callbacks is None:
                            # orphan row (killed waiter): a pure no-op
                            # fire, like the oracle's waiterless pooled
                            # timeout
                            ev._state = _PROCESSED
                            if getrefcount(ev) == 3:
                                ev._state = _TRIGGERED
                                if free is None:
                                    free = ev
                                elif len(pool) < _POOL_MAX:
                                    pool_append(ev)
                            continue
                    self_._fire_generic(ev)
            except BaseException:
                # a live sticky offer must not leak into a later
                # sleep() with a stale binding
                cur = None
                # events are unique within a batch (a row is staged
                # exactly once), so identity locates the raiser
                rest = (batch[batch.index(ev) + 1:] if ev is not None
                        else batch)
                if rest:
                    # unfired same-time rows go back to the FRONT of
                    # the staged columns: older than anything staged
                    # during this batch, delay 0 from now (int zero is
                    # exact and type-preserving under ``now + d``)
                    self_._stage_d[:0] = [0] * len(rest)
                    self_._stage_o[:0] = rest
                raise

        return sleep, sleep_until, enqueue, fire

    # -- queue inspection ----------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none —
        staged rows included (they are queued, merely unconsolidated)."""
        pt = self._pend_t
        ph = self._pend_head
        t = pt[ph] if ph < len(pt) else _INF
        sd = self._stage_d
        if sd:
            now = self.sim.now
            m = min((now + d) if d >= 0 else -d for d in sd)
            if m < t:
                return m
        return t

    # -- consolidation -------------------------------------------------
    def _consolidate(self) -> None:
        """Merge staged rows into the pending table: one stable sort by
        time over (pending remainder ++ staged).  Stability makes ties
        process in scheduling order — the remainder rows are older than
        every staged row, and the staged columns are already in append
        (= schedule) order — which is exactly the oracle's
        ``(time, seq)`` heap order.

        Staged values are delays relative to the current clock (or
        ``-time`` for exact ``sleep_until`` rows); conversion happens
        HERE, in python arithmetic — ``now + delay`` is bit-for-bit the
        oracle's heap-push expression and keeps integer clocks integral
        (numpy is used only to *order* rows, never for the stored time
        values, so trace ``repr(time)`` stays identical)."""
        now = self.sim.now
        sd, so = self._stage_d, self._stage_o
        ph = self._pend_head
        pt = self._pend_t
        if len(sd) <= _INSORT_MAX and ph < len(pt):
            # a handful of staged rows against a live pending table:
            # C-level binary inserts beat rebuilding both columns (the
            # dominant consolidation shape in protocol-heavy runs —
            # point-to-point sends staging one transfer event at a
            # time).  ``bisect_right`` keeps each inserted row after
            # every equal-time row already in the table, and inserting
            # in staging order keeps staged ties in schedule order —
            # together exactly the oracle's (time, seq) order.
            po = self._pend_o
            i = 0
            for d in sd:
                t = (now + d) if d >= 0 else -d
                j = _bisect_right(pt, t, ph)
                pt.insert(j, t)
                po.insert(j, so[i])
                i += 1
            del sd[:]
            del so[:]
            return
        st = [(now + d) if d >= 0 else -d for d in sd]
        if ph < len(pt):
            mt = pt[ph:] + st
            mo = self._pend_o[ph:] + so
        else:
            mt = st
            mo = so[:]
        n = len(mt)
        if n > 1:
            if n >= _VEC_MIN:
                order = np.argsort(np.asarray(mt), kind="stable").tolist()
            else:
                order = sorted(range(n), key=mt.__getitem__)
            self._pend_t = [mt[i] for i in order]
            self._pend_o = [mo[i] for i in order]
        else:
            self._pend_t = mt
            self._pend_o = mo
        self._pend_head = 0
        del sd[:]
        del so[:]

    # -- execution -----------------------------------------------------
    def step(self) -> None:
        """Process every event scheduled for the next timestamp (the
        ``Simulator.step`` contract) — including zero-delay events the
        batch triggers at that same time, exactly like the oracle."""
        if self._stage_d:
            self._consolidate()
        ph = self._pend_head
        pt = self._pend_t
        if ph >= len(pt):
            raise IndexError("step from an empty schedule")
        bt = pt[ph]
        self.sim.now = bt
        while True:
            end = ph + 1
            n = len(pt)
            while end < n and pt[end] == bt:
                end += 1
            po = self._pend_o
            batch = po[ph:end]
            po[ph:end] = [None] * (end - ph)
            self._pend_head = end
            self._fire(batch)
            if self._stage_d:
                self._consolidate()
            ph = self._pend_head
            pt = self._pend_t
            if ph >= len(pt) or pt[ph] != bt:
                return

    def run(self, until: _t.Optional[float] = None,
            detect_deadlock: bool = False) -> None:
        """Run until the queue drains or ``until`` is reached (the
        ``Simulator.run`` / ``run_batched`` contract)."""
        sim = self.sim
        if until is not None and until < sim.now:
            raise SimulationError(
                f"until={until} is in the past (now={sim.now})")
        sd = self._stage_d
        so = self._stage_o
        fire = self._fire
        while True:
            pt = self._pend_t
            ph = self._pend_head
            if sd:
                d0 = sd[0]
                if d0 == sd[-1] and sd.count(d0) == len(sd):
                    # uniform staged batch (all rows share one time):
                    # if it beats everything pending, the staged
                    # columns ARE the next batch — no sort, no merge,
                    # ONE time computation.  This covers the two
                    # dominant shapes in one test: lockstep processes
                    # (nothing pending) and a lone process charging
                    # segment after segment while its peers' events
                    # park in the pending table (the shape the python
                    # engine's run_batched defer cell exists for —
                    # strictly-earlier is required, a tie must fire
                    # the older pending rows first)
                    bt = (sim.now + d0) if d0 >= 0 else -d0
                    if ph >= len(pt) or bt < pt[ph]:
                        if until is not None and bt > until:
                            self._consolidate()
                            sim.now = until
                            return
                        batch = so[:]
                        del sd[:]
                        del so[:]
                        sim.now = bt
                        fire(batch)
                        continue
                self._consolidate()
                continue
            if ph >= len(pt):
                break
            bt = pt[ph]
            if until is not None and bt > until:
                sim.now = until
                return
            end = ph + 1
            n = len(pt)
            while end < n and pt[end] == bt:
                end += 1
            po = self._pend_o
            batch = po[ph:end]
            if end >= 1024:
                # compact the consumed prefix so insort-dominated
                # workloads (which never trigger a rebuilding
                # consolidation) stay bounded; amortized O(1)/event
                del pt[:end]
                del po[:end]
                end = 0
            else:
                po[ph:end] = [None] * (end - ph)
            self._pend_head = end
            sim.now = bt
            fire(batch)
        if until is not None:
            sim.now = until
        if detect_deadlock and sim._active_processes:
            waiting = ", ".join(sorted(p.name
                                       for p in sim._active_processes))
            raise DeadlockError(
                f"event queue drained but processes still waiting: "
                f"{waiting}")

    def _fire_generic(self, event: Event) -> None:
        """Oracle-equivalent firing for everything that is not a plain
        process wake — mirror of ``Event._process`` plus the run loop's
        trace/unhandled-failure tail; keep in sync with ``engine.py``."""
        event._state = _PROCESSED
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter(event)
        cbs = event.callbacks
        if cbs is not None:
            event.callbacks = None
            for cb in cbs:
                cb(event)
        trace = self._trace
        if trace is not None:
            trace(self.sim.now, event)
        if event._exc is not None and not event.defused:
            raise UnhandledFailure(event._exc)
