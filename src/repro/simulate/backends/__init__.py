"""Pluggable engine backends for the simulation kernel.

The :class:`~repro.simulate.Simulator` executes its event queue through
one of two interchangeable *backends*:

``python`` (the default)
    The heap-based engine of :mod:`repro.simulate.engine` — the
    bit-exact oracle every optimization in this repo is proven against.
    ``Simulator(fast=False)`` is always this backend (the un-inlined
    seed-equivalent loop *is* the oracle, so it cannot be swapped out).

``array``
    :class:`repro.simulate.backends.array.ArrayEngine` — a vectorized
    event-loop core that replaces the per-event ``heapq`` round-trip
    with a staged event table and same-timestamp batch firing, and the
    per-wake callback scheduling with direct generator resumption.  It
    is bit-identical to the python oracle (event order, timestamps,
    traces, results, cache keys) and ≥5× faster on the plain-timeout
    engine microbench; ``benchmarks/test_perf_backend.py`` gates both
    claims.

Selection mirrors the repo's other engine toggles
(:data:`repro.simulate.engine.BATCHED_DEFAULT` /
``set_section_batching``): per-instance via ``Simulator(backend=...)``,
process-wide via :func:`set_engine_backend`, and from the environment
via ``REPRO_ENGINE`` (parsed defensively at import — a garbage value
warns and falls back to ``python``, same contract as ``REPRO_WORKERS``).
The backend is an *execution detail*: scenario cache keys and cached
result bytes are identical under either backend, so sweeps mix cached
python-backend results with fresh array-backend runs freely.
"""

from __future__ import annotations

import typing as _t

from ..._envflags import env_choice as _env_choice

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import Simulator

#: the recognized backend names, in documentation order
ENGINE_BACKENDS: _t.Tuple[str, ...] = ("python", "array")

_ENV_VAR = "REPRO_ENGINE"


def _env_engine(name: str = _ENV_VAR) -> str:
    """Parse the engine-backend env var defensively.

    A garbage value must not make ``import repro.simulate`` raise (the
    kernel is imported by everything); :func:`repro._envflags
    .env_choice` warns and falls back to the ``python`` oracle,
    matching the ``REPRO_WORKERS`` contract in
    :mod:`repro.perf.sweep`.
    """
    return _env_choice(name, ENGINE_BACKENDS, "python")


#: process-wide default for ``Simulator(backend=None)``
ENGINE_DEFAULT: str = _env_engine()


def get_engine_backend() -> str:
    """The process-wide default engine backend name."""
    return ENGINE_DEFAULT


def set_engine_backend(name: str) -> str:
    """Set the process-wide default engine backend; returns the
    previous default (so callers can restore it), mirroring
    ``set_section_batching``.

    Only affects simulators constructed afterwards with
    ``backend=None``; an explicit ``Simulator(backend=...)`` always
    wins.  Unknown names raise ``ValueError`` — only the *environment*
    path is forgiving.
    """
    global ENGINE_DEFAULT
    resolve_backend(name)
    previous = ENGINE_DEFAULT
    ENGINE_DEFAULT = name
    return previous


def resolve_backend(name: _t.Optional[str]) -> str:
    """Validate an explicit backend name; ``None`` means "use the
    process-wide default"."""
    if name is None:
        return ENGINE_DEFAULT
    if name not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from "
            f"{', '.join(ENGINE_BACKENDS)}")
    return name


def install_backend(sim: "Simulator", name: str) -> None:
    """Attach the named backend to a freshly constructed simulator.

    The ``python`` backend is the Simulator's own class methods, so
    installing it is a no-op; the ``array`` backend shadows the queue
    entry points (``sleep``/``_enqueue``/``peek``/``step``/``run``/
    ``run_batched``) with bound methods of an :class:`ArrayEngine`,
    which keeps per-call dispatch overhead at zero.
    """
    if name == "array":
        from .array import ArrayEngine
        ArrayEngine(sim).install()


__all__ = ["ENGINE_BACKENDS", "ENGINE_DEFAULT", "get_engine_backend",
           "install_backend", "resolve_backend", "set_engine_backend"]
