"""The ``python`` engine backend: the heap-based oracle.

This backend *is* :class:`repro.simulate.Simulator`'s own machinery —
the ``heapq`` of ``(time, seq, event)`` tuples, ``Event._process``
callback dispatch, the PR 1 inlined fast loop and the PR 3
``run_batched`` defer cell.  Installing it is therefore a no-op: the
class methods are the implementation.

It exists as a named backend for two reasons:

* it is the **bit-exactness oracle** — every array-backend claim
  (event order, timestamps, traces, results, cache keys) is proven by
  differential tests against this engine, and ``Simulator(fast=False)``
  always runs it regardless of the selected backend (the un-inlined
  baseline loop is the deepest oracle of all);
* it is the **fallback** — an unknown ``REPRO_ENGINE`` value warns and
  lands here, so a hostile environment can never change semantics or
  break an import.

See :mod:`repro.simulate.backends` for selection and
:mod:`repro.simulate.backends.array` for the vectorized alternative.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine import Simulator

#: backend name, as accepted by ``Simulator(backend=...)`` and
#: ``set_engine_backend``
NAME = "python"


def install(sim: "Simulator") -> None:
    """No-op: the simulator's class methods are the python backend."""
