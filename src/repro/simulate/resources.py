"""Shared-resource primitives built on the event kernel.

:class:`Resource` is a FIFO server with integer capacity — the building
block for modelling NIC transmit/receive engines (one message on the wire
at a time per NIC) and per-core execution units.

:class:`Store` is an unbounded FIFO message buffer with blocking ``get`` —
the building block for MPI match queues.
"""

from __future__ import annotations

import collections
import typing as _t

from .engine import Simulator
from .events import Event


class Resource:
    """A FIFO-ordered resource with ``capacity`` concurrent slots.

    Usage from a process::

        req = resource.request()
        yield req              # granted in FIFO order
        yield sim.timeout(holding_time)
        resource.release()

    The convenience :meth:`hold` wraps the acquire/delay/release triple,
    which is the common pattern for "occupy the NIC for size/bandwidth
    seconds".
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: _t.Deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Event:
        """An event that fires when a slot is granted (FIFO order)."""
        ev = Event(self.sim, label=f"request:{self.name}")
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            ev.succeed()
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any.

        Waiters that were killed while queued (their request event has no
        callbacks left) are skipped, so a crashed sender cannot leak a NIC
        slot.  This relies on requesters ``yield``-ing their request event
        immediately, which :meth:`hold` guarantees.
        """
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        while self._queue:
            ev = self._queue.popleft()
            if ev.has_waiters:  # someone is still waiting on this grant
                ev.succeed()
                return
        self._in_use -= 1

    def hold(self, duration: float) -> _t.Generator[Event, None, None]:
        """Process sub-routine: acquire, hold ``duration``, release.

        Use as ``yield from resource.hold(t)``.

        Kill-safe at every suspension point.  The subtle case: the grant
        event can succeed (slot assigned) in the same timestep in which
        the holder is killed, *before* the holder resumes — the holder
        then dies parked on ``yield req`` while owning a slot.  The
        ``finally`` therefore keys the release on whether the request was
        ever granted (``req.triggered``), not on how far the body got;
        a request killed while still queued stays pending and is skipped
        by :meth:`release`'s dead-waiter sweep instead.
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(duration)
        finally:
            if req.triggered:
                self.release()


class Store:
    """Unbounded FIFO buffer with blocking ``get``.

    ``put`` never blocks (the store is unbounded, matching MPI's eager
    buffering of simulated payload references); ``get`` returns an event
    that fires with the oldest item, immediately if one is available.
    Waiters are served FIFO.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: _t.Deque[_t.Any] = collections.deque()
        self._getters: _t.Deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: _t.Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event firing with the oldest item (FIFO)."""
        ev = Event(self.sim, label=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
