"""The discrete-event simulation kernel.

This module provides the :class:`Simulator` (virtual clock + event heap)
and :class:`Process` (a generator-based coroutine suspended on events).
Everything above it in the stack — the network model, the simulated MPI,
the replication layer and the intra-parallelization runtime — is written
as processes that ``yield`` events.

Determinism
-----------
Events scheduled for the same virtual time are processed in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
is a pure function of its inputs.  Reproduction experiments rely on this:
re-running a failure-injection scenario replays the identical interleaving
(``tests/simulate/test_determinism.py`` pins a golden trace).

Performance
-----------
:meth:`Simulator.run` inlines the pop→process→callback chain (the body of
:meth:`Event._process`) and :meth:`Process._resume` reads event slots
directly instead of going through properties.  Plain timeouts — the
dominant event by two orders of magnitude — are recycled through a small
free list: after the run loop processes a :class:`Timeout` that nothing
else references (checked via the CPython refcount), the object is reset
and reused by the next :meth:`Simulator.sleep` call, making the
"process sleeps for its compute time" hot path allocation-free.
``benchmarks/test_perf_engine.py`` tracks the resulting events/sec.

Batched dispatch
----------------
Two batching levels sit on top of the fast path (see
``docs/architecture.md`` for the design write-up):

* :meth:`Simulator.step` drains *every* event scheduled for the head
  timestamp in one pass — one ``until``-check and one clock write per
  same-time batch instead of per event.  Processing order within the
  batch is still the scheduling order (the heap's sequence numbers), so
  semantics are unchanged.
* :meth:`Simulator.run_batched` additionally coalesces consecutive
  pure-:meth:`sleep` wakes that are strictly earlier than everything
  else in the queue: the wake is parked in a one-slot *defer* cell
  instead of round-tripping through the heap, cutting a
  ``heappush``/``heappop`` pair per wake on compute-only stretches
  (a process charging kernel segment after kernel segment while its
  peers block on receives).  The deferred wake reserves its sequence
  number at :meth:`sleep` time and is pushed back onto the heap the
  moment anything else schedules at or before it, so the processed
  event order is *identical* to :meth:`run` — the golden-trace tests in
  ``tests/simulate/test_determinism.py`` pin this equivalence.
  ``benchmarks/test_perf_batch.py`` gates the resulting speedup.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %g" % sim.now
>>> p = sim.process(hello(sim))
>>> sim.run()
>>> p.value
'done at 3'
"""

from __future__ import annotations

import heapq
import inspect
import typing as _t

from .._envflags import env_flag as _env_flag
from .errors import (DeadlockError, NotProcessError, ProcessKilled,
                     SimulationError, UnhandledFailure)
from .events import (_PENDING, _PROCESSED, _TRIGGERED, AllOf, AnyOf, Event,
                     Timeout)

_getrefcount: _t.Optional[_t.Callable[[_t.Any], int]]
try:  # CPython: enables the timeout free list in the run loop
    from sys import getrefcount as _getrefcount
except ImportError:  # pragma: no cover - non-refcounting interpreters
    _getrefcount = None

#: cap on the timeout free list (a handful per live process is plenty)
_POOL_MAX = 256

#: process-wide default for ``Simulator(fast=None)``; the perf benchmark
#: flips this to time the un-inlined baseline loop
FAST_DEFAULT = True

#: process-wide default for ``Simulator(batched=None)``: whether callers
#: that dispatch on ``Simulator.batched`` (``MpiWorld.run``) should use
#: :meth:`Simulator.run_batched` instead of :meth:`Simulator.run`.  The
#: perf benchmark flips this to time the un-coalesced PR-1 fast path,
#: and the differential oracle matrix (tests/differential/) runs every
#: scenario both ways.  Seeded from ``REPRO_BATCHED`` (parsed
#: defensively: garbage warns and keeps the default on).
BATCHED_DEFAULT = _env_flag("REPRO_BATCHED", True)


def set_batched_default(enabled: bool) -> bool:
    """Set the process-wide :data:`BATCHED_DEFAULT` (what
    ``Simulator(batched=None)`` resolves to); returns the previous
    setting.  ``False`` is the oracle fallback — the un-coalesced
    :meth:`Simulator.run` loop; semantics are bit-identical either way
    (batching only coalesces engine wakeups, and the golden-trace
    tests in ``tests/simulate/test_determinism.py`` pin the
    equivalence)."""
    global BATCHED_DEFAULT
    prev = BATCHED_DEFAULT
    BATCHED_DEFAULT = bool(enabled)
    return prev


def batched_default() -> bool:
    """The current process-wide batched-dispatch default."""
    return BATCHED_DEFAULT

_INF = float("inf")

#: what :meth:`Simulator.process` accepts: a generator yielding
#: :class:`Event`\ s; the sent/returned sides stay ``Any`` (an event's
#: value is model-defined)
ProcessBody = _t.Generator[Event, _t.Any, _t.Any]


class Simulator:
    """Virtual clock and event queue.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, event)`` invoked for every
        processed event; used by tests that assert on protocol traces
        (e.g. the Figure 1 message/compute pattern).
    fast:
        When False, :meth:`run` falls back to the un-inlined
        ``while heap: step()`` loop and timeout pooling is disabled.
        Only the performance benchmarks use this (as the seed-equivalent
        baseline); semantics are identical either way.  ``None`` means
        "use :data:`FAST_DEFAULT`".
    batched:
        Whether callers that honor :attr:`batched` (``MpiWorld.run``)
        drive this simulator through :meth:`run_batched`.  ``None``
        means "use :data:`BATCHED_DEFAULT`"; the perf benchmarks flip it
        to compare against the un-coalesced loop.
    backend:
        The engine backend executing the event queue: ``"python"``
        (this class's own heap machinery — the bit-exact oracle) or
        ``"array"`` (the vectorized core of
        :mod:`repro.simulate.backends.array`).  ``None`` means "use the
        process-wide default" (:func:`repro.simulate.set_engine_backend`
        / the ``REPRO_ENGINE`` env var).  ``fast=False`` always forces
        the python oracle — the un-inlined baseline loop *is* the
        reference implementation the backends are proven against.
        Results are bit-identical either way; see
        :mod:`repro.simulate.backends`.
    """

    def __init__(self, trace: _t.Optional[_t.Callable[[float, Event], None]] = None,
                 fast: _t.Optional[bool] = None,
                 batched: _t.Optional[bool] = None,
                 backend: _t.Optional[str] = None) -> None:
        self.now: float = 0.0
        self._heap: _t.List[_t.Tuple[float, int, Event]] = []
        self._seq = 0
        self._trace = trace
        if fast is None:
            fast = FAST_DEFAULT
        self._fast = fast and _getrefcount is not None
        #: whether run-dispatching callers should prefer run_batched()
        self.batched = BATCHED_DEFAULT if batched is None else bool(batched)
        #: free list of recycled Timeout objects (see :meth:`sleep`)
        self._timeout_pool: _t.List[Timeout] = []
        #: one-slot deferred-wake cell of :meth:`run_batched`:
        #: ``(wake_time, reserved_seq, timeout)`` or ``None``
        self._defer: _t.Optional[_t.Tuple[float, int, Timeout]] = None
        #: True only while a run_batched() loop owns the defer slot
        self._defer_armed = False
        #: live (not yet terminated) processes, used for deadlock detection
        self._active_processes: _t.Set["Process"] = set()
        # -- engine backend seam (see repro.simulate.backends): lazy
        #    import (backends.array imports this module), resolved per
        #    instance so the module-level default / REPRO_ENGINE applies
        from .backends import install_backend, resolve_backend
        name = resolve_backend(backend)
        if name != "python" and not self._fast:
            # fast=False IS the python oracle loop — it cannot be
            # swapped out from under the benchmarks' baseline legs
            name = "python"
        #: the engine backend this simulator executes on
        self.backend = name
        install_backend(self, name)

    # -- event construction helpers --------------------------------------
    def event(self, label: str = "") -> Event:
        """A fresh pending event, to be triggered by model code."""
        return Event(self, label=label)

    def timeout(self, delay: float, value: _t.Any = None,
                label: str = "") -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, label=label)

    def sleep(self, delay: float) -> Timeout:
        """A plain timeout (no value, no label) from the free list.

        Semantically identical to ``timeout(delay)``; the returned object
        may be a recycled :class:`Timeout`.  This is the zero-allocation
        fast path for the dominant "process sleeps for its compute/idle
        time" case.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        return self._sleep_abs(self.now + delay, delay)

    def sleep_until(self, time: float) -> Timeout:
        """A plain timeout firing at absolute virtual ``time``.

        Used by batched charge descriptors
        (:meth:`repro.mpi.world.ProcContext.compute_batch` and its
        mixed-segment generalization
        :meth:`~repro.mpi.world.ProcContext.charge_batch`, which backs
        the work-sharing runtime's split-on-send sub-batches): the
        caller accumulates per-segment wake times with exactly the
        float arithmetic a chain of :meth:`sleep` calls would have
        performed, then schedules the final wake directly — one engine
        event for the whole stretch, bit-identical end time.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot sleep until {time} (now={self.now})")
        return self._sleep_abs(time, time - self.now)

    def _sleep_abs(self, wake: float, delay: float) -> Timeout:
        """Shared body of :meth:`sleep` / :meth:`sleep_until`."""
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._waiter = None
            t.callbacks = None
            t._value = None
            t._exc = None
            t._state = _TRIGGERED
            t.defused = False
            t.label = ""
            t.delay = delay
        else:
            t = Timeout._fresh(self, delay)
        self._seq += 1
        if self._defer_armed and self._defer is None:
            heap = self._heap
            if not heap or wake < heap[0][0]:
                # Strictly earlier than everything queued: park the wake
                # in the defer slot (run_batched consumes it without a
                # heap round-trip).  The sequence number is reserved NOW
                # so that, if a later schedule forces the wake back onto
                # the heap, same-time ordering is identical to the
                # unbatched engine.
                self._defer = (wake, self._seq, t)
                return t
        heapq.heappush(self._heap, (wake, self._seq, t))
        return t

    def all_of(self, events: _t.Sequence[Event], label: str = "") -> AllOf:
        """Fires when all ``events`` fired (cf. ``MPI_Waitall``)."""
        return AllOf(self, events, label=label)

    def any_of(self, events: _t.Sequence[Event], label: str = "") -> AnyOf:
        """Fires when the first of ``events`` fires (cf. ``MPI_Waitany``)."""
        return AnyOf(self, events, label=label)

    def process(self, body: "ProcessBody", name: str = "") -> "Process":
        """Register a generator as a new simulated process."""
        return Process(self, body, name=name)

    # -- kernel ------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        t = self._heap[0][0] if self._heap else _INF
        d = self._defer
        if d is not None and d[0] < t:
            return d[0]
        return t

    def step(self) -> None:
        """Process every event scheduled for the next timestamp.

        One batch = all events sharing the head timestamp (including
        zero-delay events they trigger at that same time), processed in
        scheduling order — exactly the order a one-event-at-a-time loop
        would have used, but with a single heap inspection, clock write
        and ``until`` boundary per batch instead of per event.
        """
        heap = self._heap
        trace = self._trace
        time, _seq, event = heapq.heappop(heap)
        self.now = time
        while True:
            event._process()
            if trace is not None:
                trace(time, event)
            if event._exc is not None and not event.defused:
                raise UnhandledFailure(event._exc)
            if not heap or heap[0][0] != time:
                return
            _same, _seq, event = heapq.heappop(heap)

    def run(self, until: _t.Optional[float] = None,
            detect_deadlock: bool = False) -> None:
        """Run until the queue drains or ``until`` is reached.

        With ``detect_deadlock=True``, raise :class:`DeadlockError` if the
        queue drains while registered processes are still alive — the
        standard failure mode of an unmatched ``recv``.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        if not self._fast:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    return
                self.step()
        else:
            heap = self._heap
            pool = self._timeout_pool
            heappop = heapq.heappop
            trace = self._trace
            getrefcount = _getrefcount
            assert getrefcount is not None  # _fast implies CPython
            pool_append = pool.append
            timeout_cls = Timeout
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return
                time, _seq, event = heappop(heap)
                self.now = time
                # -- inline Event._process; three copies exist (here,
                #    run_batched, Event._process) — keep all in sync;
                #    tests/simulate/test_determinism.py pins their
                #    equivalence on a golden trace -------------------
                event._state = _PROCESSED
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    waiter(event)
                    if event.callbacks is None:
                        # single-waiter success: the dominant shape.
                        # Recycle unreferenced plain timeouts — refcount
                        # 2 means only the local variable and the
                        # getrefcount argument hold the object, so no
                        # model code can observe the reuse.
                        if (event._exc is None and trace is None
                                and type(event) is timeout_cls
                                and len(pool) < _POOL_MAX
                                and getrefcount(event) == 2):
                            pool_append(event)
                            continue
                    else:
                        cbs = event.callbacks
                        event.callbacks = None
                        for cb in cbs:
                            cb(event)
                else:
                    cbs = event.callbacks
                    if cbs is not None:
                        event.callbacks = None
                        for cb in cbs:
                            cb(event)
                # ------------------------------------------------------
                if trace is not None:
                    trace(time, event)
                if event._exc is not None and not event.defused:
                    raise UnhandledFailure(event._exc)
        if until is not None:
            self.now = until
        if detect_deadlock and self._active_processes:
            waiting = ", ".join(sorted(p.name for p in self._active_processes))
            raise DeadlockError(
                f"event queue drained but processes still waiting: {waiting}")

    def run_batched(self, until: _t.Optional[float] = None,
                    detect_deadlock: bool = False) -> None:
        """Run like :meth:`run`, coalescing sole-earliest sleep wakes.

        While this loop runs, :meth:`sleep` / :meth:`sleep_until` park a
        wake that is strictly earlier than every queued event in a
        one-slot defer cell instead of pushing it onto the heap; the
        loop consumes the cell directly, saving the
        ``heappush``/``heappop`` pair per wake.  This is the dominant
        shape of a compute-only stretch: one process charges kernel
        segment after kernel segment while its peers are blocked on
        receives (no queued timeouts of their own).

        The optimization is *order-exact*: the deferred wake reserves
        its heap sequence number when the sleep is taken, and any
        schedule landing at or before the parked time pushes the wake
        back onto the heap before it is processed.  Event processing
        order — and therefore every simulation result — is identical to
        :meth:`run`; ``tests/simulate/test_determinism.py`` asserts
        trace equality on a failure-injection scenario.

        With ``fast=False`` this falls back to :meth:`run` (the
        un-inlined oracle loop never batches).
        """
        if not self._fast:
            return self.run(until=until, detect_deadlock=detect_deadlock)
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        heap = self._heap
        pool = self._timeout_pool
        heappop = heapq.heappop
        heappush = heapq.heappush
        trace = self._trace
        getrefcount = _getrefcount
        assert getrefcount is not None  # _fast implies CPython
        pool_append = pool.append
        timeout_cls = Timeout
        self._defer_armed = True
        try:
            while True:
                d = self._defer
                if d is not None:
                    self._defer = None
                    time, _seq, event = d
                    if ((heap and heap[0][0] <= time)
                            or (event._waiter is None
                                and event.callbacks is None)):
                        # Something scheduled at/before the parked wake,
                        # or the sleep was never yielded: the reserved
                        # sequence number restores exact heap order.
                        heappush(heap, d)
                        continue
                    if until is not None and time > until:
                        heappush(heap, d)
                        self.now = until
                        return
                    # drop the cell tuple's reference so the free-list
                    # refcount check below can still recycle the timeout
                    d = None
                else:
                    if not heap:
                        break
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        return
                    time, _seq, event = heappop(heap)
                self.now = time
                # -- inline Event._process; three copies exist (here,
                #    run's fast loop, Event._process) — keep all in
                #    sync; the golden-trace + test_batched.py tests pin
                #    their equivalence --------------------------------
                event._state = _PROCESSED
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    waiter(event)
                    if event.callbacks is None:
                        if (event._exc is None and trace is None
                                and type(event) is timeout_cls
                                and len(pool) < _POOL_MAX
                                and getrefcount(event) == 2):
                            pool_append(event)
                            continue
                    else:
                        cbs = event.callbacks
                        event.callbacks = None
                        for cb in cbs:
                            cb(event)
                else:
                    cbs = event.callbacks
                    if cbs is not None:
                        event.callbacks = None
                        for cb in cbs:
                            cb(event)
                # ------------------------------------------------------
                if trace is not None:
                    trace(time, event)
                if event._exc is not None and not event.defused:
                    raise UnhandledFailure(event._exc)
        finally:
            self._defer_armed = False
            d = self._defer
            if d is not None:
                # an exception (or ``until``) left a parked wake behind;
                # put it back where an unbatched engine would have it
                self._defer = None
                heappush(heap, d)
        if until is not None:
            self.now = until
        if detect_deadlock and self._active_processes:
            waiting = ", ".join(sorted(p.name for p in self._active_processes))
            raise DeadlockError(
                f"event queue drained but processes still waiting: {waiting}")


class Process(Event):
    """A coroutine driven by the simulator.

    A process body is a generator that yields :class:`Event` objects; the
    process suspends until each yielded event fires, receiving the event's
    value as the result of the ``yield`` (or the event's exception raised
    at the ``yield``).  The :class:`Process` itself is an event that fires
    when the body returns — ``yield other_process`` is a *join*.

    Crash injection: :meth:`kill` terminates the process at the current
    virtual time.  The process event *fails* with :class:`ProcessKilled`
    (defused, so an unobserved crash does not abort the run) and a
    ``GeneratorExit`` is thrown into the body so ``finally`` blocks run.
    """

    __slots__ = ("body", "name", "_waiting_on", "_killed", "_resume_cb",
                 "_send")

    def __init__(self, sim: Simulator, body: "ProcessBody",
                 name: str = "") -> None:
        if not inspect.isgenerator(body):
            raise NotProcessError(
                f"process body must be a generator, got {type(body).__name__}")
        super().__init__(sim, label=name or "process")
        self.body = body
        #: pre-bound ``body.send`` — the array backend resumes through
        #: this slot, saving an attribute chain per wake on its hot path
        self._send = body.send
        self.name = name or getattr(body, "__name__", "process")
        self._waiting_on: _t.Optional[Event] = None
        self._killed = False
        #: the bound resume method, created once — registering a fresh
        #: bound method per wait would allocate on every suspension and
        #: break identity-based deregistration.
        self._resume_cb = self._resume
        sim._active_processes.add(self)
        # Bootstrap: start executing at the current time.
        start = Event(sim, label=f"start:{self.name}")
        start._waiter = self._resume_cb
        start.succeed()

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the body has not returned and was not killed."""
        return self._state == _PENDING

    @property
    def killed(self) -> bool:
        """True if the process was terminated by :meth:`kill`."""
        return self._killed

    # -- crash injection ---------------------------------------------------
    def kill(self, reason: str = "killed") -> None:
        """Terminate the process now (crash-stop fault injection).

        Idempotent; killing a terminated process is a no-op.  The body's
        ``finally`` blocks run (via ``GeneratorExit``), the process event
        fails with :class:`ProcessKilled` and is defused.

        Self-kill: if the process is killed from within its own stack
        (e.g. a fault injector subscribed to a protocol hook the process
        just emitted), :class:`ProcessKilled` is raised *through the
        caller* — it propagates up the victim's frames (running their
        ``finally`` blocks) until the kernel completes the kill.  Code
        between the victim and the kernel must not swallow it.
        """
        if self._state != _PENDING:
            return
        if getattr(self.body, "gi_running", False):
            self._killed = True
            raise ProcessKilled(reason)
        self._killed = True
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._resume_cb)
            self._waiting_on = None
        self.body.close()
        self.sim._active_processes.discard(self)
        self.defused = True
        self.fail(ProcessKilled(reason))

    # -- kernel ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._state != _PENDING:  # killed while the wake-up was in flight
            return
        self._waiting_on = None
        body = self.body
        try:
            exc = event._exc
            if exc is not None:
                event.defused = True
                target = body.throw(exc)
            else:
                target = body.send(event._value if event is not self else None)
        except StopIteration as stop:
            self.sim._active_processes.discard(self)
            self.succeed(stop.value)
            return
        except ProcessKilled:
            # A body may re-raise the kill of a subprocess it joined on;
            # treat as its own crash.
            self.sim._active_processes.discard(self)
            self._killed = True
            self.defused = True
            self.fail(ProcessKilled(f"{self.name}: propagated kill"))
            return
        # Fast path: a freshly created (triggered, unwaited) Timeout —
        # the overwhelmingly common "yield sim.timeout(dt)" case.
        if (type(target) is Timeout and target._state == _TRIGGERED
                and target._waiter is None):
            target._waiter = self._resume_cb
            self._waiting_on = target
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event objects (did you forget a .request()/.recv()?)")
        if target._state == _PROCESSED:
            # Already fired: resume immediately (via a zero-delay event to
            # preserve run-to-completion semantics per event).
            bounce = Event(self.sim, label=f"bounce:{self.name}")
            bounce._waiter = self._resume_cb
            if target._exc is not None:
                target.defused = True
                bounce.defused = True
                bounce.fail(target._exc)
            else:
                bounce.succeed(target._value)
            self._waiting_on = bounce
        else:
            target.add_callback(self._resume_cb)
            self._waiting_on = target
