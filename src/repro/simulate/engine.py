"""The discrete-event simulation kernel.

This module provides the :class:`Simulator` (virtual clock + event heap)
and :class:`Process` (a generator-based coroutine suspended on events).
Everything above it in the stack — the network model, the simulated MPI,
the replication layer and the intra-parallelization runtime — is written
as processes that ``yield`` events.

Determinism
-----------
Events scheduled for the same virtual time are processed in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
is a pure function of its inputs.  Reproduction experiments rely on this:
re-running a failure-injection scenario replays the identical interleaving.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %g" % sim.now
>>> p = sim.process(hello(sim))
>>> sim.run()
>>> p.value
'done at 3'
"""

from __future__ import annotations

import heapq
import inspect
import typing as _t

from .errors import (DeadlockError, NotProcessError, ProcessKilled,
                     SimulationError, UnhandledFailure)
from .events import AllOf, AnyOf, Event, Timeout


class Simulator:
    """Virtual clock and event queue.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, event)`` invoked for every
        processed event; used by tests that assert on protocol traces
        (e.g. the Figure 1 message/compute pattern).
    """

    def __init__(self, trace: _t.Optional[_t.Callable[[float, Event], None]] = None):
        self.now: float = 0.0
        self._heap: _t.List[_t.Tuple[float, int, Event]] = []
        self._seq = 0
        self._trace = trace
        #: live (not yet terminated) processes, used for deadlock detection
        self._active_processes: _t.Set["Process"] = set()

    # -- event construction helpers --------------------------------------
    def event(self, label: str = "") -> Event:
        """A fresh pending event, to be triggered by model code."""
        return Event(self, label=label)

    def timeout(self, delay: float, value: _t.Any = None,
                label: str = "") -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, label=label)

    def all_of(self, events: _t.Sequence[Event], label: str = "") -> AllOf:
        """Fires when all ``events`` fired (cf. ``MPI_Waitall``)."""
        return AllOf(self, events, label=label)

    def any_of(self, events: _t.Sequence[Event], label: str = "") -> AnyOf:
        """Fires when the first of ``events`` fires (cf. ``MPI_Waitany``)."""
        return AnyOf(self, events, label=label)

    def process(self, body: _t.Generator, name: str = "") -> "Process":
        """Register a generator as a new simulated process."""
        return Process(self, body, name=name)

    # -- kernel ------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        time, _seq, event = heapq.heappop(self._heap)
        self.now = time
        event._process()
        if self._trace is not None:
            self._trace(time, event)
        if event.exception is not None and not event.defused:
            raise UnhandledFailure(event.exception)

    def run(self, until: _t.Optional[float] = None,
            detect_deadlock: bool = False) -> None:
        """Run until the queue drains or ``until`` is reached.

        With ``detect_deadlock=True``, raise :class:`DeadlockError` if the
        queue drains while registered processes are still alive — the
        standard failure mode of an unmatched ``recv``.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until
        if detect_deadlock and self._active_processes:
            waiting = ", ".join(sorted(p.name for p in self._active_processes))
            raise DeadlockError(
                f"event queue drained but processes still waiting: {waiting}")


class Process(Event):
    """A coroutine driven by the simulator.

    A process body is a generator that yields :class:`Event` objects; the
    process suspends until each yielded event fires, receiving the event's
    value as the result of the ``yield`` (or the event's exception raised
    at the ``yield``).  The :class:`Process` itself is an event that fires
    when the body returns — ``yield other_process`` is a *join*.

    Crash injection: :meth:`kill` terminates the process at the current
    virtual time.  The process event *fails* with :class:`ProcessKilled`
    (defused, so an unobserved crash does not abort the run) and a
    ``GeneratorExit`` is thrown into the body so ``finally`` blocks run.
    """

    __slots__ = ("body", "name", "_waiting_on", "_killed")

    def __init__(self, sim: Simulator, body: _t.Generator, name: str = ""):
        if not inspect.isgenerator(body):
            raise NotProcessError(
                f"process body must be a generator, got {type(body).__name__}")
        super().__init__(sim, label=name or "process")
        self.body = body
        self.name = name or getattr(body, "__name__", "process")
        self._waiting_on: _t.Optional[Event] = None
        self._killed = False
        sim._active_processes.add(self)
        # Bootstrap: start executing at the current time.
        start = Event(sim, label=f"start:{self.name}")
        start.callbacks.append(self._resume)
        start.succeed()

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the body has not returned and was not killed."""
        return not self.triggered

    @property
    def killed(self) -> bool:
        """True if the process was terminated by :meth:`kill`."""
        return self._killed

    # -- crash injection ---------------------------------------------------
    def kill(self, reason: str = "killed") -> None:
        """Terminate the process now (crash-stop fault injection).

        Idempotent; killing a terminated process is a no-op.  The body's
        ``finally`` blocks run (via ``GeneratorExit``), the process event
        fails with :class:`ProcessKilled` and is defused.

        Self-kill: if the process is killed from within its own stack
        (e.g. a fault injector subscribed to a protocol hook the process
        just emitted), :class:`ProcessKilled` is raised *through the
        caller* — it propagates up the victim's frames (running their
        ``finally`` blocks) until the kernel completes the kill.  Code
        between the victim and the kernel must not swallow it.
        """
        if self.triggered:
            return
        if getattr(self.body, "gi_running", False):
            self._killed = True
            raise ProcessKilled(reason)
        self._killed = True
        if self._waiting_on is not None and self._waiting_on.callbacks is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._waiting_on = None
        self.body.close()
        self.sim._active_processes.discard(self)
        self.defused = True
        self.fail(ProcessKilled(reason))

    # -- kernel ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:  # killed while the wake-up was in flight
            return
        self._waiting_on = None
        try:
            if event.exception is not None:
                event.defused = True
                target = self.body.throw(event.exception)
            else:
                target = self.body.send(event.value if event is not self else None)
        except StopIteration as stop:
            self.sim._active_processes.discard(self)
            self.succeed(stop.value)
            return
        except ProcessKilled:
            # A body may re-raise the kill of a subprocess it joined on;
            # treat as its own crash.
            self.sim._active_processes.discard(self)
            self._killed = True
            self.defused = True
            self.fail(ProcessKilled(f"{self.name}: propagated kill"))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event objects (did you forget a .request()/.recv()?)")
        if target.processed:
            # Already fired: resume immediately (via a zero-delay event to
            # preserve run-to-completion semantics per event).
            bounce = Event(self.sim, label=f"bounce:{self.name}")
            bounce.callbacks.append(self._resume)
            if target.exception is not None:
                target.defused = True
                bounce.defused = True
                bounce.fail(target.exception)
            else:
                bounce.succeed(target.value)
            self._waiting_on = bounce
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target
