"""Deterministic discrete-event simulation kernel (system S1).

This package is the foundation of the reproduction: simulated MPI ranks,
replicas and the intra-parallelization runtime are all generator-based
:class:`~repro.simulate.engine.Process` coroutines advancing a shared
virtual clock.
"""

from .engine import Process, Simulator
from .errors import (DeadlockError, NotProcessError, ProcessKilled,
                     SimulationError, StaleEventError, UnhandledFailure)
from .events import AllOf, AnyOf, ConditionError, Event, Timeout
from .resources import Resource, Store

__all__ = [
    "AllOf", "AnyOf", "ConditionError", "DeadlockError", "Event",
    "NotProcessError", "Process", "ProcessKilled", "Resource",
    "SimulationError", "Simulator", "StaleEventError", "Store", "Timeout",
    "UnhandledFailure",
]
