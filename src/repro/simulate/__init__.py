"""Deterministic discrete-event simulation kernel (system S1).

This package is the foundation of the reproduction: simulated MPI ranks,
replicas and the intra-parallelization runtime are all generator-based
:class:`~repro.simulate.engine.Process` coroutines advancing a shared
virtual clock.

The event queue executes on a pluggable *backend* — the heap-based
``python`` oracle or the vectorized ``array`` core — selected per
simulator (``Simulator(backend=...)``), process-wide
(:func:`set_engine_backend`) or from the environment (``REPRO_ENGINE``).
Backends are bit-identical by construction and differential tests; see
:mod:`repro.simulate.backends`.
"""

from .backends import (ENGINE_BACKENDS, get_engine_backend,
                       set_engine_backend)
from .engine import (Process, Simulator, batched_default,
                     set_batched_default)
from .errors import (DeadlockError, NotProcessError, ProcessKilled,
                     SimulationError, StaleEventError, UnhandledFailure)
from .events import AllOf, AnyOf, ConditionError, Event, Timeout
from .resources import Resource, Store

__all__ = [
    "AllOf", "AnyOf", "ConditionError", "DeadlockError",
    "ENGINE_BACKENDS", "Event", "NotProcessError", "Process",
    "ProcessKilled", "Resource", "SimulationError", "Simulator",
    "StaleEventError", "Store", "Timeout", "UnhandledFailure",
    "batched_default", "get_engine_backend", "set_batched_default",
    "set_engine_backend",
]
