"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes
suspend by ``yield``-ing an event and are resumed when it *fires*.  Events
carry either a value (success) or an exception (failure); a failed event
makes the waiting process's ``yield`` raise, which is how, for example, a
receive posted towards a crashed replica reports an error (Algorithm 1,
line 41 of the paper).

The composite events :class:`AllOf` and :class:`AnyOf` implement the
``MPI_Waitall`` / ``MPI_Waitany`` style synchronisation the
intra-parallelization runtime relies on to overlap update transfers with
task execution (paper §V-A).

Performance notes
-----------------
The kernel processes tens of thousands of events per simulated second of
an experiment sweep, and the overwhelmingly common shape is *one waiter
per event* (a process yielding a timeout).  Two layout decisions keep
that path allocation-free:

* the first registered callback lives in the dedicated ``_waiter`` slot;
  the ``callbacks`` list is lazily allocated only when a second waiter
  appears (composite conditions, protocol hooks);
* state is a plain int slot (``_state``) read directly by the kernel;
  the ``triggered``/``processed``/``ok`` properties remain the public
  API but are off the hot path.

Register and deregister callbacks through :meth:`Event.add_callback` /
:meth:`Event.remove_callback` — mutating ``callbacks`` directly would
bypass the ``_waiter`` slot.
"""

from __future__ import annotations

import typing as _t

from .errors import StaleEventError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulator

Callback = _t.Callable[["Event"], None]

_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence in virtual time.

    Lifecycle: *pending* → *triggered* (``succeed``/``fail`` called, event
    sits in the simulator's queue) → *processed* (callbacks ran, waiting
    processes resumed).
    """

    __slots__ = ("sim", "callbacks", "_waiter", "_value", "_exc", "_state",
                 "defused", "label")

    def __init__(self, sim: "Simulator", label: str = ""):
        self.sim = sim
        #: first registered callback (the common single-waiter case)
        self._waiter: _t.Optional[Callback] = None
        #: overflow callbacks beyond the first, lazily allocated;
        #: ``None`` again once processed (catches late registration).
        self.callbacks: _t.Optional[_t.List[Callback]] = None
        self._value: _t.Any = None
        self._exc: _t.Optional[BaseException] = None
        self._state = _PENDING
        #: a failed event whose failure is expected (e.g. an injected
        #: crash) is *defused* so the kernel does not abort the run.
        self.defused = False
        self.label = label

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run and waiters were resumed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful if triggered)."""
        return self._state >= _TRIGGERED and self._exc is None

    @property
    def value(self) -> _t.Any:
        """The success value (or the failure exception) of the event."""
        if self._exc is not None:
            return self._exc
        return self._value

    @property
    def exception(self) -> _t.Optional[BaseException]:
        """The failure exception, or ``None`` if the event succeeded."""
        return self._exc

    @property
    def has_waiters(self) -> bool:
        """True while at least one callback is registered (used e.g. to
        skip resource grants whose requester was killed)."""
        return self._waiter is not None or bool(self.callbacks)

    # -- callback registration -------------------------------------------
    def add_callback(self, cb: Callback) -> None:
        """Register ``cb(event)`` to run when the event is processed.

        Callbacks run in registration order.  Registering on an already
        processed event is an error (the callback would never run).
        """
        if self._state == _PROCESSED:
            raise StaleEventError(
                f"cannot add a callback to already-processed event {self!r}")
        if self._waiter is None:
            cbs = self.callbacks
            if not cbs:
                self._waiter = cb
            else:
                cbs.append(cb)
        elif self.callbacks is None:
            self.callbacks = [cb]
        else:
            self.callbacks.append(cb)

    def remove_callback(self, cb: Callback) -> bool:
        """Deregister ``cb``; returns whether it was registered.

        Tolerant of already-processed events (the kill path races the
        wake-up it is cancelling).  Comparison is by equality, matching
        ``list.remove`` — bound methods of the same function and instance
        compare equal even when they are distinct objects.
        """
        if self._waiter is cb or self._waiter == cb:
            cbs = self.callbacks
            self._waiter = cbs.pop(0) if cbs else None
            return True
        cbs = self.callbacks
        if cbs is not None:
            try:
                cbs.remove(cb)
                return True
            except ValueError:
                pass
        return False

    # -- triggering ------------------------------------------------------
    def succeed(self, value: _t.Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful; it fires ``delay`` from now."""
        if self._state != _PENDING:
            raise StaleEventError(f"event {self!r} already triggered")
        self._state = _TRIGGERED
        self._value = value
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; the waiter's ``yield`` will raise."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._state != _PENDING:
            raise StaleEventError(f"event {self!r} already triggered")
        self._state = _TRIGGERED
        self._exc = exc
        self.sim._enqueue(self, delay)
        return self

    # -- kernel hooks ------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called by the simulator when the event's time
        arrives; user code never calls this.  (Both simulator run loops
        — ``Simulator.run``'s fast path and ``Simulator.run_batched`` —
        inline this body; keep all three copies in sync.)"""
        self._state = _PROCESSED
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter(self)
        cbs = self.callbacks
        if cbs is not None:
            self.callbacks = None
            for cb in cbs:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered",
                 _PROCESSED: "processed"}[self._state]
        tag = f" {self.label!r}" if self.label else ""
        return f"<{type(self).__name__}{tag} {state} at t={self.sim.now:g}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units after it is
    created.  ``yield sim.timeout(d)`` is how processes model the passage
    of (compute) time.

    The constructor is written against the slot layout directly (no
    ``super().__init__`` chain): timeouts are the single most allocated
    object of a simulation run.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: _t.Any = None,
                 label: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._waiter = None
        self.callbacks = None
        self._value = value
        self._exc = None
        self._state = _TRIGGERED
        self.defused = False
        self.label = label
        self.delay = delay
        sim._enqueue(self, delay)

    @classmethod
    def _fresh(cls, sim: "Simulator", delay: float) -> "Timeout":
        """A plain triggered timeout that is NOT enqueued.

        Kernel-internal: :meth:`Simulator._sleep_abs` owns the scheduling
        decision (heap push vs the batched-dispatch defer slot), so it
        needs a timeout object without the constructor's enqueue.
        """
        t = cls.__new__(cls)
        t.sim = sim
        t._waiter = None
        t.callbacks = None
        t._value = None
        t._exc = None
        t._state = _TRIGGERED
        t.defused = False
        t.label = ""
        t.delay = delay
        return t


class ConditionError(Exception):
    """Wraps the first failure among a composite condition's children."""

    def __init__(self, event: Event, cause: BaseException):
        super().__init__(f"condition child failed: {cause!r}")
        self.event = event
        self.cause = cause


class AllOf(Event):
    """Fires when *all* child events have fired (``MPI_Waitall``).

    The value is a list of child values in the order the children were
    given.  If any child fails, the condition fails immediately with a
    :class:`ConditionError` carrying the first failure; remaining children
    are left to fire on their own (their failures are defused through the
    condition).
    """

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event],
                 label: str = ""):
        super().__init__(sim, label=label)
        self.events = list(events)
        self._pending_count = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._state == _PROCESSED:
                if not ev.ok:
                    self._child_failed(ev)
                    return
            else:
                self._pending_count += 1
                ev.add_callback(self._on_child)
        if self._pending_count == 0 and self._state == _PENDING:
            self.succeed([ev.value for ev in self.events])

    def _on_child(self, ev: Event) -> None:
        if self._state != _PENDING:
            # Condition already failed because of a sibling; absorb this
            # child's outcome so a failure doesn't go unhandled.
            if not ev.ok:
                ev.defused = True
            return
        if not ev.ok:
            self._child_failed(ev)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([e.value for e in self.events])

    def _child_failed(self, ev: Event) -> None:
        ev.defused = True
        assert ev.exception is not None
        self.fail(ConditionError(ev, ev.exception))


class AnyOf(Event):
    """Fires when the *first* child event fires (``MPI_Waitany``).

    The value is a ``(index, value)`` pair identifying which child fired.
    A first-failing child fails the condition.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event],
                 label: str = ""):
        super().__init__(sim, label=label)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf needs at least one event")
        for idx, ev in enumerate(self.events):
            if ev._state == _PROCESSED:
                self._on_child_idx(ev, idx)
                if self._state != _PENDING:
                    break
            else:
                ev.add_callback(
                    lambda e, i=idx: self._on_child_idx(e, i))

    def _on_child_idx(self, ev: Event, idx: int) -> None:
        if self._state != _PENDING:
            if not ev.ok:
                ev.defused = True
            return
        if not ev.ok:
            ev.defused = True
            assert ev.exception is not None
            self.fail(ConditionError(ev, ev.exception))
        else:
            self.succeed((idx, ev.value))
