"""Replication-layer exceptions."""

from __future__ import annotations


class ReplicationError(RuntimeError):
    """Base class for replication-layer errors."""


class NoLiveReplicaError(ReplicationError):
    """Every replica of a logical rank has crashed: the application is
    interrupted (the event whose probability [16] shows to be small for
    replication degree 2)."""

    def __init__(self, logical_rank: int):
        super().__init__(
            f"all replicas of logical rank {logical_rank} have failed; "
            f"application interrupted")
        self.logical_rank = logical_rank


class ProtocolError(ReplicationError):
    """Internal invariant of the replication protocol was violated
    (e.g. a gap in a logical message stream that replay cannot explain)."""
