"""Replica-set management, failure detection, replay service, launcher.

:class:`ReplicationManager` owns the mapping *logical rank → replicas*
(the paper's "logical process" vs "physical process" distinction, §III),
the per-plane communicator contexts, the perfect failure detector, and
the replay service that keeps the mirror protocol gap-free across
crashes.

Launch path::

    world = MpiWorld(cluster, netspec)
    job = launch_replicated_job(world, program, n_logical=16, degree=2)
    world.run()
    job.results()      # per logical rank, per replica return values

Application programs have the same signature as for plain MPI jobs —
``program(ctx, comm, *args)`` — and observe *logical* ranks through the
:class:`~repro.replication.comm.ReplicatedComm`; replication is
transparent, as with rMPI/SDR-MPI.  The intra-parallelization runtime
(system S7) is attached to ``ctx.intra`` by the launcher, so the same
program source runs native, replicated, or intra-parallelized.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..mpi.communicator import Communicator
from ..mpi.errors import RankFailure
from ..mpi.world import MpiWorld, ProcContext
from ..netmodel import Slot, replica_placement
from ..simulate import Process, ProcessKilled
from .comm import ReplicatedComm
from .errors import NoLiveReplicaError, ReplicationError
from .failures import HookBus

#: control-plane tag for replay requests
_TAG_REPLAY = 1


@dataclasses.dataclass
class ReplicaInfo:
    """Bookkeeping for one replica (physical process)."""
    logical_rank: int
    replica_id: int
    ctx: ProcContext
    alive: bool = True
    app_process: _t.Optional[Process] = None
    service_process: _t.Optional[Process] = None
    rcomm: _t.Optional[ReplicatedComm] = None
    crash_time: _t.Optional[float] = None

    @property
    def endpoint_id(self) -> int:
        return self.ctx.endpoint.id


class ReplicationManager:
    """Global state of one replicated job."""

    def __init__(self, world: MpiWorld, n_logical: int, degree: int = 2,
                 fd_delay: float = 50e-6, name: str = "repl"):
        if degree < 1:
            raise ReplicationError(f"replication degree must be >= 1, "
                                   f"got {degree}")
        if n_logical < 1:
            raise ReplicationError("need at least one logical rank")
        if fd_delay < 0:
            raise ReplicationError("fd_delay must be non-negative")
        self.world = world
        self.n_logical = n_logical
        self.degree = degree
        self.fd_delay = fd_delay
        self.name = name
        self.hooks = HookBus()
        #: replicas[lrank][rid]
        self.replicas: _t.List[_t.List[ReplicaInfo]] = []
        #: communicator context of each plane
        self.plane_context: _t.List[int] = [world.new_context()
                                            for _ in range(degree)]
        #: control-plane context (replay requests)
        self.control_context: int = world.new_context()
        #: per-logical-rank replica-set communicator (intra updates)
        self.replica_comms: _t.List[Communicator] = []
        #: death listeners: callback(logical_rank, replica_id)
        self._death_listeners: _t.List[_t.Callable[[int, int], None]] = []

    # --------------------------------------------------------- membership
    def build(self, placements: _t.Sequence[_t.Sequence[Slot]]) -> None:
        """Spawn all replica processes according to ``placements``."""
        if len(placements) != self.n_logical:
            raise ReplicationError(
                f"placements for {len(placements)} logical ranks, "
                f"expected {self.n_logical}")
        for lrank, slots in enumerate(placements):
            if len(slots) != self.degree:
                raise ReplicationError(
                    f"logical rank {lrank}: {len(slots)} slots for degree "
                    f"{self.degree}")
            row = []
            for rid, slot in enumerate(slots):
                ctx = self.world.spawn(
                    slot, name=f"{self.name}.l{lrank}r{rid}")
                row.append(ReplicaInfo(lrank, rid, ctx))
            self.replicas.append(row)
        for lrank in range(self.n_logical):
            eps = [info.endpoint_id for info in self.replicas[lrank]]
            self.replica_comms.append(
                Communicator(self.world, eps, name=f"rset{lrank}"))

    def replica(self, lrank: int, rid: int) -> ReplicaInfo:
        return self.replicas[lrank][rid]

    def alive_replicas(self, lrank: int) -> _t.List[ReplicaInfo]:
        """Live replicas of one logical rank, by ascending replica id."""
        return [r for r in self.replicas[lrank] if r.alive]

    def cover_of(self, lrank: int) -> ReplicaInfo:
        """The designated cover: lowest-id live replica of ``lrank``."""
        live = self.alive_replicas(lrank)
        if not live:
            raise NoLiveReplicaError(lrank)
        return live[0]

    def planes_covered_by(self, lrank: int, rid: int) -> _t.List[int]:
        """Planes replica ``rid`` of ``lrank`` must send on: its own,
        plus every dead sibling's plane if ``rid`` is the cover."""
        me = self.replica(lrank, rid)
        if not me.alive:
            return []
        planes = [rid]
        if self.cover_of(lrank).replica_id == rid:
            planes += [r.replica_id for r in self.replicas[lrank]
                       if not r.alive]
        return planes

    def live_sender_endpoint(self, lrank: int, plane: int) -> int:
        """Endpoint a plane-``plane`` receiver should listen to for
        logical sender ``lrank``: its mirror if alive, else the cover."""
        info = self.replica(lrank, plane)
        if info.alive:
            return info.endpoint_id
        return self.cover_of(lrank).endpoint_id

    def on_death(self, listener: _t.Callable[[int, int], None]) -> None:
        """Register a callback invoked (after FD delay) on each crash."""
        self._death_listeners.append(listener)

    # ------------------------------------------------------------ failures
    def crash_replica(self, lrank: int, rid: int) -> None:
        """Crash-stop failure of one replica, effective immediately; the
        failure detector notifies survivors ``fd_delay`` later."""
        info = self.replica(lrank, rid)
        if not info.alive:
            return
        info.alive = False
        info.crash_time = self.world.sim.now
        self.hooks.emit("replica_crashed", logical_rank=lrank,
                        replica_id=rid, time=self.world.sim.now)

        def fd_body():
            yield self.world.sim.timeout(self.fd_delay)
            self._fd_notify(lrank, rid)

        self.world.sim.process(fd_body(), name=f"fd:{lrank}.{rid}")
        if info.service_process is not None:
            info.service_process.kill("host replica crashed")
        if info.rcomm is not None:
            for proc in list(info.rcomm.pending_loops):
                proc.kill("host replica crashed")
        # Last: may raise ProcessKilled through the victim's own stack
        # when the crash was triggered by a hook the victim emitted.
        self.world.kill_endpoint(info.endpoint_id)

    def _fd_notify(self, lrank: int, rid: int) -> None:
        """Failure-detector verdict: propagate to all endpoints, trigger
        proactive channel replays, run listeners."""
        dead = self.replica(lrank, rid)
        self.world.notify_death(dead.endpoint_id)
        self.hooks.emit("replica_death_detected", logical_rank=lrank,
                        replica_id=rid, time=self.world.sim.now)
        # Proactive replay: every live plane-`rid` receiver may have lost
        # in-flight messages from the dead replica; ask the cover to
        # replay each channel from the receiver's consumed prefix.
        try:
            self.cover_of(lrank)
        except NoLiveReplicaError:
            # Logical rank wiped out: wake every plane receive awaiting
            # this rank so its proxy can report NoLiveReplicaError.
            plane_ctxs = set(self.plane_context)
            for row in self.replicas:
                for info in row:
                    if info.alive:
                        info.ctx.endpoint.fail_posted(
                            lambda pr: (pr.context in plane_ctxs
                                        and pr.source_rank == lrank),
                            lambda: RankFailure(
                                -1, f"logical rank {lrank} wiped out"))
        else:
            for dst_lrank in range(self.n_logical):
                dst = self.replica(dst_lrank, rid)
                if dst.alive and dst_lrank != lrank:
                    self.request_replay(requester_lrank=dst_lrank,
                                        requester_rid=rid,
                                        channel_lrank=lrank)
        for listener in list(self._death_listeners):
            listener(lrank, rid)

    # ------------------------------------------------------------- replay
    def request_replay(self, requester_lrank: int, requester_rid: int,
                       channel_lrank: int) -> None:
        """Send a control message to the cover of ``channel_lrank``
        asking it to re-send channel ``channel_lrank -> requester_lrank``
        messages the requester has not consumed yet."""
        requester = self.replica(requester_lrank, requester_rid)
        if not requester.alive:
            return
        try:
            cover = self.cover_of(channel_lrank)
        except NoLiveReplicaError:
            return
        assert requester.rcomm is not None
        prefix = requester.rcomm.seen_prefix(channel_lrank)
        self.world.post_send(
            src=requester.ctx.endpoint, dst_endpoint=cover.endpoint_id,
            src_rank=requester_lrank, tag=_TAG_REPLAY,
            context=self.control_context,
            payload=(requester_lrank, requester_rid, prefix), nbytes=24)

    def _service_program(self, info: ReplicaInfo):
        """Replay service: runs next to the application replica, answers
        replay requests from its send log."""
        ep = info.ctx.endpoint
        while True:
            req = ep.post_recv(source_endpoint=-1, source_rank=-1,
                               tag=_TAG_REPLAY, context=self.control_context)
            payload, _status = yield req.event
            req_lrank, req_rid, prefix = payload
            rcomm = info.rcomm
            assert rcomm is not None
            log = rcomm.send_log.get(req_lrank, [])
            target = self.replica(req_lrank, req_rid)
            if not target.alive:
                continue
            for lseq, tag, data in log:
                if lseq <= prefix:
                    continue
                sreq = self.world.post_send(
                    src=ep, dst_endpoint=target.endpoint_id,
                    src_rank=info.logical_rank, tag=tag,
                    context=self.plane_context[req_rid],
                    payload=(lseq, data),
                    nbytes=rcomm_nbytes(data))
                yield sreq.event  # pace replays at injection rate

    # ------------------------------------------------------------- launch
    def start_program(self, program: _t.Callable[..., _t.Generator],
                      args: _t.Tuple = (),
                      kwargs: _t.Optional[dict] = None) -> None:
        """Start the application program and replay service on every
        replica."""
        kwargs = kwargs or {}
        for row in self.replicas:
            for info in row:
                rcomm = ReplicatedComm(self, info.logical_rank,
                                       info.replica_id, info.ctx)
                info.rcomm = rcomm
                info.app_process = self.world.start(
                    info.ctx, program(info.ctx, rcomm, *args, **kwargs))
                info.service_process = self.world.sim.process(
                    self._service_program(info),
                    name=f"svc:{info.ctx.name}")
        self.world.sim.process(self._supervisor(), name=f"{self.name}.sup")

    def _supervisor(self):
        """Joins all application replicas, then retires the services (so
        deadlock detection stays meaningful for application hangs).

        Rescans the replica table after every join: replicas that were
        restarted during the run install a *new* app process that must
        also be joined before the services go away (the replacement may
        still need replay service from its sibling)."""
        joined: _t.Set[Process] = set()
        while True:
            pending = [info.app_process
                       for row in self.replicas for info in row
                       if info.app_process is not None
                       and info.app_process not in joined]
            if not pending:
                break
            for proc in pending:
                try:
                    yield proc
                except ProcessKilled:
                    pass
                except (RankFailure, NoLiveReplicaError):
                    pass
                joined.add(proc)
        for row in self.replicas:
            for info in row:
                if (info.service_process is not None
                        and info.service_process.is_alive):
                    info.service_process.kill("job finished")
                if info.rcomm is not None:
                    for proc in list(info.rcomm.pending_loops):
                        proc.kill("job finished")


def rcomm_nbytes(data: _t.Any) -> int:
    """Wire size of a replicated logical message (payload + lseq)."""
    from ..mpi.datatypes import payload_nbytes
    return payload_nbytes(data) + 8


class ReplicatedJob:
    """Handle on a launched replicated application."""

    def __init__(self, world: MpiWorld, manager: ReplicationManager):
        self.world = world
        self.manager = manager

    @property
    def elapsed(self) -> float:
        return self.world.sim.now

    def results(self) -> _t.List[_t.List[_t.Any]]:
        """``results()[lrank][rid]`` — a replica's return value, or the
        :class:`ProcessKilled` exception if it crashed."""
        out = []
        for row in self.manager.replicas:
            vals = []
            for info in row:
                p = info.app_process
                vals.append(p.value if p is not None else None)
            out.append(vals)
        return out

    def surviving_results(self) -> _t.List[_t.Any]:
        """One return value per logical rank, taken from its lowest-id
        surviving replica.  Raises if a logical rank was wiped out."""
        out = []
        for lrank in range(self.manager.n_logical):
            live = self.manager.alive_replicas(lrank)
            if not live:
                raise NoLiveReplicaError(lrank)
            out.append(live[0].app_process.value)
        return out


def launch_replicated_job(world: MpiWorld,
                          program: _t.Callable[..., _t.Generator],
                          n_logical: int, degree: int = 2,
                          spread: int = 1, fd_delay: float = 50e-6,
                          placements: _t.Optional[
                              _t.Sequence[_t.Sequence[Slot]]] = None,
                          args: _t.Tuple = (),
                          kwargs: _t.Optional[dict] = None,
                          ) -> ReplicatedJob:
    """Build a :class:`ReplicationManager`, place replicas (different
    nodes per logical rank, as in the paper's §V-B), start the program.

    The caller still owns ``world.run()`` so failure injectors can be
    attached before time starts."""
    manager = ReplicationManager(world, n_logical, degree=degree,
                                 fd_delay=fd_delay)
    if placements is None:
        placements = replica_placement(world.cluster, n_logical,
                                       degree=degree, spread=spread)
    manager.build(placements)
    manager.start_program(program, args=args, kwargs=kwargs)
    return ReplicatedJob(world, manager)
