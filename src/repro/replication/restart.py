"""Replica restart (the §VI extension the paper argues for).

"With intra-parallelization, it is important to restart failed replicas
as soon as possible, since speed-up of a logical process execution can
only be achieved if tasks are shared among multiple replicas.  Another
study of MPI replication shows that the cost of starting a new replica
is low in general [19]."

This module implements that restart for **replication degree 2** (the
paper's setting) and applications structured as a *step loop* — the
natural shape of every app in this repository (CG iterations, PIC
steps, stencil steps):

1. The application implements the :class:`Restartable` protocol
   (init/step/snapshot/restore/finalize) and runs under
   :func:`run_restartable`.
2. A :class:`RestartCoordinator` watches for replica deaths and flags a
   pending restart; it spawns the replacement process (fresh endpoint on
   the dead replica's slot) which blocks waiting for state.
3. At its next step boundary, the surviving replica (the *cover*)
   hands over: it ships a snapshot — application state **plus** the
   replication-protocol state (logical send counters, dedupe filters,
   send log for replay, intra section index) — and atomically marks the
   replacement alive.
4. Nothing special is needed on the peers: replicated receives match by
   *logical source rank* (see :meth:`ReplicatedComm.irecv`), so messages
   are accepted from mirror, cover or replacement alike, and the dedupe
   filter absorbs the overlap; the replacement fills any channel gaps by
   requesting replay from each sender's cover.

From the step after the handover, sections are scheduled over both
replicas again: work sharing (and its >50% efficiency) resumes.
"""

from __future__ import annotations

import typing as _t

from ..mpi.message import ANY_SOURCE
from .comm import ReplicatedComm
from .errors import ReplicationError
from .manager import ReplicaInfo, ReplicationManager

#: control-plane tag for restart state transfer (replay uses tag 1)
_TAG_RESTART = 2


class Restartable:
    """Protocol for step-structured applications.

    Methods other than ``snapshot``/``restore`` may be generators
    (``yield`` events); ``snapshot`` must return a payload the simulated
    MPI can ship (numpy arrays / scalars / containers).
    """

    n_steps: int = 1

    def init_state(self, ctx, comm) -> _t.Any:
        """Build the rank's initial state (plain function)."""
        raise NotImplementedError

    def step(self, ctx, comm, state: _t.Any, step_index: int):
        """One application step (generator)."""
        raise NotImplementedError

    def snapshot(self, state: _t.Any) -> _t.Any:
        """Serializable copy of ``state`` at a step boundary."""
        raise NotImplementedError

    def restore(self, payload: _t.Any) -> _t.Any:
        """Rebuild state from :meth:`snapshot`'s payload."""
        raise NotImplementedError

    def finalize(self, ctx, comm, state: _t.Any) -> _t.Any:
        """Produce the rank's result (plain function)."""
        return state


class RestartCoordinator:
    """Manager-side restart orchestration (degree 2 only).

    ``policy`` is an optional *declarative* restart policy — any object
    with ``trigger`` / ``delay`` / ``backoff`` / ``max_restarts`` /
    ``checkpoint_interval`` attributes, canonically a
    :class:`repro.scenarios.RestartPolicy` (duck-typed: this layer never
    imports the scenarios layer).  Without one, behaviour is the
    original restart-every-death with a fixed ``restart_delay``.
    """

    def __init__(self, manager: ReplicationManager, app: Restartable,
                 restart_delay: float = 1e-3, policy: _t.Any = None):
        if manager.degree != 2:
            raise ReplicationError(
                "replica restart is implemented for replication degree 2 "
                "(the paper's configuration): with a single survivor "
                "there is no schedule-agreement race")
        self.manager = manager
        self.app = app
        self.policy = policy
        #: spawn cost for the replacement process (job launch, binary
        #: load — [19] reports this is low; configurable)
        self.restart_delay = (restart_delay if policy is None
                              else policy.delay)
        #: lrank -> replacement ReplicaInfo awaiting state
        self.pending: _t.Dict[int, ReplicaInfo] = {}
        self.restarts_completed = 0
        #: restarts *scheduled* (pending + completed + abandoned):
        #: what the policy's max_restarts budget counts
        self.restarts_started = 0
        manager.on_death(self._on_death)

    # ----------------------------------------------------------- death
    def _on_death(self, lrank: int, rid: int) -> None:
        if lrank in self.pending:
            return  # one restart at a time per logical rank
        if not self.manager.alive_replicas(lrank):
            return  # rank wiped out; nothing to restart from
        pol = self.policy
        delay = self.restart_delay
        if pol is not None:
            if (pol.max_restarts is not None
                    and self.restarts_started >= pol.max_restarts):
                return  # restart budget exhausted
            if (pol.trigger == "on-degree-loss"
                    and len(self.manager.alive_replicas(lrank))
                    >= self.manager.degree):
                return  # the rank is still at full degree
            delay = pol.delay * (pol.backoff ** self.restarts_started)
        self.restarts_started += 1
        sim = self.manager.world.sim

        def spawn_later():
            yield sim.timeout(delay)
            self._spawn_replacement(lrank, rid)

        sim.process(spawn_later(), name=f"respawn:{lrank}.{rid}")

    def _spawn_replacement(self, lrank: int, rid: int) -> None:
        mgr = self.manager
        live = mgr.alive_replicas(lrank)
        if not live:
            return  # wiped out while the respawn was in flight
        cover = live[0]
        if (cover.app_process is not None
                and cover.app_process.triggered):
            return  # the job already finished; a replacement is useless
        old = mgr.replica(lrank, rid)
        ctx = mgr.world.spawn(old.ctx.slot,
                              name=f"{mgr.name}.l{lrank}r{rid}'")
        info = ReplicaInfo(lrank, rid, ctx, alive=False)
        rcomm = ReplicatedComm(mgr, lrank, rid, ctx)
        info.rcomm = rcomm
        mgr.replicas[lrank][rid] = info
        # the replica-set communicator (intra updates) now addresses the
        # fresh endpoint; members resolve ranks per call, so the
        # survivor's handle observes this immediately
        mgr.replica_comms[lrank].replace_endpoint(old.endpoint_id,
                                                  info.endpoint_id)
        self.pending[lrank] = info
        self.manager.hooks.emit("replica_respawned", logical_rank=lrank,
                                replica_id=rid,
                                time=mgr.world.sim.now)
        info.app_process = mgr.world.start(
            ctx, _rejoin_program(self, info))
        info.service_process = mgr.world.sim.process(
            mgr._service_program(info), name=f"svc:{ctx.name}")

    # -------------------------------------------------------- handover
    def wants_handover(self, lrank: int, rid: int,
                       boundary: _t.Optional[int] = None) -> bool:
        """Should the (cover) replica serve a restart at this boundary?

        ``boundary`` is the 1-based step boundary the caller just
        reached; under a policy with ``checkpoint_interval = k``,
        handovers are served only at boundaries divisible by ``k``
        (``None`` — a caller without step context — serves at any
        boundary)."""
        info = self.pending.get(lrank)
        if info is None:
            return False
        if (self.policy is not None and boundary is not None
                and boundary % self.policy.checkpoint_interval != 0):
            return False
        cover = self.manager.cover_of(lrank)
        return cover.replica_id == rid

    def serve_handover(self, ctx, comm: ReplicatedComm, state: _t.Any,
                       next_step: int, intra_section_index: int):
        """Cover side: ship state + protocol state and flip the
        replacement alive.  Generator."""
        mgr = self.manager
        info = self.pending.pop(comm.lrank)
        payload = {
            "next_step": next_step,
            "app": self.app.snapshot(state),
            "next_lseq": dict(comm._next_lseq),
            "prefix": dict(comm._prefix),
            "seen": {k: sorted(v) for k, v in comm._seen.items() if v},
            "send_log": {k: list(v) for k, v in comm.send_log.items()},
            "section_index": intra_section_index,
        }
        from ..mpi.datatypes import payload_nbytes
        req = mgr.world.post_send(
            src=ctx.endpoint, dst_endpoint=info.endpoint_id,
            src_rank=comm.lrank, tag=_TAG_RESTART,
            context=mgr.control_context, payload=payload,
            nbytes=payload_nbytes(payload["app"]) + 256)
        yield req.event  # injected: the survivor may proceed
        # Atomically (same virtual instant) bring the replica back:
        # receives match by logical source rank, so peers accept the
        # replacement's messages without any re-resolution.
        info.alive = True
        self.restarts_completed += 1
        mgr.hooks.emit("replica_restarted", logical_rank=comm.lrank,
                       replica_id=info.replica_id,
                       time=mgr.world.sim.now)

    def abandon(self, lrank: int) -> None:
        """Cancel a pending restart (the cover finished the job before
        the handover point: a late replacement is useless)."""
        info = self.pending.pop(lrank, None)
        if info is None:
            return
        if info.app_process is not None and info.app_process.is_alive:
            info.app_process.kill("restart abandoned: job finished")
        if (info.service_process is not None
                and info.service_process.is_alive):
            info.service_process.kill("restart abandoned")


def _rejoin_program(coord: RestartCoordinator, info: ReplicaInfo):
    """The replacement replica: wait for state, restore, resume the
    step loop."""
    mgr = coord.manager
    ctx = info.ctx
    comm = info.rcomm
    req = ctx.endpoint.post_recv(
        source_endpoint=ANY_SOURCE, source_rank=ANY_SOURCE,
        tag=_TAG_RESTART, context=mgr.control_context)
    payload, _status = yield req.event
    comm._next_lseq = dict(payload["next_lseq"])
    comm._prefix = dict(payload["prefix"])
    comm._seen = {k: set(v) for k, v in payload["seen"].items()}
    comm.send_log = {k: [tuple(e) for e in v]
                     for k, v in payload["send_log"].items()}
    state = coord.app.restore(payload["app"])
    # fill any channel gaps that opened while we were down
    for lsrc in range(mgr.n_logical):
        if lsrc != comm.lrank:
            mgr.request_replay(requester_lrank=comm.lrank,
                               requester_rid=comm.rid,
                               channel_lrank=lsrc)
    _attach_intra(ctx, comm, payload["section_index"])
    result = yield from _step_loop(coord, ctx, comm, state,
                                   payload["next_step"])
    return result


def _attach_intra(ctx, comm: ReplicatedComm, section_index: int) -> None:
    """Give the restarted replica an intra runtime whose section counter
    matches the survivor's (update tags embed it)."""
    from ..intra.runtime import IntraRuntime
    mgr = comm.manager
    rset = mgr.replica_comms[comm.lrank].bind(ctx)
    runtime = IntraRuntime(ctx, mgr, comm.lrank, comm.rid, rset)
    runtime.section_index = section_index
    ctx.intra = runtime


def _step_loop(coord: RestartCoordinator, ctx, comm, state,
               first_step: int):
    """The shared step loop: run steps, serving handovers at
    boundaries."""
    app = coord.app
    for step_index in range(first_step, app.n_steps):
        yield from app.step(ctx, comm, state, step_index)
        if coord.wants_handover(comm.lrank, comm.rid,
                                boundary=step_index + 1):
            yield from coord.serve_handover(
                ctx, comm, state, next_step=step_index + 1,
                intra_section_index=ctx.intra.section_index)
    # A respawn that arrives after the last step has no handover point:
    # abandon it (restarting into a finished job is useless).
    if (comm.lrank in coord.pending
            and coord.manager.cover_of(comm.lrank).replica_id == comm.rid):
        coord.abandon(comm.lrank)
    return app.finalize(ctx, comm, state)


def run_restartable(coord: RestartCoordinator):
    """Build the rank program for :func:`launch_intra_job` /
    ``launch_mode``: ``program(ctx, comm)`` running ``coord.app`` with
    restart support."""
    app = coord.app

    def program(ctx, comm):
        state = app.init_state(ctx, comm)
        result = yield from _step_loop(coord, ctx, comm, state, 0)
        return result

    return program


def launch_restartable_job(world, app: Restartable, n_logical: int,
                           fd_delay: float = 50e-6,
                           restart_delay: float = 1e-3,
                           spread: int = 1,
                           scheduler=None,
                           policy=None):
    """Launch an intra-parallelized replicated job with replica restart.

    Returns ``(ReplicatedJob, RestartCoordinator)``.  Inject crashes via
    :class:`~repro.replication.failures.FailureInjector` as usual — dead
    replicas respawn automatically after ``restart_delay`` and rejoin
    work sharing at the survivor's next step boundary.  ``policy`` (a
    declarative restart policy, see :class:`RestartCoordinator`)
    overrides ``restart_delay`` and adds trigger/budget/backoff/
    checkpoint-cadence semantics — the scenario runner's path.
    """
    from ..intra.runtime import IntraRuntime
    from ..netmodel import replica_placement
    from .manager import ReplicatedJob

    manager = ReplicationManager(world, n_logical, degree=2,
                                 fd_delay=fd_delay)
    placements = replica_placement(world.cluster, n_logical, degree=2,
                                   spread=spread)
    manager.build(placements)
    coord = RestartCoordinator(manager, app, restart_delay=restart_delay,
                               policy=policy)
    base_program = run_restartable(coord)

    def wrapped(ctx, comm):
        rset = manager.replica_comms[comm.lrank].bind(ctx)
        ctx.intra = IntraRuntime(ctx, manager, comm.lrank, comm.rid,
                                 rset, scheduler=scheduler)
        result = yield from base_program(ctx, comm)
        return result

    manager.start_program(wrapped)
    return ReplicatedJob(world, manager), coord
