"""Fault injection and failure detection (crash-stop model).

The paper assumes crash-stop failures with an (out-of-scope but implied)
failure detector: "It also assumes that trying to receive an update from
a failed replica returns an error" (Algorithm 1).  We implement:

* :class:`FailureInjector` — schedules replica crashes at virtual times
  or on protocol hook events (e.g. "after the update for variable `a` of
  task 3 was injected", the Figure 2 scenario);
* a perfect failure detector with configurable detection delay, driven
  by :class:`~repro.replication.manager.ReplicationManager`: every
  surviving endpoint learns of a crash ``fd_delay`` seconds after it
  happens, failing its pending receives from the dead peer.
* :class:`HookBus` — a synchronous pub/sub bus the intra-parallelization
  runtime publishes protocol events on; injectors subscribe to trigger
  crashes at precise protocol points, which is how the §III-B2 failure
  cases are exercised deterministically.
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from .manager import ReplicationManager


class HookBus:
    """Synchronous publish/subscribe bus for protocol events.

    Handlers run inline at the emit point (deterministically), so a
    fault-injection handler can crash a replica *between* two protocol
    steps — e.g. between the per-variable update messages of one task.
    """

    def __init__(self) -> None:
        self._handlers: _t.DefaultDict[str, _t.List[_t.Callable]] = \
            collections.defaultdict(list)
        self.events_seen: _t.List[_t.Tuple[str, dict]] = []
        self.record = False

    def subscribe(self, name: str, handler: _t.Callable[..., None]) -> None:
        """Register ``handler(**kwargs)`` for events named ``name``."""
        self._handlers[name].append(handler)

    def has_handlers(self, name: str) -> bool:
        """Whether anything is subscribed to ``name``.

        Batched section execution asks this before coalescing a stretch
        whose hook emissions a subscriber could observe mid-stretch
        (:meth:`repro.intra.runtime.IntraRuntime._run_section`): with a
        subscriber present, emissions must land at their exact per-task
        times, so the runtime falls back to the task-by-task oracle.
        Uses ``get`` so probing never materializes an empty bucket in
        the defaultdict.
        """
        return bool(self._handlers.get(name))

    def emit(self, name: str, **kwargs: _t.Any) -> None:
        """Publish an event; all handlers run synchronously, in
        subscription order."""
        if self.record:
            self.events_seen.append((name, kwargs))
        for handler in list(self._handlers[name]):
            handler(**kwargs)


@dataclasses.dataclass
class CrashPlan:
    """A scheduled crash."""
    logical_rank: int
    replica_id: int
    #: virtual time of the crash (for time-triggered plans)
    at_time: _t.Optional[float] = None
    #: hook event name (for protocol-triggered plans)
    on_hook: _t.Optional[str] = None
    #: predicate over the hook's kwargs; crash fires on first match
    when: _t.Optional[_t.Callable[..., bool]] = None
    fired: bool = False


class FailureInjector:
    """Schedules crash-stop failures against a replicated job."""

    def __init__(self, manager: "ReplicationManager"):
        self.manager = manager
        self.plans: _t.List[CrashPlan] = []

    def kill_at(self, logical_rank: int, replica_id: int,
                time: float) -> CrashPlan:
        """Crash replica ``replica_id`` of ``logical_rank`` at virtual
        ``time``."""
        plan = CrashPlan(logical_rank, replica_id, at_time=time)
        self.plans.append(plan)
        sim = self.manager.world.sim

        def body():
            yield sim.timeout(time - sim.now)
            self._fire(plan)

        sim.process(body(), name=f"crash@{time}")
        return plan

    def kill_on_hook(self, logical_rank: int, replica_id: int, hook: str,
                     when: _t.Optional[_t.Callable[..., bool]] = None
                     ) -> CrashPlan:
        """Crash the replica the first time hook ``hook`` fires with
        kwargs satisfying ``when`` (default: first occurrence).

        Only events emitted *by the victim replica itself* trigger the
        crash (so "kill P#1 after it sent variable a's update" cannot be
        triggered by P#2's traffic).
        """
        plan = CrashPlan(logical_rank, replica_id, on_hook=hook, when=when)
        self.plans.append(plan)

        def handler(**kwargs: _t.Any) -> None:
            if plan.fired:
                return
            if (kwargs.get("logical_rank") == logical_rank
                    and kwargs.get("replica_id") == replica_id
                    and (when is None or when(**kwargs))):
                self._fire(plan)

        self.manager.hooks.subscribe(hook, handler)
        return plan

    def apply(self, events: _t.Iterable[_t.Any]) -> _t.List[CrashPlan]:
        """Schedule a batch of time-triggered crashes.

        ``events`` are ``(logical_rank, replica_id, time)`` triples or
        any objects exposing those attributes (e.g. the materialized
        events of a :class:`repro.scenarios.FailureSchedule`) — the
        uniform installation path for declarative failure workloads.
        """
        plans = []
        for ev in events:
            if isinstance(ev, tuple):
                lrank, rid, at = ev
            else:
                lrank, rid, at = ev.logical_rank, ev.replica_id, ev.time
            plans.append(self.kill_at(lrank, rid, at))
        return plans

    def _fire(self, plan: CrashPlan) -> None:
        if plan.fired:
            return
        plan.fired = True
        self.manager.crash_replica(plan.logical_rank, plan.replica_id)
