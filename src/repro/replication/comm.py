"""The replicated communicator: MPI semantics over replica planes.

:class:`ReplicatedComm` gives application code the exact API of
:class:`~repro.mpi.communicator.BoundComm` (ranks are *logical* ranks),
while underneath every logical message flows through the mirror protocol:

* replica *k* of the sender transmits to replica *k* of the receiver
  ("planes"); each plane has its own communicator context, so plane
  traffic never crosses;
* every send is appended to a per-channel **send log** and wrapped with a
  per-channel **logical sequence number**;
* receivers drop duplicates using a per-channel *seen* set (tags allow
  out-of-order consumption, so a single counter is not enough);
* when replica *m* of a logical sender dies, the lowest-id surviving
  replica (the *cover*) starts dual-sending to plane *m*, and the replay
  service (:mod:`repro.replication.manager`) re-sends the logged messages
  the dead replica may never have delivered.

The combination guarantees every live replica receives every logical
message exactly once (perfect failure detector, crash-stop faults) —
i.e. state-machine replication as the paper's §III assumes it, with the
partial-determinism role of SDR-MPI played by deterministic simulation.
"""

from __future__ import annotations

import typing as _t

from ..mpi.collectives import CollectiveOps
from ..mpi.datatypes import copy_payload, payload_nbytes
from ..mpi.errors import RankFailure
from ..mpi.message import ANY_SOURCE, ANY_TAG, Status
from ..mpi.request import Request
from ..simulate import Event
from .errors import NoLiveReplicaError

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..mpi.world import ProcContext
    from .manager import ReplicationManager


class ReplicatedComm(CollectiveOps):
    """Logical-rank communicator bound to one replica."""

    def __init__(self, manager: "ReplicationManager", logical_rank: int,
                 replica_id: int, ctx: "ProcContext"):
        self.manager = manager
        self.lrank = logical_rank
        self.rid = replica_id
        self.ctx = ctx
        self.rank = logical_rank
        #: next logical sequence number per destination logical rank
        self._next_lseq: _t.Dict[int, int] = {}
        #: per-source-channel set of consumed lseq (duplicate filter) and
        #: the length of the contiguous consumed prefix (replay cursor)
        self._seen: _t.Dict[int, _t.Set[int]] = {}
        self._prefix: _t.Dict[int, int] = {}
        #: per-destination log of (lseq, tag, payload) for replay
        self.send_log: _t.Dict[int, _t.List[_t.Tuple[int, int, _t.Any]]] = {}
        #: live receive-loop helper processes (cleaned up on crash/end).
        #: Insertion-ordered on purpose: the manager iterates this to
        #: kill/join loops, and a set of Process objects would iterate
        #: in id()-derived (allocation-address) order — nondeterministic
        #: run to run, which diverges otherwise identical simulations.
        self.pending_loops: _t.Dict[_t.Any, None] = {}

    # ------------------------------------------------------------ basics
    @property
    def size(self) -> int:
        return self.manager.n_logical

    @property
    def sim(self):
        return self.ctx.sim

    # ---------------------------------------------------------------- p2p
    def isend(self, data: _t.Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking logical send: one physical message per plane this
        replica is responsible for (its own plane + planes it covers)."""
        self.check_tag(tag)
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside [0, {self.size})")
        lseq = self._next_lseq.get(dest, 1)
        self._next_lseq[dest] = lseq + 1
        payload = copy_payload(data)
        self.send_log.setdefault(dest, []).append((lseq, tag, payload))
        events = self._send_to_planes(dest, lseq, tag, payload)
        if len(events) == 1:
            return Request(events[0], kind="send")
        return Request(self.sim.all_of(events), kind="send")

    def _send_to_planes(self, dest: int, lseq: int, tag: int,
                        payload: _t.Any) -> _t.List[Event]:
        """Post the physical sends for one logical message; returns their
        injection events."""
        mgr = self.manager
        nbytes = payload_nbytes(payload) + 8  # + lseq header
        events: _t.List[Event] = []
        for plane in mgr.planes_covered_by(self.lrank, self.rid):
            dst_info = mgr.replica(dest, plane)
            if not dst_info.alive:
                continue
            req = mgr.world.post_send(
                src=self.ctx.endpoint, dst_endpoint=dst_info.endpoint_id,
                src_rank=self.lrank, tag=tag,
                context=mgr.plane_context[plane],
                payload=(lseq, payload), nbytes=nbytes)
            events.append(req.event)
        if not events:
            # Destination fully crashed, or nothing to do: complete
            # immediately (the send is a no-op, like writing to /dev/null).
            ev = Event(self.sim, label="send-to-dead")
            ev.succeed()
            events.append(ev)
        return events

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking logical receive.

        Returns a proxy request; a helper process performs the
        receive/dedupe loop and completes the proxy with the first
        *fresh* logical message.

        Matching is by **logical source rank** (plus plane context and
        tag), not by physical endpoint: a message is accepted from
        whichever replica of the logical sender currently serves this
        plane — its mirror, the cover after a crash, or a restarted
        replacement — so sender handovers never strand a receive.
        Failure wake-up comes from the manager: when every replica of an
        awaited logical rank is dead, the pending receive is failed and
        the proxy reports :class:`NoLiveReplicaError`.
        """
        self.check_tag(tag, allow_any=True)
        proxy = Event(self.sim, label=f"lrecv@{self.ctx.name}")
        proc = self.sim.process(self._recv_loop(source, tag, proxy),
                                name=f"lrecv:{self.ctx.name}")
        self.pending_loops[proc] = None
        proc.add_callback(lambda _ev: self.pending_loops.pop(proc, None))
        return Request(proxy, kind="recv")

    def _recv_loop(self, source: int, tag: int, proxy: Event):
        mgr = self.manager
        while True:
            if (source != ANY_SOURCE
                    and not mgr.alive_replicas(source)):
                proxy.defused = True
                proxy.fail(NoLiveReplicaError(source))
                return
            inner = self.ctx.endpoint.post_recv(
                source_endpoint=ANY_SOURCE, source_rank=source, tag=tag,
                context=mgr.plane_context[self.rid])
            try:
                wrapped, status = yield inner.event
            except RankFailure:
                # the manager failed this receive (logical-rank wipeout
                # notification); loop to re-check liveness
                continue
            lsrc = status.source
            lseq, data = wrapped
            if self._consume(lsrc, lseq):
                proxy.succeed((data, Status(source=lsrc, tag=status.tag,
                                            nbytes=status.nbytes - 8)))
                return
            # duplicate — drop and keep listening

    def _consume(self, lsrc: int, lseq: int) -> bool:
        """Record message (lsrc, lseq); returns True if fresh.

        The duplicate filter is a contiguous prefix length plus a sparse
        set of out-of-order consumptions (tags allow consuming lseq 9
        before 8): memory stays proportional to the out-of-order window,
        not the channel history.
        """
        prefix = self._prefix.get(lsrc, 0)
        seen = self._seen.setdefault(lsrc, set())
        if lseq <= prefix or lseq in seen:
            return False
        seen.add(lseq)
        while prefix + 1 in seen:
            prefix += 1
            seen.discard(prefix)
        self._prefix[lsrc] = prefix
        return True

    def seen_prefix(self, lsrc: int) -> int:
        """Length of the contiguous consumed prefix of channel
        ``lsrc -> self`` (replay starts after it)."""
        return self._prefix.get(lsrc, 0)

    def was_consumed(self, lsrc: int, lseq: int) -> bool:
        """Has (lsrc, lseq) been consumed already?"""
        if lseq <= self._prefix.get(lsrc, 0):
            return True
        return lseq in self._seen.get(lsrc, set())
