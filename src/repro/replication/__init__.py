"""Active replication of MPI processes (system S6) — SDR-MPI analogue."""

from .comm import ReplicatedComm
from .errors import NoLiveReplicaError, ProtocolError, ReplicationError
from .failures import CrashPlan, FailureInjector, HookBus
from .manager import (ReplicaInfo, ReplicatedJob, ReplicationManager,
                      launch_replicated_job)
from .restart import (Restartable, RestartCoordinator,
                      launch_restartable_job, run_restartable)

__all__ = [
    "CrashPlan", "FailureInjector", "HookBus", "NoLiveReplicaError",
    "ProtocolError", "ReplicaInfo", "ReplicatedComm", "ReplicatedJob",
    "ReplicationError", "ReplicationManager", "Restartable",
    "RestartCoordinator", "launch_replicated_job",
    "launch_restartable_job", "run_restartable",
]
