"""Interconnect model (system S3).

A LogGP-flavoured point-to-point model with explicit NIC contention:

* ``o_send`` / ``o_recv`` — CPU-side per-message overheads (charged to the
  calling process, not the NIC),
* per-NIC DMA engines — a message of ``size`` bytes occupies the sender's
  transmit engine for ``o_nic + size / bandwidth`` seconds; NICs are FIFO
  :class:`~repro.simulate.resources.Resource` objects so concurrent
  messages from the same node serialize (this is what exposes the waxpby
  update-transfer bottleneck of Figure 5a),
* ``latency`` — wire/switch traversal, optionally distance-dependent
  (``latency + hop_latency * hops``), used by the replica-placement
  ablation of §VI,
* optional half-duplex mode — transmit and receive share one DMA engine,
  matching the effective behaviour of the paper's IB 20G DDR HCAs under
  simultaneous bidirectional update exchange.

Intra-node transfers bypass the NIC and are charged at memory-copy
bandwidth with a small latency.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..simulate import Resource, Simulator


@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """Parameters of the interconnect.

    Attributes
    ----------
    bandwidth:
        Effective per-NIC point-to-point bandwidth, bytes/s.
    latency:
        Base one-way wire+switch latency, seconds.
    hop_latency:
        Additional latency per topological hop (0 disables the
        distance-dependent component).
    o_send / o_recv:
        CPU-side injection/extraction overhead per message, seconds.
    o_nic:
        Per-message NIC setup cost, seconds (charged to the DMA engine).
    half_duplex:
        If True, one DMA engine handles both directions (tx and rx of one
        node serialize); if False, tx and rx are independent engines.
    intranode_bandwidth:
        Bytes/s for same-node (shared-memory) transfers.
    intranode_latency:
        One-way latency of a same-node transfer, seconds.
    """

    bandwidth: float
    latency: float
    hop_latency: float = 0.0
    o_send: float = 0.5e-6
    o_recv: float = 0.5e-6
    o_nic: float = 0.3e-6
    half_duplex: bool = True
    intranode_bandwidth: float = 3e9
    intranode_latency: float = 0.3e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.intranode_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if min(self.latency, self.hop_latency, self.o_send, self.o_recv,
               self.o_nic, self.intranode_latency) < 0:
            raise ValueError("latencies/overheads must be non-negative")

    def wire_latency(self, hops: int) -> float:
        """One-way latency across ``hops`` topological hops."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        return self.latency + self.hop_latency * hops

    def serialization_time(self, nbytes: float) -> float:
        """Time the DMA engine is occupied pushing ``nbytes`` on the wire."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.o_nic + nbytes / self.bandwidth

    def message_time(self, nbytes: float, hops: int = 1) -> float:
        """Analytic end-to-end time of an uncontended message (no queueing).

        The transport is store-and-forward (the message occupies the
        sender's and then the receiver's DMA engine), so serialization is
        paid twice.  For symmetric sustained exchanges the aggregate
        throughput is still ``bandwidth`` per direction; store-and-forward
        only adds per-message pipeline delay.  The DES computes the same
        quantity dynamically with queueing.
        """
        return (self.o_send + 2 * self.serialization_time(nbytes)
                + self.wire_latency(hops) + self.o_recv)


class NIC:
    """The DMA engines of one node.

    ``tx`` and ``rx`` are FIFO resources.  In half-duplex mode they are the
    *same* resource, so simultaneous send and receive serialize — the
    operating point that makes large bidirectional update exchanges (e.g.
    intra-parallelized waxpby) expensive, as the paper observes.
    """

    def __init__(self, sim: Simulator, spec: NetworkSpec, node_id: int):
        self.spec = spec
        self.node_id = node_id
        self.tx = Resource(sim, capacity=1, name=f"nic{node_id}.tx")
        self.rx = self.tx if spec.half_duplex else Resource(
            sim, capacity=1, name=f"nic{node_id}.rx")


class Network:
    """Connects node NICs and moves payloads between them.

    The transport is used by :class:`repro.mpi` through
    :meth:`transfer`, a process sub-routine (``yield from``) that returns
    when the payload has fully arrived at the destination node.
    """

    def __init__(self, sim: Simulator, spec: NetworkSpec, n_nodes: int,
                 hop_fn: _t.Optional[_t.Callable[[int, int], int]] = None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.spec = spec
        self.nics = [NIC(sim, spec, i) for i in range(n_nodes)]
        #: hop-count function; defaults to a single switch crossing.
        self._hop_fn = hop_fn or (lambda a, b: 1)
        #: counters for reporting / tests
        self.bytes_sent = 0
        self.messages_sent = 0

    @property
    def n_nodes(self) -> int:
        return len(self.nics)

    def hops(self, src_node: int, dst_node: int) -> int:
        """Topological distance between two nodes."""
        if src_node == dst_node:
            return 0
        return self._hop_fn(src_node, dst_node)

    def transfer(self, src_node: int, dst_node: int, nbytes: float,
                 on_injected: _t.Optional[_t.Callable[[], None]] = None):
        """Move ``nbytes`` from ``src_node`` to ``dst_node``.

        Process sub-routine: ``yield from net.transfer(...)`` returns when
        the last byte has been deposited at the destination.  Sender-side
        DMA, wire latency and receiver-side DMA are modelled explicitly;
        both DMA stages are FIFO-contended.

        ``on_injected``, if given, is called the moment the sender's DMA
        engine releases the message onto the wire — the point at which a
        blocking ``MPI_Send`` returns (buffer reusable) and past which a
        sender crash can no longer retract the message.
        """
        if not (0 <= src_node < self.n_nodes and 0 <= dst_node < self.n_nodes):
            raise ValueError(
                f"node ids out of range: {src_node}->{dst_node} "
                f"(cluster has {self.n_nodes} nodes)")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_sent += nbytes
        self.messages_sent += 1
        if src_node == dst_node:
            # Shared-memory path: one copy through the cache hierarchy.
            if on_injected is not None:
                on_injected()
            yield self.sim.timeout(
                self.spec.intranode_latency
                + nbytes / self.spec.intranode_bandwidth)
            return
        ser = self.spec.serialization_time(nbytes)
        # Sender DMA engine pushes the message onto the wire.
        yield from self.nics[src_node].tx.hold(ser)
        if on_injected is not None:
            on_injected()
        # Wire/switch traversal.
        yield self.sim.timeout(
            self.spec.wire_latency(self.hops(src_node, dst_node)))
        # Receiver DMA engine drains the message into memory.
        yield from self.nics[dst_node].rx.hold(ser)
