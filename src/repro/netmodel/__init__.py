"""Machine, network and topology models (systems S2–S4)."""

from .calibration import (GRID5000_MACHINE, GRID5000_NETWORK,
                          TESTBENCH_MACHINE, TESTBENCH_NETWORK)
from .machine import MachineSpec
from .network import NIC, Network, NetworkSpec
from .topology import (Cluster, Slot, block_placement, replica_placement,
                       round_robin_placement, validate_placement)

__all__ = [
    "Cluster", "GRID5000_MACHINE", "GRID5000_NETWORK", "MachineSpec",
    "NIC", "Network", "NetworkSpec", "Slot", "TESTBENCH_MACHINE",
    "TESTBENCH_NETWORK", "block_placement", "replica_placement",
    "round_robin_placement", "validate_placement",
]
