"""Node hardware model (system S2).

Simulated computation is charged to virtual time through a two-parameter
roofline: a kernel that performs ``flops`` floating-point operations and
moves ``bytes`` through the memory hierarchy takes::

    time = max(flops / flop_rate,  bytes / mem_bandwidth_share)

which captures the regime split the paper's kernel study exploits —
waxpby and ddot are memory-bound streams, sparsemv is heavier per output
byte (§V-C: "We can relate intra-parallelization efficiency to the number
of floating-point operations required to compute each output").

The memory bus of a node is shared by its cores: when an experiment runs
one simulated process per core, each process gets
``mem_bandwidth / cores_per_node`` of streaming bandwidth, matching the
saturated-STREAM operating point of the paper's runs (all 4 cores busy).
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Hardware description of one cluster node.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"grid5000-2015"``.
    cores_per_node:
        Number of cores (one simulated physical process per core).
    flop_rate:
        *Sustained* double-precision rate of one core, flop/s.
    mem_bandwidth:
        Sustained node-level streaming bandwidth, bytes/s, shared by all
        busy cores.
    mem_per_node:
        Bytes of DRAM; used only for sanity checks on problem sizes.
    copy_bandwidth:
        Bandwidth of a plain in-memory ``memcpy`` (bytes/s per core); used
        to charge the `inout` extra-copy of §III-B2 and the application of
        received updates.
    """

    name: str
    cores_per_node: int
    flop_rate: float
    mem_bandwidth: float
    mem_per_node: float = 16e9
    copy_bandwidth: float = 4e9

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        for field in ("flop_rate", "mem_bandwidth", "mem_per_node",
                      "copy_bandwidth"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    @property
    def mem_bandwidth_per_core(self) -> float:
        """Streaming bandwidth available to one core when all cores of the
        node are busy (the saturated operating point used in the paper's
        experiments)."""
        return self.mem_bandwidth / self.cores_per_node

    def kernel_time(self, flops: float, bytes_moved: float,
                    active_cores: _t.Optional[int] = None) -> float:
        """Roofline execution time of a kernel on one core.

        Parameters
        ----------
        flops:
            Floating-point operations executed.
        bytes_moved:
            Bytes streamed through DRAM (reads + writes).
        active_cores:
            How many cores of the node are concurrently busy; defaults to
            all of them (``cores_per_node``).
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        cores = self.cores_per_node if active_cores is None else active_cores
        if not 1 <= cores <= self.cores_per_node:
            raise ValueError(
                f"active_cores={cores} outside [1, {self.cores_per_node}]")
        bw = self.mem_bandwidth / cores
        return max(flops / self.flop_rate, bytes_moved / bw)

    def copy_time(self, nbytes: float) -> float:
        """Time to memcpy ``nbytes`` on one core (extra-copy / update
        application cost)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.copy_bandwidth
