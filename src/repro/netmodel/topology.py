"""Cluster topology and process/replica placement (system S4).

The paper's experiments place the two replicas of each logical process on
*different nodes* (§V-B) and its discussion (§VI) points out the placement
trade-off: replicas on neighbouring nodes minimise network crossing (and
contention), but too-close replicas raise the probability of *correlated*
failures.  This module provides:

* :class:`Cluster` — nodes with a hop-distance metric (linear or fat-tree
  style "all pairs one switch" metric),
* placement policies mapping physical processes to (node, core) slots,
* replica-placement policies controlling the distance between the
  replicas of one logical rank.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from .machine import MachineSpec


@dataclasses.dataclass(frozen=True)
class Slot:
    """One core of one node — the execution slot of a physical process."""
    node: int
    core: int


class Cluster:
    """A homogeneous cluster of ``n_nodes`` nodes.

    ``distance_model`` selects the hop metric:

    * ``"switch"`` — every pair of distinct nodes is 1 hop apart (single
      crossbar / idealized fat tree); the paper's 128-node IB cluster is
      closest to this.
    * ``"linear"`` — ``|a - b|`` hops; used by the placement ablation to
      make replica distance *matter*.
    """

    def __init__(self, n_nodes: int, machine: MachineSpec,
                 distance_model: str = "switch"):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if distance_model not in ("switch", "linear"):
            raise ValueError(f"unknown distance model {distance_model!r}")
        self.n_nodes = n_nodes
        self.machine = machine
        self.distance_model = distance_model

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.machine.cores_per_node

    def hops(self, node_a: int, node_b: int) -> int:
        """Topological distance between two nodes."""
        self._check_node(node_a)
        self._check_node(node_b)
        if node_a == node_b:
            return 0
        if self.distance_model == "switch":
            return 1
        return abs(node_a - node_b)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")


def block_placement(cluster: Cluster, n_procs: int) -> _t.List[Slot]:
    """Fill nodes core-by-core: process *i* → node ``i // cores``, core
    ``i % cores`` (the default of most MPI launchers)."""
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    if n_procs > cluster.total_cores:
        raise ValueError(
            f"{n_procs} processes exceed cluster capacity "
            f"{cluster.total_cores}")
    cores = cluster.machine.cores_per_node
    return [Slot(i // cores, i % cores) for i in range(n_procs)]


def round_robin_placement(cluster: Cluster, n_procs: int) -> _t.List[Slot]:
    """Cycle over nodes: process *i* → node ``i % n_nodes`` (spreads load,
    one process per node until wrap-around)."""
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    if n_procs > cluster.total_cores:
        raise ValueError(
            f"{n_procs} processes exceed cluster capacity "
            f"{cluster.total_cores}")
    n = cluster.n_nodes
    return [Slot(i % n, i // n) for i in range(n_procs)]


def replica_placement(cluster: Cluster, n_logical: int, degree: int = 2,
                      spread: int = 1) -> _t.List[_t.List[Slot]]:
    """Place ``degree`` replicas of each of ``n_logical`` ranks.

    Replicas of one logical rank are always on *different nodes* (paper
    §V-B).  ``spread`` is the node distance between consecutive replicas
    of the same rank: ``spread=1`` puts them on neighbouring node groups
    (the paper's choice, minimising network crossing); larger values model
    the anti-correlated-failure placement discussed in §VI.

    Returns ``placements[logical_rank][replica_id] -> Slot``.

    Layout: logical ranks are packed block-wise onto a group of
    ``ceil(n_logical / cores)`` nodes; replica *r* of every rank lives on
    the node ``base + r * spread * group_size`` shifted copy of that
    layout, so replica sets never collide.
    """
    if n_logical < 1:
        raise ValueError("n_logical must be >= 1")
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if spread < 1:
        raise ValueError("spread must be >= 1")
    cores = cluster.machine.cores_per_node
    group = -(-n_logical // cores)  # nodes needed by one replica set
    needed = group * (1 + (degree - 1) * spread)
    if needed > cluster.n_nodes:
        raise ValueError(
            f"placement needs {needed} nodes "
            f"(group={group}, degree={degree}, spread={spread}) but cluster "
            f"has {cluster.n_nodes}")
    out: _t.List[_t.List[Slot]] = []
    for lr in range(n_logical):
        node_in_group, core = lr // cores, lr % cores
        replicas = [Slot(node_in_group + r * spread * group, core)
                    for r in range(degree)]
        out.append(replicas)
    return out


def validate_placement(cluster: Cluster,
                       placements: _t.Sequence[_t.Sequence[Slot]]) -> None:
    """Check a replica placement: slots in range, no slot used twice, and
    replicas of one rank on distinct nodes.  Raises ``ValueError``."""
    seen: _t.Set[_t.Tuple[int, int]] = set()
    for lr, replicas in enumerate(placements):
        nodes = set()
        for slot in replicas:
            cluster._check_node(slot.node)
            if not 0 <= slot.core < cluster.machine.cores_per_node:
                raise ValueError(f"core {slot.core} out of range at rank {lr}")
            key = (slot.node, slot.core)
            if key in seen:
                raise ValueError(f"slot {key} assigned twice (rank {lr})")
            seen.add(key)
            nodes.add(slot.node)
        if len(nodes) != len(replicas):
            raise ValueError(
                f"replicas of logical rank {lr} share a node: {replicas}")
