"""Calibrated hardware profiles (system S2–S3 parameterisation).

``GRID5000_2015`` models the paper's testbed (§V-B): 128 nodes, 2.53 GHz
4-core Intel Xeon (Nehalem), 16 GB RAM, InfiniBand 20G (DDR 4X), Open MPI
1.7.  The values are *sustained* rates, not peaks:

* ``flop_rate`` 2.5 Gflop/s/core — sustained scalar DP throughput of a
  2.53 GHz Nehalem core on the paper's unvectorised kernels.
* ``mem_bandwidth`` 12 GB/s/node — saturated STREAM-like bandwidth with
  all four cores busy (3 GB/s per core at the operating point of the
  experiments).
* ``bandwidth`` 1.5 GB/s — effective MPI point-to-point bandwidth of an
  IB 20G DDR HCA (16 Gbit/s data rate minus protocol overheads), full
  duplex, shared by the node's four processes.
* ``latency`` 3 µs — typical MPI half round-trip on DDR IB through one
  switch.

These four numbers place the three HPCCG kernels exactly in the regimes
the paper reports (Fig. 5a): waxpby's 8 B of update per 24 B of streamed
input makes update exchange more expensive than recomputation
(intra-efficiency ≈ 0.34 < 0.5), while sparsemv's ≈ 340 B of matrix
traffic per 8 B output row lets updates hide behind compute (≈ 0.94).

``TESTBENCH`` is a deliberately tiny, fast profile for unit tests; its
ratios are round numbers so tests can assert exact virtual times.
"""

from __future__ import annotations

from .machine import MachineSpec
from .network import NetworkSpec

#: The paper's Grid'5000 testbed (see module docstring).
GRID5000_MACHINE = MachineSpec(
    name="grid5000-2015",
    cores_per_node=4,
    flop_rate=2.5e9,
    mem_bandwidth=12e9,
    mem_per_node=16e9,
    copy_bandwidth=4e9,
)

#: InfiniBand 20G (DDR 4X) as seen by MPI.
GRID5000_NETWORK = NetworkSpec(
    bandwidth=1.5e9,
    latency=3e-6,
    hop_latency=0.0,
    o_send=0.5e-6,
    o_recv=0.5e-6,
    o_nic=0.3e-6,
    half_duplex=False,
    intranode_bandwidth=3e9,
    intranode_latency=0.3e-6,
)

#: Round-number profile for unit tests: 1 Gflop/s, 1 GB/s memory per core
#: (4 GB/s node), 100 MB/s network, 1 ms latency — times come out as
#: simple decimals.
TESTBENCH_MACHINE = MachineSpec(
    name="testbench",
    cores_per_node=4,
    flop_rate=1e9,
    mem_bandwidth=4e9,
    mem_per_node=64e9,
    copy_bandwidth=1e9,
)

TESTBENCH_NETWORK = NetworkSpec(
    bandwidth=100e6,
    latency=1e-3,
    hop_latency=0.0,
    o_send=0.0,
    o_recv=0.0,
    o_nic=0.0,
    half_duplex=False,
    intranode_bandwidth=1e9,
    intranode_latency=0.0,
)
