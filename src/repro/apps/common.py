"""Shared building blocks for the mini-applications (S9–S12).

Every app is written once against the intra API and runs in the paper's
three configurations (native / sdr / intra).  The helpers here wrap the
kernels of :mod:`repro.kernels` into intra-parallel sections — or into
plain local execution when a kernel is not selected for
intra-parallelization (e.g. waxpby in Figure 5b, MiniGhost's stencil).

Conventions:

* Sections are opened/closed per kernel call (the paper's Figure 4
  shape) with the configured number of tasks per section — 8 by default
  ("all experiments with intra-parallelization use a granularity of 8
  tasks per section", §V-B).
* Each kernel call is wrapped in a wall-clock region named after the
  kernel, so Figure 5a's per-kernel bars and Figure 6's sections/others
  split come straight out of ``ctx.timers``.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..intra import Tag
from ..kernels import (ddot_cost, ddot_partial, grid_sum_cost,
                       grid_sum_partial, make_spmv_task, split_range,
                       waxpby, waxpby_cost)
from ..kernels.spmv import CsrMatrix

#: paper §V-B: 8 tasks per section (4 per replica at degree 2)
DEFAULT_TASKS_PER_SECTION = 8


@dataclasses.dataclass
class AppResult:
    """What every app program returns from each rank."""

    value: _t.Any                 #: app-specific correctness payload
    end_time: float               #: virtual time when the rank finished
    timers: _t.Dict[str, float]   #: per-region wall-clock accumulators
    intra: _t.Dict[str, _t.Any]   #: intra-runtime statistics (asdict)


def finish(ctx, value: _t.Any) -> AppResult:
    """Package a rank's result (call as the last statement)."""
    return AppResult(value=value, end_time=ctx.now,
                     timers=dict(ctx.timers),
                     intra=dataclasses.asdict(ctx.intra.stats))


# ----------------------------------------------------- kernel wrappers
def kernel_waxpby(ctx, alpha: float, x: np.ndarray, beta: float,
                  y: np.ndarray, w: np.ndarray, *, in_section: bool,
                  n_tasks: int = DEFAULT_TASKS_PER_SECTION):
    """``w = alpha x + beta y`` — as an intra section or locally."""
    with ctx.region("waxpby"):
        if not in_section:
            yield from ctx.intra.run_local(waxpby, [alpha, x, beta, y, w],
                                           waxpby_cost)
            return
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(waxpby, [Tag.IN, Tag.IN, Tag.IN, Tag.IN,
                                        Tag.OUT], cost=waxpby_cost)
        for sl in split_range(x.size, n_tasks):
            if sl.stop > sl.start:
                rt.task_launch(tid, [alpha, x[sl], beta, y[sl], w[sl]])
        yield from rt.section_end()


def kernel_ddot(ctx, comm, x: np.ndarray, y: np.ndarray, *,
                in_section: bool,
                n_tasks: int = DEFAULT_TASKS_PER_SECTION,
                reduce_over: _t.Optional[_t.Any] = None):
    """Distributed dot product.

    The per-slice partial products form the intra section; the local
    combination and the cross-rank allreduce are *outside* the section
    (paper footnote 6).  ``reduce_over`` overrides the communicator used
    for the reduction (defaults to ``comm``); pass ``None`` as ``comm``
    for a purely local dot product.
    """
    partials = np.zeros(n_tasks)
    with ctx.region("ddot"):
        if not in_section:
            out = np.zeros(1)
            yield from ctx.intra.run_local(ddot_partial, [x, y, out],
                                           ddot_cost)
            local = float(out[0])
        else:
            rt = ctx.intra
            rt.section_begin()
            tid = rt.task_register(ddot_partial, [Tag.IN, Tag.IN, Tag.OUT],
                                   cost=ddot_cost)
            for i, sl in enumerate(split_range(x.size, n_tasks)):
                if sl.stop > sl.start:
                    rt.task_launch(tid, [x[sl], y[sl], partials[i:i + 1]])
            yield from rt.section_end()
            local = float(partials.sum())
    target = reduce_over if reduce_over is not None else comm
    if target is None:
        return local
    total = yield from target.allreduce(local, op="sum")
    return float(total)


def kernel_spmv(ctx, matrix: CsrMatrix, x_padded: np.ndarray,
                y: np.ndarray, *, in_section: bool,
                n_tasks: int = DEFAULT_TASKS_PER_SECTION,
                region: str = "spmv"):
    """Local CSR matvec ``y = A @ x_padded`` over row-block tasks."""
    fn, cost = make_spmv_task(matrix)
    with ctx.region(region):
        if not in_section:
            bounds = np.array([0, matrix.n_rows], dtype=np.int64)
            yield from ctx.intra.run_local(fn, [x_padded, bounds, y], cost)
            return
        rt = ctx.intra
        rt.section_begin()
        tid = rt.task_register(fn, [Tag.IN, Tag.IN, Tag.OUT], cost=cost)
        for sl in split_range(matrix.n_rows, n_tasks):
            if sl.stop > sl.start:
                bounds = np.array([sl.start, sl.stop], dtype=np.int64)
                rt.task_launch(tid, [x_padded, bounds, y[sl]])
        yield from rt.section_end()


def kernel_grid_sum(ctx, comm, values: np.ndarray, *, in_section: bool,
                    n_tasks: int = DEFAULT_TASKS_PER_SECTION):
    """Global sum of grid elements (MiniGhost's intra-parallelizable
    kernel): per-slice partial sums in a section, allreduce outside."""
    flat = values.reshape(-1)
    partials = np.zeros(n_tasks)
    with ctx.region("grid_sum"):
        if not in_section:
            out = np.zeros(1)
            yield from ctx.intra.run_local(grid_sum_partial, [flat, out],
                                           grid_sum_cost)
            local = float(out[0])
        else:
            rt = ctx.intra
            rt.section_begin()
            tid = rt.task_register(grid_sum_partial, [Tag.IN, Tag.OUT],
                                   cost=grid_sum_cost)
            for i, sl in enumerate(split_range(flat.size, n_tasks)):
                if sl.stop > sl.start:
                    rt.task_launch(tid, [flat[sl], partials[i:i + 1]])
            yield from rt.section_end()
            local = float(partials.sum())
    if comm is None:
        return local
    total = yield from comm.allreduce(local, op="sum")
    return float(total)


# ------------------------------------------------------- halo exchange
def halo_exchange_z(ctx, comm, send_lower: _t.Optional[np.ndarray],
                    send_upper: _t.Optional[np.ndarray],
                    recv_lower: _t.Optional[np.ndarray],
                    recv_upper: _t.Optional[np.ndarray],
                    tag_base: int = 100):
    """Exchange one xy-plane with each z-neighbour (rank ± 1).

    ``send_lower``/``recv_lower`` are used iff ``rank > 0``;
    ``send_upper``/``recv_upper`` iff ``rank < size - 1``.  Receive
    buffers are filled in place.
    """
    rank, size = comm.rank, comm.size
    reqs = []
    rmap = []
    if rank > 0:
        reqs.append(comm.irecv(source=rank - 1, tag=tag_base + 1))
        rmap.append(recv_lower)
        reqs.append(comm.isend(send_lower, dest=rank - 1, tag=tag_base))
        rmap.append(None)
    if rank < size - 1:
        reqs.append(comm.irecv(source=rank + 1, tag=tag_base))
        rmap.append(recv_upper)
        reqs.append(comm.isend(send_upper, dest=rank + 1,
                               tag=tag_base + 1))
        rmap.append(None)
    with ctx.region("halo"):
        got = yield from comm.waitall(reqs)
    for buf, data in zip(rmap, got):
        if buf is not None:
            np.copyto(buf, data)
