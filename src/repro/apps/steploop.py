"""StepSum — the step-structured restartable mini-app.

The restart extension (§VI) needs an application shaped as a *step
loop* with a snapshot at every boundary.  StepSum is the smallest such
app that still exercises the intra machinery the restart exists for:
each step computes partial sums of a large vector inside one intra
section (8 tasks, the paper's granularity), so work sharing — and its
loss and recovery around a crash — is visible in the wall time.

It ships in both shapes every scenario path needs:

* :func:`stepsum_program` — the flat ``program(ctx, comm, config)``
  generator the registry binds to app name ``"stepsum"``; runs in all
  three modes like any other app.
* :class:`StepSumApp` — the :class:`~repro.replication.restart.
  Restartable` twin (same arithmetic, same section shape) built by
  :func:`make_stepsum`, which the scenario runner launches when a
  scenario carries a :class:`~repro.scenarios.policies.RestartPolicy`.

Both produce the same per-rank value (the final step's total), so the
restart legs of a sweep are directly comparable to the plain legs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..intra import Tag
from ..kernels import split_range
from ..replication.restart import Restartable
from .common import DEFAULT_TASKS_PER_SECTION, finish


@dataclasses.dataclass(frozen=True)
class StepSumConfig:
    """Problem configuration for StepSum."""

    n: int = 100_000                          #: vector length per rank
    n_steps: int = 16                         #: step-loop length
    n_tasks: int = DEFAULT_TASKS_PER_SECTION  #: tasks per section

    def __post_init__(self) -> None:
        if self.n < 1 or self.n_steps < 1 or self.n_tasks < 1:
            raise ValueError("StepSumConfig fields must be >= 1")


def _sum_section(ctx, x: np.ndarray, n_tasks: int):
    """One intra section of partial sums over ``x``; yields, returns
    the total."""
    acc = np.zeros(n_tasks)
    rt = ctx.intra
    rt.section_begin()
    tid = rt.task_register(
        lambda v, o: np.copyto(o, v.sum()), [Tag.IN, Tag.OUT],
        cost=lambda v, o: (2.0 * v.size, 16.0 * v.size))
    for i, sl in enumerate(split_range(x.size, n_tasks)):
        rt.task_launch(tid, [x[sl], acc[i:i + 1]])
    yield from rt.section_end()
    return float(acc.sum())


class StepSumApp(Restartable):
    """The restartable shape: init/step/snapshot/restore/finalize."""

    def __init__(self, config: StepSumConfig = StepSumConfig()):
        self.config = config
        self.n_steps = config.n_steps

    def init_state(self, ctx, comm):
        return {"x": np.arange(self.config.n, dtype=np.float64),
                "totals": []}

    def step(self, ctx, comm, state, step_index):
        with ctx.region("stepsum"):
            total = yield from _sum_section(ctx, state["x"],
                                            self.config.n_tasks)
        state["totals"].append(total)

    def snapshot(self, state):
        return {"x": state["x"].copy(), "totals": list(state["totals"])}

    def restore(self, payload):
        return {"x": payload["x"].copy(),
                "totals": list(payload["totals"])}

    def finalize(self, ctx, comm, state):
        return finish(ctx, state["totals"][-1])


def make_stepsum(config=None) -> StepSumApp:
    """Restartable factory for the app registry (``restartable=``)."""
    return StepSumApp(config if config is not None else StepSumConfig())


def stepsum_program(ctx, comm, config: StepSumConfig = StepSumConfig()):
    """The flat program twin (native / sdr / plain intra runs)."""
    app = StepSumApp(config)
    state = app.init_state(ctx, comm)
    for step_index in range(app.n_steps):
        yield from app.step(ctx, comm, state, step_index)
    return app.finalize(ctx, comm, state)
