"""Mini-applications (systems S9–S12): HPCCG, MiniGhost, GTC, AMG."""

from .common import (DEFAULT_TASKS_PER_SECTION, AppResult, finish,
                     halo_exchange_z, kernel_ddot, kernel_grid_sum,
                     kernel_spmv, kernel_waxpby)

__all__ = [
    "AppResult", "DEFAULT_TASKS_PER_SECTION", "finish", "halo_exchange_z",
    "kernel_ddot", "kernel_grid_sum", "kernel_spmv", "kernel_waxpby",
]
