"""GTC-like particle-in-cell application — system S11.

GTC (NERSC-8 suite) is a 3D gyrokinetic PIC code; the paper
intra-parallelizes its two dominant kernels, *charge* and *push* (75%
of runtime), and reports that declaring particle positions ``inout``
(the new position depends on the current one) costs ≈ 6% extra on the
affected tasks (Figure 6c).

We build the closest laptop-scale equivalent: a 1D periodic
electrostatic PIC with the same kernel structure —

* **charge** — scatter particle charge to the grid.  Tasks deposit into
  *private* grids (OUT) to keep tasks independent; each replica reduces
  the privates locally after the section.  The global charge density is
  then allgathered and the field solved redundantly on every rank
  (GTC's field solve is not intra-parallelized either).
* **push** — gather the field at particle positions and advance
  ``pos``/``vel``, both declared INOUT: exactly the extra-copy case of
  §IV.

Particles whose positions leave the local domain migrate to the
neighbouring rank after each step (ring exchange), which provides the
inter-rank MPI phase of the original code.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...intra import Tag
from ...kernels import (charge_cost, charge_deposit, field_cost,
                        push_cost, push_particles, solve_field,
                        split_range)
from ..common import DEFAULT_TASKS_PER_SECTION, finish


@dataclasses.dataclass(frozen=True)
class GtcConfig:
    """Emulates the paper's run (mzetamax=64, npartdom=4, micell=200) at
    reduced scale: ``particles_per_rank`` plays micell × local cells."""

    particles_per_rank: int = 4096
    cells_per_rank: int = 64
    steps: int = 4
    dt: float = 0.2
    tasks_per_section: int = DEFAULT_TASKS_PER_SECTION
    charge_in_section: bool = True
    push_in_section: bool = True
    #: flops per particle charged to the field phase.  Our 1D spectral
    #: solve is orders of magnitude lighter than GTC's gyrokinetic
    #: Poisson solve + field smoothing + zonal-flow work, which the
    #: paper's profile puts at ~25% of runtime (charge+push = 75%).
    #: This factor restores GTC's phase mix without changing the code
    #: paths (the field phase stays replicated, outside sections).
    field_work_factor: float = 150.0


def gtc_program(ctx, comm, config: GtcConfig):
    """One domain of the PIC stepper; the value is a physics checksum
    ``(total_charge, momentum)`` that all modes must agree on."""
    rank, size = comm.rank, comm.size
    ng_local = config.cells_per_rank
    ng_global = ng_local * size
    lo = rank * ng_local
    nt = config.tasks_per_section

    # Deterministic particle load: evenly spaced in the local domain
    # with a rank-dependent velocity perturbation.
    npart = config.particles_per_rank
    pos = lo + (np.arange(npart) + 0.5) * (ng_local / npart)
    vel = 0.1 * np.sin(2.0 * np.pi * (np.arange(npart) / npart) + rank)
    rho_global = np.zeros(ng_global)
    efield = np.zeros(ng_global)
    ng_arr = np.array([ng_global], dtype=np.int64)
    dt_arr = np.array([config.dt])

    solve_region = ctx.region("solve")
    solve_region.__enter__()
    for _step in range(config.steps):
        # ---- charge: deposit into private grids (intra section) ----
        with ctx.region("charge"):
            privates = [np.zeros(ng_global) for _ in range(nt)]
            if config.charge_in_section:
                rt = ctx.intra
                rt.section_begin()
                tid = rt.task_register(
                    charge_deposit, [Tag.IN, Tag.IN, Tag.OUT],
                    cost=charge_cost)
                for i, sl in enumerate(split_range(pos.size, nt)):
                    if sl.stop > sl.start:
                        rt.task_launch(tid, [pos[sl], ng_arr, privates[i]])
                yield from rt.section_end()
            else:
                for i, sl in enumerate(split_range(pos.size, nt)):
                    if sl.stop > sl.start:
                        yield from ctx.intra.run_local(
                            charge_deposit,
                            [pos[sl], ng_arr, privates[i]],
                            cost=charge_cost)
            rho_local = np.sum(privates, axis=0)

        # ---- field: allreduce density, solve redundantly ----
        with ctx.region("field"):
            rho_all = yield from comm.allreduce(rho_local, op="sum")
            np.copyto(rho_global, rho_all)
            factor = config.field_work_factor
            yield from ctx.intra.run_local(
                solve_field, [rho_global, efield],
                cost=lambda r, e: tuple(
                    base + extra for base, extra in zip(
                        field_cost(r, e),
                        (factor * npart, 8.0 * npart))))

        # ---- push: advance particles (INOUT pos, vel) ----
        with ctx.region("push"):
            if config.push_in_section:
                rt = ctx.intra
                rt.section_begin()
                tid = rt.task_register(
                    push_particles,
                    [Tag.IN, Tag.IN, Tag.INOUT, Tag.INOUT],
                    cost=push_cost)
                for sl in split_range(pos.size, nt):
                    if sl.stop > sl.start:
                        rt.task_launch(tid, [efield, dt_arr, pos[sl],
                                             vel[sl]])
                yield from rt.section_end()
            else:
                yield from ctx.intra.run_local(
                    push_particles, [efield, dt_arr, pos, vel],
                    cost=push_cost)

        # ---- migrate: ship escaped particles to ring neighbours ----
        pos, vel = yield from _migrate(ctx, comm, pos, vel, lo, ng_local,
                                       ng_global)

    solve_region.__exit__(None, None, None)
    checksum = (float(pos.size), float(vel.sum()))
    return finish(ctx, checksum)


def _migrate(ctx, comm, pos, vel, lo, ng_local, ng_global):
    """Ring particle migration: particles left of the domain go to rank
    − 1, right of it to rank + 1 (periodic)."""
    rank, size = comm.rank, comm.size
    if size == 1:
        return pos, vel
    hi = lo + ng_local
    # periodic distance-aware ownership test
    left_mask = ((pos - lo) % ng_global) >= ng_local
    going_left = left_mask & (((lo - pos) % ng_global)
                              <= ng_global / 2)
    going_right = left_mask & ~going_left
    stay = ~left_mask
    left = (rank - 1) % size
    right = (rank + 1) % size
    with ctx.region("migrate"):
        sends = [
            comm.isend(np.stack([pos[going_left], vel[going_left]]),
                       dest=left, tag=7),
            comm.isend(np.stack([pos[going_right], vel[going_right]]),
                       dest=right, tag=8),
        ]
        recvs = [comm.irecv(source=right, tag=7),
                 comm.irecv(source=left, tag=8)]
        got = yield from comm.waitall(recvs + sends)
    from_right, from_left = got[0], got[1]
    pos = np.concatenate([pos[stay], from_right[0], from_left[0]])
    vel = np.concatenate([vel[stay], from_right[1], from_left[1]])
    return pos, vel
