"""GTC-like particle-in-cell application (system S11)."""

from .pic_app import GtcConfig, gtc_program

__all__ = ["GtcConfig", "gtc_program"]
