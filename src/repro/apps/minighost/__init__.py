"""MiniGhost mini-application (system S10)."""

from .stepper import MiniGhostConfig, minighost_program

__all__ = ["MiniGhostConfig", "minighost_program"]
