"""MiniGhost mini-application (Mantevo suite) — system S10.

MiniGhost studies boundary-exchange strategies with stencil
computations: per timestep, exchange halos, apply a 3D 27-point stencil,
and compute a global grid summation (the "correctness check" reduction
that MiniGhost performs every step).

The paper could *not* intra-parallelize the stencil efficiently — its
output is a full new 3D grid, so update transfer erases the compute
saving (§V-D) — and applied intra-parallelization only to the grid
summation (~10% of runtime), yielding efficiency barely above 0.5
(Figure 6d).  We reproduce both choices: ``stencil_in_section`` exists
solely for the ablation that demonstrates *why* the paper skipped it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ...intra import Tag
from ...kernels import apply_27pt, split_range, stencil27_cost
from ..common import (DEFAULT_TASKS_PER_SECTION, finish, halo_exchange_z,
                      kernel_grid_sum)


@dataclasses.dataclass(frozen=True)
class MiniGhostConfig:
    """Local grid (the paper runs 128×128×64 per process) and step
    count."""

    nx: int = 16
    ny: int = 16
    nz: int = 8
    steps: int = 4
    tasks_per_section: int = DEFAULT_TASKS_PER_SECTION
    #: intra-parallelize the grid summation (the paper's choice)
    sum_in_section: bool = True
    #: intra-parallelize the stencil itself (paper: not worth it; kept
    #: for the ablation bench that shows the non-benefit)
    stencil_in_section: bool = False


def _stencil_task(grid: np.ndarray, out_block: np.ndarray,
                  bounds: np.ndarray) -> None:
    """One z-slab of the 27-point stencil: reads grid[:, :, lo:hi+2]
    (halo-inclusive), writes out z-range [lo, hi)."""
    lo, hi = int(bounds[0]), int(bounds[1])
    apply_27pt(grid[:, :, lo:hi + 2], out_block)


def _stencil_task_cost(grid, out_block, bounds):
    return stencil27_cost(grid, out_block)


def minighost_program(ctx, comm, config: MiniGhostConfig):
    """One rank of the stencil time-stepper; the value is the final
    global grid sum (conserved up to boundary loss, so modes must
    agree)."""
    rank, size = comm.rank, comm.size
    nx, ny, nz = config.nx, config.ny, config.nz
    # grid carries one halo plane at each end of z
    grid = np.zeros((nx, ny, nz + 2))
    # deterministic initial condition, distinct per logical rank
    xs = np.arange(nx)[:, None, None]
    ys = np.arange(ny)[None, :, None]
    zs = np.arange(nz)[None, None, :]
    grid[:, :, 1:-1] = (1.0 + np.sin(0.3 * xs + 0.1 * rank)
                        * np.cos(0.2 * ys) + 0.01 * zs)
    out = np.zeros((nx, ny, nz))
    total = 0.0

    solve_region = ctx.region("solve")
    solve_region.__enter__()
    for _step in range(config.steps):
        yield from halo_exchange_z(
            ctx, comm,
            send_lower=grid[:, :, 1].copy() if rank > 0 else None,
            send_upper=grid[:, :, nz].copy() if rank < size - 1 else None,
            recv_lower=grid[:, :, 0] if rank > 0 else None,
            recv_upper=grid[:, :, nz + 1] if rank < size - 1 else None)
        with ctx.region("stencil"):
            if config.stencil_in_section:
                rt = ctx.intra
                rt.section_begin()
                tid = rt.task_register(
                    _stencil_task, [Tag.IN, Tag.OUT, Tag.IN],
                    cost=_stencil_task_cost)
                for sl in split_range(nz, config.tasks_per_section):
                    if sl.stop > sl.start:
                        bounds = np.array([sl.start, sl.stop],
                                          dtype=np.int64)
                        rt.task_launch(tid, [grid, out[:, :, sl], bounds])
                yield from rt.section_end()
            else:
                yield from ctx.intra.run_local(
                    apply_27pt, [grid, out],
                    cost=lambda g, o: stencil27_cost(g, o))
        grid[:, :, 1:-1] = out
        total = yield from kernel_grid_sum(
            ctx, comm, grid[:, :, 1:-1],
            in_section=config.sum_in_section,
            n_tasks=config.tasks_per_section)
    solve_region.__exit__(None, None, None)
    return finish(ctx, total)
