"""Local multigrid preconditioner for the AMG2013-like app.

AMG2013 (LLNL) is an *algebraic* multigrid solver; reproducing a full
parallel AMG hierarchy is out of scope, so we substitute the closest
structured equivalent with the same kernel signature: a **geometric**
multigrid V-cycle applied *per rank* as a block-Jacobi preconditioner.
The kernel mix matches what matters for intra-parallelization: explicit
CSR spmv at every level (matrix streaming — the favourable
compute-per-output-byte ratio of §V-C), ω-Jacobi smoothing, and grid
transfer operators.  The substitution is recorded in DESIGN.md.

All operators are *explicit CSR matrices* (like AMG2013's), built by
:func:`repro.kernels.build_stencil_csr` without halo coupling (the
preconditioner acts on the local block only; the outer Krylov loop
carries the global coupling).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ...kernels import build_stencil_csr
from ...kernels.spmv import CsrMatrix
from ..common import kernel_spmv


@dataclasses.dataclass
class MgLevel:
    """One level of the geometric hierarchy."""

    shape: _t.Tuple[int, int, int]
    matrix: CsrMatrix
    inv_diag: np.ndarray


@dataclasses.dataclass
class MgHierarchy:
    levels: _t.List[MgLevel]
    omega: float = 0.8
    pre_sweeps: int = 1
    post_sweeps: int = 1
    coarse_sweeps: int = 8


def extract_diagonal(m: CsrMatrix) -> np.ndarray:
    """Diagonal of a halo-padded CSR matrix (diag column = halo_lo+row)."""
    diag = np.zeros(m.n_rows)
    for r in range(m.n_rows):
        lo, hi = int(m.row_ptr[r]), int(m.row_ptr[r + 1])
        cols = m.col[lo:hi]
        hit = np.nonzero(cols == m.halo_lo + r)[0]
        if hit.size:
            diag[r] = m.val[lo + int(hit[0])]
    return diag


def build_hierarchy(nx: int, ny: int, nz: int,
                    offsets: _t.Sequence[_t.Tuple[int, int, int]],
                    diag_val: float, off_val: float,
                    min_dim: int = 4) -> MgHierarchy:
    """Coarsen by 2 in every dimension while all dimensions stay even
    and at least ``min_dim``."""
    levels = []
    dims = (nx, ny, nz)
    while True:
        m = build_stencil_csr(*dims, has_lower=False, has_upper=False,
                              offsets=offsets, diag_val=diag_val,
                              off_val=off_val)
        diag = extract_diagonal(m)
        if (diag == 0).any():
            raise ValueError("operator has zero diagonal entries")
        levels.append(MgLevel(shape=dims, matrix=m, inv_diag=1.0 / diag))
        if any(d % 2 or d // 2 < min_dim for d in dims):
            break
        dims = (dims[0] // 2, dims[1] // 2, dims[2] // 2)
    return MgHierarchy(levels=levels)


def restrict_full_weighting(fine: np.ndarray,
                            fine_shape: _t.Tuple[int, int, int]
                            ) -> np.ndarray:
    """Average 2×2×2 fine cells into each coarse cell."""
    nx, ny, nz = fine_shape
    g = fine.reshape(nx, ny, nz)
    c = g.reshape(nx // 2, 2, ny // 2, 2, nz // 2, 2).mean(axis=(1, 3, 5))
    return c.reshape(-1)


def prolong_injection(coarse: np.ndarray,
                      coarse_shape: _t.Tuple[int, int, int]) -> np.ndarray:
    """Replicate each coarse cell into its 2×2×2 fine children."""
    cx, cy, cz = coarse_shape
    g = coarse.reshape(cx, cy, cz)
    f = np.repeat(np.repeat(np.repeat(g, 2, axis=0), 2, axis=1), 2,
                  axis=2)
    return f.reshape(-1)


def transfer_cost(n_fine: int) -> _t.Tuple[float, float]:
    """Grid-transfer roofline, calibrated to AMG2013's *explicit*
    interpolation matrices: applying P (or its transpose) is itself a
    sparse matvec with ~8 nonzeros per fine row, i.e. ~16 flops and
    ~96 streamed bytes per fine cell — not the nearly-free geometric
    averaging our structured grids would allow."""
    return (16.0 * n_fine, 96.0 * n_fine)


def jacobi_sweep(ctx, level: MgLevel, b: np.ndarray, x: np.ndarray,
                 scratch: np.ndarray, omega: float, *, in_section: bool,
                 n_tasks: int):
    """One ω-Jacobi sweep ``x += ω D⁻¹ (b − A x)``.

    The spmv is the intra-parallelizable part (explicit CSR); the vector
    update runs locally on every replica (waxpby-like ratio — not worth
    sharing, per §V-C).
    """
    m = level.matrix
    yield from kernel_spmv(ctx, m, x, scratch[:m.n_rows],
                           in_section=in_section, n_tasks=n_tasks,
                           region="smoother_spmv")

    def update(bb, ax, invd, xx):
        xx[m.halo_lo:m.halo_lo + m.n_rows] += (
            omega * invd * (bb - ax))

    yield from ctx.intra.run_local(
        update, [b, scratch[:m.n_rows], level.inv_diag, x],
        cost=lambda bb, ax, invd, xx: (3.0 * m.n_rows, 32.0 * m.n_rows))


def v_cycle(ctx, hier: MgHierarchy, b: np.ndarray, *, in_section: bool,
            n_tasks: int, level: int = 0,
            intra_levels: int = 99) -> _t.Generator:
    """One V-cycle on the local block; returns the correction vector
    (unpadded).  ``b`` is the level's right-hand side (unpadded).

    ``intra_levels`` limits section usage to the finest levels: a level
    joins sections only if ``level < intra_levels`` (coarse grids are
    too small to amortize update latency)."""
    lvl = hier.levels[level]
    in_section = in_section and level < intra_levels
    m = lvl.matrix
    x = np.zeros(m.padded_len)  # halo_lo == 0 here, but stay generic
    scratch = np.zeros(m.n_rows)
    if level == len(hier.levels) - 1:
        for _ in range(hier.coarse_sweeps):
            yield from jacobi_sweep(ctx, lvl, b, x, scratch, hier.omega,
                                    in_section=in_section,
                                    n_tasks=n_tasks)
        return x[m.halo_lo:m.halo_lo + m.n_rows].copy()
    for _ in range(hier.pre_sweeps):
        yield from jacobi_sweep(ctx, lvl, b, x, scratch, hier.omega,
                                in_section=in_section, n_tasks=n_tasks)
    # residual r = b - A x
    yield from kernel_spmv(ctx, m, x, scratch, in_section=in_section,
                           n_tasks=n_tasks, region="smoother_spmv")
    yield from ctx.intra.run_local(
        lambda: None, [],
        cost=lambda: (m.n_rows, 24.0 * m.n_rows))  # r = b - Ax
    r = b - scratch
    r_coarse = restrict_full_weighting(r, lvl.shape)
    yield from ctx.intra.run_local(lambda: None, [],
                                   cost=lambda: transfer_cost(m.n_rows))
    correction = yield from v_cycle(ctx, hier, r_coarse,
                                    in_section=in_section,
                                    n_tasks=n_tasks, level=level + 1,
                                    intra_levels=intra_levels)
    fine_corr = prolong_injection(correction,
                                  hier.levels[level + 1].shape)
    yield from ctx.intra.run_local(lambda: None, [],
                                   cost=lambda: transfer_cost(m.n_rows))
    yield from ctx.intra.run_local(
        lambda: None, [],
        cost=lambda: (m.n_rows, 24.0 * m.n_rows))  # x += correction
    x[m.halo_lo:m.halo_lo + m.n_rows] += fine_corr
    for _ in range(hier.post_sweeps):
        yield from jacobi_sweep(ctx, lvl, b, x, scratch, hier.omega,
                                in_section=in_section, n_tasks=n_tasks)
    return x[m.halo_lo:m.halo_lo + m.n_rows].copy()
