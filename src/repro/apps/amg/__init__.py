"""AMG2013-like solver application (system S12)."""

from .mg import (MgHierarchy, MgLevel, build_hierarchy, extract_diagonal,
                 prolong_injection, restrict_full_weighting, v_cycle)
from .solvers import AmgConfig, amg_gmres_program, amg_pcg_program

__all__ = ["AmgConfig", "MgHierarchy", "MgLevel", "amg_gmres_program",
           "amg_pcg_program", "build_hierarchy", "extract_diagonal",
           "prolong_injection", "restrict_full_weighting", "v_cycle"]
