"""AMG2013-like Krylov solvers — system S12.

Two problems, matching Figure 6a/6b:

* :func:`amg_pcg_program` — preconditioned conjugate gradient on a
  Laplace-type problem with a **27-point** operator (Figure 6a);
* :func:`amg_gmres_program` — restarted GMRES on a Laplace-type problem
  with a **7-point** operator (Figure 6b).

Both use the local geometric-MG V-cycle of :mod:`.mg` as a block-Jacobi
preconditioner (the AMG-hierarchy substitution; see DESIGN.md).  The
intra-parallelized kernels are the CSR spmv (outer operator and
smoother) and the dot products; vector updates stay replicated, as in
the paper's selective application ("we focused on the main kernels where
intra-parallelization could be applied efficiently").
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ...kernels import OFFSETS_27, OFFSETS_7, build_27pt, build_7pt
from ..common import (DEFAULT_TASKS_PER_SECTION, finish, halo_exchange_z,
                      kernel_ddot, kernel_spmv, kernel_waxpby)
from .mg import MgHierarchy, build_hierarchy, v_cycle


@dataclasses.dataclass(frozen=True)
class AmgConfig:
    """Per-logical-process grid (the paper runs 100³) and solver knobs."""

    nx: int = 8
    ny: int = 8
    nz: int = 8
    max_iter: int = 6
    restart: int = 5           # GMRES restart length
    tasks_per_section: int = DEFAULT_TASKS_PER_SECTION
    use_preconditioner: bool = True
    #: kernels run as intra sections ("spmv" covers outer + smoother)
    intra_kernels: _t.FrozenSet[str] = frozenset({"spmv", "ddot"})
    #: hierarchy levels (from finest) whose smoother spmv joins sections
    smoother_intra_levels: int = 99

    def with_doubled_z(self) -> "AmgConfig":
        return dataclasses.replace(self, nz=2 * self.nz)


def _setup(ctx, comm, config: AmgConfig, stencil: str):
    """Common setup: distributed operator + local MG hierarchy + rhs."""
    rank, size = comm.rank, comm.size
    if stencil == "27pt":
        A = build_27pt(config.nx, config.ny, config.nz,
                       has_lower=rank > 0, has_upper=rank < size - 1)
        offsets, diag, off = OFFSETS_27, 27.0, -1.0
    else:
        A = build_7pt(config.nx, config.ny, config.nz,
                      has_lower=rank > 0, has_upper=rank < size - 1)
        offsets, diag, off = OFFSETS_7, 6.0, -1.0
    hier = None
    if config.use_preconditioner:
        hier = build_hierarchy(config.nx, config.ny, config.nz, offsets,
                               diag, off)
    n = A.n_rows
    # deterministic rhs with low-frequency content
    idx = np.arange(n, dtype=np.float64)
    b = 1.0 + 0.5 * np.sin(2.0 * np.pi * idx / n + 0.7 * rank)
    return A, hier, b


def _apply_operator(ctx, comm, A, plane, v, v_padded, out, sec, nt):
    """Distributed matvec: halo exchange + local CSR spmv."""
    rank, size = comm.rank, comm.size
    n = A.n_rows
    v_padded[A.halo_lo:A.halo_lo + n] = v
    yield from halo_exchange_z(
        ctx, comm,
        send_lower=v[:plane] if rank > 0 else None,
        send_upper=v[n - plane:] if rank < size - 1 else None,
        recv_lower=v_padded[:A.halo_lo] if rank > 0 else None,
        recv_upper=v_padded[A.halo_lo + n:] if rank < size - 1 else None)
    yield from kernel_spmv(ctx, A, v_padded, out, in_section="spmv" in sec,
                           n_tasks=nt)


def _precondition(ctx, hier: _t.Optional[MgHierarchy], r, sec, nt,
                  config: "AmgConfig"):
    """z = M⁻¹ r: one local V-cycle (or identity).

    The smoother's spmv runs in sections only on the levels selected by
    ``config.smoother_intra_levels`` — sharing tiny coarse-level sweeps
    is latency-bound and not worth it, mirroring the paper's selective
    application of intra-parallelization."""
    if hier is None:
        return r.copy()
    with ctx.region("precond"):
        z = yield from v_cycle(ctx, hier, r, in_section="spmv" in sec,
                               n_tasks=nt,
                               intra_levels=config.smoother_intra_levels)
    return z


def amg_pcg_program(ctx, comm, config: AmgConfig):
    """MG-preconditioned CG on the 27-point problem (Figure 6a).  The
    value is ``(residual_norm, iterations)``."""
    sec = config.intra_kernels
    nt = config.tasks_per_section
    A, hier, b = _setup(ctx, comm, config, "27pt")
    n = A.n_rows
    plane = config.nx * config.ny
    x = np.zeros(n)
    r = b.copy()  # x0 = 0
    solve_region = ctx.region("solve")
    solve_region.__enter__()
    z = yield from _precondition(ctx, hier, r, sec, nt, config)
    p = z.copy()
    Ap = np.zeros(n)
    p_padded = np.zeros(A.padded_len)
    rz = yield from kernel_ddot(ctx, comm, r, z,
                                in_section="ddot" in sec, n_tasks=nt)
    for _ in range(config.max_iter):
        yield from _apply_operator(ctx, comm, A, plane, p, p_padded, Ap,
                                   sec, nt)
        pAp = yield from kernel_ddot(ctx, comm, p, Ap,
                                     in_section="ddot" in sec, n_tasks=nt)
        alpha = rz / pAp
        yield from kernel_waxpby(ctx, 1.0, x, alpha, p, x,
                                 in_section=False)
        yield from kernel_waxpby(ctx, 1.0, r, -alpha, Ap, r,
                                 in_section=False)
        z = yield from _precondition(ctx, hier, r, sec, nt, config)
        rz_new = yield from kernel_ddot(ctx, comm, r, z,
                                        in_section="ddot" in sec,
                                        n_tasks=nt)
        beta = rz_new / rz
        rz = rz_new
        yield from kernel_waxpby(ctx, 1.0, z, beta, p, p,
                                 in_section=False)
    rr = yield from kernel_ddot(ctx, comm, r, r, in_section=False)
    solve_region.__exit__(None, None, None)
    return finish(ctx, (float(np.sqrt(rr)), config.max_iter))


def amg_gmres_program(ctx, comm, config: AmgConfig):
    """MG-preconditioned restarted GMRES on the 7-point problem
    (Figure 6b).  The value is ``(residual_norm, iterations)``."""
    sec = config.intra_kernels
    nt = config.tasks_per_section
    A, hier, b = _setup(ctx, comm, config, "7pt")
    n = A.n_rows
    plane = config.nx * config.ny
    x = np.zeros(n)
    v_padded = np.zeros(A.padded_len)
    m = config.restart
    total_iters = 0
    res_norm = 0.0
    solve_region = ctx.region("solve")
    solve_region.__enter__()
    while total_iters < config.max_iter:
        # r = b - A x, preconditioned
        Ax = np.zeros(n)
        yield from _apply_operator(ctx, comm, A, plane, x, v_padded, Ax,
                                   sec, nt)
        r = b - Ax
        z = yield from _precondition(ctx, hier, r, sec, nt, config)
        rr = yield from kernel_ddot(ctx, comm, z, z,
                                    in_section="ddot" in sec, n_tasks=nt)
        beta = float(np.sqrt(rr))
        res_norm = beta
        if beta == 0.0:
            break
        V = [z / beta]
        H = np.zeros((m + 1, m))
        j = 0
        while j < m and total_iters < config.max_iter:
            w = np.zeros(n)
            yield from _apply_operator(ctx, comm, A, plane, V[j],
                                       v_padded, w, sec, nt)
            wz = yield from _precondition(ctx, hier, w, sec, nt, config)
            w = wz
            # modified Gram-Schmidt, distributed dots in sections
            for i in range(j + 1):
                h = yield from kernel_ddot(ctx, comm, w, V[i],
                                           in_section="ddot" in sec,
                                           n_tasks=nt)
                H[i, j] = h
                yield from kernel_waxpby(ctx, 1.0, w, -h, V[i], w,
                                         in_section=False)
            hh = yield from kernel_ddot(ctx, comm, w, w,
                                        in_section="ddot" in sec,
                                        n_tasks=nt)
            H[j + 1, j] = float(np.sqrt(hh))
            if H[j + 1, j] < 1e-14:
                j += 1
                total_iters += 1
                break
            V.append(w / H[j + 1, j])
            j += 1
            total_iters += 1
        # solve the small least-squares problem redundantly
        e1 = np.zeros(j + 1)
        e1[0] = beta
        ym, _res, _rk, _sv = np.linalg.lstsq(H[:j + 1, :j], e1,
                                             rcond=None)
        for i in range(j):
            yield from kernel_waxpby(ctx, 1.0, x, float(ym[i]), V[i], x,
                                     in_section=False)
        res_norm = float(np.linalg.norm(e1 - H[:j + 1, :j] @ ym))
    return finish(ctx, (res_norm, total_iters))
