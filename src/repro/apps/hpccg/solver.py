"""HPCCG mini-application (Mantevo suite) — system S9.

A conjugate-gradient solver on a 27-point 3D-grid operator, partitioned
across ranks along z.  Per CG iteration (as in the reference HPCCG):

* one ``sparsemv``  (halo exchange + local CSR matvec),
* two ``ddot``      (α denominator, new residual norm),
* three ``waxpby``  (x, r, p updates).

Which kernels run as intra-parallel sections is configurable
(``intra_kernels``): Figure 5a studies each kernel individually; the
Figure 5b application runs intra-parallelize only ddot and sparsemv,
"since it does not provide good performance with waxpby" (§V-C).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ...kernels import build_27pt
from ..common import (DEFAULT_TASKS_PER_SECTION, AppResult, finish,
                      halo_exchange_z, kernel_ddot, kernel_spmv,
                      kernel_waxpby)


@dataclasses.dataclass(frozen=True)
class HpccgConfig:
    """Per-logical-process problem configuration.

    ``nx, ny, nz`` is the local grid (the paper uses 128³ per logical
    process natively and doubles it under replication; we use smaller
    grids and let the roofline model do the scaling).
    """

    nx: int = 16
    ny: int = 16
    nz: int = 16
    max_iter: int = 10
    tasks_per_section: int = DEFAULT_TASKS_PER_SECTION
    #: kernels executed as intra-parallel sections
    intra_kernels: _t.FrozenSet[str] = frozenset({"waxpby", "ddot",
                                                  "spmv"})

    def with_doubled_z(self) -> "HpccgConfig":
        """The replicated-run configuration of Figure 5a/5b: per-logical-
        process problem size doubled (along the partitioned axis)."""
        return dataclasses.replace(self, nz=2 * self.nz)


def hpccg_program(ctx, comm, config: HpccgConfig):
    """One rank of the CG solve; returns an :class:`AppResult` whose
    value is ``(final_residual_norm, iterations)``."""
    rank, size = comm.rank, comm.size
    nx, ny, nz = config.nx, config.ny, config.nz
    plane = nx * ny
    A = build_27pt(nx, ny, nz, has_lower=rank > 0,
                   has_upper=rank < size - 1)
    n = A.n_rows
    local = slice(A.halo_lo, A.halo_lo + n)
    sec = config.intra_kernels
    nt = config.tasks_per_section

    # b = A @ 1 (halo planes are 1 wherever a neighbour exists), x0 = 0.
    ones_padded = np.ones(A.padded_len)
    b = np.zeros(n)
    yield from kernel_spmv(ctx, A, ones_padded, b,
                           in_section="spmv" in sec, n_tasks=nt,
                           region="setup")
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    Ap = np.zeros(n)
    p_padded = np.zeros(A.padded_len)

    rtrans = yield from kernel_ddot(ctx, comm, r, r,
                                    in_section="ddot" in sec, n_tasks=nt)
    iterations = 0
    solve_region = ctx.region("solve")
    solve_region.__enter__()
    for _ in range(config.max_iter):
        # halo exchange of p's boundary planes, then local matvec
        p_padded[local] = p
        yield from halo_exchange_z(
            ctx, comm,
            send_lower=p[:plane] if rank > 0 else None,
            send_upper=p[n - plane:] if rank < size - 1 else None,
            recv_lower=p_padded[:A.halo_lo] if rank > 0 else None,
            recv_upper=(p_padded[A.halo_lo + n:]
                        if rank < size - 1 else None))
        yield from kernel_spmv(ctx, A, p_padded, Ap,
                               in_section="spmv" in sec, n_tasks=nt)
        pAp = yield from kernel_ddot(ctx, comm, p, Ap,
                                     in_section="ddot" in sec, n_tasks=nt)
        alpha = rtrans / pAp
        yield from kernel_waxpby(ctx, 1.0, x, alpha, p, x,
                                 in_section="waxpby" in sec, n_tasks=nt)
        yield from kernel_waxpby(ctx, 1.0, r, -alpha, Ap, r,
                                 in_section="waxpby" in sec, n_tasks=nt)
        rtrans_new = yield from kernel_ddot(ctx, comm, r, r,
                                            in_section="ddot" in sec,
                                            n_tasks=nt)
        beta = rtrans_new / rtrans
        rtrans = rtrans_new
        yield from kernel_waxpby(ctx, 1.0, r, beta, p, p,
                                 in_section="waxpby" in sec, n_tasks=nt)
        iterations += 1
    solve_region.__exit__(None, None, None)

    return finish(ctx, (float(np.sqrt(rtrans)), iterations))


@dataclasses.dataclass(frozen=True)
class KernelBenchConfig:
    """Configuration for the Figure 5a kernel microbenchmark.

    ``kernels`` selects which kernels run at all — Figure 5a studies
    them individually, so per-kernel runs keep the runtime statistics
    (exposed update time, bytes shipped) attributable to one kernel.
    """

    nx: int = 16
    ny: int = 16
    nz: int = 16
    reps: int = 3
    tasks_per_section: int = DEFAULT_TASKS_PER_SECTION
    kernels: _t.Tuple[str, ...] = ("waxpby", "ddot", "spmv")
    intra_kernels: _t.FrozenSet[str] = frozenset({"waxpby", "ddot",
                                                  "spmv"})

    def with_doubled_z(self) -> "KernelBenchConfig":
        return dataclasses.replace(self, nz=2 * self.nz)


def hpccg_kernel_bench(ctx, comm, config: KernelBenchConfig):
    """Times each HPCCG kernel in isolation (Figure 5a's methodology:
    "the average amount of time spent by a process inside each
    computation kernel"); MPI communication is excluded from the timed
    regions.  The value is the kernel→time mapping."""
    rank, size = comm.rank, comm.size
    A = build_27pt(config.nx, config.ny, config.nz,
                   has_lower=rank > 0, has_upper=rank < size - 1)
    n = A.n_rows
    sec = config.intra_kernels
    nt = config.tasks_per_section
    rng_base = np.arange(n, dtype=np.float64)
    x = rng_base / n
    y = 1.0 - rng_base / n
    w = np.zeros(n)
    x_padded = np.zeros(A.padded_len)
    x_padded[A.halo_lo:A.halo_lo + n] = x
    Ax = np.zeros(n)

    solve_region = ctx.region("solve")
    solve_region.__enter__()
    for _ in range(config.reps):
        if "waxpby" in config.kernels:
            yield from kernel_waxpby(ctx, 2.0, x, 0.5, y, w,
                                     in_section="waxpby" in sec,
                                     n_tasks=nt)
        if "ddot" in config.kernels:
            yield from kernel_ddot(ctx, comm, x, y,
                                   in_section="ddot" in sec, n_tasks=nt)
        if "spmv" in config.kernels:
            yield from kernel_spmv(ctx, A, x_padded, Ax,
                                   in_section="spmv" in sec, n_tasks=nt)
    solve_region.__exit__(None, None, None)
    checksum = float(w.sum() + Ax.sum())
    return finish(ctx, checksum)
