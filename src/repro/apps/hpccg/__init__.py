"""HPCCG mini-application (system S9)."""

from .solver import (HpccgConfig, KernelBenchConfig, hpccg_kernel_bench,
                     hpccg_program)

__all__ = ["HpccgConfig", "KernelBenchConfig", "hpccg_kernel_bench",
           "hpccg_program"]
