"""Performance subsystem: parallel sweep driver + result caching.

The experiment harness describes every figure as a list of independent
sweep points; :func:`run_sweep` evaluates them through a process pool
with optional on-disk memoization.  See :mod:`repro.perf.sweep`.
"""

from .sweep import (CACHE_VERSION, PointFailure, SweepConfig, SweepItem,
                    clear_result_cache, configure, get_config, iter_sweep,
                    point_cache_key, run_sweep, stable_token)

__all__ = [
    "CACHE_VERSION", "PointFailure", "SweepConfig", "SweepItem",
    "clear_result_cache", "configure", "get_config", "iter_sweep",
    "point_cache_key", "run_sweep", "stable_token",
]
