"""Parallel experiment-sweep driver with on-disk result caching.

Every figure of the reproduction is a *sweep*: a list of independent
(mode, program, problem) points, each of which runs a full discrete-event
simulation.  Points share nothing at runtime (determinism makes each one
a pure function of its descriptor), which makes the sweep embarrassingly
parallel and its results safely cacheable.

:func:`run_sweep` fans the points out over a process pool and memoizes
each point's result on disk, keyed by a *stable* serialization of the
point descriptor (:func:`stable_token` — plain ``repr`` is not stable
for sets/dataclasses across hash seeds).

Defaults are conservative: serial and uncached.  The experiment CLI
(``python -m repro.experiments --workers N``) and the perf benchmark
opt in through :func:`configure`; library callers can also pass
``workers=`` / ``cache=`` explicitly.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import enum
import hashlib
import os
import pathlib
import pickle
import typing as _t
import warnings

#: bump to invalidate every cached result (e.g. on model changes)
CACHE_VERSION = 2

_DEFAULT_CACHE_DIR = pathlib.Path(".perf_cache")


@dataclasses.dataclass
class SweepConfig:
    """Process-wide defaults for :func:`run_sweep`."""

    workers: int = 1
    cache: bool = False
    cache_dir: pathlib.Path = _DEFAULT_CACHE_DIR


def _env_flag(name: str) -> bool:
    """Truthiness of an env flag: '', '0', 'false', 'no', 'off' are
    False (``bool(raw)`` would treat '0' as enabled)."""
    return os.environ.get(name, "").strip().lower() not in (
        "", "0", "false", "no", "off")


def _env_workers(name: str = "REPRO_WORKERS") -> int:
    """Parse the worker-count env var defensively.

    A garbage value must not make ``import repro.perf.sweep`` raise
    (sweeps are imported by every experiment module), and a value the
    :func:`configure` validation would reject (``workers < 1``) must not
    sneak past it just because it arrived via the environment.  Either
    way we warn and fall back to the serial default of 1.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        warnings.warn(f"ignoring {name}={raw!r}: not an integer; "
                      f"running sweeps with workers=1", RuntimeWarning,
                      stacklevel=2)
        return 1
    if workers < 1:
        warnings.warn(f"ignoring {name}={workers}: workers must be >= 1; "
                      f"running sweeps with workers=1", RuntimeWarning,
                      stacklevel=2)
        return 1
    return workers


_config = SweepConfig(
    workers=1,
    cache=_env_flag("REPRO_SWEEP_CACHE"),
    cache_dir=pathlib.Path(os.environ.get("REPRO_CACHE_DIR", "")
                           or _DEFAULT_CACHE_DIR),
)


def configure(workers: _t.Optional[int] = None,
              cache: _t.Optional[bool] = None,
              cache_dir: _t.Optional[_t.Union[str, pathlib.Path]] = None
              ) -> SweepConfig:
    """Set process-wide sweep defaults; returns the live config."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _config.workers = int(workers)
    if cache is not None:
        _config.cache = bool(cache)
    if cache_dir is not None:
        _config.cache_dir = pathlib.Path(cache_dir)
    return _config


def get_config() -> SweepConfig:
    """The live process-wide sweep configuration."""
    return _config


# The env default goes through the same validation as explicit callers
# (``_env_workers`` already clamps to >= 1, so this cannot raise at
# import time).
configure(workers=_env_workers())


# ------------------------------------------------------------ stable keys
def stable_token(obj: _t.Any) -> str:
    """A deterministic, hash-seed-independent serialization of a sweep
    point descriptor.

    Handles the types experiment configs are made of: primitives,
    sequences, dicts, sets/frozensets (sorted), enums, dataclasses,
    callables (by qualified name) and plain attribute objects.  Unknown
    objects fall back to ``repr`` — fine as long as the repr does not
    embed memory addresses (a ``<... at 0x...>`` repr raises instead of
    silently producing an unstable key).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips floats exactly
    if isinstance(obj, enum.Enum):
        return f"enum:{type(obj).__qualname__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ", ".join(
            f"{f.name}={stable_token(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj))
        return f"dc:{type(obj).__qualname__}({fields})"
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return f"{kind}[{', '.join(stable_token(v) for v in obj)}]"
    if isinstance(obj, (set, frozenset)):
        return f"set[{', '.join(sorted(stable_token(v) for v in obj))}]"
    if isinstance(obj, dict):
        items = sorted((stable_token(k), stable_token(v))
                       for k, v in obj.items())
        return f"dict[{', '.join(f'{k}: {v}' for k, v in items)}]"
    if callable(obj) and hasattr(obj, "__qualname__"):
        return f"fn:{getattr(obj, '__module__', '?')}.{obj.__qualname__}"
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return f"obj:{type(obj).__qualname__}({stable_token(attrs)})"
    r = repr(obj)
    if " at 0x" in r:
        raise TypeError(
            f"cannot build a stable cache key for {type(obj).__name__}: "
            f"repr embeds a memory address ({r})")
    return f"repr:{r}"


def _point_key(fn: _t.Callable, point: _t.Any, tag: str) -> str:
    blob = f"v{CACHE_VERSION}|{tag or stable_token(fn)}|{stable_token(point)}"
    return hashlib.sha256(blob.encode()).hexdigest()


def point_cache_key(fn: _t.Callable, point: _t.Any, tag: str = "") -> str:
    """The on-disk cache key :func:`run_sweep` uses for one point — a
    stable hash of the point descriptor (and the tag namespace), so
    callers can reason about result identity (e.g. scenario hashes: see
    :func:`repro.scenarios.scenario_cache_key`)."""
    return _point_key(fn, point, tag)


# ------------------------------------------------------------- disk cache
def _cache_path(cache_dir: pathlib.Path, key: str) -> pathlib.Path:
    return cache_dir / f"{key[:2]}" / f"{key}.pkl"


def _cache_load(cache_dir: pathlib.Path, key: str) -> _t.Tuple[bool, _t.Any]:
    path = _cache_path(cache_dir, key)
    try:
        with open(path, "rb") as fh:
            return True, pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return False, None


def _cache_store(cache_dir: pathlib.Path, key: str, value: _t.Any) -> None:
    path = _cache_path(cache_dir, key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic under concurrent writers
    except (OSError, pickle.PickleError):
        pass  # caching is best-effort; never fail the sweep


def clear_result_cache(cache_dir: _t.Optional[_t.Union[str, pathlib.Path]]
                       = None) -> int:
    """Delete all cached sweep results; returns the number removed.

    Also sweeps the ``.tmp<pid>`` droppings a :func:`_cache_store`
    writer that crashed between ``open`` and ``os.replace`` leaves
    behind, and prunes shard directories emptied by the sweep (neither
    counts toward the return value, which is cached *results* only).
    """
    root = pathlib.Path(cache_dir) if cache_dir else _config.cache_dir
    removed = 0
    if root.is_dir():
        for p in root.rglob("*.pkl"):
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        for p in root.rglob("*.tmp*"):
            if p.is_file():
                try:
                    p.unlink()
                except OSError:
                    pass
        # deepest-first so nested shard dirs empty out bottom-up;
        # rmdir refuses non-empty dirs, which is exactly what we want
        for d in sorted((d for d in root.rglob("*") if d.is_dir()),
                        reverse=True):
            try:
                d.rmdir()
            except OSError:
                pass
    return removed


# ------------------------------------------------------------- the driver
@dataclasses.dataclass
class SweepItem:
    """One completed sweep point, as yielded by :func:`iter_sweep`.

    ``index`` is the point's position in the input sequence (yields
    arrive in *completion* order, not input order).  ``cache_hit`` is
    True when the value came from the on-disk cache or was deduped onto
    an equal point in the same sweep; ``cache_key`` is the on-disk key
    (``None`` when caching is disabled for the sweep).
    """

    index: int
    point: _t.Any
    value: _t.Any
    cache_hit: bool
    cache_key: _t.Optional[str]


def iter_sweep(points: _t.Sequence[_t.Any],
               fn: _t.Callable[[_t.Any], _t.Any],
               workers: _t.Optional[int] = None,
               cache: _t.Optional[bool] = None,
               cache_dir: _t.Optional[_t.Union[str, pathlib.Path]] = None,
               tag: str = "") -> _t.Iterator[SweepItem]:
    """Streaming form of :func:`run_sweep`: yield a :class:`SweepItem`
    per point *as results become available* instead of one ordered list
    at the end.

    Cache hits yield first (in input order, essentially instantly);
    pending points follow as the pool completes them, each followed by
    any same-key duplicates it resolves.  Caching semantics — keys,
    stored bytes, the in-sweep duplicate dedupe — are byte-for-byte the
    same as :func:`run_sweep` (which is implemented on this iterator),
    so streaming consumers and batch consumers share one cache.

    Parameters are those of :func:`run_sweep`.  The iterator is lazy:
    nothing runs until the first ``next()``, and abandoning it mid-sweep
    shuts the worker pool down cleanly.
    """
    cfg = _config
    n_workers = cfg.workers if workers is None else workers
    use_cache = cfg.cache if cache is None else cache
    root = pathlib.Path(cache_dir) if cache_dir else cfg.cache_dir

    points = list(points)
    pending: _t.List[int] = []
    duplicates: _t.Dict[int, _t.List[int]] = {}
    keys: _t.List[_t.Optional[str]]
    if use_cache:
        keys = [_point_key(fn, p, tag) for p in points]
        # Dedupe pending work by cache key: duplicate points in one cold
        # sweep compute once and fan the result out, matching the
        # cross-run dedupe the shared cache namespace already provides.
        first_with_key: _t.Dict[str, int] = {}
        for i, key in enumerate(keys):
            owner = first_with_key.get(key)
            if owner is not None:
                duplicates.setdefault(owner, []).append(i)
                continue
            hit, value = _cache_load(root, key)
            if hit:
                yield SweepItem(i, points[i], value, True, key)
            else:
                first_with_key[key] = i
                pending.append(i)
    else:
        keys = [None] * len(points)
        pending = list(range(len(points)))

    def finish(i: int, value: _t.Any) -> _t.Iterator[SweepItem]:
        if use_cache:
            _cache_store(root, keys[i], value)
        yield SweepItem(i, points[i], value, False, keys[i])
        for dup in duplicates.get(i, ()):
            yield SweepItem(dup, points[dup], value, True, keys[dup])

    if not pending:
        return
    if n_workers > 1 and len(pending) > 1:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(n_workers, len(pending)))
        drained = False
        try:
            futures = {pool.submit(fn, points[i]): i for i in pending}
            for fut in concurrent.futures.as_completed(futures):
                yield from finish(futures[fut], fut.result())
            drained = True
        finally:
            # A consumer that abandons the stream (GeneratorExit) or a
            # failed point must not block on the queued remainder:
            # cancel it and return without waiting.  On a fully drained
            # sweep every future is done, so waiting is free.
            pool.shutdown(wait=drained, cancel_futures=not drained)
    else:
        for i in pending:
            yield from finish(i, fn(points[i]))


def run_sweep(points: _t.Sequence[_t.Any], fn: _t.Callable[[_t.Any], _t.Any],
              workers: _t.Optional[int] = None,
              cache: _t.Optional[bool] = None,
              cache_dir: _t.Optional[_t.Union[str, pathlib.Path]] = None,
              tag: str = "") -> _t.List[_t.Any]:
    """Evaluate ``fn(point)`` for every point, in order.

    This is the single fan-out/caching choke point of the repo: every
    figure, ablation, extension and CLI run routes its points through
    here (scenario sweeps via
    :func:`repro.scenarios.sweep_scenarios`), so ``--workers`` /
    ``--no-cache`` behave uniformly everywhere.  See ``docs/cli.md``
    for the user-facing semantics and ``docs/architecture.md`` for
    where the driver sits in the stack.

    Parameters
    ----------
    points:
        Picklable point descriptors.  Each must be a *pure description*
        of the run (configs, mode names, counts — no live objects):
        results are memoized on the descriptor's stable serialization
        (:func:`stable_token`), so anything that should invalidate a
        cached result must be part of the descriptor.
    fn:
        Module-level callable (picklable by reference when
        ``workers > 1``); must be deterministic in ``point`` — the
        cache stores its first result forever (until
        :data:`CACHE_VERSION` is bumped or the cache is cleared).
    workers:
        Process-pool width; ``None`` uses the :func:`configure`\\ d
        default (CLI ``--workers N``, env ``REPRO_WORKERS``).  With 1
        worker — or a single pending point — everything runs inline in
        this process (no pool, no pickling).  Cache hits never spawn
        workers.
    cache:
        Override the configured on-disk memoization (CLI
        ``--no-cache`` maps to ``False``; env ``REPRO_SWEEP_CACHE``
        sets the default).  Caching is best-effort: unreadable or
        corrupt entries recompute, write failures never fail the sweep.
    cache_dir:
        Cache root (default ``.perf_cache/``, env ``REPRO_CACHE_DIR``).
    tag:
        Cache-key namespace; defaults to ``fn``'s qualified name.
        Scenario sweeps pass one shared tag so equal scenarios dedupe
        *across* figures, examples and CLI runs (see
        :func:`repro.scenarios.scenario_cache_key`).

    Returns results in the same order as ``points``.
    """
    points = list(points)
    results: _t.List[_t.Any] = [None] * len(points)
    for item in iter_sweep(points, fn, workers=workers, cache=cache,
                           cache_dir=cache_dir, tag=tag):
        results[item.index] = item.value
    return results
