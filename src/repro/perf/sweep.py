"""Parallel experiment-sweep driver with on-disk result caching.

Every figure of the reproduction is a *sweep*: a list of independent
(mode, program, problem) points, each of which runs a full discrete-event
simulation.  Points share nothing at runtime (determinism makes each one
a pure function of its descriptor), which makes the sweep embarrassingly
parallel and its results safely cacheable.

:func:`run_sweep` fans the points out over a process pool and memoizes
each point's result on disk, keyed by a *stable* serialization of the
point descriptor (:func:`stable_token` — plain ``repr`` is not stable
for sets/dataclasses across hash seeds).

Defaults are conservative: serial and uncached.  The experiment CLI
(``python -m repro.experiments --workers N``) and the perf benchmark
opt in through :func:`configure`; library callers can also pass
``workers=`` / ``cache=`` explicitly.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import enum
import hashlib
import pathlib
import pickle
import time
import typing as _t
import warnings
from concurrent.futures.process import BrokenProcessPool

from .. import _envflags

#: bump to invalidate every cached result (e.g. on model changes)
CACHE_VERSION = 2

_DEFAULT_CACHE_DIR = pathlib.Path(".perf_cache")


@dataclasses.dataclass
class SweepConfig:
    """Process-wide defaults for :func:`run_sweep`."""

    workers: int = 1
    cache: bool = False
    cache_dir: pathlib.Path = _DEFAULT_CACHE_DIR


def _env_workers(name: str = "REPRO_WORKERS") -> int:
    """Parse the worker-count env var defensively.

    A garbage value must not make ``import repro.perf.sweep`` raise
    (sweeps are imported by every experiment module), and a value the
    :func:`configure` validation would reject (``workers < 1``) must not
    sneak past it just because it arrived via the environment.  Either
    way :func:`repro._envflags.env_int` warns and falls back to the
    serial default of 1.
    """
    return _envflags.env_int(name, 1, minimum=1)


_config = SweepConfig(
    workers=1,
    cache=_envflags.env_flag("REPRO_SWEEP_CACHE", False),
    cache_dir=pathlib.Path(_envflags.env_str("REPRO_CACHE_DIR",
                                             str(_DEFAULT_CACHE_DIR))),
)


def configure(workers: _t.Optional[int] = None,
              cache: _t.Optional[bool] = None,
              cache_dir: _t.Optional[_t.Union[str, pathlib.Path]] = None
              ) -> SweepConfig:
    """Set process-wide sweep defaults; returns the live config."""
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _config.workers = int(workers)
    if cache is not None:
        _config.cache = bool(cache)
    if cache_dir is not None:
        _config.cache_dir = pathlib.Path(cache_dir)
    return _config


def get_config() -> SweepConfig:
    """The live process-wide sweep configuration."""
    return _config


# The env default goes through the same validation as explicit callers
# (``_env_workers`` already clamps to >= 1, so this cannot raise at
# import time).
configure(workers=_env_workers())


# ------------------------------------------------------------ stable keys
def stable_token(obj: _t.Any) -> str:
    """A deterministic, hash-seed-independent serialization of a sweep
    point descriptor.

    Handles the types experiment configs are made of: primitives,
    sequences, dicts, sets/frozensets (sorted), enums, dataclasses,
    callables (by qualified name) and plain attribute objects.  Unknown
    objects fall back to ``repr`` — fine as long as the repr does not
    embed memory addresses (a ``<... at 0x...>`` repr raises instead of
    silently producing an unstable key).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips floats exactly
    if isinstance(obj, enum.Enum):
        return f"enum:{type(obj).__qualname__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # Fields flagged ``omit_if_default`` are skipped while at their
        # default value, so adding such a field to a descriptor (e.g.
        # ``Scenario.restart``) leaves every pre-existing cache key —
        # where the field necessarily holds its default — unchanged.
        fields = ", ".join(
            f"{f.name}={stable_token(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
            if not (f.metadata.get("omit_if_default")
                    and getattr(obj, f.name) == f.default))
        return f"dc:{type(obj).__qualname__}({fields})"
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return f"{kind}[{', '.join(stable_token(v) for v in obj)}]"
    if isinstance(obj, (set, frozenset)):
        return f"set[{', '.join(sorted(stable_token(v) for v in obj))}]"
    if isinstance(obj, dict):
        items = sorted((stable_token(k), stable_token(v))
                       for k, v in obj.items())
        return f"dict[{', '.join(f'{k}: {v}' for k, v in items)}]"
    if callable(obj) and hasattr(obj, "__qualname__"):
        return f"fn:{getattr(obj, '__module__', '?')}.{obj.__qualname__}"
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return f"obj:{type(obj).__qualname__}({stable_token(attrs)})"
    r = repr(obj)
    if " at 0x" in r:
        raise TypeError(
            f"cannot build a stable cache key for {type(obj).__name__}: "
            f"repr embeds a memory address ({r})")
    return f"repr:{r}"


def _point_key(fn: _t.Callable, point: _t.Any, tag: str) -> str:
    blob = f"v{CACHE_VERSION}|{tag or stable_token(fn)}|{stable_token(point)}"
    return hashlib.sha256(blob.encode()).hexdigest()


def point_cache_key(fn: _t.Callable, point: _t.Any, tag: str = "") -> str:
    """The on-disk cache key :func:`run_sweep` uses for one point — a
    stable hash of the point descriptor (and the tag namespace), so
    callers can reason about result identity (e.g. scenario hashes: see
    :func:`repro.scenarios.scenario_cache_key`)."""
    return _point_key(fn, point, tag)


# ------------------------------------------------------------- disk cache
# Since PR 10 the cache's bytes live behind the ResultStore protocol of
# :mod:`repro.fabric.store` (the sharded-file oracle layout by default,
# SQLite via ``REPRO_CACHE_BACKEND=sqlite``).  Stores are memoized per
# (backend, root) so a long sweep reuses one handle; pool workers start
# with a clean slate via :func:`_worker_init`.
_STORES: _t.Dict[_t.Tuple[str, str], _t.Any] = {}


def _result_store(cache_dir: pathlib.Path) -> _t.Any:
    from ..fabric.store import get_cache_backend, open_store
    slot = (get_cache_backend(), str(cache_dir))
    store = _STORES.get(slot)
    if store is None:
        store = _STORES[slot] = open_store(cache_dir, slot[0])
    return store


def _cache_path(cache_dir: pathlib.Path, key: str) -> pathlib.Path:
    """The file-backend shard path — pinned layout
    (``tests/api/test_cache_compat.py``); the SQLite backend stores the
    same bytes in its ``results`` table instead."""
    return cache_dir / f"{key[:2]}" / f"{key}.pkl"


def _cache_load(cache_dir: pathlib.Path, key: str) -> _t.Tuple[bool, _t.Any]:
    store = _result_store(cache_dir)
    try:
        data = store.get(key)
        if data is None:
            return False, None      # an ordinary miss: nothing stored
        return True, pickle.loads(data)
    except Exception as exc:        # noqa: BLE001 — unpickling corrupt
        # bytes can raise nearly anything; none of it may fail the sweep
        # Quarantine: an unreadable/corrupt entry must neither crash the
        # sweep nor shadow its slot forever.  Move it aside (kept for
        # post-mortems, ignored by loads: ``.corrupt`` file or
        # ``corrupt`` table row), warn, and report a miss — the point
        # recomputes and _cache_store rewrites the entry.
        where = store.quarantine(key, f"{type(exc).__name__}: {exc}")
        note = f"; entry quarantined to {where}" if where else ""
        label = f"{key}.pkl" if store.backend == "file" else f"{key[:12]}…"
        warnings.warn(
            f"ignoring corrupt sweep-cache entry {label} "
            f"({type(exc).__name__}: {exc}){note}; recomputing the "
            f"point", RuntimeWarning, stacklevel=3)
        return False, None


def _cache_store(cache_dir: pathlib.Path, key: str, value: _t.Any) -> None:
    try:
        _result_store(cache_dir).put(
            key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 — disk-full, locked DB, unpicklable
        pass  # caching is best-effort; never fail the sweep


def clear_result_cache(cache_dir: _t.Optional[_t.Union[str, pathlib.Path]]
                       = None) -> int:
    """Delete all cached sweep results; returns the number removed.

    Uniform across store backends: the file layout also sweeps the
    ``.tmp<pid>`` droppings a crashed writer leaves behind, the
    ``.corrupt`` files :func:`_cache_load` quarantined, and prunes
    emptied shard directories; the SQLite backend empties its
    ``results`` *and* ``corrupt`` tables.  Residue never counts toward
    the return value, which is cached *results* only.
    """
    root = pathlib.Path(cache_dir) if cache_dir else _config.cache_dir
    return _result_store(root).clear()


# ------------------------------------------------------------- the driver
#: upper bound on one retry-backoff sleep, seconds
_MAX_BACKOFF = 30.0


def _worker_init(engine_backend: str,
                 cache_backend: _t.Optional[str] = None) -> None:
    """Pool-worker initializer: mirror the parent's backend choices.

    Freshly spawned workers re-read ``REPRO_ENGINE`` /
    ``REPRO_CACHE_BACKEND`` on import, so env-var users inherit both
    backends for free — but a backend selected programmatically via
    :func:`repro.simulate.set_engine_backend` /
    :func:`repro.fabric.set_cache_backend` lives only in the parent
    process.  Pinning them here keeps sweeps backend-faithful either
    way (results are bit-identical across backends regardless; this
    preserves the *performance* choice).  Forked workers also drop any
    memoized store handles — an SQLite connection must never cross a
    ``fork``.
    """
    from repro.simulate import set_engine_backend
    set_engine_backend(engine_backend)
    _STORES.clear()
    if cache_backend is not None:
        from repro.fabric.store import set_cache_backend
        set_cache_backend(cache_backend)


@dataclasses.dataclass
class PointFailure:
    """Structured outcome of a sweep point that exhausted its retries.

    Yielded as a :class:`SweepItem`'s ``value`` under
    ``on_error="return"`` instead of raising, so one pathological point
    cannot take down a long sweep.  Failures are never written to the
    cache — the point recomputes on the next sweep.

    ``kind`` is ``"error"`` (``fn`` raised), ``"timeout"`` (the point
    exceeded the per-point budget) or ``"worker-lost"`` (the pool
    worker running — or queued to run — the point died).
    """

    error: str
    kind: str = "error"
    attempts: int = 1


# This module is importlib.reload()-ed by tests to re-run the
# import-time env parsing; pin one canonical class object across
# reloads so isinstance checks on previously-imported references and
# previously-created failures stay true.
PointFailure = globals().setdefault("_PointFailure", PointFailure)


@dataclasses.dataclass
class SweepItem:
    """One completed sweep point, as yielded by :func:`iter_sweep`.

    ``index`` is the point's position in the input sequence (yields
    arrive in *completion* order, not input order).  ``cache_hit`` is
    True when the value came from the on-disk cache or was deduped onto
    an equal point in the same sweep; ``cache_key`` is the on-disk key
    (``None`` when caching is disabled for the sweep).
    """

    index: int
    point: _t.Any
    value: _t.Any
    cache_hit: bool
    cache_key: _t.Optional[str]


def iter_sweep(points: _t.Sequence[_t.Any],
               fn: _t.Callable[[_t.Any], _t.Any],
               workers: _t.Optional[int] = None,
               cache: _t.Optional[bool] = None,
               cache_dir: _t.Optional[_t.Union[str, pathlib.Path]] = None,
               tag: str = "",
               timeout: _t.Optional[float] = None,
               retries: int = 0,
               backoff: float = 0.5,
               on_error: str = "raise") -> _t.Iterator[SweepItem]:
    """Streaming form of :func:`run_sweep`: yield a :class:`SweepItem`
    per point *as results become available* instead of one ordered list
    at the end.

    Cache hits yield first (in input order, essentially instantly);
    pending points follow as the pool completes them, each followed by
    any same-key duplicates it resolves.  Caching semantics — keys,
    stored bytes, the in-sweep duplicate dedupe — are byte-for-byte the
    same as :func:`run_sweep` (which is implemented on this iterator),
    so streaming consumers and batch consumers share one cache.

    Parameters are those of :func:`run_sweep` plus the robustness
    knobs (also accepted by :func:`run_sweep`):

    * ``timeout`` — soft per-point wall-clock budget in seconds (pool
      runs only; inline execution cannot be preempted).  A round of
      pool work is abandoned once it exceeds one budget per submission
      wave; unfinished points count a ``"timeout"`` attempt.
    * ``retries`` — how many times a failed point (exception, timeout,
      dead worker) is re-attempted, with exponential backoff
      (``backoff * 2**k`` seconds before retry round ``k``, capped at
      30 s).  Worker death never poisons the sweep: completed points
      keep their results and the survivors retry on a fresh pool.
    * ``on_error`` — ``"raise"`` (default) re-raises the first point
      that exhausts its attempts; ``"return"`` yields it as a
      :class:`SweepItem` whose value is a structured
      :class:`PointFailure` (never cached) and keeps sweeping.

    The iterator is lazy: nothing runs until the first ``next()``, and
    abandoning it mid-sweep shuts the worker pool down cleanly.
    """
    if on_error not in ("raise", "return"):
        raise ValueError(f"on_error must be 'raise' or 'return', got "
                         f"{on_error!r}")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive (or None)")
    if backoff < 0:
        raise ValueError("backoff must be non-negative")
    cfg = _config
    n_workers = cfg.workers if workers is None else workers
    use_cache = cfg.cache if cache is None else cache
    root = pathlib.Path(cache_dir) if cache_dir else cfg.cache_dir

    points = list(points)
    pending: _t.List[int] = []
    duplicates: _t.Dict[int, _t.List[int]] = {}
    keys: _t.List[_t.Optional[str]]
    if use_cache:
        keys = [_point_key(fn, p, tag) for p in points]
        # Dedupe pending work by cache key: duplicate points in one cold
        # sweep compute once and fan the result out, matching the
        # cross-run dedupe the shared cache namespace already provides.
        first_with_key: _t.Dict[str, int] = {}
        for i, key in enumerate(keys):
            owner = first_with_key.get(key)
            if owner is not None:
                duplicates.setdefault(owner, []).append(i)
                continue
            hit, value = _cache_load(root, key)
            if hit:
                yield SweepItem(i, points[i], value, True, key)
            else:
                first_with_key[key] = i
                pending.append(i)
    else:
        keys = [None] * len(points)
        pending = list(range(len(points)))

    def finish(i: int, value: _t.Any) -> _t.Iterator[SweepItem]:
        if use_cache:
            _cache_store(root, keys[i], value)
        yield SweepItem(i, points[i], value, False, keys[i])
        for dup in duplicates.get(i, ()):
            yield SweepItem(dup, points[dup], value, True, keys[dup])

    def fail(i: int, failure: PointFailure) -> _t.Iterator[SweepItem]:
        # failures are never cached: the point recomputes next sweep,
        # and duplicates share the failure (same key, same outcome)
        yield SweepItem(i, points[i], failure, False, keys[i])
        for dup in duplicates.get(i, ()):
            yield SweepItem(dup, points[dup], failure, False, keys[dup])

    if not pending:
        return
    if n_workers > 1 and len(pending) > 1:
        yield from _pool_rounds(points, fn, pending, n_workers, timeout,
                                retries, backoff, on_error, finish, fail)
    else:
        yield from _serial_rounds(points, fn, pending, retries, backoff,
                                  on_error, finish, fail)


def _serial_rounds(points: _t.List[_t.Any], fn: _t.Callable,
                   pending: _t.List[int], retries: int, backoff: float,
                   on_error: str, finish: _t.Callable,
                   fail: _t.Callable) -> _t.Iterator[SweepItem]:
    """Inline execution with bounded retry (no pool, no preemption —
    ``timeout`` does not apply here)."""
    for i in pending:
        for attempt in range(retries + 1):
            try:
                value = fn(points[i])
            except Exception as exc:
                if attempt < retries:
                    time.sleep(min(backoff * (2 ** attempt),
                                   _MAX_BACKOFF))
                    continue
                if on_error == "raise":
                    raise
                yield from fail(i, PointFailure(
                    f"{type(exc).__name__}: {exc}", "error",
                    attempt + 1))
                break
            else:
                yield from finish(i, value)
                break


def _pool_rounds(points: _t.List[_t.Any], fn: _t.Callable,
                 pending: _t.List[int], n_workers: int,
                 timeout: _t.Optional[float], retries: int,
                 backoff: float, on_error: str, finish: _t.Callable,
                 fail: _t.Callable) -> _t.Iterator[SweepItem]:
    """Pool execution in rounds: each round runs the still-pending
    points on a *fresh* pool, so a worker death (which poisons a
    :class:`~concurrent.futures.ProcessPoolExecutor`) costs one attempt
    for the in-flight points — never the results already completed, and
    never the sweep."""
    attempts: _t.Dict[int, int] = {i: 0 for i in pending}
    failures: _t.Dict[int, PointFailure] = {}
    raisable: _t.Dict[int, BaseException] = {}
    todo = list(pending)
    round_no = 0
    while todo:
        if round_no:
            time.sleep(min(backoff * (2 ** (round_no - 1)),
                           _MAX_BACKOFF))
        round_no += 1
        width = min(n_workers, len(todo))
        from repro.fabric.store import get_cache_backend
        from repro.simulate import get_engine_backend
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=width, initializer=_worker_init,
            initargs=(get_engine_backend(), get_cache_backend()))
        retry: _t.List[int] = []
        drained = False
        abandoned = False
        try:
            futures = {pool.submit(fn, points[i]): i for i in todo}
            waiting = set(futures)
            deadline = None
            if timeout is not None:
                # soft per-point budget: the round gets one timeout per
                # submission wave (queued points have not started yet)
                deadline = time.monotonic() + timeout * -(-len(todo)
                                                          // width)
            while waiting:
                wait_for = None if deadline is None else max(
                    0.0, deadline - time.monotonic())
                done, waiting = concurrent.futures.wait(
                    waiting, timeout=wait_for,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                if not done:
                    # budget exhausted: every straggler counts a
                    # timeout attempt; its worker is abandoned (a
                    # running future cannot be killed, only orphaned).
                    # Stragglers are charged in point order so the
                    # retry round is deterministic (futures are
                    # identity-hashed; raw set order is not).
                    for fut in sorted(waiting, key=futures.__getitem__):
                        i = futures[fut]
                        fut.cancel()
                        attempts[i] += 1
                        failures[i] = PointFailure(
                            f"timed out after {timeout}s", "timeout",
                            attempts[i])
                        retry.append(i)
                    waiting = set()
                    abandoned = True
                    break
                broken = False
                # completion batches arrive as identity-hashed sets;
                # iterate them in point order so a serial replay of the
                # same wave sequence yields results identically
                for fut in sorted(done, key=futures.__getitem__):
                    i = futures[fut]
                    try:
                        value = fut.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        attempts[i] += 1
                        failures[i] = PointFailure(
                            f"worker died ({exc})", "worker-lost",
                            attempts[i])
                        retry.append(i)
                    except Exception as exc:
                        attempts[i] += 1
                        failures[i] = PointFailure(
                            f"{type(exc).__name__}: {exc}", "error",
                            attempts[i])
                        raisable[i] = exc
                        retry.append(i)
                    else:
                        yield from finish(i, value)
                if broken:
                    # the pool is poisoned: in-flight siblings are lost
                    # with it; charge them one attempt and rebuild —
                    # in point order, for a deterministic retry round
                    for fut in sorted(waiting, key=futures.__getitem__):
                        i = futures[fut]
                        attempts[i] += 1
                        failures[i] = PointFailure(
                            "worker died (pool broken)", "worker-lost",
                            attempts[i])
                        retry.append(i)
                    waiting = set()
            drained = True
        finally:
            # A consumer that abandons the stream (GeneratorExit) must
            # not block on the queued remainder, and neither may a
            # timed-out round; a fully drained round has every future
            # done, so waiting is free.
            pool.shutdown(wait=drained and not abandoned,
                          cancel_futures=True)
        todo = []
        for i in retry:
            if attempts[i] <= retries:
                todo.append(i)
                continue
            failure = failures[i]
            if on_error == "raise":
                exc = raisable.get(i)
                if exc is not None:
                    raise exc
                raise RuntimeError(
                    f"sweep point {i} failed after {failure.attempts} "
                    f"attempt(s): {failure.error}")
            yield from fail(i, failure)


def run_sweep(points: _t.Sequence[_t.Any], fn: _t.Callable[[_t.Any], _t.Any],
              workers: _t.Optional[int] = None,
              cache: _t.Optional[bool] = None,
              cache_dir: _t.Optional[_t.Union[str, pathlib.Path]] = None,
              tag: str = "",
              timeout: _t.Optional[float] = None,
              retries: int = 0,
              backoff: float = 0.5,
              on_error: str = "raise") -> _t.List[_t.Any]:
    """Evaluate ``fn(point)`` for every point, in order.

    This is the single fan-out/caching choke point of the repo: every
    figure, ablation, extension and CLI run routes its points through
    here (scenario sweeps via
    :func:`repro.scenarios.sweep_scenarios`), so ``--workers`` /
    ``--no-cache`` behave uniformly everywhere.  See ``docs/cli.md``
    for the user-facing semantics and ``docs/architecture.md`` for
    where the driver sits in the stack.

    Parameters
    ----------
    points:
        Picklable point descriptors.  Each must be a *pure description*
        of the run (configs, mode names, counts — no live objects):
        results are memoized on the descriptor's stable serialization
        (:func:`stable_token`), so anything that should invalidate a
        cached result must be part of the descriptor.
    fn:
        Module-level callable (picklable by reference when
        ``workers > 1``); must be deterministic in ``point`` — the
        cache stores its first result forever (until
        :data:`CACHE_VERSION` is bumped or the cache is cleared).
    workers:
        Process-pool width; ``None`` uses the :func:`configure`\\ d
        default (CLI ``--workers N``, env ``REPRO_WORKERS``).  With 1
        worker — or a single pending point — everything runs inline in
        this process (no pool, no pickling).  Cache hits never spawn
        workers.
    cache:
        Override the configured on-disk memoization (CLI
        ``--no-cache`` maps to ``False``; env ``REPRO_SWEEP_CACHE``
        sets the default).  Caching is best-effort: unreadable or
        corrupt entries recompute, write failures never fail the sweep.
    cache_dir:
        Cache root (default ``.perf_cache/``, env ``REPRO_CACHE_DIR``).
    tag:
        Cache-key namespace; defaults to ``fn``'s qualified name.
        Scenario sweeps pass one shared tag so equal scenarios dedupe
        *across* figures, examples and CLI runs (see
        :func:`repro.scenarios.scenario_cache_key`).
    timeout, retries, backoff, on_error:
        Robustness knobs, as documented on :func:`iter_sweep`.  Under
        ``on_error="return"`` a point that exhausts its attempts shows
        up in the result list as a :class:`PointFailure` instead of
        raising.

    Returns results in the same order as ``points``.
    """
    points = list(points)
    results: _t.List[_t.Any] = [None] * len(points)
    for item in iter_sweep(points, fn, workers=workers, cache=cache,
                           cache_dir=cache_dir, tag=tag, timeout=timeout,
                           retries=retries, backoff=backoff,
                           on_error=on_error):
        results[item.index] = item.value
    return results
