"""Work-partitioning helpers for building intra-parallel tasks."""

from __future__ import annotations

import typing as _t


def split_range(n: int, parts: int) -> _t.List[slice]:
    """Split ``range(n)`` into ``parts`` contiguous, balanced slices.

    The first ``n % parts`` slices get one extra element, mirroring the
    paper's Figure 4 decomposition (n/N iterations per task).  Empty
    slices are produced when ``parts > n`` — the runtime handles
    zero-size tasks gracefully.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if parts < 1:
        raise ValueError("parts must be >= 1")
    base, extra = divmod(n, parts)
    out = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        out.append(slice(lo, hi))
        lo = hi
    return out


def split_blocks(n: int, parts: int) -> _t.List[_t.Tuple[int, int]]:
    """Like :func:`split_range` but returns ``(lo, hi)`` index pairs."""
    return [(s.start, s.stop) for s in split_range(n, parts)]
