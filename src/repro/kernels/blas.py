"""Vector kernels of HPCCG: waxpby and ddot (paper §IV–V).

Each kernel comes with its roofline cost model.  The flops/bytes ratios
are what drive the paper's Figure 5a result:

* ``waxpby`` — 3 flops per element against 24 streamed bytes; its task
  *output* is as large as its input, so intra-parallelization pays more
  in update transfer than it saves in compute (efficiency 0.34 < 0.5);
* ``ddot`` — 2 flops per element against 16 streamed bytes, but the task
  output is a single scalar: updates are free, efficiency ≈ 0.99.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from . import cachectl

#: recycled per-size temporary for the scaled-operand term of waxpby
#: (the kernel runs hundreds of times per CG solve on identical sizes)
_tmp_cache: _t.Dict[int, np.ndarray] = {}


def _tmp(n: int) -> np.ndarray:
    if not cachectl.enabled():
        return np.empty(n)
    buf = _tmp_cache.get(n)
    if buf is None:
        buf = _tmp_cache[n] = np.empty(n)
    return buf


def waxpby(alpha: float, x: np.ndarray, beta: float, y: np.ndarray,
           w: np.ndarray) -> None:
    """``w = alpha * x + beta * y`` (in place into ``w``).

    The paper's Figure 3 kernel.  Alias-safe like HPCCG's elementwise
    loop: CG calls it with ``w`` aliasing ``x`` (x update) or ``y``
    (p update), so the aliased operand is scaled in place first.
    Temporaries for the scaled second term come from a per-size scratch
    cache instead of being allocated per call.
    """
    if w is y or np.shares_memory(w, y):
        w *= beta
        if alpha == 1.0:
            w += x
        else:
            tmp = _tmp(x.size).reshape(x.shape)
            np.multiply(x, alpha, out=tmp)
            w += tmp
    elif w is x or np.shares_memory(w, x):
        w *= alpha
        if beta == 1.0:
            w += y
        else:
            tmp = _tmp(y.size).reshape(y.shape)
            np.multiply(y, beta, out=tmp)
            w += tmp
    else:
        np.multiply(x, alpha, out=w)
        if beta == 1.0:
            w += y
        else:
            tmp = _tmp(y.size).reshape(y.shape)
            np.multiply(y, beta, out=tmp)
            w += tmp


def waxpby_cost(alpha: float, x: np.ndarray, beta: float, y: np.ndarray,
                w: np.ndarray) -> _t.Tuple[float, float]:
    """3 flops, 24 bytes per element (read x, read y, write w)."""
    n = x.size
    return (3.0 * n, 24.0 * n)


def ddot_partial(x: np.ndarray, y: np.ndarray, out: np.ndarray) -> None:
    """Partial dot product of a task's slice: ``out[0] = sum(x * y)``.

    The cross-rank reduction is *not* part of the intra-parallel section
    (paper footnote 6: "the ddot routine includes a reduction step, but
    this step was excluded from the intra-parallel section").
    """
    out[0] = np.dot(x, y)


def ddot_cost(x: np.ndarray, y: np.ndarray,
              out: np.ndarray) -> _t.Tuple[float, float]:
    """2 flops, 16 bytes per element (read x, read y)."""
    n = x.size
    return (2.0 * n, 16.0 * n)


def grid_sum_partial(x: np.ndarray, out: np.ndarray) -> None:
    """Partial sum of grid elements: ``out[0] = sum(x)``.

    MiniGhost's only efficiently intra-parallelizable kernel (§V-D): the
    output is one scalar, like ddot.
    """
    out[0] = x.sum()


def grid_sum_cost(x: np.ndarray, out: np.ndarray) -> _t.Tuple[float, float]:
    """1 flop, 8 bytes per element (stream x once)."""
    n = x.size
    return (1.0 * n, 8.0 * n)
