"""Sparse matrix-vector product on 27-point 3D-grid matrices (HPCCG).

HPCCG builds a symmetric 27-point operator over an ``nx × ny × nz``
local grid, partitioned across ranks along z.  We reproduce the same
structure as a CSR matrix whose column indices point into a *padded*
local vector ``[halo_lo | local | halo_hi]``, so the distributed matvec
is: exchange one xy-plane with each z-neighbour, then a purely local
CSR spmv.

The cost model (≈ 12 bytes per nonzero of matrix streaming + 16 bytes
per row) gives sparsemv the highest compute-per-output-byte of the three
HPCCG kernels, which is why its intra efficiency reaches ≈ 0.94 in
Figure 5a despite a vector-sized output.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np


@dataclasses.dataclass
class CsrMatrix:
    """Compressed-sparse-row matrix with halo-padded column indexing.

    ``col`` indexes into a padded vector of length
    ``halo_lo + n_rows + halo_hi``; the local entries occupy
    ``[halo_lo, halo_lo + n_rows)``.
    """

    n_rows: int
    halo_lo: int
    halo_hi: int
    row_ptr: np.ndarray  # int64, len n_rows + 1
    col: np.ndarray      # int32, len nnz
    val: np.ndarray      # float64, len nnz

    @property
    def nnz(self) -> int:
        return int(self.val.size)

    @property
    def padded_len(self) -> int:
        return self.halo_lo + self.n_rows + self.halo_hi

    def row_nnz(self, lo: int, hi: int) -> int:
        """Nonzeros in the row block [lo, hi)."""
        return int(self.row_ptr[hi] - self.row_ptr[lo])


#: the 27 offsets of the 3×3×3 stencil
OFFSETS_27 = [(dx, dy, dz) for dz in (-1, 0, 1) for dy in (-1, 0, 1)
              for dx in (-1, 0, 1)]
#: the 7 offsets of the axis-aligned stencil
OFFSETS_7 = [(0, 0, 0), (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
             (0, 0, -1), (0, 0, 1)]


def build_stencil_csr(nx: int, ny: int, nz: int, has_lower: bool,
                      has_upper: bool,
                      offsets: _t.Sequence[_t.Tuple[int, int, int]],
                      diag_val: float, off_val: float) -> CsrMatrix:
    """Explicit CSR matrix of a constant-coefficient stencil operator
    over the local ``nx·ny·nz`` grid (z-partitioned across ranks).

    ``has_lower`` / ``has_upper`` say whether a z-neighbour rank exists;
    if so, stencil legs crossing the boundary point into the halo planes
    (one xy-plane of ``nx·ny`` entries per side).  Legs leaving the
    global domain in x/y are dropped (Dirichlet-like truncation, as in
    HPCCG's local grid mode).

    Storing the operator *explicitly* — values and column indices —
    matters for the reproduction: it is the matrix streaming traffic
    that gives CSR spmv its high compute-per-output-byte ratio (§V-C),
    both in HPCCG and in AMG2013 (an *algebraic* multigrid, which keeps
    CSR matrices at every level).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be positive")
    plane = nx * ny
    n = plane * nz
    halo_lo = plane if has_lower else 0
    halo_hi = plane if has_upper else 0

    # Build with numpy broadcasting: enumerate the stencil offsets.
    ix = np.arange(nx)
    iy = np.arange(ny)
    iz = np.arange(nz)
    X, Y, Z = np.meshgrid(ix, iy, iz, indexing="ij")
    X = X.ravel()
    Y = Y.ravel()
    Z = Z.ravel()
    # row index in canonical ordering (z-major like HPCCG: idx = x + nx*y
    # + nx*ny*z); padded position adds halo_lo.
    row_of = (X + nx * Y + plane * Z)

    cols_per_offset = []
    valid_per_offset = []
    vals_per_offset = []
    for dx, dy, dz in offsets:
        nxx, nyy, nzz = X + dx, Y + dy, Z + dz
        valid = ((0 <= nxx) & (nxx < nx)
                 & (0 <= nyy) & (nyy < ny))
        # z legs may cross into halo planes
        below = nzz < 0
        above = nzz >= nz
        if has_lower:
            z_ok = np.ones_like(valid)
        else:
            z_ok = ~below
        if not has_upper:
            z_ok = z_ok & ~above
        valid = valid & z_ok
        # padded column index
        col = np.where(
            below, nxx + nx * nyy,                       # lower halo
            np.where(above,
                     halo_lo + n + nxx + nx * nyy,       # upper halo
                     halo_lo + nxx + nx * nyy + plane * nzz))
        diag = (dx == 0) and (dy == 0) and (dz == 0)
        vals = np.where(diag, diag_val, off_val)
        cols_per_offset.append(col)
        valid_per_offset.append(valid)
        vals_per_offset.append(np.broadcast_to(vals, col.shape))

    cols = np.stack(cols_per_offset, axis=1)       # (n, n_offsets)
    valids = np.stack(valid_per_offset, axis=1)
    vals = np.stack(vals_per_offset, axis=1)
    counts = valids.sum(axis=1)
    # rows are already in canonical order 0..n-1? row_of is a permutation;
    # sort rows into canonical order.
    order = np.argsort(row_of, kind="stable")
    cols = cols[order]
    valids = valids[order]
    vals = vals[order]
    counts = counts[order]

    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    flat_cols = cols[valids].astype(np.int32)
    flat_vals = vals[valids].astype(np.float64)
    return CsrMatrix(n_rows=n, halo_lo=halo_lo, halo_hi=halo_hi,
                     row_ptr=row_ptr, col=flat_cols, val=flat_vals)


def build_27pt(nx: int, ny: int, nz: int, has_lower: bool,
               has_upper: bool) -> CsrMatrix:
    """The HPCCG operator: 27 on the diagonal, −1 on every neighbour
    within the 3×3×3 stencil (also AMG2013's 27-point Laplace problem)."""
    return build_stencil_csr(nx, ny, nz, has_lower, has_upper,
                             OFFSETS_27, diag_val=27.0, off_val=-1.0)


def build_7pt(nx: int, ny: int, nz: int, has_lower: bool,
              has_upper: bool) -> CsrMatrix:
    """The 7-point Laplace operator of AMG2013's GMRES problem: 6 on the
    diagonal, −1 on the six axis neighbours."""
    return build_stencil_csr(nx, ny, nz, has_lower, has_upper,
                             OFFSETS_7, diag_val=6.0, off_val=-1.0)


def spmv_rows(matrix: CsrMatrix, x_padded: np.ndarray, lo: int, hi: int,
              y_block: np.ndarray) -> None:
    """``y[lo:hi] = A[lo:hi, :] @ x_padded`` — one intra-parallel task.

    Vectorised CSR row-block product (no Python-level row loop).
    """
    start = int(matrix.row_ptr[lo])
    stop = int(matrix.row_ptr[hi])
    prod = matrix.val[start:stop] * x_padded[matrix.col[start:stop]]
    counts = (matrix.row_ptr[lo + 1:hi + 1]
              - matrix.row_ptr[lo:hi]).astype(np.int64)
    # segmented sum via reduceat on the row boundaries
    boundaries = np.concatenate(
        ([0], np.cumsum(counts)[:-1])).astype(np.int64)
    if prod.size:
        sums = np.add.reduceat(prod, boundaries)
        sums[counts == 0] = 0.0
    else:
        sums = np.zeros(hi - lo)
    np.copyto(y_block, sums)


def spmv_cost(matrix: CsrMatrix, lo: int, hi: int) -> _t.Tuple[float, float]:
    """Roofline cost of the row block [lo, hi): 2 flops per nonzero;
    12 bytes per nonzero (value + column index) plus 16 bytes per row
    (row pointer + y write); x gathers are assumed cache-resident for
    the banded 27-point structure."""
    nnz = matrix.row_nnz(lo, hi)
    rows = hi - lo
    return (2.0 * nnz, 12.0 * nnz + 16.0 * rows)


def make_spmv_task(matrix: CsrMatrix):
    """Bind a matrix into an intra-task function + cost pair.

    The returned function has signature ``(x_padded, lo_arr, y_block)``
    with tags ``[IN, IN, OUT]``; ``lo_arr`` is a 2-int array holding
    ``(lo, hi)`` (kept as an array so the launch API stays uniform).
    """
    def fn(x_padded: np.ndarray, bounds: np.ndarray,
           y_block: np.ndarray) -> None:
        spmv_rows(matrix, x_padded, int(bounds[0]), int(bounds[1]),
                  y_block)

    def cost(x_padded: np.ndarray, bounds: np.ndarray,
             y_block: np.ndarray) -> _t.Tuple[float, float]:
        return spmv_cost(matrix, int(bounds[0]), int(bounds[1]))

    return fn, cost
